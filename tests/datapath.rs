//! Windowed data-path integration tests: the credit-based channel pipeline
//! (`chan_window > 1`) against seeded loss, corruption, and reordering —
//! plus the determinism and bounded-state guarantees it must share with
//! stop-and-wait.
//!
//! Everything runs from fixed seeds, so each scenario replays
//! bit-identically on every run.

use std::sync::Arc;

use parking_lot::Mutex;

use hpc_vorx::desim::{FaultSchedule, LinkFaults};
use hpc_vorx::hpcnet::{NodeAddr, Payload};
use hpc_vorx::vorx::objmgr::ObjMgrMode;
use hpc_vorx::vorx::{channel, Calibration, VorxBuilder};

use proptest::prelude::*;

/// Deterministic test message `i` of `len` bytes.
fn msg(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| ((i * 7 + j) % 251) as u8).collect()
}

/// Stream `sizes.len()` messages (message `i` is `msg(i, sizes[i])`) from
/// node 0 to node 1 with an optionally-customized calibration, under
/// `schedule`. Returns (received messages, leaked process count, trace
/// JSON — empty when tracing is off).
fn stream_with(
    calib: Calibration,
    schedule: FaultSchedule,
    sizes: &[usize],
    trace: bool,
) -> (Vec<Vec<u8>>, usize, String) {
    let mut v = VorxBuilder::single_cluster(2)
        .objmgr(ObjMgrMode::Centralized(NodeAddr(0)))
        .calibration(calib)
        .trace(trace)
        .faults(schedule)
        .build();
    let sizes_w: Vec<usize> = sizes.to_vec();
    v.spawn("n0:writer", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(0), "dp");
        for (i, &len) in sizes_w.iter().enumerate() {
            ch.write(&ctx, Payload::copy_from(&msg(i, len))).unwrap();
        }
        // In windowed mode the close flushes the transmit window.
        ch.close(&ctx);
    });
    let got = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    let n_msgs = sizes.len();
    v.spawn("n1:reader", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "dp");
        for _ in 0..n_msgs {
            let p = ch.read(&ctx).unwrap();
            sink.lock().push(p.bytes().unwrap().to_vec());
        }
    });
    let report = v.run();
    let leaked = report.parked.len();
    let trace_json = if trace {
        v.world().trace.to_json()
    } else {
        String::new()
    };
    let order = got.lock().clone();
    // The receive-side window state must be fully drained: nothing held,
    // nothing mid-copy, nothing parked in the reorder buffer.
    let w = v.world();
    for end in w.nodes[1].chans.values() {
        assert!(end.winrx.ready.is_empty(), "reorder buffer not drained");
        assert!(end.winrx.copying.is_empty(), "copy in flight at quiescence");
        assert_eq!(end.winrx.held, 0, "credit leaked by consumed messages");
    }
    (order, leaked, trace_json)
}

/// Expected stream for `sizes`.
fn expect(sizes: &[usize]) -> Vec<Vec<u8>> {
    sizes.iter().enumerate().map(|(i, &l)| msg(i, l)).collect()
}

/// Windowed mode on a clean network: byte-identical in-order delivery,
/// including messages large enough to fragment (multi-fragment reassembly
/// through the reorder buffer).
#[test]
fn windowed_delivers_in_order_with_fragmentation() {
    let sizes = [4usize, 256, 1024, 3000, 1, 2500, 64, 5000];
    let (order, leaked, _) = stream_with(
        Calibration::paper_1988_windowed(8),
        FaultSchedule::new(3),
        &sizes,
        false,
    );
    assert_eq!(order, expect(&sizes));
    assert_eq!(leaked, 0);
}

/// A window larger than the stream still flushes and closes cleanly.
#[test]
fn window_larger_than_stream_flushes_on_close() {
    let sizes = [16usize; 3];
    let (order, leaked, _) = stream_with(
        Calibration::paper_1988_windowed(16),
        FaultSchedule::new(5),
        &sizes,
        false,
    );
    assert_eq!(order, expect(&sizes));
    assert_eq!(leaked, 0);
}

/// The reorder buffer and credit pool are hard bounds: with a tiny receive
/// window and loss on every link, fragments beyond the bounds are dropped
/// and retransmitted — delivery stays exact, and nothing leaks.
#[test]
fn tiny_reorder_and_credit_bounds_still_deliver_exactly_once() {
    let mut c = Calibration::paper_1988_windowed(4);
    c.chan_rx_frag_buffers = 4;
    c.chan_reorder_frags = 2;
    let schedule = FaultSchedule::new(11).all_links(LinkFaults::loss(0.05));
    let sizes = [200usize; 10];
    let (order, leaked, _) = stream_with(c, schedule, &sizes, false);
    assert_eq!(order, expect(&sizes));
    assert_eq!(leaked, 0);
}

/// Determinism: the same (seed, window) pair replays bit-identically, and
/// the window size genuinely changes the execution (so the comparison is
/// not vacuous).
#[test]
fn same_seed_same_window_replays_bit_identically() {
    let sizes = [256usize; 6];
    let schedule = || FaultSchedule::new(42).all_links(LinkFaults::loss(0.03));
    let run = |w: u32| {
        stream_with(
            Calibration::paper_1988_windowed(w),
            schedule(),
            &sizes,
            true,
        )
    };
    let (order_a, leaked_a, trace_a) = run(4);
    let (order_b, leaked_b, trace_b) = run(4);
    assert_eq!(order_a, expect(&sizes));
    assert_eq!(order_a, order_b);
    assert_eq!(leaked_a, leaked_b);
    assert!(trace_a.len() > 2, "trace must record");
    assert_eq!(trace_a, trace_b, "same window must replay bit-identically");
    // Different window, same seed: a different execution.
    let (order_c, _, trace_c) = run(1);
    assert_eq!(order_c, expect(&sizes));
    assert_ne!(trace_a, trace_c, "window size must change the schedule");
}

/// The windowed pipeline is actually faster: the same workload finishes in
/// less simulated time at W=8 than at W=1 (the full goodput comparison
/// against the paper's tables lives in `datapath_report`).
#[test]
fn windowed_finishes_sooner_than_stop_and_wait() {
    let sizes = [256usize; 16];
    let finish = |w: u32| {
        let mut v = VorxBuilder::single_cluster(2)
            .objmgr(ObjMgrMode::Centralized(NodeAddr(0)))
            .calibration(Calibration::paper_1988_windowed(w))
            .trace(false)
            .build();
        let sizes_w: Vec<usize> = sizes.to_vec();
        v.spawn("n0:w", move |ctx| {
            let ch = channel::open(&ctx, NodeAddr(0), "t");
            for (i, &len) in sizes_w.iter().enumerate() {
                ch.write(&ctx, Payload::copy_from(&msg(i, len))).unwrap();
            }
            ch.close(&ctx);
        });
        let done = Arc::new(Mutex::new(0u64));
        let sink = Arc::clone(&done);
        v.spawn("n1:r", move |ctx| {
            let ch = channel::open(&ctx, NodeAddr(1), "t");
            for _ in 0..16 {
                ch.read(&ctx).unwrap();
            }
            *sink.lock() = ctx.now().as_ns();
        });
        v.run_all();
        let t = *done.lock();
        assert!(t > 0);
        t
    };
    let t1 = finish(1);
    let t8 = finish(8);
    assert!(
        t8 * 4 <= t1 * 3,
        "W=8 ({t8} ns) should beat W=1 ({t1} ns) clearly"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized loss/corruption with random seeds across window sizes:
    /// the windowed protocol delivers every message byte-identically, in
    /// order, exactly once, leaving no parked process and no receive-side
    /// window state behind.
    #[test]
    fn lossy_windowed_stream_delivers_byte_identical(
        seed in 0u64..1_000_000,
        window in prop::sample::select(vec![1u32, 4, 16]),
        drop in 0.0f64..0.06,
        corrupt in 0.0f64..0.04,
    ) {
        let schedule = FaultSchedule::new(seed).all_links(LinkFaults {
            drop,
            corrupt,
            delay: 0.0,
            delay_ns: 0,
        });
        let sizes = [4usize, 1500, 256, 64, 2048, 1, 900, 256];
        let (order, leaked, _) = stream_with(
            Calibration::paper_1988_windowed(window),
            schedule,
            &sizes,
            false,
        );
        prop_assert_eq!(order, expect(&sizes));
        prop_assert_eq!(leaked, 0);
    }
}
