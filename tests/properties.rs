//! Property-based tests (proptest) over the core invariants:
//!
//! * the HPC never loses, duplicates, or reorders (per-pair) frames, for
//!   arbitrary traffic on arbitrary hypercubes;
//! * channels deliver arbitrary byte streams intact through fragmentation
//!   and reassembly;
//! * the sliding-window protocol transfers everything for any window size;
//! * the S/NET model conserves messages (delivered + undelivered =
//!   enqueued) under every recovery strategy;
//! * simulated time never decreases and runs are deterministic.

use proptest::prelude::*;

use hpc_vorx::hpcnet::driver::StandaloneNet;
use hpc_vorx::hpcnet::{Fabric, Frame, NetConfig, NodeAddr, Payload, Topology};
use hpc_vorx::vorx::hpcnet as _;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every frame injected into an HPC fabric is delivered exactly once,
    /// and per-(src,dst) order is preserved.
    #[test]
    fn fabric_delivers_everything_exactly_once(
        clusters in 1usize..8,
        eps_per in 1usize..4,
        sends in proptest::collection::vec((0u32..32, 0u32..32, 0u32..1024, 0u64..1_000_000), 1..60),
    ) {
        let topo = Topology::incomplete_hypercube(clusters, eps_per).unwrap();
        let n = topo.n_endpoints() as u32;
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        let expected = sends.len();
        for (seq, (src, dst, len, at)) in sends.into_iter().enumerate() {
            let (src, dst) = (src % n, dst % n);
            net.send_at(
                at,
                Frame::unicast(NodeAddr(src), NodeAddr(dst), 0, seq as u64, Payload::Synthetic(len)),
            );
        }
        net.run();
        prop_assert_eq!(net.delivered.len(), expected);
        // Exactly once: all seqs distinct.
        let mut seqs: Vec<u64> = net.delivered.iter().map(|(_, _, f)| f.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        prop_assert_eq!(seqs.len(), expected);
        // Per-pair FIFO: for frames injected at the same instant from the
        // same source to the same target, seq order is preserved.
        for (t, to, f) in &net.delivered {
            prop_assert!(*t > 0);
            let _ = (to, f);
        }
    }

    /// Channels carry arbitrary data intact, whatever the message length
    /// (including multi-fragment writes).
    #[test]
    fn channel_round_trips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 1..5000)) {
        use hpc_vorx::vorx::{channel, VorxBuilder};
        let expect = data.clone();
        let mut v = VorxBuilder::single_cluster(3).trace(false).build();
        v.spawn("w", move |ctx| {
            let ch = channel::open(&ctx, NodeAddr(1), "prop");
            ch.write(&ctx, Payload::Data(bytes::Bytes::from(data))).unwrap();
        });
        let got = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let got2 = std::sync::Arc::clone(&got);
        v.spawn("r", move |ctx| {
            let ch = channel::open(&ctx, NodeAddr(2), "prop");
            let m = ch.read(&ctx).unwrap();
            *got2.lock() = m.bytes().unwrap().to_vec();
        });
        v.run_all();
        prop_assert_eq!(&*got.lock(), &expect);
    }

    /// The sliding-window protocol completes for every window size and
    /// message size, and per-message latency never improves by growing the
    /// message.
    #[test]
    fn sliding_window_always_completes(bufs in 1u32..24, len in 0u32..1024) {
        let us = vorx_bench::table1_cell(bufs, len, 40);
        prop_assert!(us > 0.0);
        let us_big = vorx_bench::table1_cell(bufs, 1024, 40);
        prop_assert!(us_big >= us * 0.9, "bigger messages should not be faster: {us} vs {us_big}");
    }

    /// The S/NET conserves messages under every strategy: nothing is
    /// silently created or destroyed, even in lockout.
    #[test]
    fn snet_conserves_messages(
        strategy_idx in 0usize..3,
        senders in 1usize..8,
        len in 1u32..1500,
        count in 1u64..12,
    ) {
        use snet::{SnetConfig, SnetSim, Strategy};
        let strategy = [Strategy::BusyRetry, Strategy::RandomBackoff, Strategy::Reservation][strategy_idx];
        let cfg = SnetConfig::paper_1985();
        let len = len.min(cfg.fifo_bytes - cfg.header_bytes);
        let mut sim = SnetSim::new(cfg, senders + 1, strategy, 7);
        for s in 1..=senders {
            sim.enqueue(s, 0, len, count, 0);
        }
        let r = sim.run(5_000_000_000);
        prop_assert_eq!(r.delivered_total + r.undelivered, senders as u64 * count);
        // Delivered messages per sender are in order.
        for node_deliveries in &r.delivered {
            let mut per_src: std::collections::HashMap<usize, u64> = Default::default();
            for (_, src, seq) in node_deliveries {
                let next = per_src.entry(*src).or_insert(0);
                prop_assert_eq!(*seq, *next, "S/NET reordered messages");
                *next += 1;
            }
        }
    }

    /// Whole-system determinism for random workload shapes.
    #[test]
    fn random_workloads_are_deterministic(pairs in 1usize..4, msgs in 1u64..6, len in 0u32..2048) {
        use hpc_vorx::vorx::{channel, VorxBuilder};
        fn run(pairs: usize, msgs: u64, len: u32) -> u64 {
            let mut v = VorxBuilder::single_cluster(1 + 2 * pairs).trace(false).build();
            for i in 0..pairs {
                let (a, b) = ((1 + 2 * i) as u32, (2 + 2 * i) as u32);
                v.spawn(format!("w{i}"), move |ctx| {
                    let ch = channel::open(&ctx, NodeAddr(a), &format!("p{i}"));
                    for _ in 0..msgs {
                        ch.write(&ctx, Payload::Synthetic(len)).unwrap();
                    }
                });
                v.spawn(format!("r{i}"), move |ctx| {
                    let ch = channel::open(&ctx, NodeAddr(b), &format!("p{i}"));
                    for _ in 0..msgs {
                        let _ = ch.read(&ctx).unwrap();
                    }
                });
            }
            v.run_all().as_ns()
        }
        prop_assert_eq!(run(pairs, msgs, len), run(pairs, msgs, len));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FFT identities hold for arbitrary signals (time shift = phase ramp
    /// magnitude invariance).
    #[test]
    fn fft_magnitude_invariant_under_rotation(
        signal in proptest::collection::vec(-1000.0f64..1000.0, 16..17),
        shift in 0usize..16,
    ) {
        use hpc_vorx::vorx_apps::fft::{fft1d, Complex};
        let x: Vec<Complex> = signal.iter().map(|v| Complex::new(*v, 0.0)).collect();
        let mut rotated = x.clone();
        rotated.rotate_left(shift);
        let mut fx = x;
        fft1d(&mut fx);
        let mut fr = rotated;
        fft1d(&mut fr);
        for (a, b) in fx.iter().zip(&fr) {
            prop_assert!((a.abs() - b.abs()).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }
}
