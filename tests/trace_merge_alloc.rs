//! Allocation accounting on [`Trace::merge`]: the merge moves events and
//! splices whole runs — it must not clone event vectors. Budget: one
//! allocation for the output vector (sized up front) plus one for the
//! per-part iterator table; a single non-empty input passes through with
//! zero allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use desim::{SimTime, Trace};

/// Global allocator wrapper counting every allocation and byte handed out.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The allocator counters are process-global; the tests in this binary
/// serialize on this lock so their deltas don't mix.
static METER_LOCK: Mutex<()> = Mutex::new(());

/// A shard-shaped trace: long runs of local activity, timestamps striped so
/// traces interleave at the merge points.
fn shard_trace(shard: u64, runs: u64, run_len: u64) -> Trace<u64> {
    let mut t = Trace::new();
    for r in 0..runs {
        for i in 0..run_len {
            // Run r of shard s occupies [r * 1000 + s * 100, ... + run_len).
            t.record(SimTime::from_ns(r * 1000 + shard * 100 + i), shard);
        }
    }
    t
}

#[test]
fn merging_one_trace_allocates_nothing() {
    let _guard = METER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let traces = vec![shard_trace(0, 4, 64)];
    let len = traces[0].len();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let merged = Trace::merge(traces);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(merged.len(), len);
    assert_eq!(
        after - before,
        0,
        "single-trace merge must return the input vector as-is"
    );
}

#[test]
fn merge_allocates_a_constant_number_of_vectors() {
    let _guard = METER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let traces: Vec<Trace<u64>> = (0..8).map(|s| shard_trace(s, 16, 32)).collect();
    let total: usize = traces.iter().map(Trace::len).sum();
    let event_bytes = (total * std::mem::size_of::<(SimTime, u64)>()) as u64;

    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let bytes_before = ALLOCATED.load(Ordering::Relaxed);
    let merged = Trace::merge(traces);
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let bytes = ALLOCATED.load(Ordering::Relaxed) - bytes_before;

    assert_eq!(merged.len(), total);
    assert!(
        allocs <= 2,
        "merge of 8 traces made {allocs} allocations; budget is 2 \
         (output vector + iterator table)"
    );
    assert!(
        bytes <= event_bytes + 1024,
        "merge allocated {bytes} bytes for {event_bytes} bytes of events; \
         it must not clone event vectors"
    );

    // And the result is still globally time-ordered (the splice fast path
    // must not reorder).
    let mut last = SimTime::ZERO;
    for (t, _) in merged.iter() {
        assert!(t >= last, "merged trace out of order");
        last = t;
    }
}
