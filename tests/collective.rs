//! Property-based tests of the collective layer (DESIGN.md §16).
//!
//! The in-network engine folds operands *inside* the star couplers, with
//! partial sums racing combining-window timers and, under faults, whole
//! attempt epochs being discarded and replayed. None of that machinery may
//! ever change the answer: every member must receive exactly the scalar
//! fold of all operands, for arbitrary operand values, arbitrary
//! combining-window settings, and under probabilistic frame loss and link
//! degradation. And because combining arbitration is a pure function of
//! arrival order, the sharded engine must replay every run bit-identically
//! at workers {1, 4, 8}.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use hpc_vorx::desim::{FaultSchedule, LinkFaults};
use hpc_vorx::hpcnet::combine::CombOp;
use hpc_vorx::hpcnet::{NetConfig, NodeAddr, Topology};
use hpc_vorx::vorx::collective::{self, CollMode, GroupCfg};
use hpc_vorx::vorx::VorxBuilder;

const GROUP: u32 = 7;
/// Fixed shard count: the shard partition is part of the simulated outcome,
/// so holding it constant is what makes the worker sweep a pure concurrency
/// comparison.
const SHARDS: usize = 4;

/// The derived operand of the second operation (distinct from the first so
/// a replayed first-op result can never masquerade as the second's).
fn second(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

/// Scalar ground truth: a plain left fold over the operands.
fn fold(op: CombOp, xs: impl Iterator<Item = u64>) -> u64 {
    xs.fold(op.identity(), |a, b| op.apply(a, b))
}

/// One run outcome: per-member results of both ops, end time, merged trace.
struct Run {
    r1: Vec<u64>,
    r2: Vec<u64>,
    end_ns: u64,
    trace: String,
}

/// Run one in-network group of `operands.len()` members sharded over
/// `workers` threads: every member allreduces `operands[i]`, then reduces
/// `second(operands[i])` (two ops exercise sequence-number progression and
/// the root's last-two replay window).
fn run_group(
    operands: &[u64],
    op: CombOp,
    comb_window_ns: u64,
    faults: Option<FaultSchedule>,
    workers: usize,
) -> Run {
    let members = operands.len();
    let clusters = members.div_ceil(4);
    let topo = Topology::incomplete_hypercube(clusters, 4).expect("test topology");
    let mut nc = NetConfig::paper_1988();
    nc.comb_window_ns = comb_window_ns;
    let mut b = VorxBuilder::with_topology(topo)
        .seed(0x5EED)
        .net_config(nc)
        .shards(SHARDS);
    if let Some(f) = faults {
        b = b.faults(f);
    }
    let v = b.build_sharded(workers);
    collective::register_group_sharded(
        &v,
        &GroupCfg {
            group: GROUP,
            members: (0..members).map(|m| NodeAddr(m as u32)).collect(),
            mode: CollMode::InNetwork,
        },
    );
    let r1 = Arc::new(Mutex::new(vec![0u64; members]));
    let r2 = Arc::new(Mutex::new(vec![0u64; members]));
    for (m, &x) in operands.iter().enumerate() {
        let (r1, r2) = (Arc::clone(&r1), Arc::clone(&r2));
        v.spawn_at(NodeAddr(m as u32), format!("n{m}:coll"), move |ctx| {
            let c = collective::attach(&ctx, NodeAddr(m as u32), GROUP);
            r1.lock()[m] = c.allreduce(&ctx, op, x);
            r2.lock()[m] = c.reduce(&ctx, op, second(x));
        });
    }
    let mut v = v;
    let end = v.run_all();
    let trace = v.merged_trace().to_json();
    let (r1, r2) = (r1.lock().clone(), r2.lock().clone());
    Run {
        r1,
        r2,
        end_ns: end.as_ns(),
        trace,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// In-network reduce/allreduce equals the scalar fold for arbitrary
    /// operands, operations, and combining-window timings, under seeded
    /// loss and link degradation — and the run replays bit-identically at
    /// workers {1, 4, 8}.
    #[test]
    fn in_network_reduction_is_the_scalar_fold(
        operands in proptest::collection::vec(any::<u64>(), 2..17),
        op_idx in 0usize..4,
        window in 0u64..200_000,
        fault_seed in any::<u64>(),
        drop_milli in 0u32..40,
        delay_milli in 0u32..200,
        delay_ns in 0u64..200_000,
    ) {
        let op = [CombOp::Sum, CombOp::Min, CombOp::Max, CombOp::FetchAdd][op_idx];
        let exp1 = fold(op, operands.iter().copied());
        let exp2 = fold(op, operands.iter().copied().map(second));
        // Degraded links: probabilistic drops plus probabilistic extra
        // latency, the same profile on every link, from a seeded RNG.
        let profile = LinkFaults {
            drop: f64::from(drop_milli) / 1000.0,
            corrupt: 0.0,
            delay: f64::from(delay_milli) / 1000.0,
            delay_ns,
        };
        let schedule = FaultSchedule::new(fault_seed).all_links(profile);
        let runs: Vec<Run> = [1usize, 4, 8]
            .iter()
            .map(|&w| run_group(&operands, op, window, Some(schedule.clone()), w))
            .collect();
        for r in &runs {
            prop_assert_eq!(&r.r1, &vec![exp1; operands.len()], "first op diverged from fold");
            prop_assert_eq!(&r.r2, &vec![exp2; operands.len()], "second op diverged from fold");
        }
        prop_assert_eq!(runs[0].end_ns, runs[1].end_ns, "end time differs, workers 1 vs 4");
        prop_assert_eq!(runs[0].end_ns, runs[2].end_ns, "end time differs, workers 1 vs 8");
        prop_assert!(
            runs[0].trace == runs[1].trace && runs[0].trace == runs[2].trace,
            "merged traces differ across worker counts"
        );
    }
}

/// Window extremes, fault-free: a zero-width combining window (every
/// partial flushes at once) and a huge one (only the expected-count early
/// flush fires) must both produce the exact fold.
#[test]
fn combining_window_extremes_are_exact() {
    let operands: Vec<u64> = (0..12).map(|i| u64::MAX / 3 + i * 7).collect();
    for window in [0u64, 1, 1_000_000_000] {
        let r = run_group(&operands, CombOp::Sum, window, None, 1);
        let exp = fold(CombOp::Sum, operands.iter().copied());
        assert_eq!(r.r1, vec![exp; operands.len()], "window {window}");
    }
}

/// Combining must be invisible until used: arming a group that no process
/// ever attaches leaves a non-collective workload's trace byte-identical to
/// the same run with no group registered (the §16 determinism discipline —
/// collective-free traces match the pre-collective engine).
#[test]
fn unused_group_leaves_noncollective_traces_untouched() {
    let run = |register: bool| {
        let topo = Topology::incomplete_hypercube(2, 4).expect("test topology");
        let v = VorxBuilder::with_topology(topo)
            .seed(0x5EED)
            .shards(SHARDS)
            .build_sharded(1);
        if register {
            collective::register_group_sharded(
                &v,
                &GroupCfg {
                    group: GROUP,
                    members: (0..8).map(NodeAddr).collect(),
                    mode: CollMode::InNetwork,
                },
            );
        }
        v.spawn_at(NodeAddr(0), "w", |ctx| {
            let ch = hpc_vorx::vorx::channel::open(&ctx, NodeAddr(0), "plain");
            ch.write(&ctx, hpc_vorx::hpcnet::Payload::copy_from(&[7u8; 300]))
                .expect("write");
        });
        v.spawn_at(NodeAddr(5), "r", |ctx| {
            let ch = hpc_vorx::vorx::channel::open(&ctx, NodeAddr(5), "plain");
            ch.read(&ctx).expect("read");
        });
        let mut v = v;
        let end = v.run_all();
        (end.as_ns(), v.merged_trace().to_json())
    };
    let (end_armed, trace_armed) = run(true);
    let (end_bare, trace_bare) = run(false);
    assert_eq!(end_armed, end_bare, "an unused group changed the end time");
    assert_eq!(trace_armed, trace_bare, "an unused group changed the trace");
}

/// The software tree and the combining fabric are two engines for the same
/// operation: identical results on identical operands.
#[test]
fn software_tree_and_in_network_agree() {
    let operands: Vec<u64> = vec![3, u64::MAX, 0, 41, 7, 7, 19, 2];
    let innet = run_group(&operands, CombOp::Min, 20_000, None, 1);
    // Same group, software-tree mode, radix 2.
    let topo = Topology::incomplete_hypercube(2, 4).expect("test topology");
    let v = VorxBuilder::with_topology(topo)
        .seed(0x5EED)
        .shards(SHARDS)
        .build_sharded(1);
    collective::register_group_sharded(
        &v,
        &GroupCfg {
            group: GROUP,
            members: (0..operands.len()).map(|m| NodeAddr(m as u32)).collect(),
            mode: CollMode::SoftwareTree { radix: 2 },
        },
    );
    let got = Arc::new(Mutex::new(vec![0u64; operands.len()]));
    for (m, &x) in operands.iter().enumerate() {
        let got = Arc::clone(&got);
        v.spawn_at(NodeAddr(m as u32), format!("n{m}:tree"), move |ctx| {
            let c = collective::attach(&ctx, NodeAddr(m as u32), GROUP);
            got.lock()[m] = c.allreduce(&ctx, CombOp::Min, x);
        });
    }
    let mut v = v;
    v.run_all();
    assert_eq!(&*got.lock(), &innet.r1, "engines disagree on CombOp::Min");
}
