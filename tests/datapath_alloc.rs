//! Zero-copy accounting on the fabric forwarding hot path: multicast
//! fan-out must share one refcounted payload across every branch — no
//! payload-byte copies (copymeter) and no heap churn proportional to
//! payload size × fan-out (counting allocator).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hpc_vorx::hpcnet::driver::StandaloneNet;
use hpc_vorx::hpcnet::{copymeter, Dest, Fabric, Frame, NetConfig, NodeAddr, Payload, Topology};

/// Global allocator wrapper counting every byte handed out.
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Both the allocator counter and the copymeter are process-global; the
/// tests in this binary serialize on this lock so their deltas don't mix.
static METER_LOCK: Mutex<()> = Mutex::new(());

/// Multicast a `len`-byte frame (`len` <= the 1024-byte HPC frame limit)
/// from node 0 to three nodes on another cluster and return (bytes
/// allocated while forwarding — payload construction excluded, delivered
/// frames).
fn fan_out(len: usize) -> (u64, Vec<Frame>) {
    let topo = Topology::incomplete_hypercube(2, 4).unwrap();
    let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
    let payload = Payload::copy_from(&vec![0xA5u8; len]);
    let frame = Frame {
        src: NodeAddr(0),
        dst: Dest::Multicast(vec![NodeAddr(4), NodeAddr(5), NodeAddr(6)].into()),
        kind: 0,
        seq: 7,
        payload,
        corrupted: false,
    };
    let before = ALLOCATED.load(Ordering::Relaxed);
    net.send_at(0, frame);
    net.run();
    let churn = ALLOCATED.load(Ordering::Relaxed) - before;
    let delivered: Vec<Frame> = net.delivered.into_iter().map(|(_, _, f)| f).collect();
    (churn, delivered)
}

/// Store-and-forward hops and the fan-out split must hand every branch the
/// same backing buffer: zero payload bytes copied, and every delivered
/// payload aliases the original allocation.
#[test]
fn multicast_fan_out_shares_payload_bytes() {
    let _guard = METER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    copymeter::reset();
    let (_, delivered) = fan_out(1024);
    assert_eq!(delivered.len(), 3);
    assert_eq!(
        copymeter::payload_bytes_copied(),
        1024,
        "only the initial Payload::copy_from may move bytes"
    );
    let ptrs: Vec<*const u8> = delivered
        .iter()
        .map(|f| f.payload.bytes().expect("data payload").as_ptr())
        .collect();
    assert!(
        ptrs.iter().all(|&p| p == ptrs[0]),
        "all fan-out branches must alias one backing buffer"
    );
}

/// Forwarding heap churn must not scale with payload size: the only
/// per-branch allocations are bookkeeping (queue entries, refcount clones),
/// never payload-sized buffers.
#[test]
fn forwarding_churn_is_payload_size_independent() {
    let _guard = METER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Warm up allocator pools and lazy statics so the two measured runs see
    // identical bookkeeping behavior.
    let _ = fan_out(16);
    let (small, d_small) = fan_out(16);
    let (large, d_large) = fan_out(1024);
    assert_eq!(d_small.len(), 3);
    assert_eq!(d_large.len(), 3);
    // Payload construction happens before the measurement window, so the
    // two runs may differ only by bookkeeping noise. Deep-cloning the
    // payload per branch would add >= 3 KiB to the large run.
    let excess = large.saturating_sub(small);
    assert!(
        excess < 1024,
        "forwarding allocated {excess} payload-size-dependent bytes \
         (small run: {small}, large run: {large})"
    );
}
