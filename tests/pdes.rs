//! Sharded-engine determinism: simulated outcomes are a function of the
//! topology, workload, and seed — never of the worker-thread count — and a
//! single-shard sharded run replays the sequential engine byte-for-byte.

use desim::{FaultSchedule, SimTime};
use hpc_vorx::vorx::hpcnet::{ClusterId, Fabric, NetConfig, NodeAddr, Payload, Topology};
use hpc_vorx::vorx::{channel, workers_from_env, VCtx, VorxBuilder, VorxShardedSim};
use hpc_vorx::vorx_tools::oscillo::Oscilloscope;

/// Group node addresses by cluster, in address order.
fn by_cluster(topo: &Topology) -> Vec<Vec<NodeAddr>> {
    let mut out = vec![Vec::new(); topo.n_clusters()];
    for a in topo.endpoints() {
        out[topo.cluster_of(a).0 as usize].push(a);
    }
    out
}

/// Cross-cluster channel pairs: endpoint `e` of cluster `c` writes to
/// endpoint `e` of cluster `c + 1`, for `e < per_cluster`. Leaves the last
/// endpoints of every cluster free of processes (fault-injection targets).
fn cross_pairs(topo: &Topology, per_cluster: usize) -> Vec<(NodeAddr, NodeAddr)> {
    let clusters = by_cluster(topo);
    let nc = clusters.len();
    let mut pairs = Vec::new();
    for (c, nodes) in clusters.iter().enumerate() {
        for (e, &wn) in nodes.iter().take(per_cluster).enumerate() {
            pairs.push((wn, clusters[(c + 1) % nc][e]));
        }
    }
    pairs
}

/// Spawn the pair workload through an arbitrary spawner, so the identical
/// spawn order runs on the sequential and the sharded engine.
fn spawn_pairs(
    pairs: &[(NodeAddr, NodeAddr)],
    msgs: usize,
    mut spawn: impl FnMut(NodeAddr, String, Box<dyn FnOnce(VCtx) + Send>),
) {
    for (i, &(wn, rn)) in pairs.iter().enumerate() {
        let name = format!("p{i}");
        let rname = name.clone();
        spawn(
            wn,
            format!("n{}:w{i}", wn.0),
            Box::new(move |ctx| {
                let ch = channel::open(&ctx, wn, &name);
                for m in 0..msgs {
                    let bytes = 64 + (m as u32 % 3) * 100;
                    ch.write(&ctx, Payload::Synthetic(bytes)).unwrap();
                }
            }),
        );
        spawn(
            rn,
            format!("n{}:r{i}", rn.0),
            Box::new(move |ctx| {
                let ch = channel::open(&ctx, rn, &rname);
                for _ in 0..msgs {
                    ch.read(&ctx).unwrap();
                }
            }),
        );
    }
}

/// The paper's 70-node machine: 10 clusters × 7 endpoints.
fn topo70() -> Topology {
    Topology::incomplete_hypercube(10, 7).unwrap()
}

/// Crash/restart two process-free spare nodes and flap two hypercube edges:
/// every fault class the sharded fault-plane filter must route correctly.
fn churn_schedule(topo: &Topology, seed: u64) -> FaultSchedule {
    let clusters = by_cluster(topo);
    let probe = Fabric::new(topo.clone(), NetConfig::paper_1988());
    let l01 = probe
        .cluster_link(ClusterId(0), ClusterId(1))
        .expect("adjacent clusters");
    let l10 = probe
        .cluster_link(ClusterId(1), ClusterId(0))
        .expect("adjacent clusters");
    let spare_a = *clusters[2].last().unwrap();
    let spare_b = *clusters[7].last().unwrap();
    FaultSchedule::new(seed)
        .down_at(spare_a.0 as u32, SimTime::from_ns(5_000 * 1_000))
        .up_at(spare_a.0 as u32, SimTime::from_ns(8_000 * 1_000))
        .down_at(spare_b.0 as u32, SimTime::from_ns(6_000 * 1_000))
        .link_down_at(l01.0, SimTime::from_ns(4_000 * 1_000))
        .link_up_at(l01.0, SimTime::from_ns(7_000 * 1_000))
        .link_down_at(l10.0, SimTime::from_ns(4_500 * 1_000))
}

/// Run the 70-node workload sharded with the given worker count; return the
/// merged trace JSON plus headline counters.
fn run70(workers: usize, seed: u64) -> (String, u64, u64, SimTime) {
    let topo = topo70();
    let pairs = cross_pairs(&topo, 5);
    let faults = churn_schedule(&topo, seed);
    let mut v: VorxShardedSim = VorxBuilder::with_topology(topo)
        .seed(seed)
        .faults(faults)
        .build_sharded(workers);
    spawn_pairs(&pairs, 3, |node, name, f| {
        v.spawn_at(node, name, f);
    });
    let end = v.run_all();
    let delivered = v.sum_over_shards(|w| w.net.stats.frames_delivered);
    let bridged = v.stats().msgs_bridged;
    (v.merged_trace().to_json(), delivered, bridged, end)
}

#[test]
fn worker_count_is_invisible_at_70_nodes() {
    let (t1, d1, b1, e1) = run70(1, 0x5EED);
    let (t2, d2, b2, e2) = run70(2, 0x5EED);
    let (t4, d4, b4, e4) = run70(4, 0x5EED);
    assert!(b1 > 0, "cross-cluster workload must bridge frames");
    assert!(d1 > 0);
    assert_eq!((d1, b1, e1), (d2, b2, e2));
    assert_eq!((d1, b1, e1), (d4, b4, e4));
    assert_eq!(t1, t2, "workers=2 diverged from workers=1");
    assert_eq!(t1, t4, "workers=4 diverged from workers=1");
}

#[test]
fn single_shard_matches_sequential_engine_byte_for_byte() {
    // One cluster ⇒ one shard ⇒ the sharded build must replay the
    // sequential engine exactly: same events, same times, same stats.
    let pairs: Vec<(NodeAddr, NodeAddr)> = (0..4).map(|i| (NodeAddr(i), NodeAddr(i + 4))).collect();
    let faults = FaultSchedule::new(7)
        .down_at(3, SimTime::from_ns(9_000 * 1_000))
        .up_at(3, SimTime::from_ns(11_000 * 1_000));

    let mut seq = VorxBuilder::single_cluster(8)
        .faults(faults.clone())
        .build();
    spawn_pairs(&pairs, 3, |_, name, f| {
        seq.spawn(name, f);
    });
    let seq_end = seq.run_all();
    let seq_json = seq.world().trace.to_json();
    let seq_delivered = seq.world().net.stats.frames_delivered;

    let mut sh = VorxBuilder::single_cluster(8)
        .faults(faults)
        .build_sharded(1);
    assert_eq!(sh.n_shards(), 1);
    spawn_pairs(&pairs, 3, |node, name, f| {
        sh.spawn_at(node, name, f);
    });
    let sh_end = sh.run_all();
    let sh_delivered = sh.world(0).net.stats.frames_delivered;
    let sh_json = sh.merged_trace().to_json();

    assert_eq!(seq_end, sh_end);
    assert_eq!(seq_delivered, sh_delivered);
    assert_eq!(seq_json, sh_json, "single-shard run must be byte-identical");
}

/// The env-selected worker count (`VORX_SIM_WORKERS` — what `ci.sh` sweeps
/// at 1 and 4) must be as invisible as any explicit one.
#[test]
fn env_selected_worker_count_is_invisible() {
    let (t1, d1, b1, e1) = run70(1, 0xC1);
    let (tn, dn, bn, en) = run70(workers_from_env(), 0xC1);
    assert_eq!((d1, b1, e1), (dn, bn, en));
    assert_eq!(t1, tn, "VORX_SIM_WORKERS changed the simulated execution");
}

#[test]
fn merged_trace_feeds_the_tools_unchanged() {
    let topo = topo70();
    let pairs = cross_pairs(&topo, 2);
    let mut v = VorxBuilder::with_topology(topo).build_sharded(4);
    spawn_pairs(&pairs, 2, |node, name, f| {
        v.spawn_at(node, name, f);
    });
    let end = v.run_all();
    let trace = v.merged_trace();
    // Time-windowing works on the merged trace (monotone timestamps).
    let mut last = SimTime::ZERO;
    let mut n = 0usize;
    for (t, _) in trace.window(SimTime::ZERO, end) {
        assert!(t >= last, "merged trace must be time-ordered");
        last = t;
        n += 1;
    }
    assert!(n > 0);
    // And the oscilloscope consumes it exactly like a sequential trace.
    let o = Oscilloscope::from_trace(&trace, 70);
    assert_eq!(o.n_nodes(), 70);
    assert!(o.t_end() <= end);
    let rendered = o.render_all(60);
    assert!(!rendered.is_empty());
}

#[test]
fn per_shard_counters_cover_every_shard() {
    let topo = topo70();
    let pairs = cross_pairs(&topo, 3);
    let mut v = VorxBuilder::with_topology(topo).build_sharded(2);
    spawn_pairs(&pairs, 2, |node, name, f| {
        v.spawn_at(node, name, f);
    });
    v.run_all();
    let stats = v.stats();
    assert_eq!(stats.events_per_shard.len(), 10);
    assert!(stats.events_per_shard.iter().all(|&e| e > 0));
    assert!(stats.windows > 0);
}

/// A lighter seed sweep in proptest style: any seed must behave identically
/// under 1 and 3 workers on a 16-node, 4-cluster machine.
#[test]
fn seeds_are_worker_invariant() {
    for seed in [1u64, 0xBEEF, 0x1234_5678] {
        let run = |workers: usize| {
            let topo = Topology::incomplete_hypercube(4, 4).unwrap();
            let pairs = cross_pairs(&topo, 3);
            let faults = churn_schedule_small(&topo, seed);
            let mut v = VorxBuilder::with_topology(topo)
                .seed(seed)
                .faults(faults)
                .build_sharded(workers);
            spawn_pairs(&pairs, 2, |node, name, f| {
                v.spawn_at(node, name, f);
            });
            v.run_all();
            v.merged_trace().to_json()
        };
        assert_eq!(run(1), run(3), "seed {seed:#x} diverged across workers");
    }
}

fn churn_schedule_small(topo: &Topology, seed: u64) -> FaultSchedule {
    let clusters = by_cluster(topo);
    let spare = *clusters[1].last().unwrap();
    FaultSchedule::new(seed)
        .down_at(spare.0 as u32, SimTime::from_ns(4_000 * 1_000))
        .up_at(spare.0 as u32, SimTime::from_ns(6_000 * 1_000))
}
