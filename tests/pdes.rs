//! Sharded-engine determinism: simulated outcomes are a function of the
//! topology, workload, and seed — never of the worker-thread count — and a
//! single-shard sharded run replays the sequential engine byte-for-byte.

use desim::{FaultSchedule, SimTime};
use hpc_vorx::vorx::hpcnet::{ClusterId, Fabric, NetConfig, NodeAddr, Payload, Topology};
use hpc_vorx::vorx::{channel, workers_from_env, VCtx, VorxBuilder, VorxShardedSim};
use hpc_vorx::vorx_tools::oscillo::Oscilloscope;

/// Group node addresses by cluster, in address order.
fn by_cluster(topo: &Topology) -> Vec<Vec<NodeAddr>> {
    let mut out = vec![Vec::new(); topo.n_clusters()];
    for a in topo.endpoints() {
        out[topo.cluster_of(a).0 as usize].push(a);
    }
    out
}

/// Cross-cluster channel pairs: endpoint `e` of cluster `c` writes to
/// endpoint `e` of cluster `c + 1`, for `e < per_cluster`. Leaves the last
/// endpoints of every cluster free of processes (fault-injection targets).
fn cross_pairs(topo: &Topology, per_cluster: usize) -> Vec<(NodeAddr, NodeAddr)> {
    let clusters = by_cluster(topo);
    let nc = clusters.len();
    let mut pairs = Vec::new();
    for (c, nodes) in clusters.iter().enumerate() {
        for (e, &wn) in nodes.iter().take(per_cluster).enumerate() {
            pairs.push((wn, clusters[(c + 1) % nc][e]));
        }
    }
    pairs
}

/// Spawn the pair workload through an arbitrary spawner, so the identical
/// spawn order runs on the sequential and the sharded engine.
fn spawn_pairs(
    pairs: &[(NodeAddr, NodeAddr)],
    msgs: usize,
    mut spawn: impl FnMut(NodeAddr, String, Box<dyn FnOnce(VCtx) + Send>),
) {
    for (i, &(wn, rn)) in pairs.iter().enumerate() {
        let name = format!("p{i}");
        let rname = name.clone();
        spawn(
            wn,
            format!("n{}:w{i}", wn.0),
            Box::new(move |ctx| {
                let ch = channel::open(&ctx, wn, &name);
                for m in 0..msgs {
                    let bytes = 64 + (m as u32 % 3) * 100;
                    ch.write(&ctx, Payload::Synthetic(bytes)).unwrap();
                }
            }),
        );
        spawn(
            rn,
            format!("n{}:r{i}", rn.0),
            Box::new(move |ctx| {
                let ch = channel::open(&ctx, rn, &rname);
                for _ in 0..msgs {
                    ch.read(&ctx).unwrap();
                }
            }),
        );
    }
}

/// The paper's 70-node machine: 10 clusters × 7 endpoints.
fn topo70() -> Topology {
    Topology::incomplete_hypercube(10, 7).unwrap()
}

/// Crash/restart two process-free spare nodes and flap two hypercube edges:
/// every fault class the sharded fault-plane filter must route correctly.
fn churn_schedule(topo: &Topology, seed: u64) -> FaultSchedule {
    let clusters = by_cluster(topo);
    let probe = Fabric::new(topo.clone(), NetConfig::paper_1988());
    let l01 = probe
        .cluster_link(ClusterId(0), ClusterId(1))
        .expect("adjacent clusters");
    let l10 = probe
        .cluster_link(ClusterId(1), ClusterId(0))
        .expect("adjacent clusters");
    let spare_a = *clusters[2].last().unwrap();
    let spare_b = *clusters[7].last().unwrap();
    FaultSchedule::new(seed)
        .down_at(spare_a.0, SimTime::from_ns(5_000 * 1_000))
        .up_at(spare_a.0, SimTime::from_ns(8_000 * 1_000))
        .down_at(spare_b.0, SimTime::from_ns(6_000 * 1_000))
        .link_down_at(l01.0, SimTime::from_ns(4_000 * 1_000))
        .link_up_at(l01.0, SimTime::from_ns(7_000 * 1_000))
        .link_down_at(l10.0, SimTime::from_ns(4_500 * 1_000))
}

/// Run the 70-node workload sharded with the given worker count; return the
/// merged trace JSON plus headline counters.
fn run70(workers: usize, seed: u64) -> (String, u64, u64, SimTime) {
    let topo = topo70();
    let pairs = cross_pairs(&topo, 5);
    let faults = churn_schedule(&topo, seed);
    let mut v: VorxShardedSim = VorxBuilder::with_topology(topo)
        .seed(seed)
        .faults(faults)
        .build_sharded(workers);
    spawn_pairs(&pairs, 3, |node, name, f| {
        v.spawn_at(node, name, f);
    });
    let end = v.run_all();
    let delivered = v.sum_over_shards(|w| w.net.stats.frames_delivered);
    let bridged = v.stats().msgs_bridged;
    (v.merged_trace().to_json(), delivered, bridged, end)
}

#[test]
fn worker_count_is_invisible_at_70_nodes() {
    let (t1, d1, b1, e1) = run70(1, 0x5EED);
    let (t2, d2, b2, e2) = run70(2, 0x5EED);
    let (t4, d4, b4, e4) = run70(4, 0x5EED);
    let (t8, d8, b8, e8) = run70(8, 0x5EED);
    assert!(b1 > 0, "cross-cluster workload must bridge frames");
    assert!(d1 > 0);
    assert_eq!((d1, b1, e1), (d2, b2, e2));
    assert_eq!((d1, b1, e1), (d4, b4, e4));
    assert_eq!((d1, b1, e1), (d8, b8, e8));
    assert_eq!(t1, t2, "workers=2 diverged from workers=1");
    assert_eq!(t1, t4, "workers=4 diverged from workers=1");
    assert_eq!(t1, t8, "workers=8 diverged from workers=1");
}

#[test]
fn single_shard_matches_sequential_engine_byte_for_byte() {
    // One cluster ⇒ one shard ⇒ the sharded build must replay the
    // sequential engine exactly: same events, same times, same stats.
    let pairs: Vec<(NodeAddr, NodeAddr)> = (0..4).map(|i| (NodeAddr(i), NodeAddr(i + 4))).collect();
    let faults = FaultSchedule::new(7)
        .down_at(3, SimTime::from_ns(9_000 * 1_000))
        .up_at(3, SimTime::from_ns(11_000 * 1_000));

    let mut seq = VorxBuilder::single_cluster(8)
        .faults(faults.clone())
        .build();
    spawn_pairs(&pairs, 3, |_, name, f| {
        seq.spawn(name, f);
    });
    let seq_end = seq.run_all();
    let seq_json = seq.world().trace.to_json();
    let seq_delivered = seq.world().net.stats.frames_delivered;

    let mut sh = VorxBuilder::single_cluster(8)
        .faults(faults)
        .build_sharded(1);
    assert_eq!(sh.n_shards(), 1);
    spawn_pairs(&pairs, 3, |node, name, f| {
        sh.spawn_at(node, name, f);
    });
    let sh_end = sh.run_all();
    let sh_delivered = sh.world(0).net.stats.frames_delivered;
    let sh_json = sh.merged_trace().to_json();

    assert_eq!(seq_end, sh_end);
    assert_eq!(seq_delivered, sh_delivered);
    assert_eq!(seq_json, sh_json, "single-shard run must be byte-identical");
}

/// The env-selected worker count (`VORX_SIM_WORKERS` — what `ci.sh` sweeps
/// at 1 and 4) must be as invisible as any explicit one.
#[test]
fn env_selected_worker_count_is_invisible() {
    let (t1, d1, b1, e1) = run70(1, 0xC1);
    let (tn, dn, bn, en) = run70(workers_from_env(), 0xC1);
    assert_eq!((d1, b1, e1), (dn, bn, en));
    assert_eq!(t1, tn, "VORX_SIM_WORKERS changed the simulated execution");
}

#[test]
fn merged_trace_feeds_the_tools_unchanged() {
    let topo = topo70();
    let pairs = cross_pairs(&topo, 2);
    let mut v = VorxBuilder::with_topology(topo).build_sharded(4);
    spawn_pairs(&pairs, 2, |node, name, f| {
        v.spawn_at(node, name, f);
    });
    let end = v.run_all();
    let trace = v.merged_trace();
    // Time-windowing works on the merged trace (monotone timestamps).
    let mut last = SimTime::ZERO;
    let mut n = 0usize;
    for (t, _) in trace.window(SimTime::ZERO, end) {
        assert!(t >= last, "merged trace must be time-ordered");
        last = t;
        n += 1;
    }
    assert!(n > 0);
    // And the oscilloscope consumes it exactly like a sequential trace.
    let o = Oscilloscope::from_trace(&trace, 70);
    assert_eq!(o.n_nodes(), 70);
    assert!(o.t_end() <= end);
    let rendered = o.render_all(60);
    assert!(!rendered.is_empty());
}

#[test]
fn per_shard_counters_cover_every_shard() {
    let topo = topo70();
    let pairs = cross_pairs(&topo, 3);
    let mut v = VorxBuilder::with_topology(topo).build_sharded(2);
    spawn_pairs(&pairs, 2, |node, name, f| {
        v.spawn_at(node, name, f);
    });
    v.run_all();
    let stats = v.stats();
    assert_eq!(stats.events_per_shard.len(), 10);
    assert!(stats.events_per_shard.iter().all(|&e| e > 0));
    assert!(stats.rounds > 0);
}

/// Zero cross-shard traffic: pure-compute processes (sleep chains, no
/// channels) with wildly different durations per cluster. Shards must still
/// advance past each other — the early finishers ratchet their frontiers
/// (the null-message role) instead of stalling the long-running shard — and
/// nothing deadlocks: the run completing at the longest chain's end *is*
/// the deadlock assertion.
#[test]
fn zero_cross_traffic_completes_without_bridging() {
    let topo = topo70();
    let clusters = by_cluster(&topo);
    for workers in [1usize, 4] {
        let mut v: VorxShardedSim = VorxBuilder::with_topology(topo.clone())
            .seed(0xD06)
            .build_sharded(workers);
        for (c, nodes) in clusters.iter().enumerate() {
            // Cluster c sleeps (c + 1) times 50 µs: shard 0 goes quiet 10×
            // earlier than shard 9.
            let naps = c + 1;
            v.spawn_at(nodes[0], format!("sleeper{c}"), move |ctx: VCtx| {
                for _ in 0..naps {
                    ctx.sleep(desim::SimDuration::from_us(50));
                }
            });
        }
        let end = v.run_all();
        assert_eq!(
            end,
            SimTime::from_ns(10 * 50_000),
            "run must end at the longest sleep chain ({workers} workers)"
        );
        let stats = v.stats();
        assert_eq!(
            stats.msgs_bridged, 0,
            "nothing may cross a shard ({workers} workers)"
        );
        assert!(
            stats.frontier_bumps > 0,
            "idle shards must advance past the busy one via frontier bumps \
             ({workers} workers)"
        );
    }
}

/// A lighter seed sweep in proptest style: any seed must behave identically
/// under 1 and 3 workers on a 16-node, 4-cluster machine.
#[test]
fn seeds_are_worker_invariant() {
    for seed in [1u64, 0xBEEF, 0x1234_5678] {
        let run = |workers: usize| {
            let topo = Topology::incomplete_hypercube(4, 4).unwrap();
            let pairs = cross_pairs(&topo, 3);
            let faults = churn_schedule_small(&topo, seed);
            let mut v = VorxBuilder::with_topology(topo)
                .seed(seed)
                .faults(faults)
                .build_sharded(workers);
            spawn_pairs(&pairs, 2, |node, name, f| {
                v.spawn_at(node, name, f);
            });
            v.run_all();
            v.merged_trace().to_json()
        };
        assert_eq!(run(1), run(3), "seed {seed:#x} diverged across workers");
    }
}

fn churn_schedule_small(topo: &Topology, seed: u64) -> FaultSchedule {
    let clusters = by_cluster(topo);
    let spare = *clusters[1].last().unwrap();
    FaultSchedule::new(seed)
        .down_at(spare.0, SimTime::from_ns(4_000 * 1_000))
        .up_at(spare.0, SimTime::from_ns(6_000 * 1_000))
}

/// Overload determinism: budget squeezes plus burst-amplified traffic shed
/// frames mid-run, the channel protocol rides the window out on
/// retransmission — and none of it may depend on the worker count. Workers
/// 1 and 4 must produce bit-identical traces with shedding demonstrably
/// active in both.
#[test]
fn overload_shedding_is_worker_invariant() {
    let run = |workers: usize| {
        let topo = Topology::incomplete_hypercube(4, 4).unwrap();
        let clusters = by_cluster(&topo);
        // Squeeze the switches of clusters 0 and 2 to a zero byte budget
        // mid-run, then restore: every data frame crossing those switches
        // inside the window is shed (control traffic is never shed) and
        // must be recovered by retransmission after the restore.
        let faults = FaultSchedule::new(0x0BAD)
            .squeeze_at(0, SimTime::from_ns(2_000_000), 0)
            .squeeze_at(0, SimTime::from_ns(50_000_000), u64::MAX)
            .squeeze_at(2, SimTime::from_ns(2_000_000), 0)
            .squeeze_at(2, SimTime::from_ns(50_000_000), u64::MAX)
            .burst(SimTime::ZERO, SimTime::from_ns(10_000_000), 3);
        let mut v: VorxShardedSim = VorxBuilder::with_topology(topo)
            .seed(0x0BAD)
            .faults(faults)
            .build_sharded(workers);
        // Intra-cluster pairs: shedding happens inside a switch, so the
        // overloaded traffic must stay within its shard (bridged frames
        // model no switch contention — DESIGN.md §12).
        for (c, nodes) in clusters.iter().enumerate() {
            let (wn, rn) = (nodes[0], nodes[1]);
            let name = format!("ov{c}");
            let rname = name.clone();
            v.spawn_at(wn, format!("n{}:w{c}", wn.0), move |ctx: VCtx| {
                let ch = channel::open(&ctx, wn, &name);
                for _ in 0..6 {
                    // Burst windows amplify the offered load: bigger
                    // payloads while a burst is active, derived from sim
                    // time alone so replay stays deterministic.
                    let amp = ctx.with(|w, s| w.faults.schedule.amplification(s.now().as_ns()));
                    ch.write(&ctx, Payload::Synthetic(64 * amp)).unwrap();
                }
            });
            v.spawn_at(rn, format!("n{}:r{c}", rn.0), move |ctx: VCtx| {
                let ch = channel::open(&ctx, rn, &rname);
                for _ in 0..6 {
                    ch.read(&ctx).unwrap();
                }
            });
        }
        v.run_all();
        let shed = v.sum_over_shards(|w| w.net.stats.frames_shed);
        let retx = v.sum_over_shards(|w| w.faults.stats.retransmits);
        (v.merged_trace().to_json(), shed, retx)
    };
    let (t1, shed1, retx1) = run(1);
    let (t4, shed4, retx4) = run(4);
    assert!(shed1 > 0, "the squeeze window must actually shed frames");
    assert!(retx1 > 0, "shed data must be recovered by retransmission");
    assert_eq!((shed1, retx1), (shed4, retx4));
    assert_eq!(t1, t4, "overload handling diverged across worker counts");
}

// ---------------------------------------------------------------------------
// Per-link lookahead properties, at the desim level: a toy shard world whose
// messages ride the exact per-pair latency from a *random* matrix. Every
// delivery must land at its analytically expected time (so the engine never
// delivered across a frontier, early or late) and the log must be identical
// for every worker count.
// ---------------------------------------------------------------------------

use desim::{OutMsg, Scheduler, ShardWorld, ShardedSim, SimDuration, Simulation};
use proptest::prelude::*;

/// Forwards each message round-robin to the next shard, charging exactly
/// `lat[self][next]` — the tightest delivery the lookahead permits.
struct LatWorld {
    id: usize,
    lat: Vec<Vec<u64>>,
    log: Vec<(u64, u32)>,
    outbox: Vec<OutMsg<u32>>,
}

impl ShardWorld for LatWorld {
    type Msg = u32;
    fn drain_outbox(&mut self, into: &mut Vec<OutMsg<u32>>) {
        into.append(&mut self.outbox);
    }
    fn deliver(&mut self, s: &mut Scheduler<Self>, msg: u32) {
        self.log.push((s.now().as_ns(), msg));
        if msg > 0 {
            let dst = (self.id + 1) % self.lat.len();
            self.outbox.push(OutMsg {
                deliver_at: s.now() + SimDuration::from_ns(self.lat[self.id][dst]),
                dst_shard: dst,
                msg: msg - 1,
            });
        }
    }
}

fn run_lat(lat: &[Vec<u64>], hops: u32, workers: usize) -> Vec<Vec<(u64, u32)>> {
    let n = lat.len();
    let shards: Vec<Simulation<LatWorld>> = (0..n)
        .map(|id| {
            Simulation::new(LatWorld {
                id,
                lat: lat.to_vec(),
                log: Vec::new(),
                outbox: Vec::new(),
            })
        })
        .collect();
    // Seed: shard 0 hands the first hop to shard 1 at t = 0.
    let l01 = lat[0][1 % n];
    shards[0].schedule_in(SimDuration::ZERO, move |w: &mut LatWorld, s| {
        w.outbox.push(OutMsg {
            deliver_at: s.now() + SimDuration::from_ns(l01),
            dst_shard: 1 % w.lat.len(),
            msg: hops,
        });
    });
    let mut sim = ShardedSim::new(shards, lat.to_vec(), workers);
    sim.run_to_idle();
    sim.into_shards()
        .into_iter()
        .map(|s| s.world().log.clone())
        .collect()
}

/// Re-sends itself a message carrying only 1 ns of latency, far below the
/// declared self-link lookahead.
struct CheatWorld {
    outbox: Vec<OutMsg<u32>>,
}

impl ShardWorld for CheatWorld {
    type Msg = u32;
    fn drain_outbox(&mut self, into: &mut Vec<OutMsg<u32>>) {
        into.append(&mut self.outbox);
    }
    fn deliver(&mut self, s: &mut Scheduler<Self>, msg: u32) {
        self.outbox.push(OutMsg {
            deliver_at: s.now() + SimDuration::from_ns(1),
            dst_shard: 0,
            msg,
        });
    }
}

/// A self-send below the declared self-link lookahead must fail loudly.
/// Mid-segment the published frontier lags the clock, so the frontier-based
/// lookahead assert alone would pass and the message would be scheduled
/// inside the segment the shard already executed.
#[test]
#[should_panic(expected = "lands inside the executed segment")]
fn self_send_below_lookahead_panics() {
    let sim0 = Simulation::new(CheatWorld { outbox: Vec::new() });
    sim0.schedule_in(SimDuration::ZERO, |w: &mut CheatWorld, s| {
        w.outbox.push(OutMsg {
            deliver_at: s.now() + SimDuration::from_ns(10),
            dst_shard: 0,
            msg: 1,
        });
    });
    let mut sim = ShardedSim::new(vec![sim0], vec![vec![10]], 1);
    sim.run_to_idle();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random full latency matrices (2–4 shards, 1–60 ns per directed pair):
    /// messages riding the exact lookahead must arrive at the analytically
    /// expected instants, identically for 1, 2, and 4 workers.
    #[test]
    fn random_link_latencies_never_cross_a_frontier(
        n in 2usize..5,
        cells in proptest::collection::vec(1u64..61, 16..17),
        hops in 5u32..40,
    ) {
        let lat: Vec<Vec<u64>> =
            (0..n).map(|a| (0..n).map(|b| cells[a * 4 + b]).collect()).collect();
        let logs1 = run_lat(&lat, hops, 1);
        // Expected: hop k (message value hops - k) lands on shard (k+1) % n
        // at the sum of the per-pair latencies along the round-robin chain.
        let mut t = 0u64;
        let mut src = 0usize;
        let mut expect: Vec<Vec<(u64, u32)>> = vec![Vec::new(); n];
        for k in 0..=hops {
            let dst = (src + 1) % n;
            t += lat[src][dst];
            expect[dst].push((t, hops - k));
            src = dst;
        }
        prop_assert_eq!(&logs1, &expect, "delivery drifted from the link latencies");
        let logs2 = run_lat(&lat, hops, 2);
        prop_assert_eq!(&logs1, &logs2, "workers=2 diverged");
        let logs4 = run_lat(&lat, hops, 4);
        prop_assert_eq!(&logs1, &logs4, "workers=4 diverged");
    }
}
