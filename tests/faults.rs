//! Fault-injection integration tests: the recovery protocols (timeout,
//! retransmit, dedup, failover) against seeded and scripted faults.
//!
//! Everything here runs from fixed seeds, so each scenario — including the
//! probabilistic ones — replays bit-identically on every run.

use std::sync::Arc;

use parking_lot::Mutex;

use hpc_vorx::desim::{FaultSchedule, LinkFaults, SimDuration, SimTime};
use hpc_vorx::hpcnet::{Fabric, NetConfig, NodeAddr, Payload, Topology};
use hpc_vorx::vorx::objmgr::ObjMgrMode;
use hpc_vorx::vorx::{channel, fault, VorxBuilder, VorxError};

use proptest::prelude::*;

/// The receive-side (cluster→endpoint) link of `node` in a 2-endpoint
/// cluster, for targeting scripted drops. Link numbering is a pure function
/// of the topology, so a throwaway fabric answers for the real one.
fn rx_link_of(node: NodeAddr) -> u32 {
    let f = Fabric::new(
        Topology::single_cluster(2).unwrap(),
        NetConfig::paper_1988(),
    );
    f.endpoint_down_link(node).0
}

/// The transmit-side (endpoint→cluster) link of `node`.
fn tx_link_of(node: NodeAddr) -> u32 {
    let f = Fabric::new(
        Topology::single_cluster(2).unwrap(),
        NetConfig::paper_1988(),
    );
    f.endpoint_up_link(node).0
}

/// Stream `msgs` one-byte messages from node 0 to node 1 under `schedule`;
/// return (delivery order, retransmits, dups_suppressed, dropped, leaked).
fn stream_under(schedule: FaultSchedule, msgs: u8) -> (Vec<u8>, u64, u64, u64, usize) {
    let mut v = VorxBuilder::single_cluster(2)
        .objmgr(ObjMgrMode::Centralized(NodeAddr(0)))
        .trace(false)
        .faults(schedule)
        .build();
    v.spawn("n0:writer", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(0), "stream");
        for i in 0..msgs {
            ch.write(&ctx, Payload::copy_from(&[i])).unwrap();
        }
        ch.close(&ctx);
    });
    let got = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    v.spawn("n1:reader", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "stream");
        for _ in 0..msgs {
            let p = ch.read(&ctx).unwrap();
            sink.lock().push(p.bytes().unwrap()[0]);
        }
    });
    let report = v.run();
    let leaked = report.parked.len();
    let w = v.world();
    let order = got.lock().clone();
    (
        order,
        w.faults.stats.retransmits,
        w.faults.stats.dups_suppressed,
        w.faults.schedule.stats.dropped,
        leaked,
    )
}

/// A scripted drop of a data frame forces a retransmission, and the
/// message still arrives exactly once, in order.
#[test]
fn dropped_data_frame_is_retransmitted_and_delivered_once() {
    // On node 1's receive link the open reply crosses first; the frame
    // after it is the first data fragment.
    let schedule = FaultSchedule::new(1).drop_nth(rx_link_of(NodeAddr(1)), 2);
    let (order, retransmits, _, dropped, leaked) = stream_under(schedule, 4);
    assert_eq!(dropped, 1, "the scripted drop must have fired");
    assert!(retransmits >= 1, "a drop must force a retransmission");
    assert_eq!(order, vec![0, 1, 2, 3]);
    assert_eq!(leaked, 0);
}

/// A scripted drop of an *ack* makes the sender retransmit a fragment the
/// receiver already has; the duplicate is suppressed, not delivered twice.
#[test]
fn dropped_ack_duplicate_is_suppressed() {
    // On node 1's transmit link: open request, control ack, then data acks.
    let schedule = FaultSchedule::new(1).drop_nth(tx_link_of(NodeAddr(1)), 3);
    let (order, retransmits, dups, dropped, leaked) = stream_under(schedule, 4);
    assert_eq!(dropped, 1, "the scripted drop must have fired");
    assert!(retransmits >= 1);
    assert!(dups >= 1, "the re-sent fragment must be deduplicated");
    assert_eq!(order, vec![0, 1, 2, 3]);
    assert_eq!(leaked, 0);
}

/// A crash wakes every blocked waiter with an error instead of leaking
/// parked processes: the reader on the dead node gets `NodeDown`, the
/// writer peering with it gets `PeerDown` once the failure detector fires.
#[test]
fn crash_wakes_blocked_waiters_with_errors() {
    let schedule = FaultSchedule::new(7).down_at(1, SimTime::from_ns(2_000_000));
    let mut v = VorxBuilder::single_cluster(2)
        .objmgr(ObjMgrMode::Centralized(NodeAddr(0)))
        .trace(false)
        .faults(schedule)
        .build();
    let errs = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&errs);
    v.spawn("n0:writer", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(0), "doomed");
        // Write after the crash: the frame vanishes into the dark
        // interface and only the detection sweep can unblock us.
        ctx.sleep(SimDuration::from_ns(5_000_000));
        sink.lock()
            .push(("writer", ch.write(&ctx, Payload::copy_from(&[1]))));
    });
    let sink = Arc::clone(&errs);
    v.spawn("n1:reader", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "doomed");
        sink.lock().push(("reader", ch.read(&ctx).map(|_| ())));
    });
    let report = v.run();
    assert_eq!(report.parked, vec![], "no process may stay parked");
    let errs = errs.lock();
    assert!(errs.contains(&("reader", Err(VorxError::NodeDown))));
    assert!(errs.contains(&("writer", Err(VorxError::PeerDown))));
    let w = v.world();
    assert!(w.faults.stats.peer_down_events >= 1);
}

/// How many messages the failover workload streams.
const FAILOVER_MSGS: u32 = 12;

/// The campaign's failover protocol in miniature: reader's node crashes
/// mid-stream and restarts; the pair rendezvouses on a generation-suffixed
/// name where the reader reports its resume index. Returns the committed
/// indices and the full execution trace as JSON.
fn failover_run(seed: u64) -> (Vec<u32>, usize, String) {
    let schedule = FaultSchedule::new(seed)
        .all_links(LinkFaults::loss(0.05))
        .down_at(1, SimTime::from_ns(1_000_000))
        .up_at(1, SimTime::from_ns(8_000_000));
    let mut v = VorxBuilder::single_cluster(3)
        .objmgr(ObjMgrMode::Centralized(NodeAddr(2)))
        .trace(true)
        .faults(schedule)
        .build();
    v.spawn("n0:writer", move |ctx| {
        let mut generation = 0u32;
        let mut idx = 0u32;
        let mut ch = channel::try_open(&ctx, NodeAddr(0), "fo.g0").unwrap();
        while idx < FAILOVER_MSGS {
            match ch.write(&ctx, Payload::copy_from(&idx.to_le_bytes())) {
                Ok(()) => idx += 1,
                Err(_) => {
                    ch.close(&ctx);
                    generation += 1;
                    ch =
                        channel::try_open(&ctx, NodeAddr(0), &format!("fo.g{generation}")).unwrap();
                    let resume = ch.read(&ctx).unwrap();
                    idx = u32::from_le_bytes(resume.bytes().unwrap()[..4].try_into().unwrap());
                }
            }
        }
        ch.close(&ctx);
    });
    let got = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    v.spawn("n1:reader", move |ctx| {
        let mut generation = 0u32;
        let mut expect = 0u32;
        'recover: loop {
            let ch = match channel::try_open(&ctx, NodeAddr(1), &format!("fo.g{generation}")) {
                Ok(ch) => ch,
                Err(_) => {
                    fault::wait_until_up(&ctx, NodeAddr(1));
                    generation += 1;
                    continue 'recover;
                }
            };
            if generation > 0
                && ch
                    .write(&ctx, Payload::copy_from(&expect.to_le_bytes()))
                    .is_err()
            {
                fault::wait_until_up(&ctx, NodeAddr(1));
                generation += 1;
                continue 'recover;
            }
            loop {
                match ch.read(&ctx) {
                    Ok(p) => {
                        let i = u32::from_le_bytes(p.bytes().unwrap()[..4].try_into().unwrap());
                        if i != expect {
                            continue; // duplicate from the rewind
                        }
                        sink.lock().push(i);
                        expect += 1;
                        if expect == FAILOVER_MSGS {
                            return;
                        }
                    }
                    Err(_) => {
                        fault::wait_until_up(&ctx, NodeAddr(1));
                        generation += 1;
                        continue 'recover;
                    }
                }
            }
        }
    });
    let report = v.run();
    let leaked = report.parked.len();
    let trace = v.world().trace.to_json();
    let order = got.lock().clone();
    (order, leaked, trace)
}

/// Crash + restart mid-stream: the workload completes exactly once, in
/// order, with nothing leaked, despite 5% loss on every link.
#[test]
fn crash_restart_failover_completes_exactly_once() {
    let (order, leaked, _) = failover_run(42);
    assert_eq!(order, (0..FAILOVER_MSGS).collect::<Vec<_>>());
    assert_eq!(leaked, 0);
}

/// The determinism guarantee under faults: the same (workload, fault seed)
/// pair produces a bit-identical execution trace — drops, crashes,
/// retransmissions, recovery and all.
#[test]
fn same_fault_seed_replays_bit_identically() {
    let (order_a, leaked_a, trace_a) = failover_run(42);
    let (order_b, leaked_b, trace_b) = failover_run(42);
    assert_eq!(order_a, order_b);
    assert_eq!(leaked_a, leaked_b);
    assert!(
        !trace_a.is_empty() && trace_a.len() > 2,
        "trace must record"
    );
    assert_eq!(trace_a, trace_b, "faulted runs must replay bit-identically");
}

/// A different fault seed takes a different path (sanity check that the
/// determinism test above is not comparing empty or fault-free traces).
#[test]
fn different_fault_seed_diverges() {
    let (order_a, _, trace_a) = failover_run(42);
    let (order_b, _, trace_b) = failover_run(43);
    // Both complete — recovery is seed-independent — but the executions
    // differ in where the losses landed.
    assert_eq!(order_a, order_b);
    assert_ne!(trace_a, trace_b);
}

/// A cable cut mid-stream: frames heading into the dead cable die at the
/// cut (they must never cross a down link), the per-link fault counters
/// record the outage, and the retransmit protocol recovers everything once
/// the cable heals — exactly-once, in order, nothing leaked.
#[test]
fn link_cut_drops_frames_then_retransmission_recovers() {
    use hpc_vorx::hpcnet::ClusterId;
    // Two clusters, one endpoint each, a single cable: node 0 ↔ node 1,
    // no alternate route.
    let cable: [u32; 2] = {
        let f = Fabric::new(
            Topology::incomplete_hypercube(2, 1).unwrap(),
            NetConfig::paper_1988(),
        );
        [
            f.cluster_link(ClusterId(0), ClusterId(1)).unwrap().0,
            f.cluster_link(ClusterId(1), ClusterId(0)).unwrap().0,
        ]
    };
    // Down for 15 ms: shorter than one ack timeout, so the writer rides
    // through on plain retransmission without any partition verdict.
    let mut schedule = FaultSchedule::new(5);
    for l in cable {
        schedule = schedule
            .link_down_at(l, SimTime::from_ns(3_000_000))
            .link_up_at(l, SimTime::from_ns(18_000_000));
    }
    let mut v = VorxBuilder::hypercube(2, 1)
        .trace(false)
        .faults(schedule)
        .build();
    v.spawn("n0:writer", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(0), "cut");
        for i in 0..2u8 {
            ch.write(&ctx, Payload::copy_from(&[i])).unwrap();
        }
        // Write squarely inside the outage: the frame reaches cluster 0,
        // finds no surviving route, and is dropped at the cut.
        ctx.sleep(SimDuration::from_ns(5_000_000));
        for i in 2..6u8 {
            ch.write(&ctx, Payload::copy_from(&[i])).unwrap();
        }
        ch.close(&ctx);
    });
    let got = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    v.spawn("n1:reader", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "cut");
        for _ in 0..6 {
            sink.lock().push(ch.read(&ctx).unwrap().bytes().unwrap()[0]);
        }
    });
    let report = v.run();
    assert_eq!(report.parked, vec![], "no process may stay parked");
    assert_eq!(*got.lock(), (0..6).collect::<Vec<_>>());
    let w = v.world();
    assert!(
        w.net.stats.frames_dropped >= 1,
        "the mid-outage frame must die at the cut, not cross it"
    );
    assert!(
        w.faults.stats.retransmits >= 1,
        "recovery is retransmission"
    );
    let per_link = w.link_fault_stats();
    for l in cable {
        assert_eq!(per_link[&l].downs, 1, "the outage must be recorded");
    }
    assert_eq!(
        w.faults.stats.partitions, 0,
        "a sub-timeout blip must not be declared a partition"
    );
}

/// BUSY-grant exhaustion: a receiver that never drains must surface a
/// *typed* error to the writer within the `MAX_BUSY_GRANTS` cap — not
/// stall silently forever. The reader opens the channel and then sleeps:
/// the writer's first 8 one-byte messages land in the kernel side buffers
/// and are acked; the 9th is refused with BUSY grants until the grant cap
/// (64) runs dry, after which the ordinary retry budget expires and the
/// writer gets `VorxError::PeerDown` while the reader is still asleep.
#[test]
fn busy_grant_exhaustion_surfaces_typed_error() {
    use hpc_vorx::desim::SimTime;
    const READER_NAP_NS: u64 = 60_000_000_000; // 60 s: far past the cap
    let mut v = VorxBuilder::single_cluster(2)
        .objmgr(ObjMgrMode::Centralized(NodeAddr(0)))
        .trace(false)
        .build();
    let failure: Arc<Mutex<Option<(u8, hpc_vorx::vorx::VorxError, SimTime)>>> =
        Arc::new(Mutex::new(None));
    let sink = Arc::clone(&failure);
    v.spawn("n0:writer", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(0), "wedge");
        for i in 0..32u8 {
            if let Err(e) = ch.write(&ctx, Payload::copy_from(&[i])) {
                *sink.lock() = Some((i, e, ctx.now()));
                return;
            }
        }
    });
    v.spawn("n1:reader", |ctx| {
        let _ch = channel::open(&ctx, NodeAddr(1), "wedge");
        // Never drains: sleep through the writer's whole struggle.
        ctx.sleep(SimDuration::from_ns(READER_NAP_NS));
    });
    let report = v.run();
    assert_eq!(report.parked, vec![], "the writer must not wedge");
    let (at_msg, err, when) = failure
        .lock()
        .take()
        .expect("a never-draining receiver must produce a typed error, not silence");
    assert_eq!(err, VorxError::PeerDown, "the failure must be typed");
    assert!(
        at_msg <= 9,
        "only the side buffers (8) plus the blocked write may succeed; \
         write {at_msg} should already have failed"
    );
    assert!(
        when.as_ns() < READER_NAP_NS,
        "the error must arrive while the reader is still asleep (bounded \
         by the grant cap), not after it wakes"
    );
    let w = v.world();
    assert!(w.faults.stats.busy_sent > 0, "BUSY grants must have flowed");
    assert!(
        w.faults.stats.peer_down_events >= 1,
        "grant exhaustion ends in a peer-down verdict"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized loss and corruption probabilities with random seeds:
    /// the channel protocol delivers every message exactly once, in order,
    /// and the run leaves no parked process behind.
    #[test]
    fn lossy_corrupt_stream_delivers_exactly_once(
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.06,
        corrupt in 0.0f64..0.04,
    ) {
        let schedule = FaultSchedule::new(seed).all_links(LinkFaults {
            drop,
            corrupt,
            delay: 0.0,
            delay_ns: 0,
        });
        let (order, _, _, _, leaked) = stream_under(schedule, 8);
        prop_assert_eq!(order, (0..8u8).collect::<Vec<_>>());
        prop_assert_eq!(leaked, 0);
    }
}
