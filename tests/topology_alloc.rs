//! Allocation accounting on the routing-recompute hot path: link churn
//! triggers [`Topology::recompute`] on every fault-plane edge event, so the
//! BFS must run entirely on scratch buffers hoisted into the `Topology` —
//! zero heap allocations per recompute, on both the reroute and the
//! heal-to-baseline paths.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hpc_vorx::hpcnet::{ClusterId, NodeAddr, PortRef, Topology};

/// Global allocator wrapper counting every byte handed out.
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The allocator counter is process-global; the tests in this binary
/// serialize on this lock so their deltas don't mix.
static METER_LOCK: Mutex<()> = Mutex::new(());

/// Directed edge out of cluster 0 on port 0 (dimension-0 cable): killing it
/// forces real rerouting work on the paper's 10-cluster machine.
const EDGE: PortRef = PortRef {
    cluster: ClusterId(0),
    port: 0,
};

/// One full churn cycle: kill the edge, recompute (reroute path), heal it,
/// recompute (restore-baseline path).
fn churn_cycle(t: &mut Topology) {
    t.set_edge_state(EDGE, false);
    t.recompute();
    t.set_edge_state(EDGE, true);
    t.recompute();
}

/// Steady-state recomputes must not allocate at all: the BFS distance array
/// and work queue are hoisted scratch buffers sized at construction.
#[test]
fn recompute_allocates_nothing_in_steady_state() {
    let _guard = METER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut t = Topology::incomplete_hypercube(10, 7).unwrap();
    // Warm-up cycle: first recompute may lazily size scratch state.
    churn_cycle(&mut t);
    let gen_before = t.generation();

    let before = ALLOCATED.load(Ordering::Relaxed);
    for _ in 0..32 {
        churn_cycle(&mut t);
    }
    let churn = ALLOCATED.load(Ordering::Relaxed) - before;

    assert_eq!(t.generation(), gen_before + 64, "64 recomputes ran");
    assert_eq!(
        churn, 0,
        "recompute allocated {churn} bytes over 64 steady-state runs; \
         the BFS must reuse the hoisted scratch buffers"
    );
}

/// The zero-allocation property must not come at the price of correctness:
/// after the measured churn the tables still answer like the fault-free
/// baseline, and mid-churn the detour route is in force.
#[test]
fn scratch_reuse_preserves_routing_answers() {
    let _guard = METER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut t = Topology::incomplete_hypercube(10, 7).unwrap();
    let last = NodeAddr((t.n_endpoints() - 1) as u32);
    let baseline = t.cluster_path(NodeAddr(0), last);
    for _ in 0..8 {
        churn_cycle(&mut t);
    }
    assert_eq!(
        t.cluster_path(NodeAddr(0), last),
        baseline,
        "healed tables must match the construction-time baseline"
    );
    // Mid-churn: the dead dim-0 edge forces a detour but keeps delivery.
    t.set_edge_state(EDGE, false);
    t.recompute();
    let detour = t.cluster_path(NodeAddr(0), NodeAddr(last.0));
    assert!(t.reachable(ClusterId(0), t.cluster_of(last)));
    assert!(
        detour.len() >= baseline.len(),
        "detour cannot be shorter than the baseline route"
    );
    t.set_edge_state(EDGE, true);
    t.recompute();
}

/// On the hierarchical representation a full heal is an overlay clear:
/// O(1), and — the regression this test pins — zero heap allocation per
/// heal. The detour overlay exists only while edges are dead.
#[test]
fn hier_heal_is_overlay_clear_and_allocation_free() {
    let _guard = METER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut t = Topology::hierarchical_hypercube(&[8, 8], 4).unwrap();
    // Warm-up cycle: the first detour repair may grow the overlay map.
    churn_cycle(&mut t);
    assert_eq!(t.overlay_len(), 0, "healed topology must carry no overlay");

    for i in 0..32 {
        t.set_edge_state(EDGE, false);
        t.recompute();
        assert!(t.overlay_len() > 0, "dead edge must install detours");

        t.set_edge_state(EDGE, true);
        let before = ALLOCATED.load(Ordering::Relaxed);
        t.recompute();
        let heal = ALLOCATED.load(Ordering::Relaxed) - before;
        assert_eq!(heal, 0, "heal #{i} allocated {heal} bytes");
        assert_eq!(t.overlay_len(), 0, "heal must clear the overlay");
    }
}

/// `cluster_path_into` with a reused buffer answers identically to the
/// allocating `cluster_path` and performs zero allocations in steady state
/// — baseline routes and overlay detours alike. This is the variant the
/// fabric's route probe and the scale campaign drive per churn cycle.
#[test]
fn cluster_path_into_reuses_buffer_without_allocating() {
    let _guard = METER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut t = Topology::hierarchical_hypercube(&[8, 8], 4).unwrap();
    let n = t.n_endpoints() as u32;
    let pairs: Vec<(NodeAddr, NodeAddr)> = (0..16)
        .map(|i| (NodeAddr(i * 17 % n), NodeAddr((i * 97 + 13) % n)))
        .collect();

    // Expected answers from the allocating variant, on the fault-free
    // tables and again mid-churn, gathered outside the metered region.
    let expect_base: Vec<_> = pairs.iter().map(|&(a, b)| t.cluster_path(a, b)).collect();
    t.set_edge_state(EDGE, false);
    t.recompute();
    let expect_churn: Vec<_> = pairs.iter().map(|&(a, b)| t.cluster_path(a, b)).collect();
    t.set_edge_state(EDGE, true);
    t.recompute();

    // Warm the buffer to the longest path this topology can answer.
    let mut path = Vec::with_capacity(t.n_clusters() + 1);

    let before = ALLOCATED.load(Ordering::Relaxed);
    for (&(a, b), want) in pairs.iter().zip(&expect_base) {
        assert!(t.cluster_path_into(a, b, &mut path));
        assert_eq!(&path, want);
    }
    t.set_edge_state(EDGE, false);
    t.recompute();
    for (&(a, b), want) in pairs.iter().zip(&expect_churn) {
        assert!(t.cluster_path_into(a, b, &mut path));
        assert_eq!(&path, want);
    }
    t.set_edge_state(EDGE, true);
    t.recompute();
    let used = ALLOCATED.load(Ordering::Relaxed) - before;
    assert_eq!(
        used, 0,
        "cluster_path_into allocated {used} bytes with a reused buffer"
    );
}
