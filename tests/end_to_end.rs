//! Cross-crate integration tests: whole-system scenarios exercising the
//! interconnect, kernel, channels, object managers, hosts, tools, and
//! workloads together.

use desim::{SimDuration, SimTime};
use hpc_vorx::vorx::alloc::UserId;
use hpc_vorx::vorx::host::{create_stub, syscall, SyscallOp, SyscallRet};
use hpc_vorx::vorx::hpcnet::{NodeAddr, Payload};
use hpc_vorx::vorx::objmgr::ObjMgrMode;
use hpc_vorx::vorx::{channel, VCtx, VorxBuilder};
use hpc_vorx::vorx_tools::{cdb, oscillo::Oscilloscope, prof::ProfReport};

/// A full Figure-1-style application: hosts, allocation, stubs, syscalls,
/// channels across a hypercube, and the tools reading it all back.
#[test]
fn spanning_application_with_hosts_and_tools() {
    let mut v = VorxBuilder::hypercube(4, 4).hosts(2).build();
    // 2 hosts on n0..n1; allocate 4 of the 14 pool nodes.
    let workers = v.world().alloc.allocate(UserId(7), 4).expect("free pool");
    assert_eq!(workers.len(), 4);

    v.spawn("host0:app", move |ctx| {
        for &w in &workers {
            create_stub(&ctx, 0, vec![w]);
        }
        for (i, &w) in workers.iter().enumerate() {
            ctx.with(move |_, s| {
                s.spawn(format!("n{}:w", w.0), move |ctx: VCtx| {
                    hpc_vorx::vorx_tools::prof::enter(&ctx, w, "service");
                    let ch = channel::open(&ctx, w, &format!("t-{i}"));
                    for _ in 0..4 {
                        let job = ch.read(&ctx).unwrap();
                        hpc_vorx::vorx::api::user_compute(&ctx, w, SimDuration::from_us(700));
                        assert_eq!(
                            syscall(&ctx, w, SyscallOp::WriteFile { bytes: job.len() }),
                            Ok(SyscallRet::Ok)
                        );
                    }
                    hpc_vorx::vorx_tools::prof::exit(&ctx, w, "service");
                });
            });
        }
        let chans: Vec<_> = (0..4)
            .map(|i| channel::open(&ctx, NodeAddr(0), &format!("t-{i}")))
            .collect();
        for _ in 0..4 {
            for ch in &chans {
                ch.write(&ctx, Payload::Synthetic(128)).unwrap();
            }
        }
    });

    let end = v.run_all();
    let w = v.world();

    // Tools agree with the run.
    assert!(cdb::deadlock_cycles(&w).is_empty());
    let snap = cdb::snapshot(&w);
    assert_eq!(snap.len(), 4);
    for c in &snap {
        let host_end = c.ends.iter().find(|e| e.node == NodeAddr(0)).unwrap();
        assert_eq!(host_end.msgs_tx, 4);
    }
    let scope = Oscilloscope::from_trace(&w.trace, w.nodes.len());
    // Each worker computed 4 x 700us of user time.
    for &wk in &w.alloc.owned_by(UserId(7)) {
        let u = scope.utilization(wk.0 as usize, SimTime::ZERO, end);
        assert_eq!(u.user, 4 * 700_000, "node {wk} user time");
    }
    let prof = ProfReport::from_trace(&w.trace);
    assert_eq!(prof.regions.len(), 4);
    // Stubs served 4 write syscalls each.
    assert!(w.hosts[0].stubs.iter().all(|s| s.served == 4));
}

/// The entire stack is deterministic: two identical runs produce identical
/// traces, byte for byte.
#[test]
fn full_stack_determinism() {
    fn run() -> (u64, String) {
        let mut v = VorxBuilder::single_cluster(6).seed(99).build();
        for i in 0..2u32 {
            let (a, b) = (1 + i * 2, 2 + i * 2);
            v.spawn(format!("n{a}:w"), move |ctx| {
                let ch = channel::open(&ctx, NodeAddr(a), &format!("d{i}"));
                for k in 0..5u8 {
                    ch.write(&ctx, Payload::copy_from(&[k; 100])).unwrap();
                }
            });
            v.spawn(format!("n{b}:r"), move |ctx| {
                let ch = channel::open(&ctx, NodeAddr(b), &format!("d{i}"));
                for _ in 0..5 {
                    let _ = ch.read(&ctx).unwrap();
                }
            });
        }
        let end = v.run_all();
        let w = v.world();
        (end.as_ns(), w.trace.to_json())
    }
    let (t1, j1) = run();
    let (t2, j2) = run();
    assert_eq!(t1, t2);
    assert_eq!(j1, j2);
}

/// Centralized vs distributed object manager gives identical *connectivity*
/// (same pairs match), only different timing.
#[test]
fn objmgr_modes_agree_on_rendezvous() {
    for mode in [
        ObjMgrMode::Centralized(NodeAddr(0)),
        ObjMgrMode::Distributed,
    ] {
        let mut v = VorxBuilder::single_cluster(9).objmgr(mode).build();
        for i in 0..4u32 {
            let (a, b) = (1 + i * 2, 2 + i * 2);
            v.spawn(format!("n{a}"), move |ctx| {
                let ch = channel::open(&ctx, NodeAddr(a), &format!("pair-{i}"));
                assert_eq!(ch.peer, NodeAddr(b), "mode {mode:?}");
                ch.write(&ctx, Payload::copy_from(&[i as u8])).unwrap();
            });
            v.spawn(format!("n{b}"), move |ctx| {
                let ch = channel::open(&ctx, NodeAddr(b), &format!("pair-{i}"));
                assert_eq!(ch.peer, NodeAddr(a), "mode {mode:?}");
                let m = ch.read(&ctx).unwrap();
                assert_eq!(m.bytes().unwrap().as_ref(), &[i as u8]);
            });
        }
        v.run_all();
    }
}

/// The headline §2 contrast in one test: the same many-to-one blast that
/// locks up the S/NET is delivered completely by the HPC.
#[test]
fn hpc_survives_the_burst_that_kills_the_snet() {
    // S/NET side.
    let mut sim = snet::SnetSim::new(
        snet::SnetConfig::paper_1985(),
        9,
        snet::Strategy::BusyRetry,
        1,
    );
    for s in 1..9 {
        sim.enqueue(s, 0, 1024, 10, 0);
    }
    let r = sim.run(30_000_000_000);
    assert!(!r.completed, "S/NET busy-retry should lock out");

    // HPC side: same aggregate load.
    let hpc = hpc_vorx::vorx_apps::patterns::many_to_one(8, 10, 1024);
    assert_eq!(hpc.delivered, 80);
}

/// Large payload integrity across multiple fragments, hops, and kernels.
#[test]
fn multi_hop_fragmented_data_integrity() {
    let mut v = VorxBuilder::hypercube(4, 2).build();
    let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    let expect = data.clone();
    // n0 and n7 are maximally separated in a 4-cluster hypercube.
    v.spawn("n0:w", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(0), "far");
        ch.write(&ctx, Payload::Data(bytes::Bytes::from(data)))
            .unwrap();
    });
    v.spawn("n7:r", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(7), "far");
        let m = ch.read(&ctx).unwrap();
        assert_eq!(m.bytes().unwrap().as_ref(), &expect[..]);
    });
    v.run_all();
}

/// The oscilloscope's categories tile the whole timeline on every node of
/// a busy system (no gaps, no double counting).
#[test]
fn oscilloscope_accounts_every_nanosecond() {
    let mut v = VorxBuilder::single_cluster(4).build();
    v.spawn("n1:w", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "x");
        for _ in 0..6 {
            hpc_vorx::vorx::api::user_compute(&ctx, NodeAddr(1), SimDuration::from_us(150));
            ch.write(&ctx, Payload::Synthetic(600)).unwrap();
        }
    });
    v.spawn("n2:r", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(2), "x");
        for _ in 0..6 {
            let _ = ch.read(&ctx).unwrap();
        }
    });
    let end = v.run_all();
    let w = v.world();
    let scope = Oscilloscope::from_trace(&w.trace, 4);
    for node in 0..4 {
        let u = scope.utilization(node, SimTime::ZERO, end);
        assert_eq!(
            u.total(),
            end.as_ns(),
            "node {node} categories must tile the run exactly"
        );
    }
}

/// The newer §3.2/§4/§6 features working together: an application launched
/// through the per-host resource manager talks to a name-reusing server,
/// closes channels when done, and is observable through vdb.
#[test]
fn appmgr_listener_close_and_vdb_together() {
    use hpc_vorx::vorx::alloc::UserId;
    use hpc_vorx::vorx::appmgr::{start_application, wait_app, AppState};
    use hpc_vorx::vorx::channel::{listen, ChanError};
    use hpc_vorx::vorx::debug::{breakpoint, publish, register_process};

    let mut v = VorxBuilder::single_cluster(8).hosts(1).build();

    // A long-lived echo service on node 7 (outside the allocatable pool use).
    v.spawn("n7:echo-server", |ctx| {
        let me = register_process(&ctx, NodeAddr(7), "echo-server");
        let listener = listen(&ctx, NodeAddr(7), "echo");
        let mut served = 0u32;
        loop {
            let ch = listener.accept(&ctx);
            loop {
                match ch.read(&ctx) {
                    Ok(msg) => ch.write(&ctx, msg).unwrap(),
                    Err(ChanError::PeerClosed) => break,
                    Err(e) => panic!("{e}"),
                }
            }
            served += 1;
            publish(&ctx, me, "served", served);
            breakpoint(&ctx, me, "client-done");
            if served == 3 {
                break;
            }
        }
    });

    // Launch a 3-process application; each process uses the echo service
    // then closes its channel.
    v.spawn("host0:shell", |ctx| {
        let app = start_application(&ctx, 0, UserId(1), "clients", 3, |ctx, node, rank| {
            let ch = channel::open(&ctx, node, "echo");
            let msg = Payload::copy_from(&[rank as u8; 32]);
            ch.write(&ctx, msg).unwrap();
            let echoed = ch.read(&ctx).unwrap();
            assert_eq!(echoed.bytes().unwrap()[0], rank as u8);
            ch.close(&ctx);
        })
        .expect("pool has room");
        wait_app(&ctx, app);
        ctx.with(move |w, _| {
            assert_eq!(w.appmgr.apps[app as usize].state, AppState::Exited);
        });
    });

    let end = v.run_all();
    assert!(end > SimTime::ZERO);
    let w = v.world();
    // vdb saw the service's counter.
    let idx = w.dbg.by_name("echo-server").unwrap();
    assert_eq!(w.dbg.procs[idx].vars["served"], "3");
    // All three per-client channels exist and are fully closed.
    let closed = w
        .nodes
        .iter()
        .flat_map(|n| n.chans.values())
        .filter(|e| e.name == "echo" && (e.closed_local || e.closed_remote))
        .count();
    assert!(closed >= 3, "expected closed echo channels, got {closed}");
}

/// Channel traffic across a multi-cluster machine under load: 12 concurrent
/// channels spanning a 4-cluster hypercube, interleaved with a multicast
/// group, all data verified.
#[test]
fn hypercube_channel_and_multicast_stress() {
    use hpc_vorx::vorx::multicast;

    let mut v = VorxBuilder::hypercube(4, 4).seed(7).build();
    let n = 16u32;
    // 8 channel pairs crossing the machine.
    for i in 0..8u32 {
        let (a, b) = (i, (i + 8) % n);
        v.spawn(format!("n{a}:w"), move |ctx| {
            let ch = channel::open(&ctx, NodeAddr(a), &format!("stress-{i}"));
            for k in 0..6u8 {
                ch.write(&ctx, Payload::copy_from(&[k ^ i as u8; 200]))
                    .unwrap();
            }
        });
        v.spawn(format!("n{b}:r"), move |ctx| {
            let ch = channel::open(&ctx, NodeAddr(b), &format!("stress-{i}"));
            for k in 0..6u8 {
                let m = ch.read(&ctx).unwrap();
                assert_eq!(m.bytes().unwrap().as_ref(), &[k ^ i as u8; 200]);
            }
        });
    }
    // Plus a broadcaster multicasting to every even node.
    let members: Vec<NodeAddr> = (0..n).step_by(2).map(NodeAddr).collect();
    for &m in &members {
        v.spawn(format!("n{}:mc-rx", m.0), move |ctx| {
            multicast::join(&ctx, m, 2);
            for _ in 0..3 {
                let (_src, p) = multicast::mread(&ctx, m, 2);
                assert_eq!(p.len(), 700);
            }
        });
    }
    v.spawn("n1:mc-tx", move |ctx| {
        for _ in 0..3 {
            multicast::mwrite(
                &ctx,
                NodeAddr(1),
                2,
                members.clone(),
                Payload::Synthetic(700),
            );
        }
    });
    v.run_all();
    let w = v.world();
    assert_eq!(w.net.in_flight(), 0, "fabric must be quiescent");
}
