//! Partition-tolerance integration tests: adaptive rerouting, heartbeat
//! membership, the partition-detection sweep, pause/resume channel
//! semantics, and replicated object-manager failover — all under scripted
//! and randomized link-fault schedules.
//!
//! The headline property exercised here: under any seeded link-churn
//! schedule, every channel operation either completes or fails with a
//! *typed* error in bounded time — nothing ever parks forever — and equal
//! seeds replay bit-identically.

use std::sync::Arc;

use parking_lot::Mutex;

use hpc_vorx::desim::{FaultSchedule, LinkFaults, SimDuration, SimTime};
use hpc_vorx::hpcnet::{ClusterId, Fabric, NetConfig, NodeAddr, Payload, Topology};
use hpc_vorx::vorx::objmgr::name_hash;
use hpc_vorx::vorx::{channel, Calibration, VorxBuilder, VorxError};

use proptest::prelude::*;

/// The four-cluster, two-endpoints-per-cluster hypercube every test here
/// runs on. Clusters form a 2-cube: 0–1, 0–2, 1–3, 2–3 (no 0–3 or 1–2
/// cable), so cluster pairs at distance two always have exactly two
/// disjoint routes.
fn topo() -> Topology {
    Topology::incomplete_hypercube(4, 2).unwrap()
}

/// A throwaway fabric over [`topo`], for resolving link ids. Link numbering
/// is a pure function of the topology, so it answers for the real one.
fn probe_fabric() -> Fabric {
    Fabric::new(topo(), NetConfig::paper_1988())
}

/// Both directed link ids of the cluster cable `a`–`b`.
fn cable(a: u32, b: u32) -> [u32; 2] {
    let f = probe_fabric();
    [
        f.cluster_link(ClusterId(a), ClusterId(b)).unwrap().0,
        f.cluster_link(ClusterId(b), ClusterId(a)).unwrap().0,
    ]
}

/// The first endpoint attached to cluster `c`.
fn node_in(c: u32) -> NodeAddr {
    let t = topo();
    (0..t.n_endpoints() as u32)
        .map(NodeAddr)
        .find(|&n| t.cluster_of(n) == ClusterId(c))
        .unwrap()
}

/// Everything a churn run reports.
struct Run {
    /// Message indices delivered to the reader, in order, deduplicated.
    delivered: Vec<u8>,
    /// `Partitioned` errors the writer observed (then retried past).
    writer_stalls: u32,
    /// Processes left parked at idle (must always be zero).
    leaked: usize,
    /// The full execution trace as JSON.
    trace: String,
    partitions: u64,
    heals: u64,
    probes_sent: u64,
    frames_rerouted: u64,
}

/// Stream `msgs` one-byte messages from cluster 0 to cluster 3 under
/// `schedule`. Both sides treat [`VorxError::Partitioned`] as transient:
/// sleep and retry. The reader deduplicates by content index, so app-level
/// at-least-once retries (a write that failed after its data crossed) still
/// yield an exactly-once `delivered` sequence.
fn churn_run(schedule: FaultSchedule, calib: Calibration, msgs: u8) -> Run {
    let (src, dst) = (node_in(0), node_in(3));
    let mut v = VorxBuilder::hypercube(4, 2)
        .calibration(calib)
        .faults(schedule)
        .build();
    let stalls = Arc::new(Mutex::new(0u32));
    let st = Arc::clone(&stalls);
    v.spawn("writer", move |ctx| {
        let ch = channel::open(&ctx, src, "part.stream");
        let mut i = 0u8;
        while i < msgs {
            // Pace the stream so scripted cuts land mid-transfer instead of
            // after a sub-millisecond burst already finished.
            ctx.sleep(SimDuration::from_ns(2_000_000));
            match ch.write(&ctx, Payload::copy_from(&[i])) {
                Ok(()) => i += 1,
                Err(VorxError::Partitioned) => {
                    *st.lock() += 1;
                    assert!(*st.lock() < 400, "writer stalled unboundedly");
                    ctx.sleep(SimDuration::from_ns(50_000_000));
                }
                Err(e) => panic!("writer: unexpected error {e:?}"),
            }
        }
    });
    let got = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    v.spawn("reader", move |ctx| {
        let ch = channel::open(&ctx, dst, "part.stream");
        let mut expect = 0u8;
        let mut stalls = 0u32;
        while expect < msgs {
            match ch.read(&ctx) {
                Ok(p) => {
                    let b = p.bytes().unwrap()[0];
                    if b == expect {
                        sink.lock().push(b);
                        expect += 1;
                    } // else: duplicate from an app-level write retry
                }
                Err(VorxError::Partitioned) => {
                    stalls += 1;
                    assert!(stalls < 400, "reader stalled unboundedly");
                    ctx.sleep(SimDuration::from_ns(50_000_000));
                }
                Err(e) => panic!("reader: unexpected error {e:?}"),
            }
        }
    });
    let report = v.run();
    let leaked = report.parked.len();
    let delivered = got.lock().clone();
    let writer_stalls = *stalls.lock();
    let w = v.world();
    Run {
        delivered,
        writer_stalls,
        leaked,
        trace: w.trace.to_json(),
        partitions: w.faults.stats.partitions,
        heals: w.faults.stats.heals,
        probes_sent: w.faults.stats.probes_sent,
        frames_rerouted: w.net.stats.frames_rerouted,
    }
}

/// Cut the cable the baseline route actually uses, mid-stream: the fabric
/// reroutes over the surviving path and the stream completes with no
/// partition ever declared — the cut is invisible to the application.
#[test]
fn reroute_rides_through_a_link_cut() {
    let (src, dst) = (node_in(0), node_in(3));
    // Which first hop does the fault-free table take for 0 → cluster 3?
    let first_hop = topo().cluster_path(src, dst)[1].0;
    let mut schedule = FaultSchedule::new(11);
    for l in cable(0, first_hop) {
        schedule = schedule.link_down_at(l, SimTime::from_ns(2_000_000));
    }
    let run = churn_run(schedule, Calibration::paper_1988(), 8);
    assert_eq!(run.delivered, (0..8).collect::<Vec<_>>());
    assert_eq!(run.leaked, 0);
    assert!(run.frames_rerouted > 0, "the detour must have been taken");
    assert_eq!(run.partitions, 0, "both ends stayed mutually reachable");
    assert_eq!(run.writer_stalls, 0);
}

/// Isolate cluster 0 entirely, then heal: blocked writers and readers get
/// the typed `Partitioned` error from the detection sweep (bounded time,
/// never a hang), channel state survives the outage, and after the heal the
/// same handles finish the stream.
#[test]
fn partition_is_typed_and_heals_without_reopening() {
    let mut schedule = FaultSchedule::new(12);
    for cab in [cable(0, 1), cable(0, 2)] {
        for l in cab {
            schedule = schedule
                .link_down_at(l, SimTime::from_ns(5_000_000))
                .link_up_at(l, SimTime::from_ns(400_000_000));
        }
    }
    let run = churn_run(schedule, Calibration::paper_1988(), 8);
    assert_eq!(run.delivered, (0..8).collect::<Vec<_>>());
    assert_eq!(run.leaked, 0);
    assert!(run.partitions >= 1, "the sweep must declare the partition");
    assert!(run.heals >= 1, "the heal sweep must clear it");
    assert!(run.writer_stalls >= 1, "the writer must see Partitioned");
}

/// With the omniscient sweep disabled, the heartbeat path alone must reach
/// the same verdict: channel retry exhaustion sends a beacon, the beacon's
/// control-plane exhaustion declares the partition — still bounded time.
#[test]
fn heartbeat_probe_detects_partition_without_sweep() {
    let mut calib = Calibration::paper_1988();
    calib.partition_detect_ns = u64::MAX;
    let mut schedule = FaultSchedule::new(13);
    for cab in [cable(0, 1), cable(0, 2)] {
        for l in cab {
            schedule = schedule
                .link_down_at(l, SimTime::from_ns(5_000_000))
                .link_up_at(l, SimTime::from_ns(8_000_000_000));
        }
    }
    let run = churn_run(schedule, calib, 6);
    assert_eq!(run.delivered, (0..6).collect::<Vec<_>>());
    assert_eq!(run.leaked, 0);
    assert!(run.probes_sent >= 1, "exhaustion must probe before verdict");
    assert!(run.partitions >= 1, "probe failure must declare partition");
    assert!(run.heals >= 1);
}

/// Replicated object-manager failover: a server registers a name whose
/// hash-home lives in cluster 0; the home pushes the registration to its
/// successor replica. With cluster 0's cables cut, a client's open fails
/// over to the successor and still connects to the server.
#[test]
fn open_fails_over_to_replica_when_home_is_partitioned() {
    // A name homed on the *second* endpoint of cluster 0, so the successor
    // (home + 1, by address) lives in a different cluster.
    let t = topo();
    let n = t.n_endpoints() as u64;
    let home = {
        let c0 = (0..n as u32)
            .map(NodeAddr)
            .filter(|&a| t.cluster_of(a) == ClusterId(0))
            .max_by_key(|a| a.0)
            .unwrap();
        assert_ne!(
            t.cluster_of(NodeAddr(c0.0 + 1)),
            ClusterId(0),
            "successor must sit outside cluster 0"
        );
        c0
    };
    let name = (0..)
        .map(|i| format!("svc{i}"))
        .find(|s| name_hash(s) % n == u64::from(home.0))
        .unwrap();

    let mut schedule = FaultSchedule::new(14);
    for cab in [cable(0, 1), cable(0, 2)] {
        for l in cab {
            schedule = schedule.link_down_at(l, SimTime::from_ns(20_000_000));
        }
    }
    let mut v = VorxBuilder::hypercube(4, 2).faults(schedule).build();
    let (server, client) = (node_in(2), node_in(3));
    let sname = name.clone();
    v.spawn("server", move |ctx| {
        // Registers before the cut: the home manager pushes the replica.
        let ls = channel::listen(&ctx, server, &sname);
        let ch = ls.accept(&ctx);
        let m = ch.read(&ctx).unwrap();
        ch.write(&ctx, m).unwrap(); // echo
    });
    let cname = name;
    let got = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&got);
    v.spawn("client", move |ctx| {
        // Opens after the cut: the request to the home manager can never
        // arrive; the open must fail over to the successor replica.
        ctx.sleep(SimDuration::from_ns(50_000_000));
        let ch = channel::try_open(&ctx, client, &cname).unwrap();
        ch.write(&ctx, Payload::copy_from(b"ping")).unwrap();
        let echo = ch.read(&ctx).unwrap();
        *sink.lock() = Some(echo.bytes().unwrap().to_vec());
        ch.close(&ctx);
    });
    let report = v.run();
    assert_eq!(report.parked, vec![], "no process may stay parked");
    assert_eq!(got.lock().as_deref(), Some(b"ping".as_slice()));
    let w = v.world();
    assert!(
        w.faults.stats.mgr_failovers >= 1,
        "the open must have failed over to the successor replica"
    );
}

/// The node-local resolve cache must never serve a manager address across a
/// failover/heal epoch change. A client learns the successor replica during
/// a partition (cache stamped with the failover epoch); after the fabric
/// heals, the next open of the same name must evict that entry and resolve
/// back to the hash-home — not silently reuse the successor.
#[test]
fn resolve_cache_is_invalidated_across_failover_and_heal() {
    use hpc_vorx::vorx::objmgr::resolve_epoch;

    let t = topo();
    let n = t.n_endpoints() as u64;
    // A name homed on the last endpoint of cluster 0, so the successor
    // (home + 1, by address) lives in a different cluster.
    let home = (0..n as u32)
        .map(NodeAddr)
        .filter(|&a| t.cluster_of(a) == ClusterId(0))
        .max_by_key(|a| a.0)
        .unwrap();
    let name = (0..)
        .map(|i| format!("svc{i}"))
        .find(|s| name_hash(s) % n == u64::from(home.0))
        .unwrap();

    // Cut cluster 0 off at 20 ms; heal the fabric at 1 s.
    let mut schedule = FaultSchedule::new(15);
    for cab in [cable(0, 1), cable(0, 2)] {
        for l in cab {
            schedule = schedule
                .link_down_at(l, SimTime::from_ns(20_000_000))
                .link_up_at(l, SimTime::from_ns(1_000_000_000));
        }
    }
    let mut v = VorxBuilder::hypercube(4, 2).faults(schedule).build();
    let (server, client) = (node_in(2), node_in(3));
    let sname = name.clone();
    v.spawn("server", move |ctx| {
        // Registers before the cut: the home pushes the replica.
        let ls = channel::listen(&ctx, server, &sname);
        for _ in 0..2 {
            let ch = ls.accept(&ctx);
            let m = ch.read(&ctx).unwrap();
            ch.write(&ctx, m).unwrap(); // echo
        }
    });
    let cname = name.clone();
    v.spawn("client", move |ctx| {
        // Open #1, mid-partition: fails over to the successor replica and
        // caches it under the failover epoch.
        ctx.sleep(SimDuration::from_ns(50_000_000));
        let ch = channel::try_open(&ctx, client, &cname).unwrap();
        ch.write(&ctx, Payload::copy_from(b"one")).unwrap();
        let _ = ch.read(&ctx).unwrap();
        ch.close(&ctx);
        // Open #2, well after the heal: the cached successor is one or more
        // epochs old and must be evicted, not served.
        ctx.sleep(SimDuration::from_ns(5_000_000_000));
        let ch = channel::try_open(&ctx, client, &cname).unwrap();
        ch.write(&ctx, Payload::copy_from(b"two")).unwrap();
        let _ = ch.read(&ctx).unwrap();
        ch.close(&ctx);
    });
    let report = v.run();
    assert_eq!(report.parked, vec![], "no process may stay parked");

    let mut w = v.world();
    assert!(w.faults.stats.mgr_failovers >= 1, "open #1 must fail over");
    assert!(w.faults.stats.heals >= 1, "the fabric must heal");
    let stale = w.node(client).resolve.stale_evictions;
    assert!(
        stale >= 1,
        "open #2 must evict the stale successor entry, not serve it"
    );
    // What the client believes now was learned under the current epoch and
    // points back at the hash-home that served open #2.
    let epoch = resolve_epoch(&w);
    assert_eq!(
        w.node_mut(client).resolve.lookup(epoch, &name),
        Some(home),
        "post-heal resolution must come from the hash-home again"
    );
}

/// Build the scripted churn schedule used by the determinism tests: two
/// overlapping cable flaps plus background loss.
fn churny_schedule(seed: u64) -> FaultSchedule {
    let mut s = FaultSchedule::new(seed).all_links(LinkFaults::loss(0.02));
    for l in cable(0, 1) {
        s = s
            .link_down_at(l, SimTime::from_ns(3_000_000))
            .link_up_at(l, SimTime::from_ns(300_000_000));
    }
    for l in cable(2, 3) {
        s = s
            .link_down_at(l, SimTime::from_ns(150_000_000))
            .link_up_at(l, SimTime::from_ns(600_000_000));
    }
    s
}

/// Equal (workload, fault) seeds under link churn replay bit-identically:
/// the whole partition plane — drops, reroutes, sweeps, probes, heals — is
/// inside the deterministic event order.
#[test]
fn equal_churn_seeds_replay_bit_identically() {
    let a = churn_run(churny_schedule(77), Calibration::paper_1988(), 8);
    let b = churn_run(churny_schedule(77), Calibration::paper_1988(), 8);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.leaked, 0);
    assert!(a.trace.len() > 2, "trace must record");
    assert_eq!(a.trace, b.trace, "churn runs must replay bit-identically");
    let c = churn_run(churny_schedule(78), Calibration::paper_1988(), 8);
    assert_ne!(a.trace, c.trace, "a different seed must take another path");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized link-churn schedules (every cut eventually heals) with
    /// background loss: the stream always completes exactly once, in
    /// order, and the run leaves no parked process — no schedule hangs the
    /// system.
    #[test]
    fn any_healing_churn_schedule_delivers_everything(
        seed in 0u64..1_000_000,
        flap in proptest::collection::vec(
            (0usize..4, 1_000_000u64..200_000_000, 5_000_000u64..400_000_000),
            1..4,
        ),
        loss in 0.0f64..0.02,
    ) {
        let cables = [cable(0, 1), cable(0, 2), cable(1, 3), cable(2, 3)];
        let mut schedule = FaultSchedule::new(seed).all_links(LinkFaults::loss(loss));
        for (c, down_ns, dur_ns) in flap {
            for l in cables[c] {
                schedule = schedule
                    .link_down_at(l, SimTime::from_ns(down_ns))
                    .link_up_at(l, SimTime::from_ns(down_ns + dur_ns));
            }
        }
        let run = churn_run(schedule, Calibration::paper_1988(), 6);
        prop_assert_eq!(run.delivered, (0..6).collect::<Vec<_>>());
        prop_assert_eq!(run.leaked, 0);
    }
}
