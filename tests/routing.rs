//! Live-topology routing properties: the BFS `recompute` over surviving
//! inter-cluster edges must agree with an independent ground-truth
//! reachability computation, and every route it serves must be loop-free,
//! alive edge by edge, and shortest.
//!
//! These run on *incomplete* hypercubes (the paper's §2 configuration) with
//! arbitrary subsets of directed edges marked dead — including splits,
//! one-way cuts, and fully severed fabrics.

use std::collections::{BTreeSet, VecDeque};

use hpc_vorx::hpcnet::{Attachment, ClusterId, NodeAddr, PortRef, Topology, PORTS_PER_CLUSTER};

use proptest::prelude::*;

/// All directed inter-cluster edges of `t`, as `(from_port, to_cluster)`.
fn edges(t: &Topology) -> Vec<(PortRef, ClusterId)> {
    let mut out = Vec::new();
    for c in 0..t.n_clusters() as u16 {
        for port in 0..PORTS_PER_CLUSTER as u8 {
            let p = PortRef {
                cluster: ClusterId(c),
                port,
            };
            if let Attachment::Cluster(peer) = t.attachment(p) {
                out.push((p, peer.cluster));
            }
        }
    }
    out
}

/// Ground-truth directed reachability by BFS over the surviving edge set,
/// computed independently of the topology's own tables.
fn bfs_reachable(
    n_clusters: usize,
    alive: &BTreeSet<(u16, u16)>,
    from: ClusterId,
) -> BTreeSet<u16> {
    let mut seen = BTreeSet::from([from.0]);
    let mut q = VecDeque::from([from.0]);
    while let Some(c) = q.pop_front() {
        for next in 0..n_clusters as u16 {
            if alive.contains(&(c, next)) && seen.insert(next) {
                q.push_back(next);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kill an arbitrary subset of directed inter-cluster edges, recompute,
    /// and check every ordered endpoint pair: the tables must serve a route
    /// exactly when ground-truth BFS says one exists, and the served path
    /// must start/end correctly, never repeat a cluster (loop-free), and
    /// use only surviving edges.
    #[test]
    fn surviving_pairs_always_get_live_loop_free_routes(
        n_clusters in 2usize..9,
        dead_mask in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut t = Topology::incomplete_hypercube(n_clusters, 1).unwrap();
        let all = edges(&t);
        let mut alive: BTreeSet<(u16, u16)> = BTreeSet::new();
        for (i, (p, to)) in all.iter().enumerate() {
            let dead = *dead_mask.get(i).unwrap_or(&false);
            if dead {
                t.set_edge_state(*p, false);
            } else {
                alive.insert((p.cluster.0, to.0));
            }
        }
        t.recompute();

        for src in 0..n_clusters as u16 {
            let truth = bfs_reachable(n_clusters, &alive, ClusterId(src));
            for dst in 0..n_clusters as u16 {
                let (a, b) = (NodeAddr(src), NodeAddr(dst));
                prop_assert_eq!(
                    t.reachable(ClusterId(src), ClusterId(dst)),
                    truth.contains(&dst),
                    "reachable({}, {}) disagrees with ground truth", src, dst
                );
                match t.try_cluster_path(a, b) {
                    None => prop_assert!(
                        !truth.contains(&dst),
                        "no route served for a reachable pair {} -> {}", src, dst
                    ),
                    Some(path) => {
                        prop_assert!(truth.contains(&dst));
                        prop_assert_eq!(path[0].0, src);
                        prop_assert_eq!(path[path.len() - 1].0, dst);
                        let distinct: BTreeSet<u16> =
                            path.iter().map(|c| c.0).collect();
                        prop_assert_eq!(
                            distinct.len(), path.len(),
                            "route {:?} revisits a cluster", path
                        );
                        for hop in path.windows(2) {
                            prop_assert!(
                                alive.contains(&(hop[0].0, hop[1].0)),
                                "route {:?} crosses the dead edge {}->{}",
                                path, hop[0].0, hop[1].0
                            );
                        }
                    }
                }
            }
        }
    }

    /// Healing every dead edge restores the fault-free baseline routes
    /// verbatim: the recomputed path equals the pristine topology's path
    /// for every pair.
    #[test]
    fn full_heal_restores_baseline_routes(
        n_clusters in 2usize..9,
        dead_mask in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let pristine = Topology::incomplete_hypercube(n_clusters, 1).unwrap();
        let mut t = Topology::incomplete_hypercube(n_clusters, 1).unwrap();
        let all = edges(&t);
        for (i, (p, _)) in all.iter().enumerate() {
            if *dead_mask.get(i).unwrap_or(&false) {
                t.set_edge_state(*p, false);
            }
        }
        t.recompute();
        for (p, _) in &all {
            t.set_edge_state(*p, true);
        }
        t.recompute();
        for src in 0..n_clusters as u16 {
            for dst in 0..n_clusters as u16 {
                let (a, b) = (NodeAddr(src), NodeAddr(dst));
                prop_assert_eq!(
                    t.cluster_path(a, b),
                    pristine.cluster_path(a, b),
                    "healed tables must match the baseline verbatim"
                );
                prop_assert_eq!(t.hops(a, b), pristine.hops(a, b));
            }
        }
    }
}
