//! Live-topology routing properties: the BFS `recompute` over surviving
//! inter-cluster edges must agree with an independent ground-truth
//! reachability computation, and every route it serves must be loop-free,
//! alive edge by edge, and shortest.
//!
//! These run on *incomplete* hypercubes (the paper's §2 configuration) with
//! arbitrary subsets of directed edges marked dead — including splits,
//! one-way cuts, and fully severed fabrics.

use std::collections::{BTreeSet, VecDeque};

use hpc_vorx::hpcnet::{Attachment, ClusterId, NodeAddr, PortRef, Topology, PORTS_PER_CLUSTER};

use proptest::prelude::*;

/// All directed inter-cluster edges of `t`, as `(from_port, to_cluster)`.
fn edges(t: &Topology) -> Vec<(PortRef, ClusterId)> {
    let mut out = Vec::new();
    for c in 0..t.n_clusters() as u32 {
        for port in 0..PORTS_PER_CLUSTER as u8 {
            let p = PortRef {
                cluster: ClusterId(c),
                port,
            };
            if let Attachment::Cluster(peer) = t.attachment(p) {
                out.push((p, peer.cluster));
            }
        }
    }
    out
}

/// Ground-truth directed reachability by BFS over the surviving edge set,
/// computed independently of the topology's own tables.
fn bfs_reachable(
    n_clusters: usize,
    alive: &BTreeSet<(u32, u32)>,
    from: ClusterId,
) -> BTreeSet<u32> {
    let mut seen = BTreeSet::from([from.0]);
    let mut q = VecDeque::from([from.0]);
    while let Some(c) = q.pop_front() {
        for next in 0..n_clusters as u32 {
            if alive.contains(&(c, next)) && seen.insert(next) {
                q.push_back(next);
            }
        }
    }
    seen
}

/// Ground-truth shortest-path distances (in inter-cluster hops) from `from`
/// over the surviving edge set; `usize::MAX` marks unreachable clusters.
fn bfs_dist(n_clusters: usize, alive: &BTreeSet<(u32, u32)>, from: ClusterId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; n_clusters];
    dist[from.0 as usize] = 0;
    let mut q = VecDeque::from([from.0]);
    while let Some(c) = q.pop_front() {
        for next in 0..n_clusters as u32 {
            if alive.contains(&(c, next)) && dist[next as usize] == usize::MAX {
                dist[next as usize] = dist[c as usize] + 1;
                q.push_back(next);
            }
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kill an arbitrary subset of directed inter-cluster edges, recompute,
    /// and check every ordered endpoint pair: the tables must serve a route
    /// exactly when ground-truth BFS says one exists, and the served path
    /// must start/end correctly, never repeat a cluster (loop-free), and
    /// use only surviving edges.
    #[test]
    fn surviving_pairs_always_get_live_loop_free_routes(
        n_clusters in 2usize..9,
        dead_mask in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut t = Topology::incomplete_hypercube(n_clusters, 1).unwrap();
        let all = edges(&t);
        let mut alive: BTreeSet<(u32, u32)> = BTreeSet::new();
        for (i, (p, to)) in all.iter().enumerate() {
            let dead = *dead_mask.get(i).unwrap_or(&false);
            if dead {
                t.set_edge_state(*p, false);
            } else {
                alive.insert((p.cluster.0, to.0));
            }
        }
        t.recompute();

        for src in 0..n_clusters as u32 {
            let truth = bfs_reachable(n_clusters, &alive, ClusterId(src));
            for dst in 0..n_clusters as u32 {
                let (a, b) = (NodeAddr(src), NodeAddr(dst));
                prop_assert_eq!(
                    t.reachable(ClusterId(src), ClusterId(dst)),
                    truth.contains(&dst),
                    "reachable({}, {}) disagrees with ground truth", src, dst
                );
                match t.try_cluster_path(a, b) {
                    None => prop_assert!(
                        !truth.contains(&dst),
                        "no route served for a reachable pair {} -> {}", src, dst
                    ),
                    Some(path) => {
                        prop_assert!(truth.contains(&dst));
                        prop_assert_eq!(path[0].0, src);
                        prop_assert_eq!(path[path.len() - 1].0, dst);
                        let distinct: BTreeSet<u32> =
                            path.iter().map(|c| c.0).collect();
                        prop_assert_eq!(
                            distinct.len(), path.len(),
                            "route {:?} revisits a cluster", path
                        );
                        for hop in path.windows(2) {
                            prop_assert!(
                                alive.contains(&(hop[0].0, hop[1].0)),
                                "route {:?} crosses the dead edge {}->{}",
                                path, hop[0].0, hop[1].0
                            );
                        }
                    }
                }
            }
        }
    }

    /// Implicit hierarchical routing ≡ BFS ground truth. On random small
    /// hierarchies (≤64 clusters, 1–3 levels) with arbitrary dead-edge
    /// sets, walk the served next-hops port by port and check, for every
    /// ordered cluster pair, that (a) `reachable` agrees with ground-truth
    /// BFS, (b) every next-hop port is alive and attached to a cluster
    /// link, (c) the walk never revisits a cluster (loop-free), and (d) on
    /// single-level topologies — where routing promises shortest paths —
    /// the walked length equals the BFS distance over surviving edges.
    /// Multi-level routes funnel through gateway clusters, so their length
    /// is the hierarchical scheme's cost, deliberately not the flat-graph
    /// optimum; BFS still lower-bounds it.
    #[test]
    fn hierarchical_routing_matches_bfs_ground_truth(
        levels in proptest::collection::vec(2usize..5, 1..4),
        eps in 1usize..3,
        dead_mask in proptest::collection::vec(any::<bool>(), 0..256),
    ) {
        let mut t = Topology::hierarchical_hypercube(&levels, eps).unwrap();
        let n_clusters = t.n_clusters();
        let all = edges(&t);
        let mut alive: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut dead_ports: BTreeSet<(u32, u8)> = BTreeSet::new();
        for (i, (p, to)) in all.iter().enumerate() {
            if *dead_mask.get(i).unwrap_or(&false) {
                t.set_edge_state(*p, false);
                dead_ports.insert((p.cluster.0, p.port));
            } else {
                alive.insert((p.cluster.0, to.0));
            }
        }
        t.recompute();

        for src in 0..n_clusters as u32 {
            let dist = bfs_dist(n_clusters, &alive, ClusterId(src));
            for dst in 0..n_clusters as u32 {
                let dst_ep = NodeAddr(dst * eps as u32);
                let truth = dist[dst as usize] != usize::MAX;
                prop_assert_eq!(
                    t.reachable(ClusterId(src), ClusterId(dst)),
                    truth,
                    "reachable({}, {}) disagrees with ground truth", src, dst
                );
                // Walk the implicit next-hops like a frame would.
                let mut here = src;
                let mut steps = 0usize;
                let mut visited = BTreeSet::from([src]);
                let delivered = loop {
                    if here == dst {
                        break true;
                    }
                    let port = t.route(ClusterId(here), dst_ep);
                    if port == u8::MAX {
                        break false;
                    }
                    prop_assert!(
                        !dead_ports.contains(&(here, port)),
                        "next-hop {}:{} toward {} is a dead edge", here, port, dst
                    );
                    let att = t.attachment(PortRef { cluster: ClusterId(here), port });
                    let Attachment::Cluster(peer) = att else {
                        prop_assert!(
                            false,
                            "next-hop {}:{} toward {} is not a cluster link: {:?}",
                            here, port, dst, att
                        );
                        unreachable!()
                    };
                    here = peer.cluster.0;
                    steps += 1;
                    prop_assert!(
                        visited.insert(here),
                        "route {} -> {} revisits cluster {}", src, dst, here
                    );
                };
                prop_assert_eq!(
                    delivered, truth,
                    "route served for {} -> {} iff BFS connects them", src, dst
                );
                if delivered {
                    prop_assert!(
                        steps >= dist[dst as usize],
                        "walk {} -> {} beat the BFS lower bound", src, dst
                    );
                    if levels.len() == 1 {
                        prop_assert_eq!(
                            steps, dist[dst as usize],
                            "walked path {} -> {} is not shortest", src, dst
                        );
                    }
                }
            }
        }
    }

    /// Healing every dead edge restores the fault-free baseline routes
    /// verbatim: the recomputed path equals the pristine topology's path
    /// for every pair.
    #[test]
    fn full_heal_restores_baseline_routes(
        n_clusters in 2usize..9,
        dead_mask in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let pristine = Topology::incomplete_hypercube(n_clusters, 1).unwrap();
        let mut t = Topology::incomplete_hypercube(n_clusters, 1).unwrap();
        let all = edges(&t);
        for (i, (p, _)) in all.iter().enumerate() {
            if *dead_mask.get(i).unwrap_or(&false) {
                t.set_edge_state(*p, false);
            }
        }
        t.recompute();
        for (p, _) in &all {
            t.set_edge_state(*p, true);
        }
        t.recompute();
        for src in 0..n_clusters as u32 {
            for dst in 0..n_clusters as u32 {
                let (a, b) = (NodeAddr(src), NodeAddr(dst));
                prop_assert_eq!(
                    t.cluster_path(a, b),
                    pristine.cluster_path(a, b),
                    "healed tables must match the baseline verbatim"
                );
                prop_assert_eq!(t.hops(a, b), pristine.hops(a, b));
            }
        }
    }
}
