//! # hpc-vorx — umbrella crate
//!
//! Re-exports the public API of the HPC/VORX reproduction (PPoPP 1990):
//!
//! * [`desim`] — the deterministic discrete-event simulation kernel.
//! * [`hpcnet`] — the HPC interconnect (clusters, hypercube, hardware flow
//!   control).
//! * [`snet`] — the S/NET single-bus predecessor used as a baseline.
//! * [`vorx`] — the VORX distributed operating system (channels, object
//!   managers, subprocesses, stubs, user-defined communications objects).
//! * [`vorx_tools`] — `cdb`, the software oscilloscope, and the profiler.
//! * [`vorx_apps`] — the workloads used by the paper's evaluation.
//!
//! The `examples/` directory of this package contains runnable end-to-end
//! scenarios; `crates/bench` regenerates every table and figure of the
//! paper's evaluation.

pub use desim;
pub use hpcnet;
pub use snet;
pub use vorx;
pub use vorx_apps;
pub use vorx_tools;
