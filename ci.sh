#!/usr/bin/env bash
# Tier-1 CI gate: everything a PR must pass.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (VORX_SIM_WORKERS=1: sharded paths at one worker)"
VORX_SIM_WORKERS=1 cargo test --workspace -q

echo "==> cargo test (VORX_SIM_WORKERS=4: sharded paths at four workers)"
VORX_SIM_WORKERS=4 cargo test --workspace -q

echo "==> cargo test (VORX_SIM_WORKERS=8: sharded paths at eight workers)"
VORX_SIM_WORKERS=8 cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings -D clippy::redundant_clone

echo "==> fault-campaign smoke (fixed seed, 5% loss, one crash/restart)"
cargo run --release -p vorx-bench --bin fault_campaign -- --smoke

echo "==> datapath smoke (windowed >= 2x stop-and-wait, zero payload copies)"
cargo run --release -p vorx-bench --bin datapath_report -- --smoke

echo "==> partition smoke (full partition + heal under watchdog, typed errors, no hang)"
cargo run --release -p vorx-bench --bin partition_campaign -- --smoke

echo "==> pdes smoke (sharded engine: 1/4/8-worker traces bit-identical, deadlock watchdog)"
cargo run --release -p vorx-bench --bin pdes_campaign -- --smoke

echo "==> soak smoke (chaos soak under watchdog: all fault classes + overload, invariant oracles)"
cargo run --release -p vorx-bench --bin soak_campaign -- --smoke

echo "==> scale smoke (10k-endpoint hierarchy under watchdog: churn, workers {1,4} trace equality, recompute speedup)"
cargo run --release -p vorx-bench --bin scale_campaign -- --smoke

echo "==> gray smoke (gray failures under watchdog: delay/asymmetry/flap/gateway cells, adaptive-timer oracles)"
cargo run --release -p vorx-bench --bin gray_campaign -- --smoke

echo "==> collective smoke (fan-in 512 under watchdog: in-network >= 3x software tree, workers {1,4} trace equality)"
cargo run --release -p vorx-bench --bin collective_campaign -- --smoke

echo "CI OK"
