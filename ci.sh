#!/usr/bin/env bash
# Tier-1 CI gate: everything a PR must pass.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fault-campaign smoke (fixed seed, 5% loss, one crash/restart)"
cargo run --release -p vorx-bench --bin fault_campaign -- --smoke

echo "CI OK"
