//! The Linda tuple space (§1/§4.1) running a master/worker program — the
//! S/NET's marquee application, on simulated HPC/VORX.
//!
//! Run with: `cargo run --example linda`

use desim::SimDuration;
use hpc_vorx::vorx::hpcnet::NodeAddr;
use hpc_vorx::vorx::VorxBuilder;
use hpc_vorx::vorx_apps::linda::{Pat, TupleSpace, Val};

fn main() {
    let mut system = VorxBuilder::single_cluster(7).build();
    // Tuple space partitioned over two kernel nodes.
    let ts = TupleSpace::spawn(&system, vec![NodeAddr(0), NodeAddr(1)]);

    const JOBS: i64 = 20;
    for wk in 2..6u32 {
        let ts = ts.clone();
        system.spawn(format!("n{wk}:worker"), move |ctx| {
            ts.join(&ctx, NodeAddr(wk));
            let mut done = 0;
            loop {
                let t = ts.in_(
                    &ctx,
                    NodeAddr(wk),
                    vec![Pat::Eq(Val::Str("job".into())), Pat::Any],
                );
                let Val::Int(x) = t[1] else { unreachable!() };
                if x < 0 {
                    println!("worker n{wk}: retired after {done} jobs");
                    break;
                }
                hpc_vorx::vorx::api::user_compute(&ctx, NodeAddr(wk), SimDuration::from_ms(2));
                ts.out(
                    &ctx,
                    NodeAddr(wk),
                    vec![Val::Str("done".into()), Val::Int(x * x)],
                );
                done += 1;
            }
        });
    }
    let ts_m = ts;
    system.spawn("n6:master", move |ctx| {
        ts_m.join(&ctx, NodeAddr(6));
        for x in 0..JOBS {
            ts_m.out(&ctx, NodeAddr(6), vec![Val::Str("job".into()), Val::Int(x)]);
        }
        let mut sum = 0;
        for _ in 0..JOBS {
            let t = ts_m.in_(
                &ctx,
                NodeAddr(6),
                vec![Pat::Eq(Val::Str("done".into())), Pat::Any],
            );
            let Val::Int(x) = t[1] else { unreachable!() };
            sum += x;
        }
        println!("master: sum of squares 0..{JOBS} = {sum}");
        for _ in 0..4 {
            ts_m.out(
                &ctx,
                NodeAddr(6),
                vec![Val::Str("job".into()), Val::Int(-1)],
            );
        }
    });

    let report = system.run();
    println!(
        "finished at {}; {} tuple-space kernels still resident (as designed)",
        report.now,
        report
            .parked
            .iter()
            .filter(|(_, n)| n.contains("linda-kernel"))
            .count()
    );
}
