//! The §6.2 software oscilloscope on a deliberately imbalanced pipeline:
//! one producer feeds two consumers, one of which has 4x the work. The
//! display makes the idle-waiting-for-input time visible — "the major
//! problem is one of improper load balance".
//!
//! Run with: `cargo run --example oscilloscope`

use desim::{SimDuration, SimTime};
use hpc_vorx::vorx::api::user_compute;
use hpc_vorx::vorx::channel;
use hpc_vorx::vorx::hpcnet::{NodeAddr, Payload};
use hpc_vorx::vorx::VorxBuilder;
use hpc_vorx::vorx_tools::oscillo::Oscilloscope;
use hpc_vorx::vorx_tools::prof;

fn main() {
    let mut system = VorxBuilder::single_cluster(3).build();

    system.spawn("n0:producer", |ctx| {
        let fast = channel::open(&ctx, NodeAddr(0), "to-fast");
        let slow = channel::open(&ctx, NodeAddr(0), "to-slow");
        for _ in 0..12 {
            prof::region(&ctx, NodeAddr(0), "generate", || {
                user_compute(&ctx, NodeAddr(0), SimDuration::from_us(400));
            });
            fast.write(&ctx, Payload::Synthetic(512)).unwrap();
            slow.write(&ctx, Payload::Synthetic(512)).unwrap();
        }
    });
    system.spawn("n1:fast-consumer", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "to-fast");
        for _ in 0..12 {
            let _ = ch.read(&ctx).unwrap();
            prof::region(&ctx, NodeAddr(1), "light-work", || {
                user_compute(&ctx, NodeAddr(1), SimDuration::from_us(500));
            });
        }
    });
    system.spawn("n2:slow-consumer", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(2), "to-slow");
        for _ in 0..12 {
            let _ = ch.read(&ctx).unwrap();
            prof::region(&ctx, NodeAddr(2), "heavy-work", || {
                user_compute(&ctx, NodeAddr(2), SimDuration::from_ms(2));
            });
        }
    });

    let end = system.run_all();
    let world = system.world();
    let scope = Oscilloscope::from_trace(&world.trace, 3);

    // The synchronized full-run display.
    print!("{}", scope.render(SimTime::ZERO, end, 72));

    // "freeze the display [...] or seek to any moment in execution time":
    let mid = SimTime::from_ns(end.as_ns() / 2);
    let window = SimTime::from_ns(end.as_ns() / 2 + end.as_ns() / 8);
    println!("\nzoomed into the middle eighth of the run:");
    print!("{}", scope.render(mid, window, 72));

    let (min, max, mean) = scope.balance();
    println!(
        "\nload balance (user-time fraction): min {:.0}%  max {:.0}%  mean {:.0}%",
        min * 100.0,
        max * 100.0,
        mean * 100.0
    );

    // And where the time went, per prof.
    println!();
    print!("{}", prof::ProfReport::from_trace(&world.trace).render());
}
