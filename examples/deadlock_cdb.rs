//! The §6.1 scenario: an application deadlocks with "each process waiting
//! for input from another process", and `cdb` pinpoints it.
//!
//! Run with: `cargo run --example deadlock_cdb`

use hpc_vorx::vorx::channel;
use hpc_vorx::vorx::hpcnet::{NodeAddr, Payload};
use hpc_vorx::vorx::VorxBuilder;
use hpc_vorx::vorx_tools::cdb;

fn main() {
    let mut system = VorxBuilder::single_cluster(4).build();

    // A three-stage ring where every stage reads before writing — the
    // "surprisingly common" §6.1 programming error.
    for (me, inbound, outbound) in [(1u32, "c3", "c1"), (2, "c1", "c2"), (3, "c2", "c3")] {
        system.spawn(format!("n{me}:stage"), move |ctx| {
            let node = NodeAddr(me);
            // Open in global name order so the rendezvous itself succeeds;
            // the deadlock we are demonstrating is in the *communication*
            // pattern, not in startup.
            let (first, second) = if inbound < outbound {
                (inbound, outbound)
            } else {
                (outbound, inbound)
            };
            let a = channel::open(&ctx, node, first);
            let b = channel::open(&ctx, node, second);
            let (rx, tx) = if inbound < outbound { (a, b) } else { (b, a) };
            loop {
                let _ = rx.read(&ctx).unwrap(); // everyone reads first: deadlock
                tx.write(&ctx, Payload::Synthetic(8)).unwrap();
            }
        });
    }

    let report = system.run();
    println!(
        "application stopped with {} process(es) blocked:\n",
        report.parked.len()
    );

    let world = system.world();
    // Full channel-state listing...
    print!("{}", cdb::render(&cdb::snapshot(&world)));
    // ...filtered to blocked channels only...
    let blocked = cdb::filtered(
        &world,
        &cdb::CdbFilter {
            blocked_only: true,
            ..Default::default()
        },
    );
    println!("\nblocked-only filter: {} channels", blocked.len());
    // ...and the wait-for cycle that explains it.
    for cycle in cdb::deadlock_cycles(&world) {
        let names: Vec<String> = cycle.iter().map(|n| n.to_string()).collect();
        println!("deadlock cycle: {} -> (back to start)", names.join(" -> "));
    }
}
