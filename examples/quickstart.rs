//! Quickstart: bring up a small HPC/VORX system, connect two processes with
//! a named channel, and measure what the paper measures.
//!
//! Run with: `cargo run --example quickstart`

use desim::SimTime;
use hpc_vorx::vorx::channel;
use hpc_vorx::vorx::hpcnet::{NodeAddr, Payload};
use hpc_vorx::vorx::VorxBuilder;

fn main() {
    // Three endpoints on one HPC cluster: the smallest interesting machine.
    let mut system = VorxBuilder::single_cluster(3).build();

    // A writer on node 1 and a reader on node 2 rendezvous on the channel
    // name "greetings" — "two processes rendezvous on a channel by
    // specifying its name in an open call".
    system.spawn("n1:writer", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "greetings");
        for i in 0..5u8 {
            ch.write(&ctx, Payload::copy_from(&[i; 16])).unwrap();
        }
    });
    system.spawn("n2:reader", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(2), "greetings");
        let t0 = ctx.now();
        for i in 0..5u8 {
            let msg = ch.read(&ctx).unwrap();
            assert_eq!(msg.bytes().unwrap().as_ref(), &[i; 16]);
        }
        let per_msg = (ctx.now() - t0) / 5;
        println!("received 5 x 16B messages, ~{per_msg} per message (stop-and-wait channel)");
    });

    let end = system.run_all();
    println!("simulation finished at {}", end - SimTime::ZERO);

    // The kernel kept the bookkeeping cdb reads:
    let world = system.world();
    print!(
        "{}",
        hpc_vorx::vorx_tools::cdb::render(&hpc_vorx::vorx_tools::cdb::snapshot(&world))
    );
}
