//! The §4.2 image-processing workload: a 64x64 complex 2D FFT across eight
//! processing nodes, redistributed both ways — multicast (the anti-pattern)
//! and point-to-point (the paper's recommendation) — and verified against
//! the serial transform.
//!
//! Run with: `cargo run --release --example fft2d`

use hpc_vorx::vorx_apps::fft2d::{run_fft2d, Distribution, Fft2dParams};

fn main() {
    let n = 64;
    let p = 8;
    println!("distributed 2D FFT: {n}x{n} image on {p} nodes\n");
    for (name, strategy) in [
        ("multicast rows to everyone", Distribution::Multicast),
        (
            "point-to-point (only needed data)",
            Distribution::PointToPoint,
        ),
    ] {
        let r = run_fft2d(Fft2dParams { n, p, strategy }, 42);
        println!("{name}:");
        println!("  total time          {}", r.elapsed);
        println!("  redistribution time {}", r.distribute_max);
        println!("  bytes/node received {}", r.bytes_rx[0]);
        println!(
            "  verified vs serial  max |err| = {:.2e}{}",
            r.max_err,
            if r.max_err < 1e-6 {
                "  ok"
            } else {
                "  MISMATCH"
            }
        );
        println!();
    }
    println!("\"It is usually better for the sender to produce a different message");
    println!(" for each receiver that contains only the data that it needs.\" (§4.2)");
}
