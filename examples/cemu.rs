//! The CEMU-style distributed circuit simulator (§4.1/§5): a seeded random
//! netlist partitioned over four nodes, verified bit-exactly against the
//! serial simulator.
//!
//! Run with: `cargo run --release --example cemu`

use hpc_vorx::vorx_apps::cemu::{run_cemu, Circuit};

fn main() {
    let circuit = Circuit::random(8, 120, 2024);
    println!(
        "circuit: {} gates, {} primary inputs, {} signals",
        circuit.gates.len(),
        circuit.n_inputs,
        circuit.n_signals
    );
    for p in [2usize, 4, 8] {
        let r = run_cemu(&circuit, p, 60, 7);
        println!(
            "{p} nodes: 60 ticks in {}  ({:.0} ticks/s)  verified={}",
            r.elapsed, r.ticks_per_sec, r.verified
        );
        assert!(r.verified);
    }
    println!("\n(per tick: boundary-signal exchange over UDCOs, coroutine switch to the");
    println!(" evaluation phase, gate evaluation, coroutine switch back — CEMU's §5 structure)");
}
