//! A vdb debugging session (§6): attach to a running process of a
//! multiprocess application, stop it at a breakpoint, examine its
//! variables, single-step by continuing, and detach.
//!
//! Run with: `cargo run --example vdb_session`

use desim::{SimDuration, SimTime};
use hpc_vorx::vorx::debug::{breakpoint, publish, register_process};
use hpc_vorx::vorx::hpcnet::{NodeAddr, Payload};
use hpc_vorx::vorx::{channel, VorxBuilder};
use hpc_vorx::vorx_tools::vdb;

fn main() {
    let mut system = VorxBuilder::single_cluster(3).build();

    // A two-process application: a producer feeding a consumer.
    system.spawn("n1:producer", |ctx| {
        let me = register_process(&ctx, NodeAddr(1), "producer");
        let ch = channel::open(&ctx, NodeAddr(1), "feed");
        for i in 0..8u32 {
            publish(&ctx, me, "next_item", i);
            breakpoint(&ctx, me, "before-send");
            ch.write(&ctx, Payload::copy_from(&i.to_be_bytes()))
                .unwrap();
        }
    });
    system.spawn("n2:consumer", |ctx| {
        let me = register_process(&ctx, NodeAddr(2), "consumer");
        let ch = channel::open(&ctx, NodeAddr(2), "feed");
        let mut sum = 0u32;
        for _ in 0..8 {
            let m = ch.read(&ctx).unwrap();
            sum += u32::from_be_bytes(m.bytes().unwrap().as_ref().try_into().unwrap());
            publish(&ctx, me, "sum", sum);
            hpc_vorx::vorx::api::user_compute(&ctx, NodeAddr(2), SimDuration::from_us(200));
        }
    });

    // --- the debugging session ---
    println!("$ vdb attach producer");
    let at = vdb::attach(&mut system, "producer");
    vdb::set_break(&system, at, "before-send");
    let far = SimTime::from_ns(u64::MAX / 2);

    let label = vdb::run_until_stopped(&mut system, at, far).expect("breakpoint");
    println!("stopped at breakpoint '{label}'");
    print!("{}", vdb::render(&system.world()));

    println!("\n$ vdb cont  (x3: stepping through iterations)");
    for _ in 0..3 {
        vdb::cont(&system, at);
        vdb::run_until_stopped(&mut system, at, far);
        let vars = vdb::examine(&system, at);
        println!("  stopped again; {} = {}", vars[0].0, vars[0].1);
    }

    println!("\n$ vdb clear + cont  (detach and let it run)");
    vdb::clear_break(&system, at, "before-send");
    vdb::cont(&system, at);
    system.run_all();

    print!("\nfinal state:\n{}", vdb::render(&system.world()));
}
