//! The Figure-1 machine in miniature: host workstations and a pool of
//! processing nodes on one HPC, running a single application that spans
//! hosts and nodes — with stubs forwarding UNIX system calls back to the
//! workstation (§3.3).
//!
//! Run with: `cargo run --example lan_multicomputer`

use desim::SimDuration;
use hpc_vorx::vorx::alloc::UserId;
use hpc_vorx::vorx::channel;
use hpc_vorx::vorx::host::{create_stub, syscall, SyscallOp, SyscallRet};
use hpc_vorx::vorx::hpcnet::{NodeAddr, Payload};
use hpc_vorx::vorx::{VCtx, VorxBuilder};

fn main() {
    // Two workstations + six processing nodes on one cluster.
    let mut system = VorxBuilder::single_cluster(8).hosts(2).build();

    // The user allocates processors explicitly (§3.1, the VORX policy).
    let workers = system
        .world()
        .alloc
        .allocate(UserId(1), 4)
        .expect("pool is free");
    println!("allocated processing nodes: {workers:?}");

    system.spawn("ws0:launcher", move |ctx| {
        // One stub per worker process: the faithful-environment mode.
        for &w in &workers {
            create_stub(&ctx, 0, vec![w]);
        }
        // Start the workers and hand each a work channel.
        for (i, &w) in workers.iter().enumerate() {
            ctx.with(move |_, s| {
                s.spawn(format!("n{}:worker", w.0), move |ctx: VCtx| {
                    let ch = channel::open(&ctx, w, &format!("job-{i}"));
                    for _ in 0..3 {
                        let job = ch.read(&ctx).unwrap();
                        // Compute, then log through the UNIX environment the
                        // stub provides.
                        hpc_vorx::vorx::api::user_compute(&ctx, w, SimDuration::from_ms(1));
                        match syscall(&ctx, w, SyscallOp::WriteFile { bytes: job.len() }) {
                            Ok(SyscallRet::Ok) => {}
                            r => panic!("log write failed: {r:?}"),
                        }
                    }
                });
            });
        }
        let chans: Vec<_> = (0..workers.len())
            .map(|i| channel::open(&ctx, NodeAddr(0), &format!("job-{i}")))
            .collect();
        for round in 0..3 {
            for ch in &chans {
                ch.write(&ctx, Payload::Synthetic(300)).unwrap();
            }
            println!("ws0 dispatched round {round}");
        }
    });

    let end = system.run_all();
    println!("all rounds complete at {end}");

    let world = system.world();
    let served: u64 = world.hosts[0].stubs.iter().map(|s| s.served).sum();
    println!(
        "host ws0 ran {} stubs and served {} forwarded system calls",
        world.hosts[0].stubs.len(),
        served
    );
    println!(
        "freeing the allocation: {} nodes returned to the pool",
        world.alloc.owned_by(UserId(1)).len()
    );
}
