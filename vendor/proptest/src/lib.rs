//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros, `ProptestConfig::with_cases`,
//! range and tuple strategies, `any::<T>()`, and `collection::vec`.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test's module path and name) rather than an
//! adaptive runner, and failing cases are reported but **not shrunk**. That
//! is enough to exercise the property bodies reproducibly, which is what the
//! workspace's tests rely on.

pub mod strategy {
    //! Input strategies: how to draw a value of some type from the test RNG.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for drawing values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// Types with a canonical whole-domain strategy (see [`any`]).
    pub trait Arbitrary {
        /// Draw an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the whole domain of `T`; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod sample {
    //! Strategies that pick from an explicit set of values.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list (see [`select`]).
    pub struct Select<T> {
        choices: Vec<T>,
    }

    /// A strategy drawing one of `choices`, uniformly.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select from an empty list");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.choices[(rng.next_u64() % self.choices.len() as u64) as usize].clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are drawn
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The per-test runner: config, RNG, and the case loop.

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic test RNG (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary byte string (e.g. the test's full name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a folds the name into a seed; SplitMix64 whitens it.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Runs a property body over `config.cases` deterministic inputs.
    pub struct TestRunner {
        config: Config,
        name: &'static str,
    }

    impl TestRunner {
        /// Build a runner for the test identified by `name` (seeds the RNG).
        pub fn new(config: Config, name: &'static str) -> Self {
            TestRunner { config, name }
        }

        /// Run `body` once per case; panic (failing the `#[test]`) on the
        /// first case whose body returns `Err`.
        pub fn run<F>(&mut self, mut body: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), String>,
        {
            let mut rng = TestRng::from_name(self.name);
            for case in 0..self.config.cases {
                if let Err(msg) = body(&mut rng) {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        self.config.cases,
                        self.name,
                        msg
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! The names `use proptest::prelude::*` is expected to bring in.

    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// The crate itself under the name `prop` (for `prop::sample::select`
    /// etc.), as real proptest's prelude provides.
    pub use crate as prop;
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs from a deterministic RNG and runs
/// the body for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(|rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)*
                #[allow(unreachable_code)]
                (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body; failure reports the
/// condition (and optional formatted message) with the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges honor their bounds.
        fn ranges_in_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f out of range: {f}");
        }

        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(v.len(), v.iter().count());
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
