//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace's benches use: `Criterion`,
//! `benchmark_group`, `Bencher::{iter, iter_batched}`, `Throughput`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Compared to real criterion there is no statistical analysis, outlier
//! detection, or HTML report: each benchmark is warmed up, timed for a fixed
//! number of samples, and summarized as min/median/mean ns per iteration.
//! Results are printed and also written as JSON under
//! `target/criterion-stub/<group>/<bench>.json` so report tooling can read
//! them back.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a per-iteration input batch is sized (stub: ignored, every batch is
/// one input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: cheap to set up relative to the routine.
    SmallInput,
    /// Large inputs: expensive to set up relative to the routine.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units-of-work metadata used to report throughput alongside time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark; `f` drives the [`Bencher`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, id, self.throughput);
        self
    }

    /// Finish the group (stub: nothing to flush).
    pub fn finish(self) {}
}

/// Times one benchmark routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

const MIN_SAMPLE_TIME: Duration = Duration::from_micros(200);

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup + calibration: how many calls make one sample long enough
        // for the clock to resolve it?
        let t0 = Instant::now();
        hint::black_box(routine());
        let once = t0.elapsed();
        let per_sample = if once >= MIN_SAMPLE_TIME {
            1
        } else {
            (MIN_SAMPLE_TIME.as_nanos() / once.as_nanos().max(1) + 1) as u64
        };
        self.samples_ns = (0..self.sample_size)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..per_sample {
                    hint::black_box(routine());
                }
                t.elapsed().as_nanos() as f64 / per_sample as f64
            })
            .collect();
    }

    /// Time `routine` on fresh inputs from `setup`; only the routine is
    /// inside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        hint::black_box(routine(setup())); // warmup
        self.samples_ns = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let t = Instant::now();
                hint::black_box(routine(input));
                t.elapsed().as_nanos() as f64
            })
            .collect();
    }

    fn report(&mut self, group: &str, id: &str, throughput: Option<Throughput>) {
        let mut s = std::mem::take(&mut self.samples_ns);
        if s.is_empty() {
            eprintln!("{group}/{id}: no samples recorded");
            return;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let min = s[0];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let thr = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:.3} Melem/s", n as f64 / median * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 / median * 1e9 / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!(
            "{group}/{id}  time: [min {} | median {} | mean {}]{thr}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
        let json = format!(
            concat!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"samples\":{},",
                "\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1}}}\n"
            ),
            group,
            id,
            s.len(),
            min,
            median,
            mean
        );
        let dir = stub_report_root().join(group);
        // Best effort: benches must not fail just because the report
        // directory is unwritable.
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{id}.json")), json);
        }
    }
}

/// Where JSON reports go: `<workspace target dir>/criterion-stub`.
///
/// Bench binaries run with the *package* directory as cwd, so a plain
/// relative `target/` would nest one target dir per package. Honor
/// `CARGO_TARGET_DIR` if set, else walk up from cwd to the workspace root
/// (the closest ancestor with a `Cargo.lock`).
fn stub_report_root() -> std::path::PathBuf {
    if let Some(t) = std::env::var_os("CARGO_TARGET_DIR") {
        return std::path::Path::new(&t).join("criterion-stub");
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target/criterion-stub");
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd.join("target/criterion-stub"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundle benchmark functions into a runner callable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_and_batched_produce_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub-selftest");
        g.sample_size(5);
        g.throughput(Throughput::Elements(10));
        g.bench_function("iter", |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
