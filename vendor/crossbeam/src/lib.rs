//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Provides `channel::{bounded, Sender, Receiver}` with cloneable endpoints
//! and disconnect-on-last-drop semantics, implemented with a
//! `Mutex`/`Condvar` ring. Slower than real crossbeam, but semantically
//! equivalent for the blocking baton-passing patterns this workspace uses.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone and
    /// the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create a bounded channel with capacity `cap` (> 0).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "zero-capacity channels are not supported");
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(cap)),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until there is space, then enqueue `msg`.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let sh = &self.shared;
            let mut q = sh.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if sh.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(msg));
                }
                if q.len() < sh.cap {
                    q.push_back(msg);
                    sh.not_empty.notify_one();
                    return Ok(());
                }
                q = sh.not_full.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message is available, then dequeue it.
        pub fn recv(&self) -> Result<T, RecvError> {
            let sh = &self.shared;
            let mut q = sh.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = q.pop_front() {
                    sh.not_full.notify_one();
                    return Ok(msg);
                }
                if sh.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = sh.not_empty.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Release);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::Release);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn ping_pong() {
            let (tx, rx) = bounded::<u32>(1);
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
            t.join().unwrap();
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receivers_drop() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}
