//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Provides the `Serialize`/`Serializer` trait pair with real-serde method
//! signatures, the `ser` sub-traits, and `Serialize` impls for primitives
//! and standard containers. The proc-macro derive is not available offline,
//! so the workspace implements `Serialize` by hand for its few trace-event
//! types (the data model is identical, so swapping real serde back in is a
//! manifest change only).

pub mod ser;

pub use ser::{Serialize, Serializer};

mod impls {
    use crate::ser::{Serialize, SerializeSeq, Serializer};

    macro_rules! ser_forward {
        ($($t:ty => $m:ident),* $(,)?) => {$(
            impl Serialize for $t {
                fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                    s.$m(*self)
                }
            }
        )*};
    }

    ser_forward! {
        bool => serialize_bool,
        i8 => serialize_i8,
        i16 => serialize_i16,
        i32 => serialize_i32,
        i64 => serialize_i64,
        u8 => serialize_u8,
        u16 => serialize_u16,
        u32 => serialize_u32,
        u64 => serialize_u64,
        f32 => serialize_f32,
        f64 => serialize_f64,
        char => serialize_char,
    }

    impl Serialize for usize {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_u64(*self as u64)
        }
    }

    impl Serialize for isize {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_i64(*self as i64)
        }
    }

    impl Serialize for str {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_str(self)
        }
    }

    impl Serialize for String {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_str(self)
        }
    }

    impl Serialize for () {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_unit()
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(s)
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &mut T {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(s)
        }
    }

    impl<T: Serialize> Serialize for Option<T> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            match self {
                Some(v) => s.serialize_some(v),
                None => s.serialize_none(),
            }
        }
    }

    impl<T: Serialize> Serialize for [T] {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            let mut seq = s.serialize_seq(Some(self.len()))?;
            for item in self {
                seq.serialize_element(item)?;
            }
            seq.end()
        }
    }

    impl<T: Serialize> Serialize for Vec<T> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            self.as_slice().serialize(s)
        }
    }

    impl<T: Serialize, const N: usize> Serialize for [T; N] {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            self.as_slice().serialize(s)
        }
    }

    impl<A: Serialize, B: Serialize> Serialize for (A, B) {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            use crate::ser::SerializeTuple;
            let mut t = s.serialize_tuple(2)?;
            t.serialize_element(&self.0)?;
            t.serialize_element(&self.1)?;
            t.end()
        }
    }
}
