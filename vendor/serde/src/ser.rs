//! Serialization traits, mirroring `serde::ser` signatures.

use std::fmt::Display;

/// Errors produced by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Build an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serialize `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serialization format, driven by [`Serialize`] impls.
///
/// Method-for-method compatible with the subset of `serde::Serializer` this
/// workspace's serializers implement (no `i128`/`u128`, no `collect_*`).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple sub-serializer.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-struct sub-serializer.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-variant sub-serializer.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant sub-serializer.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Sequence serialization.
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple serialization.
pub trait SerializeTuple {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-struct serialization.
pub trait SerializeTupleStruct {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-variant serialization.
pub trait SerializeTupleVariant {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map serialization.
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialize one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct serialization.
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct-variant serialization.
pub trait SerializeStructVariant {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}
