//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! Provides [`Bytes`] (an immutable, cheaply cloneable, sliceable byte
//! buffer backed by a refcounted [`ByteStore`]), [`BytesMut`] (a growable
//! buffer that freezes into `Bytes`), and the subset of the [`BufMut`] trait
//! the workspace uses. Integer `put_*` methods write big-endian, matching
//! the real crate.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Backing storage for a [`Bytes`] buffer. Beyond plain vectors, callers can
/// provide stores with custom ownership — e.g. pooled buffers whose `Drop`
/// returns the allocation to a free list (see `Bytes::from_shared`).
pub trait ByteStore: Send + Sync {
    /// The stored bytes.
    fn as_slice(&self) -> &[u8];
}

impl ByteStore for Vec<u8> {
    fn as_slice(&self) -> &[u8] {
        self
    }
}

impl ByteStore for Box<[u8]> {
    fn as_slice(&self) -> &[u8] {
        self
    }
}

/// An immutable, reference-counted byte buffer; clones and slices share the
/// same backing allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<dyn ByteStore>,
    off: usize,
    len: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::from(Vec::new())
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap an already-shared store without copying. The buffer covers the
    /// store's full `as_slice`; clones and sub-slices bump the refcount. The
    /// store's `Drop` runs when the last clone dies, which is what lets
    /// pooled stores recycle their allocation.
    pub fn from_shared(store: Arc<dyn ByteStore>) -> Self {
        let len = store.as_slice().len();
        Bytes {
            data: store,
            off: 0,
            len,
        }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// A static byte string, copied once.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-buffer sharing the same backing storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            off: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == **other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (**self).hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Resize to `new_len` bytes, filling any growth with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Remove and return the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    /// Drop all contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.data).fmt(f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

/// Write access to a growable byte buffer (big-endian integer writes, as in
/// the real `bytes` crate).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(&*s2, &[3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn put_writes_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0xAB);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        assert_eq!(&*m, &[0xAB, 1, 2, 3, 4, 5, 6]);
        let f = m.freeze();
        assert_eq!(f.len(), 7);
    }

    #[test]
    fn from_shared_runs_store_drop_when_last_clone_dies() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked(Vec<u8>);
        impl ByteStore for Tracked {
            fn as_slice(&self) -> &[u8] {
                &self.0
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let b = Bytes::from_shared(Arc::new(Tracked(vec![9, 8, 7])));
        let s = b.slice(1..3);
        assert_eq!(&*s, &[8, 7]);
        drop(b);
        assert_eq!(DROPS.load(Ordering::SeqCst), 0, "slice still alive");
        drop(s);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn split_to_takes_prefix() {
        let mut m = BytesMut::from(vec![1, 2, 3, 4]);
        let head = m.split_to(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(&*m, &[3, 4]);
    }
}
