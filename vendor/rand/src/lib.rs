//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the rand-0.9 API subset the workspace uses: `SmallRng` seeded
//! via [`SeedableRng::seed_from_u64`], and [`Rng::random`] /
//! [`Rng::random_range`] for the primitive types that appear in workloads.
//! The generator is xoshiro256++, which is what the real `SmallRng` uses on
//! 64-bit targets; determinism (same seed, same stream) is the property the
//! simulation relies on, and it holds here.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded with SplitMix64, like real rand).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::random`] can produce.
pub trait StandardSample {
    /// Produce one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

/// Ranges usable with [`Rng::random_range`].
///
/// Like real rand, implemented once per range *shape*, generic over the
/// element: that keeps type inference working for mixed-literal expressions
/// such as `500 + rng.random_range(0..500)` in a `u64` context.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty random_range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty random_range");
        T::sample_inclusive(rng, start, end)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i128).wrapping_sub(start as i128) as u64;
                start.wrapping_add(reject_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i128).wrapping_sub(start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(reject_below(rng, span + 1) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        start + f64::sample(rng) * (end - start)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        Self::sample_half_open(rng, start, end)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: f32, end: f32) -> f32 {
        start + f32::sample(rng) * (end - start)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: f32, end: f32) -> f32 {
        Self::sample_half_open(rng, start, end)
    }
}

/// Uniform draw from `[0, bound)` by rejection (unbiased).
fn reject_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// User-facing random-value methods (auto-implemented for every RngCore).
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly distributed value in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as real rand does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.random_range(0..3);
            assert!(w < 3);
            let x: u64 = r.random_range(1..=5);
            assert!((1..=5).contains(&x));
            let f: f64 = r.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bools_take_both_values() {
        let mut r = SmallRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| r.random::<bool>()).count();
        assert!(
            trues > 300 && trues < 700,
            "suspicious bool stream: {trues}"
        );
    }
}
