//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in a hermetic environment with no crates.io access,
//! so the external dependencies are replaced by minimal local shims exposing
//! exactly the API surface the workspace uses (see `vendor/README.md`).
//!
//! Here: `Mutex` / `MutexGuard` with the `parking_lot` calling convention
//! (no poisoning, `lock()` returns the guard directly), implemented over
//! `std::sync::Mutex`. Poison errors are impossible to surface through this
//! API, so a poisoned std mutex (a panic while holding the guard) simply
//! hands out the inner data again, matching parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive (parking_lot-compatible subset).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
