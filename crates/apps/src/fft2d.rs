//! The §4.2 workload: a distributed two-dimensional complex FFT.
//!
//! "Computing the 2DFFT with multiple processors is straightforward. [...]
//! After the first step, the processors distribute the results of their
//! computation to each other so that all processors have a column of data
//! for the second step."
//!
//! Two redistribution strategies are implemented, exactly the paper's
//! comparison:
//!
//! * [`Distribution::Multicast`] — "each processor [multicasts] its entire
//!   row to all the other processors. The problem with this approach is
//!   that each processor reads 65536 numbers of which only 256 are needed."
//! * [`Distribution::PointToPoint`] — "a better approach [...] is for each
//!   processor to send a different message to every other processor"
//!   containing only the data that receiver needs.
//!
//! The workload carries real spectral data and the result is verified
//! against the serial 2D FFT, so the comparison measures correct programs.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{BufMut, BytesMut};
use desim::{SimDuration, SimTime};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vorx::api::user_compute;
use vorx::collective::{self, CollMode, GroupCfg};
use vorx::hpcnet::{NodeAddr, Payload, Topology};
use vorx::{channel, multicast, VorxBuilder};

use crate::fft::{fft1d, fft2d_serial, fft_cost_ns, max_err, Complex};

/// How phase-1 results are redistributed for phase 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Multicast whole rows to everyone (§4.2's anti-pattern).
    Multicast,
    /// Send each processor only the elements it needs.
    PointToPoint,
}

/// How the stage barriers around redistribution are synchronized. The
/// barriers bracket the exchange (one before, one after) so no node starts
/// pumping data at a receiver still busy in its row FFTs, and no node
/// starts its column FFTs while a peer still owes it data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageSync {
    /// No barrier — the original free-running program.
    None,
    /// The point-to-point original: every node writes a token to node 0,
    /// which reads all of them and writes a release token back to each
    /// node in turn. Linear fan-in, linear fan-out.
    PointToPoint,
    /// A VORX collective barrier (DESIGN.md §16).
    Collective(CollMode),
}

/// Parameters of one distributed 2D-FFT run.
#[derive(Debug, Clone, Copy)]
pub struct Fft2dParams {
    /// Image is `n x n` complex values (power of two).
    pub n: usize,
    /// Number of processors (divides `n`).
    pub p: usize,
    /// Redistribution strategy.
    pub strategy: Distribution,
}

/// Measurements from one run.
#[derive(Debug, Clone)]
pub struct Fft2dResult {
    /// Total wall time of the parallel transform.
    pub elapsed: SimDuration,
    /// The longest any node spent in the redistribution phase.
    pub distribute_max: SimDuration,
    /// Payload bytes received per node during redistribution.
    pub bytes_rx: Vec<u64>,
    /// Per-node redistribution times.
    pub dist_times: Vec<SimDuration>,
    /// Max |err| of the parallel spectrum vs the serial transform.
    pub max_err: f64,
    /// The longest any node spent waiting in the stage barriers
    /// ([`SimDuration::ZERO`] under [`StageSync::None`]).
    pub barrier_max: SimDuration,
}

/// Complex values per multicast chunk (8-byte header + 62 x 16 = 1000 B).
const CHUNK: usize = 62;
/// Multicast group used by the workload.
const GID: u16 = 1;
/// Collective group id used by [`StageSync::Collective`].
const BARRIER_GROUP: u32 = 9;

fn pack_chunk(row: usize, off: usize, data: &[Complex]) -> Payload {
    let mut b = BytesMut::with_capacity(8 + data.len() * 16);
    b.put_u32(row as u32);
    b.put_u32(off as u32);
    for c in data {
        b.put_slice(&c.to_bytes());
    }
    Payload::Data(b.freeze())
}

fn parse_chunk(p: &Payload) -> (usize, usize, Vec<Complex>) {
    let b = p.bytes().expect("chunk carries data");
    let row = u32::from_be_bytes(b[0..4].try_into().expect("4")) as usize;
    let off = u32::from_be_bytes(b[4..8].try_into().expect("4")) as usize;
    let data = b[8..].chunks_exact(16).map(Complex::from_bytes).collect();
    (row, off, data)
}

fn pack_block(rows: &[Vec<Complex>], col_range: std::ops::Range<usize>) -> Payload {
    let mut b = BytesMut::with_capacity(rows.len() * col_range.len() * 16);
    for r in rows {
        for c in &r[col_range.clone()] {
            b.put_slice(&c.to_bytes());
        }
    }
    Payload::Data(b.freeze())
}

fn parse_block(p: &Payload) -> Vec<Complex> {
    p.bytes()
        .expect("block carries data")
        .chunks_exact(16)
        .map(Complex::from_bytes)
        .collect()
}

#[derive(Default)]
struct Collected {
    /// col index -> transformed column.
    cols: HashMap<usize, Vec<Complex>>,
    bytes_rx: Vec<u64>,
    dist_time: Vec<SimDuration>,
    bar_time: Vec<SimDuration>,
}

/// One node's runtime handle on the stage-barrier engine.
enum Bar {
    None,
    /// Node 0's channel to every other node.
    Root(Vec<channel::ChannelHandle>),
    /// A non-root node's channel to node 0.
    Leaf(channel::ChannelHandle),
    Coll(collective::Collective),
}

/// Block until every node has entered the barrier; see [`StageSync`].
fn stage_barrier(ctx: &vorx::VCtx, bar: &Bar) {
    match bar {
        Bar::None => {}
        Bar::Root(chans) => {
            for ch in chans {
                ch.read(ctx).expect("barrier peer closed");
            }
            for ch in chans {
                ch.write(ctx, Payload::copy_from(b"go"))
                    .expect("barrier peer closed");
            }
        }
        Bar::Leaf(ch) => {
            ch.write(ctx, Payload::copy_from(b"in"))
                .expect("barrier root closed");
            ch.read(ctx).expect("barrier root closed");
        }
        Bar::Coll(c) => c.barrier(ctx),
    }
}

/// Build a topology that fits `p` endpoints.
pub fn topology_for(p: usize) -> Topology {
    if p <= 12 {
        Topology::single_cluster(p).expect("p <= 12")
    } else {
        let clusters = p.div_ceil(4);
        Topology::incomplete_hypercube(clusters, 4).expect("valid hypercube")
    }
}

/// Run the distributed 2D FFT; see module docs.
pub fn run_fft2d(params: Fft2dParams, seed: u64) -> Fft2dResult {
    run_fft2d_sync(params, seed, StageSync::None)
}

/// Run the distributed 2D FFT with stage barriers bracketing the
/// redistribution, synchronized per `sync`. The spectrum is identical
/// across sync modes — the barriers only change *when* nodes move between
/// phases — so the modes race on synchronization cost alone.
pub fn run_fft2d_sync(params: Fft2dParams, seed: u64, sync: StageSync) -> Fft2dResult {
    let Fft2dParams { n, p, strategy } = params;
    assert!(n.is_power_of_two() && p >= 2 && n % p == 0, "n={n} p={p}");
    let rows_per = n / p;
    let cols_per = n / p;

    // The input image and its serial reference transform.
    let mut rng = SmallRng::seed_from_u64(seed);
    let img: Vec<Complex> = (0..n * n)
        .map(|_| Complex::new(rng.random::<f64>(), 0.0))
        .collect();
    let mut reference = img.clone();
    fft2d_serial(&mut reference, n);

    let mut v = VorxBuilder::with_topology(topology_for(p))
        .trace(false)
        .build();
    if let StageSync::Collective(mode) = sync {
        collective::register_group(
            &mut v.world(),
            &GroupCfg {
                group: BARRIER_GROUP,
                members: (0..p).map(|q| NodeAddr(q as u32)).collect(),
                mode,
            },
        );
    }
    let collected = Arc::new(Mutex::new(Collected {
        bytes_rx: vec![0; p],
        dist_time: vec![SimDuration::ZERO; p],
        bar_time: vec![SimDuration::ZERO; p],
        ..Default::default()
    }));

    for me in 0..p {
        let my_rows: Vec<Vec<Complex>> = (0..rows_per)
            .map(|r| img[(me * rows_per + r) * n..(me * rows_per + r + 1) * n].to_vec())
            .collect();
        let coll = Arc::clone(&collected);
        v.spawn(format!("n{me}:fft"), move |ctx| {
            let node = NodeAddr(me as u32);
            let mut rows = my_rows;

            // --- Setup: establish communications before computing ---
            // (Rendezvous is application startup, not part of the
            // redistribution being measured.)
            let mut p2p_out = Vec::new();
            let mut p2p_in = Vec::new();
            match strategy {
                Distribution::Multicast => multicast::join(&ctx, node, GID),
                Distribution::PointToPoint => {
                    // Both ends of each pair must open the pair's two
                    // channels in the same order (lower name first), or the
                    // blocking opens cross-wait and deadlock.
                    for q in 0..p {
                        if q == me {
                            continue;
                        }
                        let (first, second) = if me < q {
                            (format!("fft.{me}.{q}"), format!("fft.{q}.{me}"))
                        } else {
                            (format!("fft.{q}.{me}"), format!("fft.{me}.{q}"))
                        };
                        let a = channel::open(&ctx, node, &first);
                        let b = channel::open(&ctx, node, &second);
                        let (o, i) = if me < q { (a, b) } else { (b, a) };
                        p2p_out.push((q, o));
                        p2p_in.push((q, i));
                    }
                }
            }
            // Barrier rendezvous is part of application startup too.
            let bar = match sync {
                StageSync::None => Bar::None,
                StageSync::PointToPoint => {
                    if me == 0 {
                        Bar::Root(
                            (1..p)
                                .map(|q| channel::open(&ctx, node, &format!("fftbar.e{q}")))
                                .collect(),
                        )
                    } else {
                        Bar::Leaf(channel::open(&ctx, node, &format!("fftbar.e{me}")))
                    }
                }
                StageSync::Collective(_) => {
                    Bar::Coll(collective::attach(&ctx, node, BARRIER_GROUP))
                }
            };
            let mut bar_time = SimDuration::ZERO;

            // --- Phase 1: 1D FFT of every owned row ---
            user_compute(
                &ctx,
                node,
                SimDuration::from_ns(fft_cost_ns(n) * rows_per as u64),
            );
            for r in &mut rows {
                fft1d(r);
            }

            // No node starts pumping data at a receiver still busy in its
            // row FFTs.
            let tb = ctx.now();
            stage_barrier(&ctx, &bar);
            bar_time += ctx.now() - tb;

            // --- Redistribution ---
            let t0 = ctx.now();
            let my_cols = me * cols_per..(me + 1) * cols_per;
            // cols[c][r]: column data for phase 2.
            let mut cols = vec![vec![Complex::ZERO; n]; cols_per];
            // Own rows contribute locally.
            for (ri, r) in rows.iter().enumerate() {
                for (ci, c) in my_cols.clone().enumerate() {
                    cols[ci][me * rows_per + ri] = r[c];
                }
            }
            let mut bytes_rx = 0u64;
            match strategy {
                Distribution::Multicast => {
                    let others: Vec<NodeAddr> = (0..p)
                        .filter(|q| *q != me)
                        .map(|q| NodeAddr(q as u32))
                        .collect();
                    for (ri, r) in rows.iter().enumerate() {
                        let row = me * rows_per + ri;
                        let mut off = 0;
                        while off < n {
                            let end = (off + CHUNK).min(n);
                            multicast::mwrite(
                                &ctx,
                                node,
                                GID,
                                others.clone(),
                                pack_chunk(row, off, &r[off..end]),
                            );
                            off = end;
                        }
                    }
                    // Receive everyone else's rows; keep only our columns.
                    let chunks_per_row = n.div_ceil(CHUNK);
                    let expect = (p - 1) * rows_per * chunks_per_row;
                    for _ in 0..expect {
                        let (_src, payload) = multicast::mread(&ctx, node, GID);
                        bytes_rx += u64::from(payload.len());
                        let (row, off, data) = parse_chunk(&payload);
                        for (i, val) in data.iter().enumerate() {
                            let c = off + i;
                            if my_cols.contains(&c) {
                                cols[c - my_cols.start][row] = *val;
                            }
                        }
                    }
                }
                Distribution::PointToPoint => {
                    // Staggered all-to-all: in wave k, node `me` writes to
                    // peer `me + k` — without this, every node would write
                    // to node 0 first and the exchange would convoy through
                    // one hot receiver at a time.
                    let by_q: std::collections::HashMap<usize, _> =
                        p2p_out.iter().map(|(q, ch)| (*q, *ch)).collect();
                    for k in 1..p {
                        let q = (me + k) % p;
                        let range = q * cols_per..(q + 1) * cols_per;
                        by_q[&q]
                            .write(&ctx, pack_block(&rows, range))
                            .expect("peer closed mid-exchange");
                    }
                    // Receive our columns of everyone else's rows.
                    for (q, ch) in &p2p_in {
                        let payload = ch.read(&ctx).unwrap();
                        bytes_rx += u64::from(payload.len());
                        let data = parse_block(&payload);
                        for ri in 0..rows_per {
                            for ci in 0..cols_per {
                                cols[ci][q * rows_per + ri] = data[ri * cols_per + ci];
                            }
                        }
                    }
                }
            }
            let dist = ctx.now() - t0;

            // No node starts its column FFTs while a peer still owes data.
            let tb = ctx.now();
            stage_barrier(&ctx, &bar);
            bar_time += ctx.now() - tb;

            // --- Phase 2: 1D FFT of every owned column ---
            user_compute(
                &ctx,
                node,
                SimDuration::from_ns(fft_cost_ns(n) * cols_per as u64),
            );
            for c in &mut cols {
                fft1d(c);
            }

            let mut g = coll.lock();
            g.bytes_rx[me] = bytes_rx;
            g.dist_time[me] = dist;
            g.bar_time[me] = bar_time;
            for (ci, data) in cols.into_iter().enumerate() {
                g.cols.insert(my_cols.start + ci, data);
            }
        });
    }

    let end = v.run_all();
    let g = collected.lock();
    // Verify against the serial transform.
    let mut err: f64 = 0.0;
    for (c, data) in &g.cols {
        for r in 0..n {
            err = err.max((data[r] - reference[r * n + c]).abs());
        }
    }
    assert_eq!(g.cols.len(), n, "missing columns in result");
    let _ = max_err; // (see fft::max_err for slice-level comparison)
    Fft2dResult {
        elapsed: end - SimTime::ZERO,
        distribute_max: g.dist_time.iter().copied().max().unwrap_or_default(),
        bytes_rx: g.bytes_rx.clone(),
        dist_times: g.dist_time.clone(),
        max_err: err,
        barrier_max: g.bar_time.iter().copied().max().unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_result_matches_serial_fft() {
        let r = run_fft2d(
            Fft2dParams {
                n: 16,
                p: 4,
                strategy: Distribution::PointToPoint,
            },
            7,
        );
        assert!(r.max_err < 1e-9, "numeric mismatch: {}", r.max_err);
    }

    #[test]
    fn multicast_result_matches_serial_fft() {
        let r = run_fft2d(
            Fft2dParams {
                n: 16,
                p: 4,
                strategy: Distribution::Multicast,
            },
            7,
        );
        assert!(r.max_err < 1e-9, "numeric mismatch: {}", r.max_err);
    }

    #[test]
    fn multicast_receives_p_times_more_data() {
        // §4.2: multicast makes every node read the whole matrix; p2p only
        // 1/p of it. (At trivial scales multicast can still win on setup
        // overheads — the paper's point is about growth with p, so test at
        // a scale where the volume effect dominates.)
        let n = 32;
        let p = 8;
        let mc = run_fft2d(
            Fft2dParams {
                n,
                p,
                strategy: Distribution::Multicast,
            },
            7,
        );
        let pp = run_fft2d(
            Fft2dParams {
                n,
                p,
                strategy: Distribution::PointToPoint,
            },
            7,
        );
        let mc_bytes = mc.bytes_rx[0];
        let pp_bytes = pp.bytes_rx[0];
        assert!(
            mc_bytes > 3 * pp_bytes,
            "multicast {mc_bytes}B should dwarf p2p {pp_bytes}B"
        );
        // And it costs time: redistribution is slower under multicast.
        assert!(
            mc.distribute_max > pp.distribute_max,
            "multicast {:?} should be slower than p2p {:?}",
            mc.distribute_max,
            pp.distribute_max
        );
    }

    #[test]
    fn collective_stage_barrier_beats_point_to_point() {
        let run = |sync| {
            run_fft2d_sync(
                Fft2dParams {
                    n: 32,
                    p: 8,
                    strategy: Distribution::PointToPoint,
                },
                7,
                sync,
            )
        };
        let pp = run(StageSync::PointToPoint);
        let innet = run(StageSync::Collective(CollMode::InNetwork));
        let tree = run(StageSync::Collective(CollMode::SoftwareTree { radix: 2 }));
        for r in [&pp, &innet, &tree] {
            assert!(r.max_err < 1e-9, "numeric mismatch: {}", r.max_err);
            assert!(r.barrier_max > SimDuration::ZERO);
        }
        assert!(
            innet.barrier_max < pp.barrier_max,
            "in-network barrier {:?} should beat the linear barrier {:?}",
            innet.barrier_max,
            pp.barrier_max
        );
        assert!(
            innet.barrier_max < tree.barrier_max,
            "in-network barrier {:?} should beat the software tree {:?}",
            innet.barrier_max,
            tree.barrier_max
        );
    }

    #[test]
    fn unsynchronized_run_is_unchanged_by_the_barrier_machinery() {
        let params = Fft2dParams {
            n: 16,
            p: 4,
            strategy: Distribution::PointToPoint,
        };
        let plain = run_fft2d(params, 7);
        let none = run_fft2d_sync(params, 7, StageSync::None);
        assert_eq!(plain.elapsed, none.elapsed);
        assert_eq!(none.barrier_max, SimDuration::ZERO);
    }
}
