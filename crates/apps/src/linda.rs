//! A Linda tuple-space kernel (§1, §4.1).
//!
//! The S/NET's Linda kernel (Carriero & Gelernter) is one of the paper's
//! marquee prior applications, and the Linda implementors are the §4.1
//! users who "needed a different type of semantics" than channels. This
//! stand-in implements the classic distributed tuple space:
//!
//! * `out(t)` deposits tuple `t`;
//! * `in(p)` blocks until a tuple matches pattern `p`, removing it;
//! * `rd(p)` blocks until a match, without removing it.
//!
//! Tuples are partitioned across the participating nodes by a hash of
//! their first field (the classic kernel strategy), so every operation is
//! one message to the owning node's kernel process. Patterns must therefore
//! have a concrete first field — the usual first-field restriction of
//! hash-partitioned Linda kernels.

use bytes::{BufMut, BytesMut};
use vorx::api::compute_ns;
use vorx::cpu::CpuCat;
use vorx::hpcnet::{NodeAddr, Payload};
use vorx::udco::{self, UdcoMode};
use vorx::{VCtx, VorxSim};

/// A tuple field value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Val {
    /// An integer.
    Int(i64),
    /// A string.
    Str(String),
}

/// A pattern field: match a concrete value or anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pat {
    /// Field must equal this value.
    Eq(Val),
    /// Wildcard ("formal" in Linda terminology).
    Any,
}

/// A tuple.
pub type Tuple = Vec<Val>;
/// A pattern.
pub type Pattern = Vec<Pat>;

/// Does `p` match `t`?
pub fn matches(p: &Pattern, t: &Tuple) -> bool {
    p.len() == t.len()
        && p.iter().zip(t).all(|(pf, tf)| match pf {
            Pat::Any => true,
            Pat::Eq(v) => v == tf,
        })
}

fn hash_val(v: &Val) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    match v {
        Val::Int(i) => eat(&i.to_be_bytes()),
        Val::Str(s) => eat(s.as_bytes()),
    }
    h
}

// --- wire encoding ---

fn put_val(b: &mut BytesMut, v: &Val) {
    match v {
        Val::Int(i) => {
            b.put_u8(0);
            b.put_i64(*i);
        }
        Val::Str(s) => {
            b.put_u8(1);
            b.put_u16(s.len() as u16);
            b.put_slice(s.as_bytes());
        }
    }
}

fn get_val(b: &[u8], off: &mut usize) -> Val {
    let tag = b[*off];
    *off += 1;
    match tag {
        0 => {
            let v = i64::from_be_bytes(b[*off..*off + 8].try_into().expect("8"));
            *off += 8;
            Val::Int(v)
        }
        1 => {
            let n = u16::from_be_bytes([b[*off], b[*off + 1]]) as usize;
            *off += 2;
            let s = String::from_utf8(b[*off..*off + n].to_vec()).expect("utf8");
            *off += n;
            Val::Str(s)
        }
        x => panic!("bad value tag {x}"),
    }
}

fn encode_tuple(t: &Tuple) -> Payload {
    let mut b = BytesMut::new();
    b.put_u8(t.len() as u8);
    for v in t {
        put_val(&mut b, v);
    }
    Payload::Data(b.freeze())
}

fn decode_tuple(p: &Payload) -> Tuple {
    let b = p.bytes().expect("tuple carries data");
    let n = b[0] as usize;
    let mut off = 1;
    (0..n).map(|_| get_val(b, &mut off)).collect()
}

/// Ops carried to the owner kernel. `reply` is the requester's node.
#[derive(Debug, Clone)]
enum Op {
    Out(Tuple),
    In(Pattern, NodeAddr),
    Rd(Pattern, NodeAddr),
}

fn encode_op(op: &Op) -> Payload {
    let mut b = BytesMut::new();
    let (tag, reply) = match op {
        Op::Out(_) => (0u8, 0u32),
        Op::In(_, r) => (1, r.0),
        Op::Rd(_, r) => (2, r.0),
    };
    b.put_u8(tag);
    b.put_u32(reply);
    match op {
        Op::Out(t) => {
            b.put_u8(t.len() as u8);
            for v in t {
                put_val(&mut b, v);
            }
        }
        Op::In(p, _) | Op::Rd(p, _) => {
            b.put_u8(p.len() as u8);
            for f in p {
                match f {
                    Pat::Any => b.put_u8(2),
                    Pat::Eq(v) => {
                        b.put_u8(3);
                        put_val(&mut b, v);
                    }
                }
            }
        }
    }
    Payload::Data(b.freeze())
}

fn decode_op(p: &Payload) -> Op {
    let b = p.bytes().expect("op carries data");
    let tag = b[0];
    let reply = NodeAddr(u32::from_be_bytes([b[1], b[2], b[3], b[4]]));
    let n = b[5] as usize;
    let mut off = 6;
    match tag {
        0 => Op::Out((0..n).map(|_| get_val(b, &mut off)).collect()),
        1 | 2 => {
            let pat: Pattern = (0..n)
                .map(|_| {
                    let ft = b[off];
                    off += 1;
                    match ft {
                        2 => Pat::Any,
                        3 => Pat::Eq(get_val(b, &mut off)),
                        x => panic!("bad pattern tag {x}"),
                    }
                })
                .collect();
            if tag == 1 {
                Op::In(pat, reply)
            } else {
                Op::Rd(pat, reply)
            }
        }
        x => panic!("bad op tag {x}"),
    }
}

/// UDCO tag for requests to the tuple-space kernel.
const REQ_TAG: u16 = 60;
/// UDCO tag for replies to clients.
const REP_TAG: u16 = 61;
/// Modeled matching cost per op at the kernel.
const MATCH_NS: u64 = 25_000;

/// A handle to the distributed tuple space.
#[derive(Debug, Clone)]
pub struct TupleSpace {
    /// Nodes running tuple-space kernels.
    pub participants: Vec<NodeAddr>,
}

impl TupleSpace {
    /// Create a space over `participants` and spawn the kernel process on
    /// each. Client nodes must also call [`TupleSpace::join`] once before
    /// using the space.
    pub fn spawn(v: &VorxSim, participants: Vec<NodeAddr>) -> TupleSpace {
        for &node in &participants {
            v.spawn(format!("n{}:linda-kernel", node.0), move |ctx| {
                kernel(&ctx, node);
            });
        }
        TupleSpace { participants }
    }

    /// Register the reply object on a client node (once per node).
    pub fn join(&self, ctx: &VCtx, me: NodeAddr) {
        udco::register(ctx, me, REP_TAG, UdcoMode::Interrupt);
    }

    fn owner(&self, first: &Val) -> NodeAddr {
        self.participants[(hash_val(first) % self.participants.len() as u64) as usize]
    }

    fn pattern_owner(&self, p: &Pattern) -> NodeAddr {
        match p.first() {
            Some(Pat::Eq(v)) => self.owner(v),
            _ => panic!("Linda patterns need a concrete first field (kernel hashing)"),
        }
    }

    /// Deposit a tuple (asynchronous, like the original `out`).
    pub fn out(&self, ctx: &VCtx, me: NodeAddr, t: Tuple) {
        assert!(!t.is_empty(), "empty tuples are not allowed");
        let owner = self.owner(&t[0]);
        udco::send(ctx, me, owner, REQ_TAG, 0, encode_op(&Op::Out(t)));
    }

    fn request(&self, ctx: &VCtx, me: NodeAddr, op: Op, token: u64) -> Tuple {
        let owner = match &op {
            Op::In(p, _) | Op::Rd(p, _) => self.pattern_owner(p),
            Op::Out(_) => unreachable!(),
        };
        udco::send(ctx, me, owner, REQ_TAG, token, encode_op(&op));
        // Wait for our reply (several client processes may share this
        // node's reply object; take only the message with our token).
        let pid = ctx.pid();
        let payload = ctx.wait_until(move |w, _| {
            let u = w
                .node_mut(me)
                .udcos
                .get_mut(&REP_TAG)
                .expect("join() the space before using it");
            match u.rx.iter().position(|m| m.seq == token) {
                Some(i) => Some(u.rx.remove(i).expect("indexed").payload),
                None => {
                    u.rx_waiters.register(pid);
                    None
                }
            }
        });
        decode_tuple(&payload)
    }

    /// Blocking `in`: wait for a match and remove it.
    pub fn in_(&self, ctx: &VCtx, me: NodeAddr, p: Pattern) -> Tuple {
        let token = ctx.with(|w, _| w.token());
        self.request(ctx, me, Op::In(p, me), token)
    }

    /// Blocking `rd`: wait for a match without removing it.
    pub fn rd(&self, ctx: &VCtx, me: NodeAddr, p: Pattern) -> Tuple {
        let token = ctx.with(|w, _| w.token());
        self.request(ctx, me, Op::Rd(p, me), token)
    }
}

/// The per-node tuple-space kernel: stores the partition, satisfies
/// blocked requests in arrival order.
fn kernel(ctx: &VCtx, node: NodeAddr) {
    udco::register(ctx, node, REQ_TAG, UdcoMode::Interrupt);
    let mut store: Vec<Tuple> = Vec::new();
    // Pending (pattern, requester, token, is_in) in arrival order.
    let mut pending: Vec<(Pattern, NodeAddr, u64, bool)> = Vec::new();
    loop {
        let m = udco::recv(ctx, node, REQ_TAG);
        compute_ns(ctx, node, CpuCat::User, MATCH_NS);
        match decode_op(&m.payload) {
            Op::Out(t) => {
                // Satisfy pending readers first (non-consuming), then the
                // first pending `in` (consuming); otherwise store.
                let mut consumed = false;
                let mut still_pending = Vec::new();
                for (p, who, token, is_in) in pending.drain(..) {
                    if !consumed && matches(&p, &t) {
                        udco::send(ctx, node, who, REP_TAG, token, encode_tuple(&t));
                        if is_in {
                            consumed = true;
                        }
                    } else {
                        still_pending.push((p, who, token, is_in));
                    }
                }
                pending = still_pending;
                if !consumed {
                    store.push(t);
                }
            }
            Op::In(p, who) => {
                if let Some(i) = store.iter().position(|t| matches(&p, t)) {
                    let t = store.remove(i);
                    udco::send(ctx, node, who, REP_TAG, m.seq, encode_tuple(&t));
                } else {
                    pending.push((p, who, m.seq, true));
                }
            }
            Op::Rd(p, who) => {
                if let Some(t) = store.iter().find(|t| matches(&p, t)) {
                    let t = t.clone();
                    udco::send(ctx, node, who, REP_TAG, m.seq, encode_tuple(&t));
                } else {
                    pending.push((p, who, m.seq, false));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use vorx::VorxBuilder;

    fn i(v: i64) -> Val {
        Val::Int(v)
    }
    fn s(v: &str) -> Val {
        Val::Str(v.into())
    }

    #[test]
    fn matching_semantics() {
        let t = vec![s("job"), i(7)];
        assert!(matches(&vec![Pat::Eq(s("job")), Pat::Any], &t));
        assert!(matches(&vec![Pat::Eq(s("job")), Pat::Eq(i(7))], &t));
        assert!(!matches(&vec![Pat::Eq(s("job")), Pat::Eq(i(8))], &t));
        assert!(!matches(&vec![Pat::Eq(s("job"))], &t)); // arity
    }

    #[test]
    fn encoding_round_trips() {
        let t = vec![s("result"), i(-42), s("π")];
        assert_eq!(decode_tuple(&encode_tuple(&t)), t);
        let op = Op::In(vec![Pat::Eq(s("x")), Pat::Any], NodeAddr(3));
        match decode_op(&encode_op(&op)) {
            Op::In(p, who) => {
                assert_eq!(p, vec![Pat::Eq(s("x")), Pat::Any]);
                assert_eq!(who, NodeAddr(3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_then_in_across_nodes() {
        let mut v = VorxBuilder::single_cluster(4).build();
        let ts = TupleSpace::spawn(&v, vec![NodeAddr(0), NodeAddr(1)]);
        let ts2 = ts.clone();
        v.spawn("n2:producer", move |ctx| {
            ts2.join(&ctx, NodeAddr(2));
            ts2.out(&ctx, NodeAddr(2), vec![s("job"), i(1)]);
            ts2.out(&ctx, NodeAddr(2), vec![s("job"), i(2)]);
        });
        let ts3 = ts;
        v.spawn("n3:consumer", move |ctx| {
            ts3.join(&ctx, NodeAddr(3));
            let a = ts3.in_(&ctx, NodeAddr(3), vec![Pat::Eq(s("job")), Pat::Any]);
            let b = ts3.in_(&ctx, NodeAddr(3), vec![Pat::Eq(s("job")), Pat::Any]);
            let mut got: Vec<i64> = [a, b]
                .iter()
                .map(|t| match &t[1] {
                    Val::Int(x) => *x,
                    _ => panic!(),
                })
                .collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        });
        // Kernels run forever; drive to quiescence and check only clients.
        let report = v.run();
        let stuck: Vec<_> = report
            .parked
            .iter()
            .filter(|(_, n)| !n.contains("linda-kernel"))
            .collect();
        assert!(stuck.is_empty(), "clients stuck: {stuck:?}");
    }

    #[test]
    fn rd_does_not_consume() {
        let mut v = VorxBuilder::single_cluster(3).build();
        let ts = TupleSpace::spawn(&v, vec![NodeAddr(0)]);
        let ts2 = ts;
        v.spawn("n1:app", move |ctx| {
            ts2.join(&ctx, NodeAddr(1));
            ts2.out(&ctx, NodeAddr(1), vec![s("cfg"), i(99)]);
            let r1 = ts2.rd(&ctx, NodeAddr(1), vec![Pat::Eq(s("cfg")), Pat::Any]);
            let r2 = ts2.rd(&ctx, NodeAddr(1), vec![Pat::Eq(s("cfg")), Pat::Any]);
            assert_eq!(r1, r2);
            // `in` then consumes it.
            let t = ts2.in_(&ctx, NodeAddr(1), vec![Pat::Eq(s("cfg")), Pat::Any]);
            assert_eq!(t[1], i(99));
        });
        let report = v.run();
        assert!(report
            .parked
            .iter()
            .all(|(_, n)| n.contains("linda-kernel")));
    }

    #[test]
    fn blocking_in_waits_for_future_out() {
        let mut v = VorxBuilder::single_cluster(4).build();
        let ts = TupleSpace::spawn(&v, vec![NodeAddr(0)]);
        let ts2 = ts.clone();
        v.spawn("n1:waiter", move |ctx| {
            ts2.join(&ctx, NodeAddr(1));
            let t0 = ctx.now();
            let t = ts2.in_(&ctx, NodeAddr(1), vec![Pat::Eq(s("late")), Pat::Any]);
            assert_eq!(t[1], i(5));
            assert!(ctx.now() - t0 > SimDuration::from_ms(4));
        });
        let ts3 = ts;
        v.spawn("n2:late-producer", move |ctx| {
            ts3.join(&ctx, NodeAddr(2));
            ctx.sleep(SimDuration::from_ms(5));
            ts3.out(&ctx, NodeAddr(2), vec![s("late"), i(5)]);
        });
        let report = v.run();
        assert!(report
            .parked
            .iter()
            .all(|(_, n)| n.contains("linda-kernel")));
    }

    #[test]
    fn pending_rds_and_in_satisfied_by_one_out() {
        let mut v = VorxBuilder::single_cluster(5).build();
        let ts = TupleSpace::spawn(&v, vec![NodeAddr(0)]);
        for n in [1u32, 2] {
            let ts = ts.clone();
            v.spawn(format!("n{n}:rd"), move |ctx| {
                ts.join(&ctx, NodeAddr(n));
                let t = ts.rd(&ctx, NodeAddr(n), vec![Pat::Eq(s("go"))]);
                assert_eq!(t, vec![s("go")]);
            });
        }
        let ts_in = ts.clone();
        v.spawn("n3:in", move |ctx| {
            ts_in.join(&ctx, NodeAddr(3));
            let t = ts_in.in_(&ctx, NodeAddr(3), vec![Pat::Eq(s("go"))]);
            assert_eq!(t, vec![s("go")]);
        });
        let ts_out = ts;
        v.spawn("n4:out", move |ctx| {
            ts_out.join(&ctx, NodeAddr(4));
            ctx.sleep(SimDuration::from_ms(10)); // let everyone block
            ts_out.out(&ctx, NodeAddr(4), vec![s("go")]);
        });
        let report = v.run();
        let stuck: Vec<_> = report
            .parked
            .iter()
            .filter(|(_, n)| !n.contains("linda-kernel"))
            .collect();
        assert!(
            stuck.is_empty(),
            "one out should satisfy 2 rds + 1 in: {stuck:?}"
        );
    }

    #[test]
    fn master_worker_pattern() {
        // The canonical Linda program: a master drops jobs, workers grab
        // them with `in` and return results.
        let mut v = VorxBuilder::single_cluster(6).build();
        let ts = TupleSpace::spawn(&v, vec![NodeAddr(0), NodeAddr(1)]);
        const JOBS: i64 = 12;
        for wk in 2..5u32 {
            let ts = ts.clone();
            v.spawn(format!("n{wk}:worker"), move |ctx| {
                ts.join(&ctx, NodeAddr(wk));
                loop {
                    let t = ts.in_(&ctx, NodeAddr(wk), vec![Pat::Eq(s("job")), Pat::Any]);
                    let Val::Int(x) = t[1] else { panic!() };
                    if x < 0 {
                        break; // poison pill
                    }
                    vorx::api::user_compute(&ctx, NodeAddr(wk), SimDuration::from_ms(1));
                    ts.out(&ctx, NodeAddr(wk), vec![s("done"), i(x * x)]);
                }
            });
        }
        let ts_m = ts;
        v.spawn("n5:master", move |ctx| {
            ts_m.join(&ctx, NodeAddr(5));
            for x in 0..JOBS {
                ts_m.out(&ctx, NodeAddr(5), vec![s("job"), i(x)]);
            }
            let mut sum = 0;
            for _ in 0..JOBS {
                let t = ts_m.in_(&ctx, NodeAddr(5), vec![Pat::Eq(s("done")), Pat::Any]);
                let Val::Int(x) = t[1] else { panic!() };
                sum += x;
            }
            assert_eq!(sum, (0..JOBS).map(|x| x * x).sum::<i64>());
            for _ in 0..3 {
                ts_m.out(&ctx, NodeAddr(5), vec![s("job"), i(-1)]); // poison
            }
        });
        let report = v.run();
        let stuck: Vec<_> = report
            .parked
            .iter()
            .filter(|(_, n)| !n.contains("linda-kernel"))
            .collect();
        assert!(stuck.is_empty(), "{stuck:?}");
    }
}
