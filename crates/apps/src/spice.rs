//! A parallel SPICE-like sparse solver (§4.1).
//!
//! "User-defined communications objects were successfully used in a parallel
//! implementation of SPICE that needed very low latency communications to
//! solve large sparse linear systems. It was able to obtain 60 µsec software
//! latencies for 64 byte messages with direct access to the communications
//! hardware and no low-level protocol."
//!
//! The stand-in workload is a Jacobi iteration on the 1D Poisson system
//! `tridiag(-1, 2, -1) x = b`, block-partitioned across nodes with halo
//! exchange over **raw** UDCOs (64-byte boundary messages, no protocol).
//! The parallel iterate is verified bit-exactly against the serial Jacobi
//! iterate, so the experiment measures a correct solver.

use std::sync::Arc;

use bytes::{BufMut, BytesMut};
use desim::{SimDuration, SimTime};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vorx::api::user_compute;
use vorx::collective::{self, CollMode, GroupCfg};
use vorx::hpcnet::combine::CombOp;
use vorx::hpcnet::{NodeAddr, Payload};
use vorx::udco::{self, UdcoMode};
use vorx::VorxBuilder;

use crate::fft2d::topology_for;

/// Boundary value sent toward the left neighbour.
const TAG_TO_LEFT: u16 = 40;
/// Boundary value sent toward the right neighbour.
const TAG_TO_RIGHT: u16 = 41;
/// A node's local residual contribution, gathered to node 0.
const TAG_RESID: u16 = 42;
/// The folded global residual, scattered back from node 0.
const TAG_RESID_ANS: u16 = 43;
/// Collective group id used by [`ResidCheck::Collective`].
const RESID_GROUP: u32 = 31;
/// The paper's quoted message size.
const MSG_BYTES: u32 = 64;

/// Modeled time of one Jacobi update (two fp adds + one multiply on the
/// 68882, plus indexing).
const JACOBI_NS_PER_ELEM: u64 = 20_000;

/// Parameters of one solver run.
#[derive(Debug, Clone, Copy)]
pub struct SpiceParams {
    /// Unknowns.
    pub m: usize,
    /// Processors (divides `m`).
    pub p: usize,
    /// Jacobi iterations.
    pub iters: usize,
}

/// How the periodic global residual check is synchronized (§4.1 meets
/// DESIGN.md §16: the convergence test is a global max-reduction, and it can
/// ride the combining fabric instead of convoying through node 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidCheck {
    /// No in-run residual check — the original solver.
    None,
    /// The point-to-point original: every node raw-sends its local residual
    /// to node 0, which folds the max and raw-sends the answer back to each
    /// node in turn. Linear fan-in, linear fan-out.
    PointToPoint,
    /// A VORX collective max-allreduce over the residual bits.
    Collective(CollMode),
}

/// Results of one solver run.
#[derive(Debug, Clone)]
pub struct SpiceResult {
    /// Total wall time.
    pub elapsed: SimDuration,
    /// Mean time per iteration.
    pub per_iter: SimDuration,
    /// Max |parallel - serial| after the same number of iterations.
    pub max_err: f64,
    /// Final residual infinity-norm (solver sanity).
    pub residual: f64,
    /// Global residual checks performed inside the run.
    pub checks: usize,
    /// Global residual reported by the last in-run check (NaN when none
    /// ran). Identical across check modes — the iterate is deterministic.
    pub checked_residual: f64,
}

fn pack_boundary(iter: usize, v: f64) -> Payload {
    // 64-byte message: iteration tag, the value, padding (SPICE sent small
    // vectors; we model its quoted size).
    let mut b = BytesMut::with_capacity(MSG_BYTES as usize);
    b.put_u64(iter as u64);
    b.put_f64(v);
    b.resize(MSG_BYTES as usize, 0);
    Payload::Data(b.freeze())
}

fn parse_boundary(p: &Payload) -> (usize, f64) {
    let b = p.bytes().expect("boundary carries data");
    (
        u64::from_be_bytes(b[0..8].try_into().expect("8")) as usize,
        f64::from_be_bytes(b[8..16].try_into().expect("8")),
    )
}

fn jacobi_sweep(x: &[f64], b: &[f64], left: f64, right: f64, out: &mut [f64]) {
    let k = x.len();
    for i in 0..k {
        let xl = if i == 0 { left } else { x[i - 1] };
        let xr = if i == k - 1 { right } else { x[i + 1] };
        out[i] = 0.5 * (b[i] + xl + xr);
    }
}

/// Serial reference: the same Jacobi iterate on one processor.
pub fn serial_jacobi(b: &[f64], iters: usize) -> Vec<f64> {
    let m = b.len();
    let mut x = vec![0.0; m];
    let mut nx = vec![0.0; m];
    for _ in 0..iters {
        jacobi_sweep(&x, b, 0.0, 0.0, &mut nx);
        std::mem::swap(&mut x, &mut nx);
    }
    x
}

/// Residual infinity-norm of `tridiag(-1,2,-1) x = b`.
pub fn residual(x: &[f64], b: &[f64]) -> f64 {
    let m = x.len();
    (0..m)
        .map(|i| {
            let xl = if i == 0 { 0.0 } else { x[i - 1] };
            let xr = if i == m - 1 { 0.0 } else { x[i + 1] };
            (2.0 * x[i] - xl - xr - b[i]).abs()
        })
        .fold(0.0, f64::max)
}

/// Run the distributed solver; see module docs.
pub fn run_spice(params: SpiceParams, seed: u64) -> SpiceResult {
    run_spice_checked(params, seed, 0, ResidCheck::None)
}

/// Run the distributed solver with a global residual check every
/// `check_every` iterations (0 disables it), synchronized per `check`.
/// The iterate is bit-identical across check modes — the check only reads
/// the current `x` — so the modes race on synchronization cost alone.
pub fn run_spice_checked(
    params: SpiceParams,
    seed: u64,
    check_every: usize,
    check: ResidCheck,
) -> SpiceResult {
    let SpiceParams { m, p, iters } = params;
    assert!(p >= 2 && m % p == 0);
    let k = m / p;
    let mut rng = SmallRng::seed_from_u64(seed);
    let b: Vec<f64> = (0..m).map(|_| rng.random::<f64>()).collect();
    let serial = serial_jacobi(&b, iters);

    let mut v = VorxBuilder::with_topology(topology_for(p))
        .trace(false)
        .build();
    if let ResidCheck::Collective(mode) = check {
        collective::register_group(
            &mut v.world(),
            &GroupCfg {
                group: RESID_GROUP,
                members: (0..p).map(|q| NodeAddr(q as u32)).collect(),
                mode,
            },
        );
    }
    let solution = Arc::new(Mutex::new(vec![0.0f64; m]));
    let checked = Arc::new(Mutex::new((0usize, f64::NAN)));

    for me in 0..p {
        let my_b = b[me * k..(me + 1) * k].to_vec();
        let sol = Arc::clone(&solution);
        let chk = Arc::clone(&checked);
        v.spawn(format!("n{me}:spice"), move |ctx| {
            let node = NodeAddr(me as u32);
            udco::register(&ctx, node, TAG_TO_LEFT, UdcoMode::Raw);
            udco::register(&ctx, node, TAG_TO_RIGHT, UdcoMode::Raw);
            if check == ResidCheck::PointToPoint {
                udco::register(&ctx, node, TAG_RESID, UdcoMode::Raw);
                udco::register(&ctx, node, TAG_RESID_ANS, UdcoMode::Raw);
            }
            let coll = matches!(check, ResidCheck::Collective(_))
                .then(|| collective::attach(&ctx, node, RESID_GROUP));
            let left = (me > 0).then(|| NodeAddr((me - 1) as u32));
            let right = (me + 1 < p).then(|| NodeAddr((me + 1) as u32));
            let mut x = vec![0.0f64; k];
            let mut nx = vec![0.0f64; k];
            for it in 0..iters {
                // Send both boundaries first (raw sends do not wait for the
                // receiver — no flow-control protocol at all), then receive.
                if let Some(l) = left {
                    udco::send_raw(
                        &ctx,
                        node,
                        l,
                        TAG_TO_LEFT,
                        it as u64,
                        pack_boundary(it, x[0]),
                    );
                }
                if let Some(r) = right {
                    udco::send_raw(
                        &ctx,
                        node,
                        r,
                        TAG_TO_RIGHT,
                        it as u64,
                        pack_boundary(it, x[k - 1]),
                    );
                }
                let lv = if left.is_some() {
                    let msg = udco::recv_raw_spin(&ctx, node, TAG_TO_RIGHT);
                    let (mit, v) = parse_boundary(&msg.payload);
                    assert_eq!(mit, it, "halo iteration skew");
                    v
                } else {
                    0.0
                };
                let rv = if right.is_some() {
                    let msg = udco::recv_raw_spin(&ctx, node, TAG_TO_LEFT);
                    let (mit, v) = parse_boundary(&msg.payload);
                    assert_eq!(mit, it, "halo iteration skew");
                    v
                } else {
                    0.0
                };
                if check != ResidCheck::None && check_every > 0 && (it + 1) % check_every == 0 {
                    // Local residual of the *current* iterate: the halos
                    // just received are exactly its boundary neighbours.
                    user_compute(
                        &ctx,
                        node,
                        SimDuration::from_ns(JACOBI_NS_PER_ELEM * k as u64),
                    );
                    let mut lr = 0.0f64;
                    for i in 0..k {
                        let xl = if i == 0 { lv } else { x[i - 1] };
                        let xr = if i == k - 1 { rv } else { x[i + 1] };
                        lr = lr.max((2.0 * x[i] - xl - xr - my_b[i]).abs());
                    }
                    let global = match &coll {
                        Some(c) => {
                            // Non-negative f64 bit patterns order like the
                            // values, so a u64 max *is* an f64 max.
                            f64::from_bits(c.reduce(&ctx, CombOp::Max, lr.to_bits()))
                        }
                        None => {
                            // Linear gather to node 0, linear scatter back.
                            if me == 0 {
                                let mut g = lr;
                                for _ in 1..p {
                                    let msg = udco::recv_raw_spin(&ctx, node, TAG_RESID);
                                    let (mit, v) = parse_boundary(&msg.payload);
                                    assert_eq!(mit, it, "residual iteration skew");
                                    g = g.max(v);
                                }
                                for q in 1..p {
                                    udco::send_raw(
                                        &ctx,
                                        node,
                                        NodeAddr(q as u32),
                                        TAG_RESID_ANS,
                                        it as u64,
                                        pack_boundary(it, g),
                                    );
                                }
                                g
                            } else {
                                udco::send_raw(
                                    &ctx,
                                    node,
                                    NodeAddr(0),
                                    TAG_RESID,
                                    it as u64,
                                    pack_boundary(it, lr),
                                );
                                let msg = udco::recv_raw_spin(&ctx, node, TAG_RESID_ANS);
                                let (mit, v) = parse_boundary(&msg.payload);
                                assert_eq!(mit, it, "residual iteration skew");
                                v
                            }
                        }
                    };
                    if me == 0 {
                        let mut g = chk.lock();
                        g.0 += 1;
                        g.1 = global;
                    }
                }
                user_compute(
                    &ctx,
                    node,
                    SimDuration::from_ns(JACOBI_NS_PER_ELEM * k as u64),
                );
                jacobi_sweep(&x, &my_b, lv, rv, &mut nx);
                std::mem::swap(&mut x, &mut nx);
            }
            sol.lock()[me * k..(me + 1) * k].copy_from_slice(&x);
        });
    }
    let end = v.run_all();
    let elapsed = end - SimTime::ZERO;
    let x = solution.lock().clone();
    let max_err = x
        .iter()
        .zip(&serial)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    let (checks, checked_residual) = *checked.lock();
    SpiceResult {
        elapsed,
        per_iter: elapsed / iters.max(1) as u64,
        max_err,
        residual: residual(&x, &b),
        checks,
        checked_residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_bit_exactly() {
        let r = run_spice(
            SpiceParams {
                m: 64,
                p: 4,
                iters: 25,
            },
            11,
        );
        assert_eq!(r.max_err, 0.0, "Jacobi iterate must match serially");
    }

    #[test]
    fn residual_decreases_with_iterations() {
        let few = run_spice(
            SpiceParams {
                m: 32,
                p: 2,
                iters: 5,
            },
            3,
        );
        let many = run_spice(
            SpiceParams {
                m: 32,
                p: 2,
                iters: 200,
            },
            3,
        );
        assert!(
            many.residual < few.residual,
            "more iterations should reduce the residual: {} vs {}",
            many.residual,
            few.residual
        );
    }

    #[test]
    fn halo_exchange_is_cheap_relative_to_compute() {
        // With raw UDCOs the halo costs ~tens of µs; the sweep costs
        // k * 20µs. Per-iteration time should be compute-dominated.
        let k = 16usize;
        let r = run_spice(
            SpiceParams {
                m: k * 4,
                p: 4,
                iters: 50,
            },
            5,
        );
        let compute_ns = JACOBI_NS_PER_ELEM * k as u64;
        let per_iter_ns = r.per_iter.as_ns();
        assert!(
            per_iter_ns < 2 * compute_ns,
            "per-iter {per_iter_ns}ns should be < 2x compute {compute_ns}ns"
        );
    }

    #[test]
    fn collective_residual_check_beats_point_to_point() {
        let params = SpiceParams {
            m: 64,
            p: 8,
            iters: 12,
        };
        let pp = run_spice_checked(params, 11, 3, ResidCheck::PointToPoint);
        let innet = run_spice_checked(params, 11, 3, ResidCheck::Collective(CollMode::InNetwork));
        let tree = run_spice_checked(
            params,
            11,
            3,
            ResidCheck::Collective(CollMode::SoftwareTree { radix: 2 }),
        );
        for r in [&pp, &innet, &tree] {
            assert_eq!(r.max_err, 0.0, "check must not perturb the iterate");
            assert_eq!(r.checks, 4);
        }
        // Same iterate, same check points → bit-identical global residual.
        assert_eq!(
            pp.checked_residual.to_bits(),
            innet.checked_residual.to_bits()
        );
        assert_eq!(
            pp.checked_residual.to_bits(),
            tree.checked_residual.to_bits()
        );
        // The combining fabric beats convoying through node 0.
        assert!(
            innet.elapsed < pp.elapsed,
            "in-network {:?} should beat p2p {:?}",
            innet.elapsed,
            pp.elapsed
        );
    }

    #[test]
    fn unchecked_run_is_unchanged_by_the_check_machinery() {
        let params = SpiceParams {
            m: 32,
            p: 2,
            iters: 10,
        };
        let plain = run_spice(params, 3);
        let none = run_spice_checked(params, 3, 5, ResidCheck::None);
        assert_eq!(plain.elapsed, none.elapsed);
        assert_eq!(none.checks, 0);
        assert!(none.checked_residual.is_nan());
    }

    #[test]
    fn serial_jacobi_sanity() {
        // For b = A * ones, the solution is ones; Jacobi converges to it.
        let m = 16;
        let ones = vec![1.0; m];
        let mut b = vec![0.0; m];
        for i in 0..m {
            let xl = if i == 0 { 0.0 } else { ones[i - 1] };
            let xr = if i == m - 1 { 0.0 } else { ones[i + 1] };
            b[i] = 2.0 * ones[i] - xl - xr;
        }
        let x = serial_jacobi(&b, 2000);
        for v in &x {
            assert!((v - 1.0).abs() < 1e-6);
        }
        assert!(residual(&x, &b) < 1e-6);
    }
}
