//! A parallel SPICE-like sparse solver (§4.1).
//!
//! "User-defined communications objects were successfully used in a parallel
//! implementation of SPICE that needed very low latency communications to
//! solve large sparse linear systems. It was able to obtain 60 µsec software
//! latencies for 64 byte messages with direct access to the communications
//! hardware and no low-level protocol."
//!
//! The stand-in workload is a Jacobi iteration on the 1D Poisson system
//! `tridiag(-1, 2, -1) x = b`, block-partitioned across nodes with halo
//! exchange over **raw** UDCOs (64-byte boundary messages, no protocol).
//! The parallel iterate is verified bit-exactly against the serial Jacobi
//! iterate, so the experiment measures a correct solver.

use std::sync::Arc;

use bytes::{BufMut, BytesMut};
use desim::{SimDuration, SimTime};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vorx::api::user_compute;
use vorx::hpcnet::{NodeAddr, Payload};
use vorx::udco::{self, UdcoMode};
use vorx::VorxBuilder;

use crate::fft2d::topology_for;

/// Boundary value sent toward the left neighbour.
const TAG_TO_LEFT: u16 = 40;
/// Boundary value sent toward the right neighbour.
const TAG_TO_RIGHT: u16 = 41;
/// The paper's quoted message size.
const MSG_BYTES: u32 = 64;

/// Modeled time of one Jacobi update (two fp adds + one multiply on the
/// 68882, plus indexing).
const JACOBI_NS_PER_ELEM: u64 = 20_000;

/// Parameters of one solver run.
#[derive(Debug, Clone, Copy)]
pub struct SpiceParams {
    /// Unknowns.
    pub m: usize,
    /// Processors (divides `m`).
    pub p: usize,
    /// Jacobi iterations.
    pub iters: usize,
}

/// Results of one solver run.
#[derive(Debug, Clone)]
pub struct SpiceResult {
    /// Total wall time.
    pub elapsed: SimDuration,
    /// Mean time per iteration.
    pub per_iter: SimDuration,
    /// Max |parallel - serial| after the same number of iterations.
    pub max_err: f64,
    /// Final residual infinity-norm (solver sanity).
    pub residual: f64,
}

fn pack_boundary(iter: usize, v: f64) -> Payload {
    // 64-byte message: iteration tag, the value, padding (SPICE sent small
    // vectors; we model its quoted size).
    let mut b = BytesMut::with_capacity(MSG_BYTES as usize);
    b.put_u64(iter as u64);
    b.put_f64(v);
    b.resize(MSG_BYTES as usize, 0);
    Payload::Data(b.freeze())
}

fn parse_boundary(p: &Payload) -> (usize, f64) {
    let b = p.bytes().expect("boundary carries data");
    (
        u64::from_be_bytes(b[0..8].try_into().expect("8")) as usize,
        f64::from_be_bytes(b[8..16].try_into().expect("8")),
    )
}

fn jacobi_sweep(x: &[f64], b: &[f64], left: f64, right: f64, out: &mut [f64]) {
    let k = x.len();
    for i in 0..k {
        let xl = if i == 0 { left } else { x[i - 1] };
        let xr = if i == k - 1 { right } else { x[i + 1] };
        out[i] = 0.5 * (b[i] + xl + xr);
    }
}

/// Serial reference: the same Jacobi iterate on one processor.
pub fn serial_jacobi(b: &[f64], iters: usize) -> Vec<f64> {
    let m = b.len();
    let mut x = vec![0.0; m];
    let mut nx = vec![0.0; m];
    for _ in 0..iters {
        jacobi_sweep(&x, b, 0.0, 0.0, &mut nx);
        std::mem::swap(&mut x, &mut nx);
    }
    x
}

/// Residual infinity-norm of `tridiag(-1,2,-1) x = b`.
pub fn residual(x: &[f64], b: &[f64]) -> f64 {
    let m = x.len();
    (0..m)
        .map(|i| {
            let xl = if i == 0 { 0.0 } else { x[i - 1] };
            let xr = if i == m - 1 { 0.0 } else { x[i + 1] };
            (2.0 * x[i] - xl - xr - b[i]).abs()
        })
        .fold(0.0, f64::max)
}

/// Run the distributed solver; see module docs.
pub fn run_spice(params: SpiceParams, seed: u64) -> SpiceResult {
    let SpiceParams { m, p, iters } = params;
    assert!(p >= 2 && m % p == 0);
    let k = m / p;
    let mut rng = SmallRng::seed_from_u64(seed);
    let b: Vec<f64> = (0..m).map(|_| rng.random::<f64>()).collect();
    let serial = serial_jacobi(&b, iters);

    let mut v = VorxBuilder::with_topology(topology_for(p))
        .trace(false)
        .build();
    let solution = Arc::new(Mutex::new(vec![0.0f64; m]));

    for me in 0..p {
        let my_b = b[me * k..(me + 1) * k].to_vec();
        let sol = Arc::clone(&solution);
        v.spawn(format!("n{me}:spice"), move |ctx| {
            let node = NodeAddr(me as u32);
            udco::register(&ctx, node, TAG_TO_LEFT, UdcoMode::Raw);
            udco::register(&ctx, node, TAG_TO_RIGHT, UdcoMode::Raw);
            let left = (me > 0).then(|| NodeAddr((me - 1) as u32));
            let right = (me + 1 < p).then(|| NodeAddr((me + 1) as u32));
            let mut x = vec![0.0f64; k];
            let mut nx = vec![0.0f64; k];
            for it in 0..iters {
                // Send both boundaries first (raw sends do not wait for the
                // receiver — no flow-control protocol at all), then receive.
                if let Some(l) = left {
                    udco::send_raw(
                        &ctx,
                        node,
                        l,
                        TAG_TO_LEFT,
                        it as u64,
                        pack_boundary(it, x[0]),
                    );
                }
                if let Some(r) = right {
                    udco::send_raw(
                        &ctx,
                        node,
                        r,
                        TAG_TO_RIGHT,
                        it as u64,
                        pack_boundary(it, x[k - 1]),
                    );
                }
                let lv = if left.is_some() {
                    let msg = udco::recv_raw_spin(&ctx, node, TAG_TO_RIGHT);
                    let (mit, v) = parse_boundary(&msg.payload);
                    assert_eq!(mit, it, "halo iteration skew");
                    v
                } else {
                    0.0
                };
                let rv = if right.is_some() {
                    let msg = udco::recv_raw_spin(&ctx, node, TAG_TO_LEFT);
                    let (mit, v) = parse_boundary(&msg.payload);
                    assert_eq!(mit, it, "halo iteration skew");
                    v
                } else {
                    0.0
                };
                user_compute(
                    &ctx,
                    node,
                    SimDuration::from_ns(JACOBI_NS_PER_ELEM * k as u64),
                );
                jacobi_sweep(&x, &my_b, lv, rv, &mut nx);
                std::mem::swap(&mut x, &mut nx);
            }
            sol.lock()[me * k..(me + 1) * k].copy_from_slice(&x);
        });
    }
    let end = v.run_all();
    let elapsed = end - SimTime::ZERO;
    let x = solution.lock().clone();
    let max_err = x
        .iter()
        .zip(&serial)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    SpiceResult {
        elapsed,
        per_iter: elapsed / iters.max(1) as u64,
        max_err,
        residual: residual(&x, &b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_bit_exactly() {
        let r = run_spice(
            SpiceParams {
                m: 64,
                p: 4,
                iters: 25,
            },
            11,
        );
        assert_eq!(r.max_err, 0.0, "Jacobi iterate must match serially");
    }

    #[test]
    fn residual_decreases_with_iterations() {
        let few = run_spice(
            SpiceParams {
                m: 32,
                p: 2,
                iters: 5,
            },
            3,
        );
        let many = run_spice(
            SpiceParams {
                m: 32,
                p: 2,
                iters: 200,
            },
            3,
        );
        assert!(
            many.residual < few.residual,
            "more iterations should reduce the residual: {} vs {}",
            many.residual,
            few.residual
        );
    }

    #[test]
    fn halo_exchange_is_cheap_relative_to_compute() {
        // With raw UDCOs the halo costs ~tens of µs; the sweep costs
        // k * 20µs. Per-iteration time should be compute-dominated.
        let k = 16usize;
        let r = run_spice(
            SpiceParams {
                m: k * 4,
                p: 4,
                iters: 50,
            },
            5,
        );
        let compute_ns = JACOBI_NS_PER_ELEM * k as u64;
        let per_iter_ns = r.per_iter.as_ns();
        assert!(
            per_iter_ns < 2 * compute_ns,
            "per-iter {per_iter_ns}ns should be < 2x compute {compute_ns}ns"
        );
    }

    #[test]
    fn serial_jacobi_sanity() {
        // For b = A * ones, the solution is ones; Jacobi converges to it.
        let m = 16;
        let ones = vec![1.0; m];
        let mut b = vec![0.0; m];
        for i in 0..m {
            let xl = if i == 0 { 0.0 } else { ones[i - 1] };
            let xr = if i == m - 1 { 0.0 } else { ones[i + 1] };
            b[i] = 2.0 * ones[i] - xl - xr;
        }
        let x = serial_jacobi(&b, 2000);
        for v in &x {
            assert!((v - 1.0).abs() < 1e-6);
        }
        assert!(residual(&x, &b) < 1e-6);
    }
}
