//! Complex FFT — the numerical kernel of the §4.2 image-processing example.
//!
//! A small, self-contained radix-2 implementation: the parallel 2D-FFT
//! workload carries *real* spectral data across the simulated machine and
//! verifies it against the serial transform computed here, so the
//! communication experiment is checked end-to-end, not just timed.

use std::ops::{Add, Mul, Sub};

/// A complex number (f64 components).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// e^(i theta).
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Serialize to 16 bytes (big-endian re, im).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&self.re.to_be_bytes());
        b[8..].copy_from_slice(&self.im.to_be_bytes());
        b
    }

    /// Deserialize from 16 bytes.
    pub fn from_bytes(b: &[u8]) -> Self {
        Complex {
            re: f64::from_be_bytes(b[..8].try_into().expect("8 bytes")),
            im: f64::from_be_bytes(b[8..16].try_into().expect("8 bytes")),
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT. `data.len()` must be a
/// power of two.
pub fn fft1d(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Number of butterfly operations in an n-point FFT: (n/2) log2 n. Used for
/// the 68020+68882 compute-cost model.
pub fn butterflies(n: usize) -> u64 {
    (n as u64 / 2) * u64::from(n.trailing_zeros())
}

/// Modeled time of one complex butterfly on the 25 MHz 68020 + 68882
/// (1 complex multiply = 4 fp multiplies + 2 adds, plus 4 adds and loop
/// overhead; the 68882 takes ~5-9 µs per fp multiply at this clock).
pub const FFT_BUTTERFLY_NS: u64 = 30_000;

/// Modeled duration of an n-point 1D FFT.
pub fn fft_cost_ns(n: usize) -> u64 {
    butterflies(n) * FFT_BUTTERFLY_NS
}

/// Serial 2D FFT of an `n x n` image (row-major), exactly the §4.2 recipe:
/// 1D FFT of every row, then 1D FFT of every column.
pub fn fft2d_serial(img: &mut [Complex], n: usize) {
    assert_eq!(img.len(), n * n);
    for r in 0..n {
        fft1d(&mut img[r * n..(r + 1) * n]);
    }
    let mut col = vec![Complex::ZERO; n];
    for c in 0..n {
        for r in 0..n {
            col[r] = img[r * n + c];
        }
        fft1d(&mut col);
        for r in 0..n {
            img[r * n + c] = col[r];
        }
    }
}

/// Max absolute element difference between two complex slices.
pub fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut s = Complex::ZERO;
                for (j, v) in x.iter().enumerate() {
                    s = s + *v
                        * Complex::cis(-2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64);
                }
                s
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let expect = naive_dft(&x);
        let mut got = x;
        fft1d(&mut got);
        assert!(max_err(&got, &expect) < 1e-9);
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::new(1.0, 0.0);
        fft1d(&mut x);
        for v in &x {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn constant_gives_dc_only() {
        let mut x = vec![Complex::new(2.0, 0.0); 8];
        fft1d(&mut x);
        assert!((x[0].re - 16.0).abs() < 1e-12);
        for v in &x[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_holds() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64 * 0.21).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.abs().powi(2)).sum();
        let mut f = x;
        fft1d(&mut f);
        let freq_energy: f64 = f.iter().map(|v| v.abs().powi(2)).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut x = vec![Complex::ZERO; 12];
        fft1d(&mut x);
    }

    #[test]
    fn fft2d_separable_identity() {
        // 2D FFT of a separable product equals the outer product of the
        // 1D FFTs.
        let n = 8;
        let row: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let col: Vec<Complex> = (0..n)
            .map(|i| Complex::new(1.0 / (i + 1) as f64, 0.0))
            .collect();
        let mut img = vec![Complex::ZERO; n * n];
        for r in 0..n {
            for c in 0..n {
                img[r * n + c] = col[r] * row[c];
            }
        }
        fft2d_serial(&mut img, n);
        let mut fr = row;
        fft1d(&mut fr);
        let mut fc = col;
        fft1d(&mut fc);
        for r in 0..n {
            for c in 0..n {
                let expect = fc[r] * fr[c];
                assert!((img[r * n + c] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn complex_byte_round_trip() {
        let c = Complex::new(-3.25, 7.5e-3);
        assert_eq!(Complex::from_bytes(&c.to_bytes()), c);
    }

    #[test]
    fn butterfly_count() {
        assert_eq!(butterflies(256), 128 * 8);
        assert_eq!(fft_cost_ns(2), FFT_BUTTERFLY_NS);
    }
}
