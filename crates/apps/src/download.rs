//! Program-download scenarios (§3.3): one host workstation downloading an
//! application onto many processing nodes, per-process-stub vs tree mode.

use desim::{SimDuration, SimTime};
use vorx::host::{boot_loader, download_per_process, download_tree, tree_children};
use vorx::hpcnet::{NodeAddr, Topology};
use vorx::VorxBuilder;

/// Which §3.3 download design to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownloadMode {
    /// One stub per process; each stub downloads its own copy of the text.
    PerProcessStub,
    /// One shared stub; the nodes relay the text in a fanout-2 tree.
    Tree,
}

/// Topology with one host plus `n_nodes` processing nodes.
fn download_topology(n_nodes: usize) -> Topology {
    let total = n_nodes + 1;
    if total <= 12 {
        Topology::single_cluster(total).expect("<= 12 endpoints")
    } else {
        Topology::incomplete_hypercube(total.div_ceil(4), 4).expect("valid hypercube")
    }
}

/// Download `text_bytes` of program text from one host onto `n_nodes`
/// processing nodes; returns the time until every node holds the full text.
pub fn run_download(n_nodes: usize, text_bytes: u32, mode: DownloadMode) -> SimDuration {
    let mut v = VorxBuilder::with_topology(download_topology(n_nodes))
        .hosts(1)
        .trace(false)
        .build();
    let targets: Vec<NodeAddr> = (1..=n_nodes).map(|i| NodeAddr(i as u32)).collect();
    match mode {
        DownloadMode::PerProcessStub => {
            for &t in &targets {
                v.spawn(format!("n{}:loader", t.0), move |ctx| {
                    boot_loader(&ctx, t, &format!("dl-{}", t.0), vec![], text_bytes);
                });
            }
            let tgt = targets;
            v.spawn("host:download", move |ctx| {
                download_per_process(&ctx, 0, &tgt, text_bytes);
            });
        }
        DownloadMode::Tree => {
            for (i, &t) in targets.iter().enumerate() {
                let kids = tree_children(&targets, i);
                v.spawn(format!("n{}:loader", t.0), move |ctx| {
                    boot_loader(&ctx, t, &format!("dl-{}", t.0), kids, text_bytes);
                });
            }
            let tgt = targets;
            v.spawn("host:download", move |ctx| {
                download_tree(&ctx, 0, &tgt, text_bytes);
            });
        }
    }
    let end = v.run_all();
    end - SimTime::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_beats_per_process_substantially() {
        let text = 64 * 1024;
        let per = run_download(8, text, DownloadMode::PerProcessStub);
        let tree = run_download(8, text, DownloadMode::Tree);
        assert!(
            tree.as_ns() * 3 < per.as_ns(),
            "tree {tree} should be well under per-process {per}"
        );
    }

    #[test]
    fn per_process_time_scales_linearly_with_nodes() {
        let text = 32 * 1024;
        let four = run_download(4, text, DownloadMode::PerProcessStub);
        let eight = run_download(8, text, DownloadMode::PerProcessStub);
        let ratio = eight.as_ns() as f64 / four.as_ns() as f64;
        assert!(
            (1.7..2.3).contains(&ratio),
            "doubling nodes should double per-process time, got {ratio:.2}"
        );
    }

    #[test]
    fn tree_time_grows_sublinearly() {
        let text = 32 * 1024;
        let four = run_download(4, text, DownloadMode::Tree);
        let sixteen = run_download(16, text, DownloadMode::Tree);
        let ratio = sixteen.as_ns() as f64 / four.as_ns() as f64;
        assert!(
            ratio < 2.5,
            "4x nodes should cost far less than 4x in tree mode, got {ratio:.2}"
        );
    }
}
