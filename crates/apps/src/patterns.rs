//! Elementary communication patterns used by the experiments: ping-pong
//! latency and the many-to-one burst that §2 identifies as "a natural
//! synchronization in which many processors send a message to a single
//! processor at nearly the same time".

use desim::{SimDuration, SimTime};
use vorx::channel;
use vorx::hpcnet::{NodeAddr, Payload};
use vorx::VorxBuilder;

use crate::fft2d::topology_for;

/// Channel ping-pong between two nodes; returns the mean round-trip time.
pub fn pingpong(rounds: u64, msg_len: u32) -> SimDuration {
    let mut v = VorxBuilder::single_cluster(2).trace(false).build();
    v.spawn("n0:ping", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(0), "pp");
        for _ in 0..rounds {
            ch.write(&ctx, Payload::Synthetic(msg_len)).unwrap();
            let _ = ch.read(&ctx).unwrap();
        }
    });
    v.spawn("n1:pong", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "pp");
        for _ in 0..rounds {
            let _ = ch.read(&ctx).unwrap();
            ch.write(&ctx, Payload::Synthetic(msg_len)).unwrap();
        }
    });
    let end = v.run_all();
    (end - SimTime::ZERO) / rounds
}

/// Result of a many-to-one burst.
#[derive(Debug, Clone, Copy)]
pub struct ManyToOneResult {
    /// Total time to deliver everything.
    pub elapsed: SimDuration,
    /// Messages delivered (always `senders * msgs` — the HPC cannot lose
    /// any, unlike the §2 S/NET).
    pub delivered: u64,
    /// Aggregate payload throughput, MB/s.
    pub mbytes_per_sec: f64,
}

/// `senders` nodes each send `msgs` messages of `msg_len` bytes to node 0
/// over channels, all starting at t=0 — the §2 overload pattern, on HPC
/// hardware that cannot drop anything.
pub fn many_to_one(senders: usize, msgs: u64, msg_len: u32) -> ManyToOneResult {
    let mut v = VorxBuilder::with_topology(topology_for(senders + 1))
        .trace(false)
        .build();
    for sx in 1..=senders {
        v.spawn(format!("n{sx}:burst"), move |ctx| {
            let ch = channel::open(&ctx, NodeAddr(sx as u32), &format!("burst-{sx}"));
            for _ in 0..msgs {
                ch.write(&ctx, Payload::Synthetic(msg_len)).unwrap();
            }
        });
    }
    v.spawn("n0:sink", move |ctx| {
        let chans: Vec<_> = (1..=senders)
            .map(|sx| channel::open(&ctx, NodeAddr(0), &format!("burst-{sx}")))
            .collect();
        for _ in 0..senders as u64 * msgs {
            let _ = channel::read_any(&ctx, NodeAddr(0), &chans).unwrap();
        }
    });
    let end = v.run_all();
    let elapsed = end - SimTime::ZERO;
    let delivered = senders as u64 * msgs;
    let bytes = delivered * u64::from(msg_len);
    ManyToOneResult {
        elapsed,
        delivered,
        mbytes_per_sec: bytes as f64 / 1e6 / elapsed.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pingpong_round_trip_is_two_one_way_latencies() {
        let rt = pingpong(50, 4);
        // The 303us "latency" of Table 2 already includes the kernel ack
        // round trip; in a ping-pong the reverse data message overlaps part
        // of that, so the round trip lands below 2 x 303.
        let us = rt.as_us_f64();
        assert!((450.0..800.0).contains(&us), "round trip {us:.0}us");
    }

    #[test]
    fn many_to_one_delivers_everything() {
        // 11 senders x 20 long messages: the load that wedged the S/NET.
        let r = many_to_one(11, 20, 1024);
        assert_eq!(r.delivered, 220);
        assert!(r.mbytes_per_sec > 0.5, "throughput {}", r.mbytes_per_sec);
    }

    #[test]
    fn many_to_one_scales_with_more_senders() {
        let small = many_to_one(3, 10, 256);
        let big = many_to_one(9, 10, 256);
        // 3x the messages should take more time, but far less than 3x
        // wall-clock per message would suggest total collapse.
        assert!(big.elapsed > small.elapsed);
        assert_eq!(big.delivered, 90);
    }
}
