//! Real-time bitmap streaming (§4.1).
//!
//! "In our experiments with transmitting real-time bitmap images to
//! workstations, we wanted to obtain the maximum possible communications
//! bandwidth from the HPC. We did so by having the processor originating the
//! bitmap image send it to the HPC interconnect as fast as it could and for
//! the workstation receiving the bitmap to copy it from the HPC directly to
//! its frame buffer. Because all flow control was done by the HPC hardware,
//! the protocol overhead was only the few statements needed to determine
//! where to place the incoming bitmap data in the frame buffer. With this
//! simple technique, we obtained a rate of 3.2 Mbyte/sec, sufficient to
//! refresh a 900x900 pixel portion of a monochrome (bi-level black and
//! white) display 30 times per second from a remote processor."

use desim::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;
use vorx::hpcnet::{NodeAddr, Payload, MAX_PAYLOAD};
use vorx::udco::{self, UdcoMode};
use vorx::VorxBuilder;

/// Parameters of a streaming run.
#[derive(Debug, Clone, Copy)]
pub struct BitmapParams {
    /// Display width in pixels.
    pub width: u32,
    /// Display height in pixels.
    pub height: u32,
    /// Bits per pixel (1 = the paper's bi-level display).
    pub bits_per_pixel: u32,
    /// Frames to stream.
    pub frames: u32,
}

impl BitmapParams {
    /// The paper's display: 900x900 monochrome.
    pub fn paper_900() -> Self {
        BitmapParams {
            width: 900,
            height: 900,
            bits_per_pixel: 1,
            frames: 10,
        }
    }

    /// Bytes per frame.
    pub fn frame_bytes(&self) -> u32 {
        self.width * self.height * self.bits_per_pixel / 8
    }
}

/// Results of a streaming run.
#[derive(Debug, Clone, Copy)]
pub struct BitmapResult {
    /// Total stream time.
    pub elapsed: SimDuration,
    /// Achieved throughput.
    pub mbytes_per_sec: f64,
    /// Achieved refresh rate for the configured display.
    pub fps: f64,
    /// Bytes placed into the frame buffer.
    pub bytes_received: u64,
}

const TAG: u16 = 30;

/// Stream `params.frames` frames from a processing node to a workstation
/// with *no software flow control* — raw UDCO sends paced only by the HPC
/// hardware; the receiver polls the interface and "copies directly to its
/// frame buffer" (the raw-mode FIFO read *is* that copy).
pub fn run_bitmap(params: BitmapParams) -> BitmapResult {
    let mut v = VorxBuilder::single_cluster(2).trace(false).build();
    let frame_bytes = params.frame_bytes();
    let frags_per_frame = frame_bytes.div_ceil(MAX_PAYLOAD);
    let total_msgs = u64::from(params.frames) * u64::from(frags_per_frame);
    let received = Arc::new(Mutex::new(0u64));

    v.spawn("n0:camera", move |ctx| {
        udco::register(&ctx, NodeAddr(0), TAG, UdcoMode::Raw);
        for f in 0..params.frames {
            let mut left = frame_bytes;
            let mut seq = u64::from(f) << 32;
            while left > 0 {
                let chunk = left.min(MAX_PAYLOAD);
                udco::send_raw(
                    &ctx,
                    NodeAddr(0),
                    NodeAddr(1),
                    TAG,
                    seq,
                    Payload::Synthetic(chunk),
                );
                left -= chunk;
                seq += 1;
            }
        }
    });
    let rx_total = Arc::clone(&received);
    v.spawn("n1:display", move |ctx| {
        udco::register(&ctx, NodeAddr(1), TAG, UdcoMode::Raw);
        let mut bytes = 0u64;
        for _ in 0..total_msgs {
            let m = udco::recv_raw_spin(&ctx, NodeAddr(1), TAG);
            // "the few statements needed to determine where to place the
            // incoming bitmap data in the frame buffer"
            bytes += u64::from(m.payload.len());
        }
        *rx_total.lock() = bytes;
    });
    let end = v.run_all();
    let elapsed = end - SimTime::ZERO;
    let bytes_received = *received.lock();
    let secs = elapsed.as_secs_f64();
    let mbytes_per_sec = bytes_received as f64 / 1e6 / secs;
    let fps = f64::from(params.frames) / secs;
    BitmapResult {
        elapsed,
        mbytes_per_sec,
        fps,
        bytes_received,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_geometry() {
        let p = BitmapParams::paper_900();
        assert_eq!(p.frame_bytes(), 101_250);
    }

    #[test]
    fn stream_reaches_paper_rate_and_30hz() {
        let mut p = BitmapParams::paper_900();
        p.frames = 5;
        let r = run_bitmap(p);
        assert_eq!(r.bytes_received, 5 * 101_250);
        assert!(
            r.mbytes_per_sec > 2.8 && r.mbytes_per_sec < 3.8,
            "throughput {:.2} MB/s should be near the paper's 3.2",
            r.mbytes_per_sec
        );
        assert!(r.fps >= 30.0, "refresh {:.1} fps should reach 30", r.fps);
    }
}
