//! A CEMU-style distributed circuit timing simulator (§4.1 / §5).
//!
//! CEMU ("MOS Timing Simulation on a Message Based Multiprocessor") is the
//! application the paper credits with pioneering user-level protocols: its
//! group "wanted to experiment with various low-level communications
//! protocols for their circuit simulator" and demonstrated that
//! sliding-window protocols beat stop-and-wait; it also used *coroutines*
//! for cheap context switching (§5).
//!
//! The stand-in: a unit/multi-delay gate-level timing simulator. A seeded
//! random netlist (with feedback — delays make it well-defined) is
//! partitioned across nodes; each simulated tick the nodes evaluate their
//! gate partitions and exchange boundary signal values over UDCOs,
//! switching between "communication" and "evaluation" coroutines. The
//! distributed waveform is verified bit-exactly against the serial
//! simulator.

use std::sync::Arc;

use bytes::{BufMut, BytesMut};
use desim::SimDuration;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vorx::api::user_compute;
use vorx::hpcnet::{NodeAddr, Payload};
use vorx::sched::coroutine_switch;
use vorx::udco::{self, UdcoMode};
use vorx::VorxBuilder;

use crate::fft2d::topology_for;

/// Gate kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Logical AND of the inputs.
    And,
    /// Logical OR.
    Or,
    /// Negation of the (single) input.
    Not,
    /// Exclusive OR.
    Xor,
}

/// One gate: output signal `out` becomes `f(inputs)` after `delay` ticks.
#[derive(Debug, Clone)]
pub struct Gate {
    /// Gate function.
    pub kind: GateKind,
    /// Input signal ids.
    pub inputs: Vec<usize>,
    /// Output signal id (one driver per signal).
    pub out: usize,
    /// Propagation delay in ticks (1..=MAX_DELAY).
    pub delay: usize,
}

/// Maximum gate delay supported.
pub const MAX_DELAY: usize = 4;

/// A netlist: `n_signals` signals, the first `n_inputs` of which are primary
/// inputs driven by the stimulus.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Total signals.
    pub n_signals: usize,
    /// Primary inputs (signals `0..n_inputs`).
    pub n_inputs: usize,
    /// The gates (each drives one non-input signal).
    pub gates: Vec<Gate>,
}

impl Circuit {
    /// Seeded random circuit: every non-input signal is driven by one gate
    /// whose inputs come from anywhere (feedback allowed — delays make the
    /// network well-defined).
    pub fn random(n_inputs: usize, n_gates: usize, seed: u64) -> Circuit {
        let n_signals = n_inputs + n_gates;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gates = Vec::with_capacity(n_gates);
        for g in 0..n_gates {
            let kind = match rng.random_range(0..4) {
                0 => GateKind::And,
                1 => GateKind::Or,
                2 => GateKind::Not,
                _ => GateKind::Xor,
            };
            let n_in = if kind == GateKind::Not { 1 } else { 2 };
            let inputs = (0..n_in).map(|_| rng.random_range(0..n_signals)).collect();
            gates.push(Gate {
                kind,
                inputs,
                out: n_inputs + g,
                delay: rng.random_range(1..=MAX_DELAY),
            });
        }
        Circuit {
            n_signals,
            n_inputs,
            gates,
        }
    }
}

fn eval(kind: GateKind, inputs: &[bool]) -> bool {
    match kind {
        GateKind::And => inputs.iter().all(|b| *b),
        GateKind::Or => inputs.iter().any(|b| *b),
        GateKind::Not => !inputs[0],
        GateKind::Xor => inputs.iter().fold(false, |a, b| a ^ b),
    }
}

/// Stimulus: primary-input values per tick (deterministic from a seed).
pub fn random_stimulus(n_inputs: usize, ticks: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC1BC);
    (0..ticks)
        .map(|_| (0..n_inputs).map(|_| rng.random::<bool>()).collect())
        .collect()
}

/// Serial reference simulation: returns the full waveform
/// `values[tick][signal]` for `ticks` ticks (everything starts at false).
pub fn simulate_serial(c: &Circuit, stim: &[Vec<bool>]) -> Vec<Vec<bool>> {
    let ticks = stim.len();
    // History ring: values at ticks t-MAX_DELAY..=t.
    let mut hist = vec![vec![false; c.n_signals]; MAX_DELAY + 1];
    let mut wave = Vec::with_capacity(ticks);
    for t in 0..ticks {
        let mut now = vec![false; c.n_signals];
        now[..c.n_inputs].copy_from_slice(&stim[t]);
        for g in &c.gates {
            // out at tick t is f(inputs at tick t - delay).
            let past = &hist[(t + MAX_DELAY + 1 - g.delay) % (MAX_DELAY + 1)];
            let ins: Vec<bool> = g.inputs.iter().map(|i| past[*i]).collect();
            now[g.out] = eval(g.kind, &ins);
        }
        hist[t % (MAX_DELAY + 1)] = now.clone();
        wave.push(now);
    }
    wave
}

fn pack_bits(vals: &[(usize, bool)]) -> Payload {
    let mut b = BytesMut::with_capacity(vals.len() * 3);
    for (sig, v) in vals {
        b.put_u16(*sig as u16);
        b.put_u8(u8::from(*v));
    }
    Payload::Data(b.freeze())
}

fn unpack_bits(p: &Payload) -> Vec<(usize, bool)> {
    let b = p.bytes().expect("boundary values carry data");
    b.chunks_exact(3)
        .map(|c| (u16::from_be_bytes([c[0], c[1]]) as usize, c[2] != 0))
        .collect()
}

/// Modeled evaluation time per gate-tick on the 68020.
const GATE_EVAL_NS: u64 = 5_000;

/// Result of a distributed run.
#[derive(Debug)]
pub struct CemuResult {
    /// Simulated wall time.
    pub elapsed: SimDuration,
    /// Ticks per simulated second of wall time.
    pub ticks_per_sec: f64,
    /// True iff the distributed waveform matched the serial one bit-exactly.
    pub verified: bool,
}

/// Run the circuit `ticks` ticks on `p` nodes and verify against the serial
/// simulator.
pub fn run_cemu(c: &Circuit, p: usize, ticks: usize, seed: u64) -> CemuResult {
    assert!(p >= 2);
    let stim = random_stimulus(c.n_inputs, ticks, seed);
    let reference = simulate_serial(c, &stim);

    // Partition gates round-robin; every node knows the full netlist shape
    // (signals it must import per tick).
    let owner_of = |sig: usize| -> Option<usize> {
        if sig < c.n_inputs {
            None // primary inputs: known everywhere (stimulus is global)
        } else {
            Some((sig - c.n_inputs) % p)
        }
    };
    // imports[a][b] = signals owned by b that node a's gates read.
    let mut imports: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); p]; p];
    for g in &c.gates {
        let me = owner_of(g.out).expect("gate output is not an input");
        for &i in &g.inputs {
            if let Some(o) = owner_of(i) {
                if o != me && !imports[me][o].contains(&i) {
                    imports[me][o].push(i);
                }
            }
        }
    }

    let mut v = VorxBuilder::with_topology(topology_for(p))
        .trace(false)
        .build();
    let waves = Arc::new(Mutex::new(vec![Vec::<(usize, Vec<bool>)>::new(); p]));

    for me in 0..p {
        let my_gates: Vec<Gate> = c
            .gates
            .iter()
            .filter(|g| owner_of(g.out) == Some(me))
            .cloned()
            .collect();
        // exports[b] = signals I own that node b needs.
        let exports: Vec<Vec<usize>> = (0..p).map(|b| imports[b][me].clone()).collect();
        let my_imports = imports[me].clone();
        let stim = stim.clone();
        let n_signals = c.n_signals;
        let n_inputs = c.n_inputs;
        let waves = Arc::clone(&waves);
        v.spawn(format!("n{me}:cemu"), move |ctx| {
            let node = NodeAddr(me as u32);
            // One UDCO per sending peer (tag = 50 + sender).
            for q in 0..p {
                if q != me {
                    udco::register(&ctx, node, 50 + q as u16, UdcoMode::Interrupt);
                }
            }
            let mut hist = vec![vec![false; n_signals]; MAX_DELAY + 1];
            let mut out_wave: Vec<(usize, Vec<bool>)> = Vec::new();
            for t in 0..stim.len() {
                // --- communication coroutine: exchange boundary values of
                // tick t-1 (already in hist), then switch to evaluation.
                if t > 0 {
                    let prev = (t - 1) % (MAX_DELAY + 1);
                    for (q, sigs) in exports.iter().enumerate() {
                        if q != me && !sigs.is_empty() {
                            let vals: Vec<(usize, bool)> =
                                sigs.iter().map(|s| (*s, hist[prev][*s])).collect();
                            udco::send(
                                &ctx,
                                node,
                                NodeAddr(q as u32),
                                50 + me as u16,
                                t as u64,
                                pack_bits(&vals),
                            );
                        }
                    }
                    for (q, sigs) in my_imports.iter().enumerate() {
                        if q != me && !sigs.is_empty() {
                            let m = udco::recv(&ctx, node, 50 + q as u16);
                            assert_eq!(m.seq, t as u64, "tick skew from n{q}");
                            for (sig, val) in unpack_bits(&m.payload) {
                                hist[prev][sig] = val;
                            }
                        }
                    }
                }
                coroutine_switch(&ctx, node); // comm -> eval (§5, CEMU style)

                // --- evaluation coroutine ---
                user_compute(
                    &ctx,
                    node,
                    SimDuration::from_ns(GATE_EVAL_NS * my_gates.len() as u64),
                );
                let mut now = vec![false; n_signals];
                now[..n_inputs].copy_from_slice(&stim[t]);
                let mut mine = Vec::with_capacity(my_gates.len());
                for g in &my_gates {
                    let past = &hist[(t + MAX_DELAY + 1 - g.delay) % (MAX_DELAY + 1)];
                    let ins: Vec<bool> = g.inputs.iter().map(|i| past[*i]).collect();
                    let v = eval(g.kind, &ins);
                    now[g.out] = v;
                    mine.push((g.out, v));
                }
                hist[t % (MAX_DELAY + 1)] = now;
                out_wave.push((t, mine.iter().map(|(_, v)| *v).collect()));
                coroutine_switch(&ctx, node); // eval -> comm
            }
            // Record (signal ids are implicit in gate order).
            let sigs: Vec<usize> = my_gates.iter().map(|g| g.out).collect();
            let mut w = waves.lock();
            w[me] = out_wave.into_iter().collect();
            // Stash the signal order as a final pseudo-entry.
            w[me].push((usize::MAX, sigs.iter().map(|s| *s != 0).collect()));
            drop(w);
            let _ = sigs;
        });
    }
    let end = v.run_all();

    // Verify every node's recorded outputs against the serial waveform.
    let my_sigs: Vec<Vec<usize>> = (0..p)
        .map(|me| {
            c.gates
                .iter()
                .filter(|g| owner_of(g.out) == Some(me))
                .map(|g| g.out)
                .collect()
        })
        .collect();
    let mut verified = true;
    let w = waves.lock();
    for me in 0..p {
        for (t, vals) in &w[me] {
            if *t == usize::MAX {
                continue;
            }
            for (k, sig) in my_sigs[me].iter().enumerate() {
                if reference[*t][*sig] != vals[k] {
                    verified = false;
                }
            }
        }
    }
    let elapsed = end - desim::SimTime::ZERO;
    CemuResult {
        elapsed,
        ticks_per_sec: ticks as f64 / elapsed.as_secs_f64(),
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_simulator_basics() {
        // NOT gate with delay 1: output is the inverse of the input one
        // tick earlier.
        let c = Circuit {
            n_signals: 2,
            n_inputs: 1,
            gates: vec![Gate {
                kind: GateKind::Not,
                inputs: vec![0],
                out: 1,
                delay: 1,
            }],
        };
        let stim = vec![vec![true], vec![false], vec![true]];
        let w = simulate_serial(&c, &stim);
        assert!(w[0][1]); // NOT(initial false)
        assert!(!w[1][1]); // NOT(true @ t0)
        assert!(w[2][1]); // NOT(false @ t1)
    }

    #[test]
    fn gate_functions() {
        assert!(eval(GateKind::And, &[true, true]));
        assert!(!eval(GateKind::And, &[true, false]));
        assert!(eval(GateKind::Or, &[false, true]));
        assert!(eval(GateKind::Xor, &[true, false]));
        assert!(!eval(GateKind::Xor, &[true, true]));
        assert!(eval(GateKind::Not, &[false]));
    }

    #[test]
    fn distributed_matches_serial_bit_exactly() {
        let c = Circuit::random(6, 40, 17);
        let r = run_cemu(&c, 4, 25, 99);
        assert!(r.verified, "distributed waveform diverged from serial");
        assert!(r.ticks_per_sec > 0.0);
    }

    #[test]
    fn feedback_circuits_are_handled() {
        // Ring oscillator: NOT gate feeding itself (delay 2).
        let c = Circuit {
            n_signals: 2,
            n_inputs: 1,
            gates: vec![Gate {
                kind: GateKind::Not,
                inputs: vec![1],
                out: 1,
                delay: 2,
            }],
        };
        let stim = vec![vec![false]; 8];
        let w = simulate_serial(&c, &stim);
        // Oscillates with period 4: T T F F T T F F.
        let sig: Vec<bool> = w.iter().map(|t| t[1]).collect();
        assert_eq!(
            sig,
            vec![true, true, false, false, true, true, false, false]
        );
    }

    #[test]
    fn two_node_partition_also_verifies() {
        let c = Circuit::random(4, 21, 3);
        let r = run_cemu(&c, 2, 30, 5);
        assert!(r.verified);
    }
}
