//! A Rapport-style multimedia conference (§1).
//!
//! "Because HPC/VORX allows high performance communications with
//! workstations, it can be used to experiment with applications such as
//! multimedia conferencing between workstations, with real-time video and
//! high-fidelity audio transmission between conferees."
//!
//! N workstation conferees exchange two media streams over raw UDCOs (the
//! low-latency path real-time traffic needs):
//!
//! * **audio** — 64 kbit/s per conferee: a 64-byte frame every 8 ms, with a
//!   hard playout deadline;
//! * **video** — ~1 Mbit/s per conferee: an 8 KB frame every 66 ms (15 fps),
//!   fragmented into hardware frames.
//!
//! Each receiver tracks per-stream end-to-end latency, jitter, and audio
//! deadline misses. Frames carry their send timestamp in the `seq` field.

use std::sync::Arc;

use desim::{SimDuration, SimTime};
use parking_lot::Mutex;
use vorx::hpcnet::{NodeAddr, Payload, MAX_PAYLOAD};
use vorx::udco::{self, UdcoMode};
use vorx::VorxBuilder;

use crate::fft2d::topology_for;

/// Audio UDCO tag base (per-sender tags: base + sender index).
const AUDIO_BASE: u16 = 100;
/// Video UDCO tag base.
const VIDEO_BASE: u16 = 200;

/// Conference parameters.
#[derive(Debug, Clone, Copy)]
pub struct ConferenceParams {
    /// Number of conferees (workstations).
    pub conferees: usize,
    /// Conference duration.
    pub duration_ms: u64,
    /// Audio frame interval (8 ms = 64 kbit/s at 64-byte frames).
    pub audio_period_ms: u64,
    /// Audio playout deadline (end-to-end).
    pub audio_deadline_ms: u64,
    /// Video frame bytes (8 KB default).
    pub video_frame_bytes: u32,
    /// Video frame interval (66 ms ≈ 15 fps).
    pub video_period_ms: u64,
    /// Send video at all (audio-only conferences disable it).
    pub with_video: bool,
}

impl ConferenceParams {
    /// A three-way audio+video conference, one second long.
    pub fn default_3way() -> Self {
        ConferenceParams {
            conferees: 3,
            duration_ms: 1000,
            audio_period_ms: 8,
            audio_deadline_ms: 20,
            video_frame_bytes: 8 * 1024,
            video_period_ms: 66,
            with_video: true,
        }
    }
}

/// Per-stream reception statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Frames received.
    pub frames: u64,
    /// Mean end-to-end latency, µs.
    pub mean_latency_us: f64,
    /// Worst end-to-end latency, µs.
    pub max_latency_us: f64,
    /// Mean |latency - mean| (jitter), µs.
    pub jitter_us: f64,
    /// Frames past their deadline.
    pub deadline_misses: u64,
}

fn finish(lat_us: &[f64], deadline_us: f64) -> StreamStats {
    if lat_us.is_empty() {
        return StreamStats::default();
    }
    let n = lat_us.len() as f64;
    let mean = lat_us.iter().sum::<f64>() / n;
    StreamStats {
        frames: lat_us.len() as u64,
        mean_latency_us: mean,
        max_latency_us: lat_us.iter().copied().fold(0.0, f64::max),
        jitter_us: lat_us.iter().map(|l| (l - mean).abs()).sum::<f64>() / n,
        deadline_misses: lat_us.iter().filter(|l| **l > deadline_us).count() as u64,
    }
}

/// Conference results: aggregated over every receiver.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConferenceResult {
    /// Audio reception statistics.
    pub audio: StreamStats,
    /// Video reception statistics (zero when video is disabled).
    pub video: StreamStats,
}

/// Run the conference; see module docs.
pub fn run_conference(p: ConferenceParams) -> ConferenceResult {
    assert!(p.conferees >= 2);
    let mut v = VorxBuilder::with_topology(topology_for(p.conferees))
        .trace(false)
        .build();
    let audio_lat = Arc::new(Mutex::new(Vec::<f64>::new()));
    let video_lat = Arc::new(Mutex::new(Vec::<f64>::new()));

    let audio_frames = p.duration_ms / p.audio_period_ms;
    let video_frames = if p.with_video {
        p.duration_ms / p.video_period_ms
    } else {
        0
    };
    let video_frags = p.video_frame_bytes.div_ceil(MAX_PAYLOAD) as u64;

    for me in 0..p.conferees {
        let node = NodeAddr(me as u32);
        let others: Vec<NodeAddr> = (0..p.conferees)
            .filter(|q| *q != me)
            .map(|q| NodeAddr(q as u32))
            .collect();

        // Sender: paced audio + video to every other conferee.
        let peers = others.clone();
        v.spawn(format!("n{me}:send"), move |ctx| {
            udco::register(&ctx, node, AUDIO_BASE + me as u16, UdcoMode::Raw);
            udco::register(&ctx, node, VIDEO_BASE + me as u16, UdcoMode::Raw);
            let mut next_audio = SimTime::ZERO;
            let mut next_video = SimTime::ZERO;
            for _ in 0..audio_frames {
                // Sleep to the next audio tick; interleave video ticks.
                while ctx.now() < next_audio {
                    ctx.sleep(next_audio - ctx.now());
                }
                let stamp = ctx.now().as_ns();
                for &peer in &peers {
                    udco::send_raw(
                        &ctx,
                        node,
                        peer,
                        AUDIO_BASE + me as u16,
                        stamp,
                        Payload::Synthetic(64),
                    );
                }
                next_audio += SimDuration::from_ms(p.audio_period_ms);
                if video_frames > 0 && ctx.now() >= next_video {
                    let stamp = ctx.now().as_ns();
                    for &peer in &peers {
                        let mut left = p.video_frame_bytes;
                        while left > 0 {
                            let chunk = left.min(MAX_PAYLOAD);
                            udco::send_raw(
                                &ctx,
                                node,
                                peer,
                                VIDEO_BASE + me as u16,
                                stamp,
                                Payload::Synthetic(chunk),
                            );
                            left -= chunk;
                        }
                    }
                    next_video += SimDuration::from_ms(p.video_period_ms);
                }
            }
        });

        // Receiver: drain every peer's streams, recording latencies.
        let alat = Arc::clone(&audio_lat);
        let vlat = Arc::clone(&video_lat);
        let peers = others;
        v.spawn(format!("n{me}:recv"), move |ctx| {
            for &peer in &peers {
                udco::register(&ctx, node, AUDIO_BASE + peer.0 as u16, UdcoMode::Raw);
                udco::register(&ctx, node, VIDEO_BASE + peer.0 as u16, UdcoMode::Raw);
            }
            let expect_audio = audio_frames * peers.len() as u64;
            let expect_video_frags = video_frames * video_frags * peers.len() as u64;
            let mut got_audio = 0;
            let mut got_video = 0;
            while got_audio < expect_audio || got_video < expect_video_frags {
                let mut progressed = false;
                for &peer in &peers {
                    while let Some(m) = udco::try_recv_raw(&ctx, node, AUDIO_BASE + peer.0 as u16) {
                        let lat = (ctx.now().as_ns() - m.seq) as f64 / 1000.0;
                        alat.lock().push(lat);
                        got_audio += 1;
                        progressed = true;
                    }
                    while let Some(m) = udco::try_recv_raw(&ctx, node, VIDEO_BASE + peer.0 as u16) {
                        let lat = (ctx.now().as_ns() - m.seq) as f64 / 1000.0;
                        vlat.lock().push(lat);
                        got_video += 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    ctx.sleep(SimDuration::from_us(500));
                }
            }
        });
    }

    v.run_all();
    let audio = finish(&audio_lat.lock(), p.audio_deadline_ms as f64 * 1000.0);
    let video = finish(&video_lat.lock(), f64::MAX);
    ConferenceResult { audio, video }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_way_audio_meets_deadlines() {
        let mut p = ConferenceParams::default_3way();
        p.with_video = false;
        p.duration_ms = 400;
        let r = run_conference(p);
        assert_eq!(r.audio.frames, 2 * 3 * (400 / 8));
        assert_eq!(
            r.audio.deadline_misses, 0,
            "audio missed deadlines: mean {:.0}us max {:.0}us",
            r.audio.mean_latency_us, r.audio.max_latency_us
        );
        assert!(r.audio.max_latency_us < 20_000.0);
    }

    #[test]
    fn video_load_does_not_break_audio() {
        let mut p = ConferenceParams::default_3way();
        p.duration_ms = 400;
        let r = run_conference(p);
        assert!(r.video.frames > 0);
        // Audio still under deadline even with ~3 Mbit/s of video flowing.
        assert_eq!(
            r.audio.deadline_misses, 0,
            "audio degraded under video: max {:.0}us",
            r.audio.max_latency_us
        );
    }

    #[test]
    fn five_way_conference_scales() {
        let mut p = ConferenceParams::default_3way();
        p.conferees = 5;
        p.duration_ms = 250;
        p.with_video = false;
        let r = run_conference(p);
        assert_eq!(r.audio.frames, 4 * 5 * (250 / 8));
        assert_eq!(r.audio.deadline_misses, 0);
    }
}
