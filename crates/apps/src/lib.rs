//! # vorx-apps — the paper's workloads
//!
//! Applications exercising the HPC/VORX public API, standing in for the
//! programs the paper's evaluation is built around:
//!
//! * [`fft`] / [`fft2d`] — the §4.2 two-dimensional complex FFT, with
//!   multicast vs point-to-point redistribution (verified numerically).
//! * [`bitmap`] — §4.1 real-time bitmap streaming with no software flow
//!   control (the 3.2 MB/s / 30 Hz claim).
//! * [`spice`] — the §4.1 parallel-SPICE stand-in: a distributed sparse
//!   solver with raw-UDCO halo exchange (the 60 µs claim).
//! * [`cemu`] — a CEMU-style distributed circuit timing simulator, the
//!   paper's cited sliding-window/coroutine application (§4.1, §5).
//! * [`conference`] — a Rapport-style real-time audio/video conference
//!   between workstations (§1's motivating application).
//! * [`linda`] — a Linda tuple-space kernel, the S/NET's marquee
//!   application (§1) whose implementors drove the UDCO design (§4.1).
//! * [`patterns`] — ping-pong and the §2 many-to-one burst.
//! * [`download`] — the §3.3 program-download scenarios.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitmap;
pub mod cemu;
pub mod conference;
pub mod download;
pub mod fft;
pub mod fft2d;
pub mod linda;
pub mod patterns;
pub mod spice;
