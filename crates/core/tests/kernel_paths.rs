//! Kernel-path integration tests: side-buffer flow control under pressure,
//! transmit-register contention between kernel and user-level senders, and
//! multiplexed-read behaviour under sustained load.

use desim::SimDuration;
use hpcnet::{NodeAddr, Payload};
use vorx::channel::{self, ChannelHandle};
use vorx::udco::{self, UdcoMode};
use vorx::VorxBuilder;

/// A writer far faster than its reader: the side-buffer cap (8) plus
/// withheld acks must pace the writer without losing or reordering data.
#[test]
fn deferred_acks_pace_a_fast_writer() {
    let mut v = VorxBuilder::single_cluster(3).build();
    const N: u8 = 40;
    v.spawn("n1:w", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "paced");
        for i in 0..N {
            ch.write(&ctx, Payload::copy_from(&[i; 64])).unwrap();
        }
    });
    v.spawn("n2:r", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(2), "paced");
        for i in 0..N {
            // Reader is ~10x slower than the writer's send rate.
            ctx.sleep(SimDuration::from_ms(3));
            let m = ch.read(&ctx).unwrap();
            assert_eq!(m.bytes().unwrap().as_ref(), &[i; 64]);
            // The kernel never holds more complete messages than its
            // side-buffer allowance.
            let depth = ch.readable(&ctx);
            assert!(depth <= 8, "side buffers overfilled: {depth}");
        }
    });
    v.run_all();
}

/// Kernel channel traffic and user-level raw sends share one hardware
/// output register per node; both must make progress.
#[test]
fn kernel_and_udco_share_the_transmitter() {
    let mut v = VorxBuilder::single_cluster(3).build();
    v.spawn("n0:mixed", |ctx| {
        udco::register(&ctx, NodeAddr(0), 9, UdcoMode::Raw);
        let ch = channel::open(&ctx, NodeAddr(0), "mix");
        for i in 0..10u64 {
            // Interleave: one channel write (kernel frames + acks) and one
            // raw frame per round.
            ch.write(&ctx, Payload::Synthetic(512)).unwrap();
            udco::send_raw(
                &ctx,
                NodeAddr(0),
                NodeAddr(2),
                9,
                i,
                Payload::Synthetic(512),
            );
        }
    });
    v.spawn("n1:chan-rx", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "mix");
        for _ in 0..10 {
            assert_eq!(ch.read(&ctx).unwrap().len(), 512);
        }
    });
    v.spawn("n2:raw-rx", |ctx| {
        udco::register(&ctx, NodeAddr(2), 9, UdcoMode::Raw);
        for i in 0..10u64 {
            let m = udco::recv_raw_spin(&ctx, NodeAddr(2), 9);
            assert_eq!(m.seq, i, "raw frames reordered");
        }
    });
    v.run_all();
}

/// Multiplexed read drains multiple active producers without starving any.
#[test]
fn read_any_serves_all_producers() {
    let mut v = VorxBuilder::single_cluster(5).build();
    const PER: usize = 12;
    for p in 1..4u32 {
        v.spawn(format!("n{p}:w"), move |ctx| {
            let ch = channel::open(&ctx, NodeAddr(p), &format!("mux{p}"));
            for _ in 0..PER {
                ch.write(&ctx, Payload::copy_from(&[p as u8])).unwrap();
            }
        });
    }
    v.spawn("n4:mux", |ctx| {
        let chans: Vec<ChannelHandle> = (1..4)
            .map(|p| channel::open(&ctx, NodeAddr(4), &format!("mux{p}")))
            .collect();
        let mut counts = [0usize; 3];
        for _ in 0..3 * PER {
            let (_, m) = channel::read_any(&ctx, NodeAddr(4), &chans).unwrap();
            counts[(m.bytes().unwrap()[0] - 1) as usize] += 1;
        }
        assert_eq!(counts, [PER; 3]);
    });
    v.run_all();
}

/// Zero-length messages are legal (pure synchronization writes).
#[test]
fn zero_length_messages_round_trip() {
    let mut v = VorxBuilder::single_cluster(3).build();
    v.spawn("n1:w", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "zero");
        for _ in 0..5 {
            ch.write(&ctx, Payload::Synthetic(0)).unwrap();
        }
    });
    v.spawn("n2:r", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(2), "zero");
        for _ in 0..5 {
            assert_eq!(ch.read(&ctx).unwrap().len(), 0);
        }
    });
    v.run_all();
}

/// Exactly-1024-byte messages use the single-fragment fast path; 1025 bytes
/// fragment into two.
#[test]
fn fragmentation_boundary_sizes() {
    let mut v = VorxBuilder::single_cluster(3).build();
    v.spawn("n1:w", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "edge");
        ch.write(&ctx, Payload::Synthetic(1024)).unwrap();
        ch.write(&ctx, Payload::Synthetic(1025)).unwrap();
        ch.write(&ctx, Payload::Synthetic(2048)).unwrap();
    });
    v.spawn("n2:r", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(2), "edge");
        assert_eq!(ch.read(&ctx).unwrap().len(), 1024);
        assert_eq!(ch.read(&ctx).unwrap().len(), 1025);
        assert_eq!(ch.read(&ctx).unwrap().len(), 2048);
    });
    v.run_all();
    // Frame accounting: 1 + 2 + 2 data frames, each acked; plus 4 open
    // messages and 2 replies.
    let w = v.world();
    let end = w.nodes[1].chans.values().next().unwrap();
    assert_eq!(end.msgs_tx, 5, "fragment count");
}
