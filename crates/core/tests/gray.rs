//! Gray-failure determinism and estimator properties.
//!
//! Two things must hold for the PR 9 adaptive timers to be usable inside
//! the deterministic engine:
//!
//! 1. The Jacobson/Karn estimator itself is well-behaved: its RTO never
//!    leaves the `[floor, ceil]` clamp no matter what samples arrive, and
//!    the smoothed estimate converges into the sampled envelope.
//! 2. Gray degradation (latency inflation + seeded jitter) and flap trains
//!    are pure functions of `(seed, sim time)`, so the sharded engine
//!    replays the same world bit-identically at any worker count.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use desim::{FaultSchedule, SimDuration, SimTime};
use proptest::prelude::*;
use vorx::hpcnet::{ClusterId, Fabric, NetConfig, NodeAddr, Payload, Topology};
use vorx::rtt::RttEstimator;
use vorx::{channel, VCtx, VorxBuilder};

/// The calibration clamp used by the transport (see `Calibration`).
const FLOOR_NS: u64 = 5_000_000;
const CEIL_NS: u64 = 640_000_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever mix of base latency and jitter the samples carry, the RTO
    /// stays inside the clamp after every single sample — it can never dip
    /// below the floor (spurious-retransmit guard) nor run past the
    /// ceiling (unbounded-stall guard).
    #[test]
    fn rto_never_leaves_the_clamp(
        base in 1_000u64..2_000_000_000,
        jitters in proptest::collection::vec(0u64..500_000_000u64, 1..64),
    ) {
        let mut e = RttEstimator::new();
        for &j in &jitters {
            e.sample(base.saturating_add(j));
            let rto = e.rto_ns(FLOOR_NS, CEIL_NS).expect("sampled");
            prop_assert!(rto >= FLOOR_NS, "rto {rto} below floor");
            prop_assert!(rto <= CEIL_NS, "rto {rto} above ceiling");
        }
    }

    /// The smoothed estimate is a convex combination of the samples, so it
    /// converges into the sampled envelope `[base, base + jitter_bound)`,
    /// and the (unclamped) suspicion window always covers the smoothed
    /// estimate itself.
    #[test]
    fn srtt_converges_into_the_sampled_envelope(
        base in 1_000_000u64..100_000_000,
        jitters in proptest::collection::vec(0u64..20_000_000u64, 4..64),
    ) {
        let mut e = RttEstimator::new();
        for &j in &jitters {
            e.sample(base + j);
        }
        prop_assert!(e.srtt_ns() >= base);
        prop_assert!(e.srtt_ns() < base + 20_000_000);
        // floor=0, ceil=MAX exposes the raw srtt + 4*rttvar window.
        let raw = e.rto_ns(0, u64::MAX).expect("sampled");
        prop_assert!(raw >= e.srtt_ns());
    }
}

// ---------------------------------------------------------------------------
// Sharded determinism under degrade + flap.
// ---------------------------------------------------------------------------

const CLUSTERS: u32 = 4;
const PER_CLUSTER: u32 = 4;
const MSGS: u32 = 24;
const PACE_NS: u64 = 2_000_000;

fn topo() -> Topology {
    Topology::incomplete_hypercube(CLUSTERS as usize, PER_CLUSTER as usize).expect("valid machine")
}

fn nodes_of(t: &Topology, c: u32) -> Vec<NodeAddr> {
    t.endpoints()
        .filter(|&n| t.cluster_of(n) == ClusterId(c))
        .collect()
}

/// Both directed link ids of the cluster cable `a`–`b`.
fn cable(a: u32, b: u32) -> [u32; 2] {
    let f = Fabric::new(topo(), NetConfig::paper_1988());
    [
        f.cluster_link(ClusterId(a), ClusterId(b)).expect("wired").0,
        f.cluster_link(ClusterId(b), ClusterId(a)).expect("wired").0,
    ]
}

/// The gray script: an *asymmetric* degradation (only the 0→1 direction of
/// the cable inflates; the return path stays clean) with seeded jitter,
/// plus a flap train on the 2–3 cable dense enough to trip flap damping
/// (three downs inside the 50 ms window → 100 ms hold).
fn gray_schedule(seed: u64) -> FaultSchedule {
    let fwd = cable(0, 1)[0];
    let mut s = FaultSchedule::new(seed).degrade(
        fwd,
        SimTime::from_ns(5_000_000),
        SimTime::from_ns(80_000_000),
        40.0,
        2_000,
    );
    for l in cable(2, 3) {
        s = s.flap_link(l, SimTime::from_ns(20_000_000), 4_000_000, 4);
    }
    s
}

/// Run paced cross-cluster streams (one rides the degraded direction, one
/// rides the flapping cable) at `workers` threads; return the merged trace
/// plus the facts the oracles need.
fn run_once(workers: usize) -> (String, u64, u64, u64) {
    let t = topo();
    let mut v = VorxBuilder::with_topology(t.clone())
        .seed(0x6A41)
        .faults(gray_schedule(0x6A41))
        .build_sharded(workers);
    let delivered = Arc::new(AtomicU32::new(0));
    // Stream A rides the asymmetrically degraded 0→1 direction; stream B
    // rides the flapping 2–3 cable and must survive the damping hold via
    // the hypercube's redundant route (2→0→1→3).
    let streams = [
        (nodes_of(&t, 0)[0], nodes_of(&t, 1)[0], "gray.deg"),
        (nodes_of(&t, 2)[1], nodes_of(&t, 3)[1], "gray.flap"),
    ];
    for (wn, rn, name) in streams {
        let del = Arc::clone(&delivered);
        v.spawn_at(wn, format!("n{}:w:{name}", wn.0), move |ctx: VCtx| {
            let ch = channel::open(&ctx, wn, name);
            for i in 0..MSGS {
                ctx.sleep(SimDuration::from_ns(PACE_NS));
                ch.write(&ctx, Payload::Synthetic(64 + i)).expect("write");
            }
        });
        v.spawn_at(rn, format!("n{}:r:{name}", rn.0), move |ctx: VCtx| {
            let ch = channel::open(&ctx, rn, name);
            for i in 0..MSGS {
                assert_eq!(ch.read(&ctx).expect("read").len(), 64 + i);
                del.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    let end = v.run_all();
    let trace = v.merged_trace().to_json();
    let flaps = v.sum_over_shards(|w| w.link_fault_stats().values().map(|s| s.flaps).sum());
    let samples = v.sum_over_shards(|w| {
        w.nodes
            .iter()
            .flat_map(|n| n.chans.values())
            .map(|e| e.rtt.samples())
            .sum()
    });
    for k in 0..v.n_shards() {
        let w = v.world(k);
        for n in w.nodes.iter() {
            assert!(n.mbr.partitioned.is_empty(), "stale partition mark");
            assert!(n.mbr.probing.is_empty(), "probe still in flight at idle");
        }
    }
    assert_eq!(
        delivered.load(Ordering::Relaxed),
        2 * MSGS,
        "lost deliveries at {workers} workers"
    );
    (trace, end.as_ns(), flaps, samples)
}

/// Degrade + jitter + flap are pure functions of `(seed, sim time)`: the
/// merged trace is byte-identical at 1, 4, and 8 workers, the flap train is
/// recorded, and the gray window actually fed the RTT estimators.
#[test]
fn degrade_and_flap_traces_are_bit_identical_across_workers() {
    let (t1, end1, flaps1, samples1) = run_once(1);
    let (t4, end4, flaps4, _) = run_once(4);
    let (t8, end8, flaps8, _) = run_once(8);
    assert_eq!(end1, end4, "end time diverged at 4 workers");
    assert_eq!(end1, end8, "end time diverged at 8 workers");
    assert_eq!(t1, t4, "trace diverged at 4 workers");
    assert_eq!(t1, t8, "trace diverged at 8 workers");
    assert_eq!(flaps1, flaps4);
    assert_eq!(flaps1, flaps8);
    assert!(flaps1 > 0, "the flap train never registered");
    assert!(samples1 > 0, "the gray window never fed an RTT estimator");
}
