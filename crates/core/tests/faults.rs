//! Gray-failure regression tests: a degraded-but-live peer must never be
//! declared partitioned or down.
//!
//! The PR 9 fix under test: heartbeat probes sent by `membership::suspect`
//! used to inherit the control plane's fixed timeout — the same constant
//! family whose exhaustion just *triggered* the probe — so a peer slow
//! enough to exhaust the channel's retry chain was guaranteed to exhaust
//! the probe's too, and a merely-degraded peer was declared partitioned.
//! The probe deadline now derives from the per-peer RTT estimate (heartbeat
//! EWMA and the stalled channels' Jacobson RTO), and the channel timers
//! themselves adapt, so pure-delay faults are ridden out.

use desim::{FaultSchedule, SimDuration, SimTime};
use hpcnet::{NodeAddr, Payload};
use vorx::{channel, VorxBuilder};

/// Degrade every link of the machine between `start` and `end` by `factor`.
/// Link ids beyond the machine's range are inert windows.
fn degrade_all(mut s: FaultSchedule, start: u64, end: u64, factor: f64) -> FaultSchedule {
    for l in 0..32u32 {
        s = s.degrade(l, SimTime::from_ns(start), SimTime::from_ns(end), factor, 0);
    }
    s
}

/// A two-phase pure-delay degradation: moderate (RTT well past the fixed
/// 20 ms ack timeout, inside the retry chain) long enough for the RTT
/// estimators to bootstrap, then severe (RTT past the *entire* fixed retry
/// chain — the old code's false-positive regime). Every write must still
/// complete, and the peer must never be marked partitioned or down.
#[test]
fn degraded_but_live_peer_is_not_declared_partitioned() {
    // Phase boundaries (ns). Writes start after the open handshake, inside
    // the moderate window; the last writes ride the severe window.
    const MODERATE: (u64, u64) = (100_000_000, 5_000_000_000);
    const SEVERE: (u64, u64) = (5_000_000_000, 120_000_000_000);
    // 500 ns hop × factor: moderate ≈ 30 ms per hop (RTT ~120 ms, past the
    // 20 ms fixed base but inside the 2.5 s fixed chain — sampleable once
    // Karn backoff stretches the base past one round trip), severe ≈ 1 s
    // per hop (RTT ~4-8 s, past the *whole* fixed chain: the old fixed
    // timers exhaust here and falsely partition the peer).
    let schedule = degrade_all(
        degrade_all(FaultSchedule::new(0xD6), MODERATE.0, MODERATE.1, 60_000.0),
        SEVERE.0,
        SEVERE.1,
        2_000_000.0,
    );
    let mut v = VorxBuilder::single_cluster(3).faults(schedule).build();
    v.spawn("n1:w", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "gray.reg");
        // Moderate phase: the estimator samples these round trips.
        ctx.sleep(SimDuration::from_ns(MODERATE.0));
        for _ in 0..5 {
            ch.write(&ctx, Payload::Synthetic(64))
                .expect("moderate write");
        }
        // Severe phase: the adapted timers must ride this out.
        ctx.sleep(SimDuration::from_ns(
            SEVERE.0.saturating_sub(ctx.now().as_ns()),
        ));
        for _ in 0..2 {
            ch.write(&ctx, Payload::Synthetic(64))
                .expect("severe write");
        }
    });
    v.spawn("n2:r", |ctx| {
        let ch = channel::open(&ctx, NodeAddr(2), "gray.reg");
        for _ in 0..7 {
            assert_eq!(ch.read(&ctx).expect("read").len(), 64);
        }
    });
    v.run_all();
    let w = v.world();
    let writer_end = w.nodes[1].chans.values().next().expect("writer end");
    assert!(
        writer_end.rtt.samples() > 0,
        "the moderate phase must feed the Jacobson estimator"
    );
    assert_eq!(
        w.faults.stats.partitions, 0,
        "a delayed-but-live peer was declared partitioned"
    );
    assert_eq!(
        w.faults.stats.peer_down_events, 0,
        "a delayed-but-live peer was declared down"
    );
    for n in w.nodes.iter() {
        assert!(n.mbr.partitioned.is_empty(), "stale partition mark");
    }
}

/// Same machine, no degradation anywhere in the schedule: the estimators
/// stay disarmed and the fixed-timeout path runs byte-for-byte — the trace
/// matches a build with no fault schedule at all.
#[test]
fn unarmed_estimators_leave_the_fault_free_trace_untouched() {
    let run = |schedule: Option<FaultSchedule>| {
        let b = VorxBuilder::single_cluster(3).seed(7);
        let b = match schedule {
            Some(s) => b.faults(s),
            None => b,
        };
        let mut v = b.build();
        v.spawn("n1:w", |ctx| {
            let ch = channel::open(&ctx, NodeAddr(1), "clean");
            for _ in 0..4 {
                ch.write(&ctx, Payload::Synthetic(256)).unwrap();
            }
        });
        v.spawn("n2:r", |ctx| {
            let ch = channel::open(&ctx, NodeAddr(2), "clean");
            for _ in 0..4 {
                ch.read(&ctx).unwrap();
            }
        });
        v.run_all();
        let mut w = v.world();
        let trace = std::mem::replace(&mut w.trace, desim::Trace::disabled());
        trace.to_json()
    };
    // An empty schedule arms nothing; the traces must be identical.
    assert_eq!(run(None), run(Some(FaultSchedule::new(7))));
}
