//! The communications object manager (§3.2).
//!
//! "All resource management in Meglos was centralized on a single host.
//! While this is appropriate for a small system, it causes a serious
//! performance bottleneck for systems with over ten processors. [...] We
//! solved this problem in VORX by splitting the resource manager into
//! several functional pieces and replicating the individual pieces for
//! increased performance. [...] The object manager uses distributed hashing
//! to map a channel name to a particular processor."
//!
//! Both architectures are provided: [`ObjMgrMode::Centralized`] (the Meglos
//! bottleneck) and [`ObjMgrMode::Distributed`] (a manager replica on every
//! node, selected by hashing the channel name). Because two processes
//! opening the same name hash to the same manager, the rendezvous is correct
//! in either mode; only the load distribution differs — which is exactly
//! what the E-OPEN experiment measures.

use std::collections::{HashMap, HashSet, VecDeque};

use desim::{SimDuration, Wakeup};
use hpcnet::{Frame, NodeAddr, Payload};

use crate::channel;
use crate::cpu::CpuCat;
use crate::kernel;
use crate::proto;
use crate::world::{OpenResult, VCtx, VSched, World};

/// Where channel-open requests are served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjMgrMode {
    /// Every open is processed by the single manager on this node
    /// (Meglos-style; the paper's bottleneck).
    Centralized(NodeAddr),
    /// A manager replica runs on every node; the name's hash picks the
    /// replica (VORX-style).
    Distributed,
}

/// Per-node object-manager state.
#[derive(Debug, Default)]
pub struct MgrState {
    /// Unmatched open requests by name: `(requester, token)`.
    pub pending: HashMap<String, VecDeque<(NodeAddr, u64)>>,
    /// Registered server names (§4 name reuse): name -> server node.
    pub servers: HashMap<String, NodeAddr>,
    /// Requests this manager has served (load statistics for E-OPEN).
    pub served: u64,
    /// Open requests already seen, by `(requester, token)`: a retransmitted
    /// request (the requester's timeout fired before our `OPEN_QUEUED`
    /// landed) must not queue twice. Dies with the node on a crash, which is
    /// what lets retransmissions after a restart be served from scratch.
    ///
    /// Bounded: entries are evicted FIFO once [`SEEN_CAP`] is reached (see
    /// `seen_order`). Tokens are unique per request and retransmissions
    /// arrive within a few timeouts of the original, so the window only
    /// needs to cover requests still in flight — a manager that served
    /// millions of opens must not hold memory for all of them.
    pub seen: HashSet<(u32, u64)>,
    /// FIFO eviction order for `seen`.
    pub seen_order: VecDeque<(u32, u64)>,
}

/// Bound on the per-manager duplicate-suppression window (`MgrState::seen`).
/// Large enough that every request with a live retransmit chain stays
/// remembered, small enough that dedup state cannot grow with workload age.
pub const SEEN_CAP: usize = 4096;

/// Record `key` in the manager's duplicate-suppression window, evicting the
/// oldest entry beyond [`SEEN_CAP`]. Returns `true` when the key is new.
pub fn note_seen(st: &mut MgrState, key: (u32, u64)) -> bool {
    if !st.seen.insert(key) {
        return false;
    }
    st.seen_order.push_back(key);
    while st.seen_order.len() > SEEN_CAP {
        let old = st.seen_order.pop_front().expect("nonempty");
        st.seen.remove(&old);
    }
    true
}

/// FNV-1a hash of a channel name; stable across runs and platforms.
pub fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The manager node responsible for `name`.
pub fn manager_for(w: &World, name: &str) -> NodeAddr {
    match w.objmgr_mode {
        ObjMgrMode::Centralized(a) => a,
        ObjMgrMode::Distributed => NodeAddr((name_hash(name) % w.nodes.len() as u64) as u32),
    }
}

/// Node-local cache of name → serving-manager resolutions.
///
/// Normally the hash picks the manager and the cache is a transparent
/// confirmation of it; the win comes after a manager failover, when the node
/// that already learned the successor skips the dead-primary timeout on its
/// next open of the same name. Entries are stamped with the failover/heal
/// epoch at insert time and never served across an epoch change — a stale
/// manager address is evicted on lookup instead.
#[derive(Debug, Default)]
pub struct ResolveCache {
    entries: HashMap<String, (u64, NodeAddr)>,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Entries dropped because the failover/heal epoch moved past them.
    pub stale_evictions: u64,
}

impl ResolveCache {
    /// Look `name` up; a hit must match the current `epoch` exactly, and a
    /// mismatched entry is evicted (never returned).
    pub fn lookup(&mut self, epoch: u64, name: &str) -> Option<NodeAddr> {
        match self.entries.get(name) {
            Some(&(e, addr)) if e == epoch => {
                self.hits += 1;
                Some(addr)
            }
            Some(_) => {
                self.entries.remove(name);
                self.stale_evictions += 1;
                None
            }
            None => None,
        }
    }

    /// Record that `name` was served by `mgr` under `epoch`.
    pub fn put(&mut self, epoch: u64, name: String, mgr: NodeAddr) {
        self.entries.insert(name, (epoch, mgr));
    }

    /// Drop every entry (node crash wipes kernel state cold). The hit/stale
    /// counters survive: they are measurements, not state.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The failover/heal epoch guarding cached resolutions: any manager failover
/// or partition heal may move a name's serving manager, so either event
/// invalidates every cached entry in the installation.
pub fn resolve_epoch(w: &World) -> u64 {
    w.faults.stats.mgr_failovers + w.faults.stats.heals
}

/// Resolve the manager to target for an open of `name` from `node`: the
/// node's epoch-checked cache first, the hash otherwise.
pub fn resolve_mgr(w: &mut World, node: NodeAddr, name: &str) -> NodeAddr {
    let epoch = resolve_epoch(w);
    if let Some(mgr) = w.node_mut(node).resolve.lookup(epoch, name) {
        return mgr;
    }
    manager_for(w, name)
}

/// The successor replica for `name`'s manager state: the node after the
/// hash-home in address order. Server registrations are pushed here so an
/// open can fail over when the home becomes unreachable. `None` in
/// centralized mode (a single manager has no replica) and on one-node
/// systems.
pub fn successor_for(w: &World, name: &str) -> Option<NodeAddr> {
    match w.objmgr_mode {
        ObjMgrMode::Centralized(_) => None,
        ObjMgrMode::Distributed => {
            let n = w.nodes.len() as u64;
            if n < 2 {
                return None;
            }
            Some(NodeAddr(((name_hash(name) % n + 1) % n) as u32))
        }
    }
}

/// Push a fresh server registration to the name's successor replica
/// (reliable control frame). No-op when the successor is the home itself.
fn push_replica(
    w: &mut World,
    s: &mut VSched,
    mgr: NodeAddr,
    kind: proto::ObjKind,
    server: NodeAddr,
    name: &str,
) {
    let Some(succ) = successor_for(w, name) else {
        return;
    };
    if succ == mgr {
        return;
    }
    let tok = w.token();
    let f = Frame::unicast(
        mgr,
        succ,
        proto::KIND_REPL_REG,
        tok,
        proto::pack_repl_reg(kind, server, name),
    );
    crate::fault::reliable_send(w, s, f);
}

/// Kernel handler: a replicated server registration arrived at the name's
/// successor. Idempotent — the home serializes registrations and both the
/// original push and anti-entropy re-pushes carry the same server, so the
/// first write wins and repeats are no-ops.
pub fn on_repl_reg(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    crate::fault::ack_ctl(w, s, node, &f);
    let (kind, server, name) = proto::parse_repl_reg(&f.payload);
    let key = format!("{}\0{name}", kind as u8);
    w.node_mut(node).mgr.servers.entry(key).or_insert(server);
}

/// Retarget an exhausted pending open at the home manager's successor
/// replica. Returns `false` when no failover applies: centralized mode,
/// one-node system, or the open already failed over once (its recorded
/// manager is no longer the hash-home) — a second silence means the name's
/// replica set is unreachable and the open must fail.
fn try_failover(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    token: u64,
    old_mgr: NodeAddr,
    kind: proto::ObjKind,
    name: &str,
) -> bool {
    let Some(succ) = successor_for(w, name) else {
        return false;
    };
    if old_mgr != manager_for(w, name) || succ == old_mgr {
        return false;
    }
    match w.node_mut(node).open_waits.get_mut(&token) {
        Some(OpenResult::Pending {
            mgr,
            attempts,
            queued,
            timer,
            ..
        }) => {
            *mgr = succ;
            *attempts = 0;
            *queued = false;
            if let Some(t) = timer.take() {
                t.cancel();
            }
        }
        _ => return false,
    }
    w.faults.stats.mgr_failovers += 1;
    send_open_req(w, s, node, succ, kind, name, token);
    arm_open_timer(w, s, node, token, 0);
    true
}

/// Fail over every pending open on `node` whose manager is the newly
/// partitioned (or dead) `peer`, without waiting for each open's retransmit
/// chain to exhaust on its own. Tokens are processed in sorted order for
/// determinism; opens with no replica to fail over to resolve as
/// [`crate::VorxError::Unreachable`].
pub(crate) fn failover_opens(w: &mut World, s: &mut VSched, node: NodeAddr, peer: NodeAddr) {
    let mut toks: Vec<(u64, proto::ObjKind, String)> = w
        .node(node)
        .open_waits
        .iter()
        .filter_map(|(t, o)| match o {
            OpenResult::Pending {
                mgr, kind, name, ..
            } if *mgr == peer => Some((*t, *kind, name.clone())),
            _ => None,
        })
        .collect();
    toks.sort_by_key(|e| e.0);
    for (token, kind, name) in toks {
        if !try_failover(w, s, node, token, peer, kind, &name) {
            w.node_mut(node)
                .open_waits
                .insert(token, OpenResult::Failed(crate::VorxError::Unreachable));
            w.node_mut(node).open_waiters.wake_all(s, Wakeup::START);
        }
    }
}

/// Anti-entropy after a partition heal: every live node re-pushes the
/// registrations it homes (to the successor) and the ones it replicates
/// (back to the home), so registrations made on either side while the
/// fabric was split converge. Receivers apply them idempotently.
pub(crate) fn anti_entropy(w: &mut World, s: &mut VSched) {
    if !matches!(w.objmgr_mode, ObjMgrMode::Distributed) {
        return;
    }
    for me in 0..w.nodes.len() as u32 {
        let me = NodeAddr(me);
        if !w.node(me).up {
            continue;
        }
        let mut entries: Vec<(String, NodeAddr)> = w
            .node(me)
            .mgr
            .servers
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        entries.sort();
        for (key, server) in entries {
            let Some((disc, name)) = key.split_once('\0') else {
                continue;
            };
            let kind = if disc == "1" {
                proto::ObjKind::Udco
            } else {
                proto::ObjKind::Channel
            };
            let home = manager_for(w, name);
            let Some(succ) = successor_for(w, name) else {
                continue;
            };
            if succ == home {
                continue;
            }
            let target = if me == home {
                succ
            } else if me == succ {
                home
            } else {
                continue;
            };
            if !w.node(target).up {
                continue;
            }
            let tok = w.token();
            let f = Frame::unicast(
                me,
                target,
                proto::KIND_REPL_REG,
                tok,
                proto::pack_repl_reg(kind, server, name),
            );
            crate::fault::reliable_send(w, s, f);
        }
    }
}

/// Kernel handler: an open request reached its manager node.
pub fn on_open_req(w: &mut World, s: &mut VSched, mgr: NodeAddr, f: Frame) {
    // Acknowledge receipt immediately with `OPEN_QUEUED` so the requester's
    // retransmit chain stops; the eventual `OPEN_REP` is delivered reliably
    // on its own. Plain send: if the `OPEN_QUEUED` is lost, the requester's
    // next retransmission lands here again and is re-acked.
    let queued = Frame::unicast(
        mgr,
        f.src,
        proto::KIND_OPEN_QUEUED,
        f.seq,
        Payload::Synthetic(0),
    );
    let dup = !note_seen(&mut w.node_mut(mgr).mgr, (f.src.0, f.seq));
    kernel::send_frame(w, s, queued);
    if dup {
        return; // already queued (or served); don't double-enqueue
    }
    // The manager is software: serving a request costs CPU time. Requests
    // queue on the manager's CPU — with the centralized manager and many
    // simultaneous opens, this queueing *is* the §3.2 bottleneck.
    let cost = SimDuration::from_ns(w.calib.objmgr_service_ns);
    let now = s.now();
    let end = w.charge(now, mgr, CpuCat::System, cost);
    s.schedule_in(end - now, move |w: &mut World, s| {
        serve_open(w, s, mgr, f);
    });
}

fn serve_open(w: &mut World, s: &mut VSched, mgr: NodeAddr, f: Frame) {
    if !w.node(mgr).up {
        return; // the manager node crashed between the charge and the service
    }
    let (kind, name) = proto::parse_open_req_kind(&f.payload);
    let key = format!("{}\0{name}", kind as u8);
    let requester = (f.src, f.seq);
    let cap = w.calib.mgr_pending_cap;
    let st = &mut w.node_mut(mgr).mgr;
    st.served += 1;
    // A registered server takes priority: every client open yields a fresh
    // channel to the server without consuming the registration.
    if let Some(&server) = st.servers.get(&key) {
        let id = w.alloc_chan();
        let rep = Frame::unicast(
            mgr,
            requester.0,
            proto::KIND_OPEN_REP,
            requester.1,
            proto::pack_open_rep_kind(kind, id, server, &name),
        );
        crate::fault::reliable_send(w, s, rep);
        let ctok = w.token();
        let conn = Frame::unicast(
            mgr,
            server,
            proto::KIND_SERVE_CONN,
            ctok,
            proto::pack_open_rep_kind(kind, id, requester.0, &name),
        );
        crate::fault::reliable_send(w, s, conn);
        return;
    }
    if st.pending.get(&key).is_some_and(|q| q.len() >= cap) {
        // Bounded registration table: refuse with a typed NACK (reliable, so
        // the opener fails fast with `ResourceExhausted` instead of
        // retrying into an overloaded manager until its budget runs out).
        w.faults.stats.table_rejects += 1;
        let nack = Frame::unicast(
            mgr,
            requester.0,
            proto::KIND_OPEN_NACK,
            requester.1,
            proto::pack_open_req_kind(kind, &name),
        );
        crate::fault::reliable_send(w, s, nack);
        return;
    }
    let q = st.pending.entry(key).or_default();
    q.push_back(requester);
    if q.len() < 2 {
        return;
    }
    let a = q.pop_front().expect("len >= 2");
    let b = q.pop_front().expect("len >= 2");
    let id = w.alloc_chan();
    for (me, other) in [(a, b), (b, a)] {
        let rep = Frame::unicast(
            mgr,
            me.0,
            proto::KIND_OPEN_REP,
            me.1,
            proto::pack_open_rep_kind(kind, id, other.0, &name),
        );
        crate::fault::reliable_send(w, s, rep);
    }
}

/// Kernel handler: a server registration reached its manager node. Matches
/// any clients already queued for the name, then acknowledges.
pub fn on_serve_req(w: &mut World, s: &mut VSched, mgr: NodeAddr, f: Frame) {
    let cost = SimDuration::from_ns(w.calib.objmgr_service_ns);
    let now = s.now();
    let end = w.charge(now, mgr, CpuCat::System, cost);
    s.schedule_in(end - now, move |w: &mut World, s| {
        if !w.node(mgr).up {
            return; // the manager node crashed before servicing
        }
        let (kind, name) = proto::parse_open_req_kind(&f.payload);
        let key = format!("{}\0{name}", kind as u8);
        let server = f.src;
        let st = &mut w.node_mut(mgr).mgr;
        if st.servers.get(&key) == Some(&server) {
            // Retransmitted registration (our SERVE_ACK was lost): re-ack
            // without re-registering or double-counting.
            let ack = Frame::unicast(
                mgr,
                server,
                proto::KIND_SERVE_ACK,
                f.seq,
                proto::pack_open_req_kind(kind, &name),
            );
            kernel::send_frame(w, s, ack);
            return;
        }
        st.served += 1;
        let prev = st.servers.insert(key.clone(), server);
        assert!(prev.is_none(), "name {name:?} already has a server");
        let waiting: Vec<(NodeAddr, u64)> = st
            .pending
            .remove(&key)
            .map(|q| q.into_iter().collect())
            .unwrap_or_default();
        // Replicate the fresh registration to the name's successor so opens
        // can fail over if this manager becomes unreachable.
        push_replica(w, s, mgr, kind, server, &name);
        // Acknowledge the registration. Plain send: a lost ack is healed by
        // the server's registration retransmission (re-acked above).
        let ack = Frame::unicast(
            mgr,
            server,
            proto::KIND_SERVE_ACK,
            f.seq,
            proto::pack_open_req_kind(kind, &name),
        );
        kernel::send_frame(w, s, ack);
        // Connect clients that were already waiting.
        for (client, token) in waiting {
            let id = w.alloc_chan();
            let rep = Frame::unicast(
                mgr,
                client,
                proto::KIND_OPEN_REP,
                token,
                proto::pack_open_rep_kind(kind, id, server, &name),
            );
            crate::fault::reliable_send(w, s, rep);
            let ctok = w.token();
            let conn = Frame::unicast(
                mgr,
                server,
                proto::KIND_SERVE_CONN,
                ctok,
                proto::pack_open_rep_kind(kind, id, client, &name),
            );
            crate::fault::reliable_send(w, s, conn);
        }
    });
}

/// Kernel handler: an open reply reached the requesting node. Delivered
/// reliably by the manager, so ack first, then deduplicate against the
/// pending-open table.
pub fn on_open_rep(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    crate::fault::ack_ctl(w, s, node, &f);
    let token = f.seq;
    match w.node_mut(node).open_waits.get_mut(&token) {
        Some(OpenResult::Pending { timer, .. }) => {
            // A reply can beat the OPEN_QUEUED ack; disarm the request's
            // retransmit timer either way.
            if let Some(t) = timer.take() {
                t.cancel();
            }
        }
        // Duplicate reply (our first ack was lost), or a crash wiped the open.
        _ => return,
    }
    let (kind, id, peer, name) = proto::parse_open_rep_kind(&f.payload);
    // Remember which manager actually served this name (the successor,
    // after a failover), stamped with the current epoch.
    let epoch = resolve_epoch(w);
    let mgr = f.src;
    w.node_mut(node).resolve.put(epoch, name.clone(), mgr);
    match kind {
        proto::ObjKind::Channel => {
            // Create the channel end if this node does not have it yet
            // (both ends of a same-node channel share one kernel, so the
            // second reply is a no-op at the kernel level but still
            // resolves its own token).
            if !w.node(node).chans.contains_key(&id) {
                channel::create_end(w, s, node, id, name, peer);
            }
        }
        proto::ObjKind::Udco => {
            // The UDCO itself is registered by `udco::open` once the
            // assigned tag is known (receive discipline is a local choice).
        }
    }
    w.node_mut(node)
        .open_waits
        .insert(token, OpenResult::Done(id, peer));
    w.node_mut(node).open_waiters.wake_all(s, Wakeup::START);
}

/// Kernel handler: the manager refused our open request (`KIND_OPEN_NACK`,
/// pending-open table full). Delivered reliably, so ack first, then fail the
/// waiting open with [`crate::VorxError::ResourceExhausted`] — retrying
/// later, after the manager's queue drains, may succeed.
pub fn on_open_nack(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    crate::fault::ack_ctl(w, s, node, &f);
    let token = f.seq;
    match w.node_mut(node).open_waits.get_mut(&token) {
        Some(OpenResult::Pending { timer, .. }) => {
            if let Some(t) = timer.take() {
                t.cancel();
            }
        }
        // Duplicate NACK (our first ack was lost), or a crash wiped the open.
        _ => return,
    }
    w.node_mut(node).open_waits.insert(
        token,
        OpenResult::Failed(crate::VorxError::ResourceExhausted),
    );
    w.node_mut(node).open_waiters.wake_all(s, Wakeup::START);
}

/// Kernel handler: the manager acknowledged queueing our open request —
/// stop the request's retransmit chain. (Loss of this frame is healed by
/// the next retransmission; the manager re-acks duplicates.)
pub fn on_open_queued(w: &mut World, _s: &mut VSched, node: NodeAddr, f: Frame) {
    if let Some(OpenResult::Pending { queued, timer, .. }) =
        w.node_mut(node).open_waits.get_mut(&f.seq)
    {
        *queued = true;
        if let Some(t) = timer.take() {
            t.cancel();
        }
    }
}

/// Send one open request frame (initial transmission and retransmissions).
fn send_open_req(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    mgr: NodeAddr,
    kind: proto::ObjKind,
    name: &str,
    token: u64,
) {
    let f = Frame::unicast(
        node,
        mgr,
        proto::KIND_OPEN_REQ,
        token,
        proto::pack_open_req_kind(kind, name),
    );
    kernel::send_frame(w, s, f);
}

/// Arm (or re-arm) the retransmit timer for an open request that the
/// manager has not yet acknowledged with `OPEN_QUEUED`. Timeouts double per
/// retry; after `open_max_retries` the open fails with
/// [`crate::VorxError::Unreachable`].
pub(crate) fn arm_open_timer(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    token: u64,
    attempts: u32,
) {
    let delay = w.calib.open_timeout_ns << attempts.min(10);
    let timer = s.schedule_cancellable_in(SimDuration::from_ns(delay), move |w: &mut World, s| {
        if !w.node(node).up {
            return;
        }
        let max = w.calib.open_max_retries;
        enum Next {
            Stale,
            Fail(NodeAddr, proto::ObjKind, String),
            Resend(NodeAddr, proto::ObjKind, String),
        }
        let next = match w.node_mut(node).open_waits.get_mut(&token) {
            Some(OpenResult::Pending {
                mgr,
                name,
                kind,
                attempts: a,
                queued,
                ..
            }) => {
                if *queued || *a != attempts {
                    Next::Stale // acknowledged, or a newer timer owns the chain
                } else if *a >= max {
                    Next::Fail(*mgr, *kind, name.clone())
                } else {
                    *a += 1;
                    Next::Resend(*mgr, *kind, name.clone())
                }
            }
            _ => Next::Stale, // resolved, failed, or wiped by a crash
        };
        match next {
            Next::Stale => {}
            Next::Fail(mgr, kind, name) => {
                // Before giving up, try the name's successor replica — the
                // silent manager may merely be partitioned away from us.
                if !try_failover(w, s, node, token, mgr, kind, &name) {
                    w.node_mut(node)
                        .open_waits
                        .insert(token, OpenResult::Failed(crate::VorxError::Unreachable));
                    w.node_mut(node).open_waiters.wake_all(s, Wakeup::START);
                }
            }
            Next::Resend(mgr, kind, name) => {
                w.faults.stats.retransmits += 1;
                send_open_req(w, s, node, mgr, kind, &name, token);
                arm_open_timer(w, s, node, token, attempts + 1);
            }
        }
    });
    if let Some(OpenResult::Pending { timer: t, .. }) = w.node_mut(node).open_waits.get_mut(&token)
    {
        *t = Some(timer);
    }
}

/// Restart a pending open from scratch (manager failover: the manager that
/// queued it crashed, taking the queue with it). Called from
/// [`crate::fault::on_restart`].
pub(crate) fn resend_open(w: &mut World, s: &mut VSched, node: NodeAddr, token: u64) {
    let info = match w.node_mut(node).open_waits.get_mut(&token) {
        Some(OpenResult::Pending {
            mgr,
            name,
            kind,
            attempts,
            queued,
            timer,
        }) => {
            *attempts = 0;
            *queued = false;
            // Disarm whatever remained of the pre-crash chain.
            if let Some(t) = timer.take() {
                t.cancel();
            }
            Some((*mgr, *kind, name.clone()))
        }
        _ => None,
    };
    let Some((mgr, kind, name)) = info else {
        return;
    };
    send_open_req(w, s, node, mgr, kind, &name, token);
    arm_open_timer(w, s, node, token, 0);
}

/// Rendezvous on `name` through the object manager: register a pending
/// open, transmit the request (with retransmission until the manager
/// acknowledges queueing it), and park until the manager replies with the
/// connected object. Returns `(object id, peer node)`.
pub fn rendezvous(
    ctx: &VCtx,
    node: NodeAddr,
    name: &str,
    kind: proto::ObjKind,
) -> crate::VorxResult<(u32, NodeAddr)> {
    let name_owned = name.to_string();
    let token = ctx.with(move |w, s| {
        // Bounded channel table: refuse new opens once this node holds its
        // budgeted number of channels — degrade locally instead of growing
        // the kernel without limit. (Checked before anything is registered,
        // so a refused open leaves no state behind.)
        if w.node(node).chans.len() >= w.calib.max_chans_per_node {
            w.faults.stats.table_rejects += 1;
            return Err(crate::VorxError::ResourceExhausted);
        }
        let mgr = resolve_mgr(w, node, &name_owned);
        let token = w.token();
        w.node_mut(node).open_waits.insert(
            token,
            OpenResult::Pending {
                mgr,
                name: name_owned.clone(),
                kind,
                attempts: 0,
                queued: false,
                timer: None,
            },
        );
        send_open_req(w, s, node, mgr, kind, &name_owned, token);
        arm_open_timer(w, s, node, token, 0);
        Ok(token)
    })?;
    let pid = ctx.pid();
    ctx.wait_until(move |w, _| match w.node(node).open_waits.get(&token) {
        Some(OpenResult::Done(id, peer)) => {
            let (id, peer) = (*id, *peer);
            w.node_mut(node).open_waits.remove(&token);
            Some(Ok((id, peer)))
        }
        Some(OpenResult::Failed(e)) => {
            let e = *e;
            w.node_mut(node).open_waits.remove(&token);
            Some(Err(e))
        }
        Some(OpenResult::Pending { .. }) => {
            w.node_mut(node).open_waiters.register(pid);
            None
        }
        // Our own node crashed and the pending-open table died with it.
        None => Some(Err(crate::VorxError::NodeDown)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Calibration;
    use crate::channel::open;
    use crate::world::VorxBuilder;
    use hpcnet::Payload;

    #[test]
    fn name_hash_is_stable() {
        assert_eq!(name_hash("pipe"), name_hash("pipe"));
        assert_ne!(name_hash("pipe"), name_hash("pipf"));
    }

    #[test]
    fn seen_window_dedups_and_stays_bounded() {
        let mut st = MgrState::default();
        assert!(note_seen(&mut st, (1, 42)));
        assert!(!note_seen(&mut st, (1, 42)), "retransmission must dedup");
        // Push far past the cap: memory stays bounded...
        for t in 0..(SEEN_CAP as u64 * 2) {
            note_seen(&mut st, (2, t));
        }
        assert_eq!(st.seen.len(), SEEN_CAP);
        assert_eq!(st.seen_order.len(), SEEN_CAP);
        // ...recent entries still dedup, and the oldest were evicted (so a
        // very late retransmission would be re-served, which is safe — the
        // requester stopped retransmitting long ago).
        assert!(!note_seen(&mut st, (2, SEEN_CAP as u64 * 2 - 1)));
        assert!(note_seen(&mut st, (1, 42)), "evicted entries are forgotten");
    }

    #[test]
    fn resolve_cache_never_serves_across_epochs() {
        let mut c = ResolveCache::default();
        c.put(0, "a".into(), NodeAddr(3));
        assert_eq!(c.lookup(0, "a"), Some(NodeAddr(3)));
        assert_eq!(c.hits, 1);
        // Epoch moved: the entry must be evicted, never returned.
        assert_eq!(c.lookup(1, "a"), None);
        assert_eq!(c.stale_evictions, 1);
        assert!(c.is_empty(), "stale entry evicted on lookup");
        // Re-learned under the new epoch, a crash wipe clears entries but
        // keeps the measurement counters.
        c.put(1, "a".into(), NodeAddr(4));
        assert_eq!(c.lookup(1, "a"), Some(NodeAddr(4)));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits, 2);
        assert_eq!(c.stale_evictions, 1);
    }

    #[test]
    fn repeat_opens_hit_the_resolve_cache() {
        let mut v = VorxBuilder::single_cluster(4).build();
        v.spawn("n1:w", |ctx| {
            for _ in 0..2 {
                let ch = open(&ctx, NodeAddr(1), "hot");
                ch.write(&ctx, Payload::Synthetic(4)).unwrap();
                ch.close(&ctx);
            }
        });
        v.spawn("n2:r", |ctx| {
            for _ in 0..2 {
                let ch = open(&ctx, NodeAddr(2), "hot");
                let _ = ch.read(&ctx).unwrap();
                ch.close(&ctx);
            }
        });
        v.run_all();
        let w = v.world();
        assert!(
            w.node(NodeAddr(1)).resolve.hits >= 1,
            "the second open of a cached name must hit"
        );
        assert!(w.node(NodeAddr(2)).resolve.hits >= 1);
        assert_eq!(w.node(NodeAddr(1)).resolve.stale_evictions, 0);
    }

    #[test]
    fn distributed_mode_spreads_managers() {
        let v = VorxBuilder::single_cluster(8).build();
        let w = v.world();
        let mgrs: std::collections::HashSet<u32> = (0..50)
            .map(|i| manager_for(&w, &format!("chan-{i}")).0)
            .collect();
        assert!(
            mgrs.len() > 3,
            "hashing should spread across nodes: {mgrs:?}"
        );
    }

    #[test]
    fn centralized_mode_uses_one_manager() {
        let v = VorxBuilder::single_cluster(8)
            .objmgr(ObjMgrMode::Centralized(NodeAddr(0)))
            .build();
        let w = v.world();
        for i in 0..20 {
            assert_eq!(manager_for(&w, &format!("chan-{i}")), NodeAddr(0));
        }
    }

    #[test]
    fn centralized_manager_serves_all_opens() {
        let mut v = VorxBuilder::single_cluster(6)
            .objmgr(ObjMgrMode::Centralized(NodeAddr(0)))
            .build();
        for pair in 0..2u32 {
            let (wn, rn) = (1 + pair * 2, 2 + pair * 2);
            v.spawn(format!("n{wn}:w"), move |ctx| {
                let ch = open(&ctx, NodeAddr(wn), &format!("c{pair}"));
                ch.write(&ctx, Payload::Synthetic(4)).unwrap();
            });
            v.spawn(format!("n{rn}:r"), move |ctx| {
                let ch = open(&ctx, NodeAddr(rn), &format!("c{pair}"));
                let _ = ch.read(&ctx).unwrap();
            });
        }
        v.run_all();
        let w = v.world();
        assert_eq!(w.nodes[0].mgr.served, 4);
        assert!(w.nodes.iter().skip(1).all(|n| n.mgr.served == 0));
    }

    #[test]
    fn same_node_processes_can_rendezvous() {
        let mut v = VorxBuilder::single_cluster(2)
            .calibration(Calibration::paper_1988())
            .build();
        v.spawn("n1:a", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "local");
            ch.write(&ctx, Payload::copy_from(b"x")).unwrap();
        });
        v.spawn("n1:b", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "local");
            let m = ch.read(&ctx).unwrap();
            assert_eq!(m.bytes().unwrap().as_ref(), b"x");
        });
        v.run_all();
    }

    #[test]
    fn three_openers_match_first_two() {
        let mut v = VorxBuilder::single_cluster(4).build();
        v.spawn("n1:w", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "popular");
            ch.write(&ctx, Payload::Synthetic(8)).unwrap();
        });
        v.spawn("n2:r", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "popular");
            let _ = ch.read(&ctx).unwrap();
        });
        // The third open never matches; it must park, not crash.
        v.spawn("n3:odd", |ctx| {
            let _ = open(&ctx, NodeAddr(3), "popular");
            unreachable!("third opener should wait forever");
        });
        let report = v.run();
        assert_eq!(report.parked.len(), 1);
        assert_eq!(report.parked[0].1, "n3:odd");
    }
}
