//! The communications object manager (§3.2).
//!
//! "All resource management in Meglos was centralized on a single host.
//! While this is appropriate for a small system, it causes a serious
//! performance bottleneck for systems with over ten processors. [...] We
//! solved this problem in VORX by splitting the resource manager into
//! several functional pieces and replicating the individual pieces for
//! increased performance. [...] The object manager uses distributed hashing
//! to map a channel name to a particular processor."
//!
//! Both architectures are provided: [`ObjMgrMode::Centralized`] (the Meglos
//! bottleneck) and [`ObjMgrMode::Distributed`] (a manager replica on every
//! node, selected by hashing the channel name). Because two processes
//! opening the same name hash to the same manager, the rendezvous is correct
//! in either mode; only the load distribution differs — which is exactly
//! what the E-OPEN experiment measures.

use std::collections::{HashMap, VecDeque};

use desim::{SimDuration, Wakeup};
use hpcnet::{Frame, NodeAddr};

use crate::channel;
use crate::cpu::CpuCat;
use crate::kernel;
use crate::proto;
use crate::world::{OpenResult, VSched, World};

/// Where channel-open requests are served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjMgrMode {
    /// Every open is processed by the single manager on this node
    /// (Meglos-style; the paper's bottleneck).
    Centralized(NodeAddr),
    /// A manager replica runs on every node; the name's hash picks the
    /// replica (VORX-style).
    Distributed,
}

/// Per-node object-manager state.
#[derive(Debug, Default)]
pub struct MgrState {
    /// Unmatched open requests by name: `(requester, token)`.
    pub pending: HashMap<String, VecDeque<(NodeAddr, u64)>>,
    /// Registered server names (§4 name reuse): name -> server node.
    pub servers: HashMap<String, NodeAddr>,
    /// Requests this manager has served (load statistics for E-OPEN).
    pub served: u64,
}

/// FNV-1a hash of a channel name; stable across runs and platforms.
pub fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The manager node responsible for `name`.
pub fn manager_for(w: &World, name: &str) -> NodeAddr {
    match w.objmgr_mode {
        ObjMgrMode::Centralized(a) => a,
        ObjMgrMode::Distributed => NodeAddr((name_hash(name) % w.nodes.len() as u64) as u16),
    }
}

/// Kernel handler: an open request reached its manager node.
pub fn on_open_req(w: &mut World, s: &mut VSched, mgr: NodeAddr, f: Frame) {
    // The manager is software: serving a request costs CPU time. Requests
    // queue on the manager's CPU — with the centralized manager and many
    // simultaneous opens, this queueing *is* the §3.2 bottleneck.
    let cost = SimDuration::from_ns(w.calib.objmgr_service_ns);
    let now = s.now();
    let end = w.charge(now, mgr, CpuCat::System, cost);
    s.schedule_in(end - now, move |w: &mut World, s| {
        serve_open(w, s, mgr, f);
    });
}

fn serve_open(w: &mut World, s: &mut VSched, mgr: NodeAddr, f: Frame) {
    let (kind, name) = proto::parse_open_req_kind(&f.payload);
    let key = format!("{}\0{name}", kind as u8);
    let requester = (f.src, f.seq);
    let st = &mut w.node_mut(mgr).mgr;
    st.served += 1;
    // A registered server takes priority: every client open yields a fresh
    // channel to the server without consuming the registration.
    if let Some(&server) = st.servers.get(&key) {
        let id = w.next_chan;
        w.next_chan += 1;
        let rep = Frame::unicast(
            mgr,
            requester.0,
            proto::KIND_OPEN_REP,
            requester.1,
            proto::pack_open_rep_kind(kind, id, server, &name),
        );
        kernel::send_frame(w, s, rep);
        let conn = Frame::unicast(
            mgr,
            server,
            proto::KIND_SERVE_CONN,
            0,
            proto::pack_open_rep_kind(kind, id, requester.0, &name),
        );
        kernel::send_frame(w, s, conn);
        return;
    }
    let q = st.pending.entry(key).or_default();
    q.push_back(requester);
    if q.len() < 2 {
        return;
    }
    let a = q.pop_front().expect("len >= 2");
    let b = q.pop_front().expect("len >= 2");
    let id = w.next_chan;
    w.next_chan += 1;
    for (me, other) in [(a, b), (b, a)] {
        let rep = Frame::unicast(
            mgr,
            me.0,
            proto::KIND_OPEN_REP,
            me.1,
            proto::pack_open_rep_kind(kind, id, other.0, &name),
        );
        kernel::send_frame(w, s, rep);
    }
}

/// Kernel handler: a server registration reached its manager node. Matches
/// any clients already queued for the name, then acknowledges.
pub fn on_serve_req(w: &mut World, s: &mut VSched, mgr: NodeAddr, f: Frame) {
    let cost = SimDuration::from_ns(w.calib.objmgr_service_ns);
    let now = s.now();
    let end = w.charge(now, mgr, CpuCat::System, cost);
    s.schedule_in(end - now, move |w: &mut World, s| {
        let (kind, name) = proto::parse_open_req_kind(&f.payload);
        let key = format!("{}\0{name}", kind as u8);
        let server = f.src;
        let st = &mut w.node_mut(mgr).mgr;
        st.served += 1;
        let prev = st.servers.insert(key.clone(), server);
        assert!(prev.is_none(), "name {name:?} already has a server");
        let waiting: Vec<(NodeAddr, u64)> = st
            .pending
            .remove(&key)
            .map(|q| q.into_iter().collect())
            .unwrap_or_default();
        // Acknowledge the registration.
        let ack = Frame::unicast(
            mgr,
            server,
            proto::KIND_SERVE_ACK,
            f.seq,
            proto::pack_open_req_kind(kind, &name),
        );
        kernel::send_frame(w, s, ack);
        // Connect clients that were already waiting.
        for (client, token) in waiting {
            let id = w.next_chan;
            w.next_chan += 1;
            let rep = Frame::unicast(
                mgr,
                client,
                proto::KIND_OPEN_REP,
                token,
                proto::pack_open_rep_kind(kind, id, server, &name),
            );
            kernel::send_frame(w, s, rep);
            let conn = Frame::unicast(
                mgr,
                server,
                proto::KIND_SERVE_CONN,
                0,
                proto::pack_open_rep_kind(kind, id, client, &name),
            );
            kernel::send_frame(w, s, conn);
        }
    });
}

/// Kernel handler: an open reply reached the requesting node.
pub fn on_open_rep(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    let (kind, id, peer, name) = proto::parse_open_rep_kind(&f.payload);
    let token = f.seq;
    match kind {
        proto::ObjKind::Channel => {
            // Create the channel end if this node does not have it yet
            // (both ends of a same-node channel share one kernel, so the
            // second reply is a no-op at the kernel level but still
            // resolves its own token).
            if !w.node(node).chans.contains_key(&id) {
                channel::create_end(w, s, node, id, name, peer);
            }
        }
        proto::ObjKind::Udco => {
            // The UDCO itself is registered by `udco::open` once the
            // assigned tag is known (receive discipline is a local choice).
        }
    }
    w.node_mut(node)
        .open_waits
        .insert(token, OpenResult::Done(id, peer));
    w.node_mut(node).open_waiters.wake_all(s, Wakeup::START);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Calibration;
    use crate::channel::open;
    use crate::world::VorxBuilder;
    use hpcnet::Payload;

    #[test]
    fn name_hash_is_stable() {
        assert_eq!(name_hash("pipe"), name_hash("pipe"));
        assert_ne!(name_hash("pipe"), name_hash("pipf"));
    }

    #[test]
    fn distributed_mode_spreads_managers() {
        let v = VorxBuilder::single_cluster(8).build();
        let w = v.world();
        let mgrs: std::collections::HashSet<u16> = (0..50)
            .map(|i| manager_for(&w, &format!("chan-{i}")).0)
            .collect();
        assert!(
            mgrs.len() > 3,
            "hashing should spread across nodes: {mgrs:?}"
        );
    }

    #[test]
    fn centralized_mode_uses_one_manager() {
        let v = VorxBuilder::single_cluster(8)
            .objmgr(ObjMgrMode::Centralized(NodeAddr(0)))
            .build();
        let w = v.world();
        for i in 0..20 {
            assert_eq!(manager_for(&w, &format!("chan-{i}")), NodeAddr(0));
        }
    }

    #[test]
    fn centralized_manager_serves_all_opens() {
        let mut v = VorxBuilder::single_cluster(6)
            .objmgr(ObjMgrMode::Centralized(NodeAddr(0)))
            .build();
        for pair in 0..2u16 {
            let (wn, rn) = (1 + pair * 2, 2 + pair * 2);
            v.spawn(format!("n{wn}:w"), move |ctx| {
                let ch = open(&ctx, NodeAddr(wn), &format!("c{pair}"));
                ch.write(&ctx, Payload::Synthetic(4)).unwrap();
            });
            v.spawn(format!("n{rn}:r"), move |ctx| {
                let ch = open(&ctx, NodeAddr(rn), &format!("c{pair}"));
                let _ = ch.read(&ctx).unwrap();
            });
        }
        v.run_all();
        let w = v.world();
        assert_eq!(w.nodes[0].mgr.served, 4);
        assert!(w.nodes[1..].iter().all(|n| n.mgr.served == 0));
    }

    #[test]
    fn same_node_processes_can_rendezvous() {
        let mut v = VorxBuilder::single_cluster(2)
            .calibration(Calibration::paper_1988())
            .build();
        v.spawn("n1:a", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "local");
            ch.write(&ctx, Payload::copy_from(b"x")).unwrap();
        });
        v.spawn("n1:b", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "local");
            let m = ch.read(&ctx).unwrap();
            assert_eq!(m.bytes().unwrap().as_ref(), b"x");
        });
        v.run_all();
    }

    #[test]
    fn three_openers_match_first_two() {
        let mut v = VorxBuilder::single_cluster(4).build();
        v.spawn("n1:w", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "popular");
            ch.write(&ctx, Payload::Synthetic(8)).unwrap();
        });
        v.spawn("n2:r", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "popular");
            let _ = ch.read(&ctx).unwrap();
        });
        // The third open never matches; it must park, not crash.
        v.spawn("n3:odd", |ctx| {
            let _ = open(&ctx, NodeAddr(3), "popular");
            unreachable!("third opener should wait forever");
        });
        let report = v.run();
        assert_eq!(report.parked.len(), 1);
        assert_eq!(report.parked[0].1, "n3:odd");
    }
}
