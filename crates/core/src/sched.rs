//! Subprocesses: VORX's threads (§5).
//!
//! "Both Meglos and VORX allow a process to be subdivided into subprocesses.
//! [...] Each subprocess is an independently scheduled thread of execution
//! that may block for communications or other events without affecting the
//! execution of the other subprocesses. [...] distinct execution priorities
//! can be specified for each subprocess and the scheduler is preemptive.
//! [...] A context switch, which includes saving both fixed and floating
//! point registers takes 80 µsec."
//!
//! Model: every subprocess is a `desim` process gated by a per-node
//! scheduler. Exactly one subprocess per node is *scheduled* at a time;
//! every switch of the scheduled subprocess charges the measured 80 µs.
//! Priorities are honoured whenever the scheduler picks; preemption happens
//! at blocking points, at explicit yields, and between the quanta of
//! [`SubprocHandle::compute_sliced`] — the granularity a kernel's timer
//! interrupt would give.
//!
//! The cheaper structuring techniques of §5 are also here:
//! [`coroutine_switch`] (partial register save, only at well-defined
//! points) and — via `udco`'s interrupt/polled modes — interrupt-level
//! programming with no switches at all.

use desim::{SimDuration, Wakeup};
use hpcnet::NodeAddr;

use crate::api;
use crate::cpu::{BlockReason, CpuCat};
use crate::world::{VCtx, VSched, World};

/// State of one subprocess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpState {
    /// Waiting to be scheduled.
    Ready,
    /// The scheduled subprocess of its node.
    Running,
    /// Blocked on a semaphore or event.
    Blocked,
    /// Finished.
    Done,
}

#[derive(Debug)]
struct Sp {
    pid: desim::ProcId,
    prio: u8,
    state: SpState,
    /// FIFO tiebreak within a priority.
    seq: u64,
}

/// A counting semaphore shared by the subprocesses of one node (the §5
/// communication mechanism between subprocesses).
#[derive(Debug, Default)]
pub struct SpSem {
    count: i64,
    /// Blocked subprocess indices, FIFO (ring buffer: O(1) wake).
    waiters: std::collections::VecDeque<u32>,
}

/// Per-node subprocess scheduler state.
#[derive(Debug, Default)]
pub struct SchedState {
    subprocs: Vec<Sp>,
    current: Option<u32>,
    next_seq: u64,
    /// Semaphores on this node.
    pub sems: Vec<SpSem>,
    /// Context switches performed (statistics for E-CTX).
    pub switches: u64,
}

impl SchedState {
    /// Pick the highest-priority ready subprocess (FIFO within priority).
    fn pick(&self) -> Option<u32> {
        self.subprocs
            .iter()
            .enumerate()
            .filter(|(_, sp)| sp.state == SpState::Ready)
            .max_by_key(|(_, sp)| (sp.prio, std::cmp::Reverse(sp.seq)))
            .map(|(i, _)| i as u32)
    }

    /// Number of registered subprocesses.
    pub fn len(&self) -> usize {
        self.subprocs.len()
    }

    /// True iff no subprocess is registered.
    pub fn is_empty(&self) -> bool {
        self.subprocs.is_empty()
    }

    /// Current scheduled subprocess, if any.
    pub fn current(&self) -> Option<u32> {
        self.current
    }
}

/// Handle to a subprocess, passed to its body.
#[derive(Debug, Clone, Copy)]
pub struct SubprocHandle {
    /// The node this subprocess runs on.
    pub node: NodeAddr,
    /// Index within the node's scheduler.
    pub idx: u32,
}

/// If nothing is scheduled, dispatch the best ready subprocess, charging the
/// context-switch cost on the node CPU before it resumes.
fn reschedule(w: &mut World, s: &mut VSched, node: NodeAddr) {
    let st = &mut w.node_mut(node).sched;
    if st.current.is_some() {
        return;
    }
    let Some(next) = st.pick() else {
        return;
    };
    st.current = Some(next);
    st.subprocs[next as usize].state = SpState::Running;
    st.switches += 1;
    let pid = st.subprocs[next as usize].pid;
    // Saving and restoring the full register set costs 80 µs (§5).
    let d = SimDuration::from_ns(w.calib.ctx_switch_ns);
    let now = s.now();
    let end = w.charge(now, node, CpuCat::System, d);
    s.wake_in(end - now, pid, Wakeup::START);
}

/// Spawn a subprocess on `node` with `prio` (higher runs first). The body
/// starts once the scheduler dispatches it. Process-context API; use from
/// setup code via `ctx.with` + [`spawn_subproc_in`].
pub fn spawn_subproc<F>(
    ctx: &VCtx,
    node: NodeAddr,
    prio: u8,
    name: impl Into<String>,
    body: F,
) -> SubprocHandle
where
    F: FnOnce(VCtx, SubprocHandle) + Send + 'static,
{
    ctx.with(move |w, s| spawn_subproc_in(w, s, node, prio, name, body))
}

/// Event-context variant of [`spawn_subproc`].
pub fn spawn_subproc_in<F>(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    prio: u8,
    name: impl Into<String>,
    body: F,
) -> SubprocHandle
where
    F: FnOnce(VCtx, SubprocHandle) + Send + 'static,
{
    let idx = w.node(node).sched.subprocs.len() as u32;
    let handle = SubprocHandle { node, idx };
    let pid = s.spawn(name, move |ctx: VCtx| {
        // Wait to be dispatched for the first time.
        ctx.wait_until(move |w, _| (w.node(node).sched.current == Some(idx)).then_some(()));
        body(ctx.clone(), handle);
        // Exit: release the CPU and dispatch the next subprocess.
        ctx.with(move |w, s| {
            let st = &mut w.node_mut(node).sched;
            st.subprocs[idx as usize].state = SpState::Done;
            if st.current == Some(idx) {
                st.current = None;
            }
            reschedule(w, s, node);
        });
    });
    let st = &mut w.node_mut(node).sched;
    let seq = st.next_seq;
    st.next_seq += 1;
    st.subprocs.push(Sp {
        pid,
        prio,
        state: SpState::Ready,
        seq,
    });
    reschedule(w, s, node);
    handle
}

impl SubprocHandle {
    /// Compute for `d` of user time while scheduled (not preemptible).
    pub fn compute(&self, ctx: &VCtx, d: SimDuration) {
        let h = *self;
        debug_assert!(ctx.with(move |w, _| w.node(h.node).sched.current == Some(h.idx)));
        api::compute(ctx, self.node, CpuCat::User, d);
    }

    /// Compute for `total`, yielding the CPU every `quantum` so that
    /// higher-priority subprocesses can preempt (the timer-tick model of
    /// the preemptive scheduler).
    pub fn compute_sliced(&self, ctx: &VCtx, total: SimDuration, quantum: SimDuration) {
        assert!(!quantum.is_zero(), "quantum must be positive");
        let mut left = total;
        while !left.is_zero() {
            let step = left.min(quantum);
            self.compute(ctx, step);
            left = left.saturating_sub(step);
            self.yield_now(ctx);
        }
    }

    /// Voluntarily yield: if an equal-or-higher-priority subprocess is
    /// ready, switch to it (charging the switch); otherwise continue.
    pub fn yield_now(&self, ctx: &VCtx) {
        let h = *self;
        let switched = ctx.with(move |w, s| {
            let st = &mut w.node_mut(h.node).sched;
            debug_assert_eq!(st.current, Some(h.idx));
            let me_prio = st.subprocs[h.idx as usize].prio;
            let better = st
                .pick()
                .map(|c| st.subprocs[c as usize].prio >= me_prio)
                .unwrap_or(false);
            if better {
                st.subprocs[h.idx as usize].state = SpState::Ready;
                let me = &mut st.subprocs[h.idx as usize];
                me.seq = st.next_seq;
                st.next_seq += 1;
                st.current = None;
                reschedule(w, s, h.node);
                true
            } else {
                false
            }
        });
        if switched {
            self.wait_scheduled(ctx);
        }
    }

    /// Block until re-dispatched.
    fn wait_scheduled(&self, ctx: &VCtx) {
        let h = *self;
        ctx.wait_until(move |w, _| (w.node(h.node).sched.current == Some(h.idx)).then_some(()));
    }

    /// Block this subprocess (scheduler dispatches the next one); the caller
    /// must have arranged for something to call [`sp_ready_in`] later.
    pub fn block(&self, ctx: &VCtx, reason: BlockReason) {
        let h = *self;
        ctx.with(move |w, s| {
            let now = s.now();
            w.block(now, h.node, reason);
            let st = &mut w.node_mut(h.node).sched;
            debug_assert_eq!(st.current, Some(h.idx));
            st.subprocs[h.idx as usize].state = SpState::Blocked;
            st.current = None;
            reschedule(w, s, h.node);
        });
        self.wait_scheduled(ctx);
        ctx.with(move |w, s| {
            let now = s.now();
            w.unblock(now, h.node, reason);
        });
    }

    /// P operation on semaphore `sem` of this node.
    pub fn sem_p(&self, ctx: &VCtx, sem: usize) {
        let h = *self;
        let acquired = ctx.with(move |w, _| {
            let st = &mut w.node_mut(h.node).sched;
            if st.sems[sem].count > 0 {
                st.sems[sem].count -= 1;
                true
            } else {
                st.sems[sem].waiters.push_back(h.idx);
                false
            }
        });
        if !acquired {
            self.block(ctx, BlockReason::Other);
        }
    }

    /// V operation on semaphore `sem` of this node. Wakes the
    /// longest-waiting subprocess; if it outranks the caller, the caller is
    /// preempted on the spot (the scheduler is preemptive, §5).
    pub fn sem_v(&self, ctx: &VCtx, sem: usize) {
        let h = *self;
        let preempted = ctx.with(move |w, s| sem_v_in(w, s, h.node, sem, Some(h.idx)));
        if preempted {
            self.wait_scheduled(ctx);
        }
    }
}

/// Create a semaphore on `node` with an initial count; returns its index.
pub fn create_sem(ctx: &VCtx, node: NodeAddr, initial: i64) -> usize {
    ctx.with(move |w, _| {
        let st = &mut w.node_mut(node).sched;
        st.sems.push(SpSem {
            count: initial,
            waiters: std::collections::VecDeque::new(),
        });
        st.sems.len() - 1
    })
}

/// Event-context V operation (e.g. from an interrupt handler). Returns true
/// iff the caller subprocess (`from`) was preempted.
pub fn sem_v_in(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    sem: usize,
    from: Option<u32>,
) -> bool {
    let st = &mut w.node_mut(node).sched;
    let Some(woken) = st.sems[sem].waiters.pop_front() else {
        st.sems[sem].count += 1;
        return false;
    };
    st.subprocs[woken as usize].state = SpState::Ready;
    let woken_prio = st.subprocs[woken as usize].prio;
    let preempt = match (from, st.current) {
        (Some(me), Some(cur)) if me == cur => woken_prio > st.subprocs[me as usize].prio,
        _ => false,
    };
    if preempt {
        let me = from.expect("checked");
        st.subprocs[me as usize].state = SpState::Ready;
        let sp = &mut st.subprocs[me as usize];
        sp.seq = st.next_seq;
        st.next_seq += 1;
        st.current = None;
    }
    if st.current.is_none() {
        reschedule(w, s, node);
    }
    preempt
}

/// Mark a blocked subprocess ready (e.g. from a communications interrupt)
/// and dispatch if the node is idle.
pub fn sp_ready_in(w: &mut World, s: &mut VSched, node: NodeAddr, idx: u32) {
    let st = &mut w.node_mut(node).sched;
    if st.subprocs[idx as usize].state == SpState::Blocked {
        st.subprocs[idx as usize].state = SpState::Ready;
        let sp = &mut st.subprocs[idx as usize];
        sp.seq = st.next_seq;
        st.next_seq += 1;
    }
    reschedule(w, s, node);
}

/// A coroutine switch: "coroutine switches occur only at well defined places
/// in the application code, so that most registers need not be saved" (§5).
/// Charges the much smaller partial-save cost.
pub fn coroutine_switch(ctx: &VCtx, node: NodeAddr) {
    let c = ctx.with(|w, _| w.calib);
    api::compute_ns(ctx, node, CpuCat::System, c.coroutine_switch_ns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::VorxBuilder;
    use desim::SimTime;

    #[test]
    fn one_subprocess_runs_and_charges_dispatch() {
        let mut v = VorxBuilder::single_cluster(1).build();
        v.spawn("setup", |ctx| {
            spawn_subproc(&ctx, NodeAddr(0), 1, "n0:sp0", |ctx, h| {
                h.compute(&ctx, SimDuration::from_us(100));
            });
        });
        v.run_all();
        let w = v.world();
        assert_eq!(w.nodes[0].sched.switches, 1);
        // 80us dispatch + 100us compute.
        assert_eq!(w.nodes[0].cpu.busy(), SimDuration::from_us(180));
    }

    #[test]
    fn priorities_pick_highest_among_ready() {
        let mut v = VorxBuilder::single_cluster(1).build();
        v.spawn("setup", |ctx| {
            for (prio, tag) in [(1u8, 10u64), (5, 50), (3, 30)] {
                spawn_subproc(
                    &ctx,
                    NodeAddr(0),
                    prio,
                    format!("sp{prio}"),
                    move |ctx, h| {
                        h.compute(&ctx, SimDuration::from_us(10));
                        ctx.with(move |w, _| {
                            // Record completion order via the trace-free route:
                            w.next_token = w.next_token * 100 + tag;
                        });
                    },
                );
            }
        });
        v.run_all();
        // sp(prio 1) is dispatched the moment it is created (the node is
        // idle); while it runs, prio 5 and prio 3 become ready, and the
        // scheduler then picks them in priority order: 10, 50, 30.
        assert_eq!(v.world().next_token % 1_000_000, 105_030);
    }

    #[test]
    fn semaphore_handoff_costs_two_switches_per_cycle() {
        // The §5 structure: producer and consumer subprocesses exchanging
        // via semaphores; every round trip costs two context switches.
        let mut v = VorxBuilder::single_cluster(1).build();
        v.spawn("setup", |ctx| {
            let node = NodeAddr(0);
            let items = create_sem(&ctx, node, 0);
            let slots = create_sem(&ctx, node, 1);
            spawn_subproc(&ctx, node, 2, "producer", move |ctx, h| {
                for _ in 0..10 {
                    h.sem_p(&ctx, slots);
                    h.sem_v(&ctx, items);
                }
            });
            spawn_subproc(&ctx, node, 2, "consumer", move |ctx, h| {
                for _ in 0..10 {
                    h.sem_p(&ctx, items);
                    h.sem_v(&ctx, slots);
                }
            });
        });
        v.run_all();
        let w = v.world();
        // 2 initial dispatches + ~2 switches per item.
        assert!(
            (20..=24).contains(&w.nodes[0].sched.switches),
            "switches = {}",
            w.nodes[0].sched.switches
        );
        // All time is switch overhead (no compute was charged).
        assert_eq!(w.nodes[0].cpu.system_ns, w.nodes[0].sched.switches * 80_000);
    }

    #[test]
    fn sem_v_preempts_lower_priority_caller() {
        let mut v = VorxBuilder::single_cluster(1).build();
        v.spawn("setup", |ctx| {
            let node = NodeAddr(0);
            let sem = create_sem(&ctx, node, 0);
            spawn_subproc(&ctx, node, 9, "hi", move |ctx, h| {
                h.sem_p(&ctx, sem); // blocks: count is 0
                                    // Once V'd by `lo`, we must run *before* lo continues.
                ctx.with(|w, _| w.next_token = 1);
            });
            spawn_subproc(&ctx, node, 1, "lo", move |ctx, h| {
                // hi (prio 9) dispatched first, blocked on the semaphore,
                // then we run.
                h.sem_v(&ctx, sem); // must preempt us
                let hi_ran = ctx.with(|w, _| w.next_token == 1);
                assert!(hi_ran, "high-priority subprocess did not preempt");
            });
        });
        v.run_all();
    }

    #[test]
    fn compute_sliced_lets_higher_priority_in() {
        let mut v = VorxBuilder::single_cluster(1).build();
        v.spawn("setup", |ctx| {
            let node = NodeAddr(0);
            let sem = create_sem(&ctx, node, 0);
            spawn_subproc(&ctx, node, 9, "hi", move |ctx, h| {
                h.sem_p(&ctx, sem);
                let t = ctx.now();
                // Must get the CPU long before lo's 10ms burst would end.
                assert!(t < SimTime::from_ns(5_000_000), "preempted too late: {t}");
            });
            spawn_subproc(&ctx, node, 1, "lo", move |ctx, h| {
                ctx.with(move |w, s| {
                    sem_v_in(w, s, node, sem, None); // from an "interrupt"
                });
                h.compute_sliced(&ctx, SimDuration::from_ms(10), SimDuration::from_us(500));
            });
        });
        v.run_all();
    }

    #[test]
    fn coroutine_switch_is_an_order_of_magnitude_cheaper() {
        let mut v = VorxBuilder::single_cluster(1).build();
        v.spawn("coro", |ctx| {
            for _ in 0..10 {
                coroutine_switch(&ctx, NodeAddr(0));
            }
        });
        v.run_all();
        let w = v.world();
        assert_eq!(w.nodes[0].cpu.system_ns, 80_000); // 10 x 8us
        assert!(w.calib.coroutine_switch_ns * 10 <= w.calib.ctx_switch_ns);
    }
}
