//! Per-node CPU occupancy model and the trace events the measurement tools
//! (software oscilloscope, profiler) consume.
//!
//! Each node has one CPU. Every software action — kernel interrupt handling,
//! protocol processing, copies, context switches, application compute — is
//! *charged* to the node's CPU: it starts no earlier than the CPU is free
//! and occupies it for the calibrated duration. Concurrent demands therefore
//! serialize exactly as they would on the real 68020, which is what makes
//! the protocol pipelines (Table 1) come out right.
//!
//! Two priority levels model the real machine's interrupt structure:
//!
//! * **System** work (interrupt handlers, protocol processing, kernel
//!   copies) runs at interrupt priority: it queues only behind other system
//!   work, never behind application compute.
//! * **User** compute is preemptible: a burst's completion is pushed back by
//!   however much system work executed during it (see
//!   [`crate::api::compute`], which implements the extension loop).
//!
//! Within a level, work is FIFO. User-user concurrency on one node is
//! serialized here; finer-grained policy (priorities, quanta) is the
//! subprocess scheduler's job ([`crate::sched`]).

use desim::{SimDuration, SimTime};
use serde::Serialize;

/// What a span of CPU time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuCat {
    /// Application code.
    User,
    /// Operating system code (interrupts, protocol processing, copies,
    /// context switches).
    System,
}

// Hand-written (derive unavailable offline, see vendor/README.md); matches
// what `#[derive(Serialize)]` would emit.
impl Serialize for CpuCat {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            CpuCat::User => serializer.serialize_unit_variant("CpuCat", 0, "User"),
            CpuCat::System => serializer.serialize_unit_variant("CpuCat", 1, "System"),
        }
    }
}

/// Why a process is blocked (oscilloscope idle-time categories, §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for message input.
    Input,
    /// Waiting for message output (acknowledgement / transmitter space).
    Output,
    /// Waiting for something else (semaphore, timer, device).
    Other,
}

impl Serialize for BlockReason {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            BlockReason::Input => serializer.serialize_unit_variant("BlockReason", 0, "Input"),
            BlockReason::Output => serializer.serialize_unit_variant("BlockReason", 1, "Output"),
            BlockReason::Other => serializer.serialize_unit_variant("BlockReason", 2, "Other"),
        }
    }
}

/// Events recorded into the world trace for the tools.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// The CPU of `node` was busy on `cat` during `[start_ns, end_ns)`.
    Cpu {
        /// Node index.
        node: u32,
        /// User or system time.
        cat: CpuCat,
        /// Interval start, ns.
        start_ns: u64,
        /// Interval end, ns.
        end_ns: u64,
    },
    /// A process on `node` blocked for `reason`.
    Block {
        /// Node index.
        node: u32,
        /// Why it blocked.
        reason: BlockReason,
    },
    /// A process on `node` unblocked (pairs with the most recent
    /// un-matched `Block` for that node and reason).
    Unblock {
        /// Node index.
        node: u32,
        /// The reason that ended.
        reason: BlockReason,
    },
    /// Profiler region enter/exit (the `prof` tool).
    Region {
        /// Node index.
        node: u32,
        /// Region name.
        name: String,
        /// True on entry, false on exit.
        enter: bool,
    },
    /// A node crashed (`up == false`) or restarted (`up == true`) under the
    /// fault plane.
    Fault {
        /// Node index.
        node: u32,
        /// New liveness state.
        up: bool,
    },
    /// A directed fabric link went down (`up == false`) or came back
    /// (`up == true`) under the fault plane.
    LinkFault {
        /// Directed link id.
        link: u32,
        /// New link state.
        up: bool,
    },
}

impl Serialize for TraceEvent {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStructVariant;
        match self {
            TraceEvent::Cpu {
                node,
                cat,
                start_ns,
                end_ns,
            } => {
                let mut sv = serializer.serialize_struct_variant("TraceEvent", 0, "Cpu", 4)?;
                sv.serialize_field("node", node)?;
                sv.serialize_field("cat", cat)?;
                sv.serialize_field("start_ns", start_ns)?;
                sv.serialize_field("end_ns", end_ns)?;
                sv.end()
            }
            TraceEvent::Block { node, reason } => {
                let mut sv = serializer.serialize_struct_variant("TraceEvent", 1, "Block", 2)?;
                sv.serialize_field("node", node)?;
                sv.serialize_field("reason", reason)?;
                sv.end()
            }
            TraceEvent::Unblock { node, reason } => {
                let mut sv = serializer.serialize_struct_variant("TraceEvent", 2, "Unblock", 2)?;
                sv.serialize_field("node", node)?;
                sv.serialize_field("reason", reason)?;
                sv.end()
            }
            TraceEvent::Region { node, name, enter } => {
                let mut sv = serializer.serialize_struct_variant("TraceEvent", 3, "Region", 3)?;
                sv.serialize_field("node", node)?;
                sv.serialize_field("name", name)?;
                sv.serialize_field("enter", enter)?;
                sv.end()
            }
            TraceEvent::Fault { node, up } => {
                let mut sv = serializer.serialize_struct_variant("TraceEvent", 4, "Fault", 2)?;
                sv.serialize_field("node", node)?;
                sv.serialize_field("up", up)?;
                sv.end()
            }
            TraceEvent::LinkFault { link, up } => {
                let mut sv =
                    serializer.serialize_struct_variant("TraceEvent", 5, "LinkFault", 2)?;
                sv.serialize_field("link", link)?;
                sv.serialize_field("up", up)?;
                sv.end()
            }
        }
    }
}

/// One node's CPU.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    /// When queued system (interrupt-priority) work completes.
    sys_free_at: SimTime,
    /// When queued user work would complete, ignoring future preemption.
    user_free_at: SimTime,
    /// Monotone counter of all system ns ever reserved; user bursts diff
    /// this to learn how much they were preempted.
    sys_cum_ns: u64,
    /// Total user time charged, ns.
    pub user_ns: u64,
    /// Total system time charged, ns.
    pub system_ns: u64,
}

impl Cpu {
    /// A CPU idle since time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve interrupt-priority work: starts no earlier than `now` nor
    /// before earlier *system* work completes (user compute is preempted,
    /// not waited for). Returns `(start, end)`.
    pub fn reserve_system(&mut self, now: SimTime, d: SimDuration) -> (SimTime, SimTime) {
        let start = self.sys_free_at.max(now);
        let end = start + d;
        self.sys_free_at = end;
        self.sys_cum_ns += d.as_ns();
        self.system_ns += d.as_ns();
        (start, end)
    }

    /// Begin a user burst of `d`: queues behind earlier user work and
    /// returns the tentative `(start, end)` — the caller extends `end` by
    /// whatever system work intrudes (see [`crate::api::compute`]).
    pub fn begin_user(&mut self, now: SimTime, d: SimDuration) -> (SimTime, SimTime) {
        let start = self.user_free_at.max(now);
        let end = start + d;
        self.user_free_at = end;
        self.user_ns += d.as_ns();
        (start, end)
    }

    /// Push the user queue tail out to at least `end` (burst extension
    /// after preemption).
    pub fn extend_user(&mut self, end: SimTime) {
        self.user_free_at = self.user_free_at.max(end);
    }

    /// Cumulative system ns ever reserved (preemption bookkeeping).
    pub fn sys_cum_ns(&self) -> u64 {
        self.sys_cum_ns
    }

    /// When queued system work completes.
    pub fn sys_free_at(&self) -> SimTime {
        self.sys_free_at
    }

    /// Total busy time charged so far.
    pub fn busy(&self) -> SimDuration {
        SimDuration::from_ns(self.user_ns + self.system_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_work_serializes_with_system_work() {
        let mut cpu = Cpu::new();
        let (s1, e1) = cpu.reserve_system(SimTime::from_ns(100), SimDuration::from_ns(50));
        assert_eq!((s1.as_ns(), e1.as_ns()), (100, 150));
        let (s2, e2) = cpu.reserve_system(SimTime::from_ns(120), SimDuration::from_ns(30));
        assert_eq!((s2.as_ns(), e2.as_ns()), (150, 180));
        // After an idle gap, work starts immediately.
        let (s3, _) = cpu.reserve_system(SimTime::from_ns(500), SimDuration::from_ns(10));
        assert_eq!(s3.as_ns(), 500);
    }

    #[test]
    fn system_work_does_not_wait_for_user_bursts() {
        let mut cpu = Cpu::new();
        let (_us, ue) = cpu.begin_user(SimTime::ZERO, SimDuration::from_ms(50));
        assert_eq!(ue.as_ns(), 50_000_000);
        // An interrupt at t=1ms runs immediately, mid-burst.
        let (s, e) = cpu.reserve_system(SimTime::from_ns(1_000_000), SimDuration::from_ns(20_000));
        assert_eq!(s.as_ns(), 1_000_000);
        assert_eq!(e.as_ns(), 1_020_000);
        assert_eq!(cpu.sys_cum_ns(), 20_000);
    }

    #[test]
    fn user_bursts_queue_behind_each_other() {
        let mut cpu = Cpu::new();
        cpu.begin_user(SimTime::ZERO, SimDuration::from_ns(100));
        let (s, e) = cpu.begin_user(SimTime::from_ns(10), SimDuration::from_ns(30));
        assert_eq!((s.as_ns(), e.as_ns()), (100, 130));
        cpu.extend_user(SimTime::from_ns(500));
        let (s2, _) = cpu.begin_user(SimTime::from_ns(0), SimDuration::from_ns(1));
        assert_eq!(s2.as_ns(), 500);
    }

    #[test]
    fn accounting_by_category() {
        let mut cpu = Cpu::new();
        cpu.reserve_system(SimTime::ZERO, SimDuration::from_ns(70));
        cpu.begin_user(SimTime::ZERO, SimDuration::from_ns(30));
        assert_eq!(cpu.system_ns, 70);
        assert_eq!(cpu.user_ns, 30);
        assert_eq!(cpu.busy(), SimDuration::from_ns(100));
    }
}
