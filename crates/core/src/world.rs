//! The simulated world: the fabric, every node's kernel state, the hosts,
//! the resource managers, and the measurement trace.

use std::collections::HashMap;

use desim::{sync::WaitSet, Ctx, Scheduler, SimDuration, SimTime, Simulation, Trace};
use hpcnet::{ClusterId, Fabric, Frame, NetConfig, NodeAddr, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::alloc::Allocator;
use crate::calib::Calibration;
use crate::channel::ChanEnd;
use crate::cpu::{BlockReason, Cpu, CpuCat, TraceEvent};
use crate::host::Host;
use crate::objmgr::{MgrState, ObjMgrMode};
use crate::udco::Udco;

/// Process context over the VORX world.
pub type VCtx = Ctx<World>;
/// Scheduler over the VORX world.
pub type VSched = Scheduler<World>;

/// Result slot for an in-flight channel open.
#[derive(Debug, Clone)]
pub enum OpenResult {
    /// Request sent, no reply yet. Carries everything needed to retransmit
    /// the request or re-resolve it after a manager restart.
    Pending {
        /// The object manager this request was routed to.
        mgr: NodeAddr,
        /// The rendezvous name.
        name: String,
        /// Channel or UDCO.
        kind: crate::proto::ObjKind,
        /// Retransmissions so far (stale timers key off this).
        attempts: u32,
        /// The manager acknowledged receipt (`KIND_OPEN_QUEUED`); stop
        /// retransmitting and park until the reply.
        queued: bool,
        /// The armed retransmit timer, disarmed when the request resolves
        /// so it cannot drag the simulated clock out to its fire time.
        timer: Option<desim::TimerHandle>,
    },
    /// Manager matched us: `(object id, peer node)`.
    Done(u32, NodeAddr),
    /// The open cannot complete (manager unreachable, node crashed).
    Failed(crate::VorxError),
}

/// Per-node kernel state.
pub struct Node {
    /// This node's fabric address.
    pub addr: NodeAddr,
    /// False while the node is crashed; its kernel state is wiped at crash
    /// time and frames die at its interface.
    pub up: bool,
    /// Processes parked in [`crate::fault::wait_until_up`] for this node.
    pub up_waiters: WaitSet,
    /// Reliably-delivered control frames awaiting their `KIND_CTL_ACK`,
    /// keyed by the control frame's `seq`.
    pub ctl_unacked: HashMap<u64, crate::fault::CtlPending>,
    /// The node's CPU.
    pub cpu: Cpu,
    /// Kernel frames waiting for the hardware output register.
    pub tx_q: std::collections::VecDeque<hpcnet::Frame>,
    /// Processes blocked waiting to inject a frame (user-level senders).
    pub tx_waiters: WaitSet,
    /// The kernel receive-service loop is active.
    pub rx_in_service: bool,
    /// Channel ends on this node, by channel id.
    pub chans: HashMap<u32, ChanEnd>,
    /// In-flight opens issued from this node, by token.
    pub open_waits: HashMap<u64, OpenResult>,
    /// Processes blocked in `open`.
    pub open_waiters: WaitSet,
    /// User-defined communications objects on this node, by tag.
    pub udcos: HashMap<u16, Udco>,
    /// In-flight forwarded syscalls from this node, by token.
    pub syscall_waits: HashMap<u64, Option<crate::host::SyscallRet>>,
    /// Processes blocked in `syscall`.
    pub syscall_waiters: WaitSet,
    /// Listening server names on this node (§4 name reuse).
    pub listeners: HashMap<String, crate::channel::ListenState>,
    /// Object-manager role state (every node can serve opens).
    pub mgr: MgrState,
    /// Epoch-guarded cache of name → serving-manager resolutions.
    pub resolve: crate::objmgr::ResolveCache,
    /// Membership state: which peers this node believes are partitioned
    /// away, and which it is currently probing with heartbeats.
    pub mbr: crate::membership::MbrState,
    /// Subprocess scheduler state (§5).
    pub sched: crate::sched::SchedState,
    /// Multicast group receiver ends (§4.2).
    pub mcast: HashMap<u16, crate::multicast::McastEnd>,
    /// Outstanding multicast writes from this node, by sequence token.
    pub mcast_pending: HashMap<u64, crate::multicast::McastPending>,
    /// Data frames that arrived before their channel end existed (the
    /// open-reply race); re-dispatched when the channel is created.
    pub orphans: Vec<hpcnet::Frame>,
    /// Collective protocol state per group (DESIGN.md §16).
    pub coll: HashMap<u32, crate::collective::CollNodeState>,
}

impl Node {
    fn new(addr: NodeAddr) -> Self {
        Node {
            addr,
            up: true,
            up_waiters: WaitSet::new(),
            ctl_unacked: HashMap::new(),
            cpu: Cpu::new(),
            tx_q: Default::default(),
            tx_waiters: WaitSet::new(),
            rx_in_service: false,
            chans: HashMap::new(),
            open_waits: HashMap::new(),
            open_waiters: WaitSet::new(),
            syscall_waits: HashMap::new(),
            syscall_waiters: WaitSet::new(),
            udcos: HashMap::new(),
            listeners: HashMap::new(),
            mgr: MgrState::default(),
            resolve: crate::objmgr::ResolveCache::default(),
            mbr: crate::membership::MbrState::default(),
            sched: crate::sched::SchedState::default(),
            mcast: HashMap::new(),
            mcast_pending: HashMap::new(),
            orphans: Vec::new(),
            coll: HashMap::new(),
        }
    }
}

/// Kernel-state table with O(1) idle-node cost (DESIGN.md §14).
///
/// A million-endpoint world cannot afford a full [`Node`] — maps, queues,
/// wait sets, a CPU model — per endpoint that never does anything. The
/// table therefore holds one pointer-sized slot per endpoint and
/// materializes the `Node` only on first *write* (the first time the
/// kernel charges CPU, opens a channel, or delivers a frame there). Reads
/// of an untouched node resolve to the shared `idle` template: a node
/// that is up, with empty tables and an idle CPU — exactly the state a
/// fresh `Node::new` would observe — so every existing read path works
/// unchanged on never-touched endpoints.
///
/// Indexing is positional over the full address space: `table[i]` and
/// `table.iter()` cover all `len()` addresses (idle stand-ins included),
/// while [`NodeTable::materialized`] walks only the faulted-in nodes.
pub struct NodeTable {
    slots: Vec<Option<Box<Node>>>,
    idle: Box<Node>,
    materialized: usize,
}

impl NodeTable {
    /// A table for `n` endpoints, none materialized.
    pub fn new(n: usize) -> Self {
        NodeTable {
            slots: (0..n).map(|_| None).collect(),
            idle: Box::new(Node::new(NodeAddr(u32::MAX))),
            materialized: 0,
        }
    }

    /// Number of endpoint addresses (materialized or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff the address space is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Shared access; untouched nodes read as the idle template.
    pub fn get(&self, i: usize) -> &Node {
        assert!(i < self.slots.len(), "node index {i} out of range");
        self.slots[i].as_deref().unwrap_or(&self.idle)
    }

    /// Mutable access; materializes the node on first touch.
    pub fn get_mut(&mut self, i: usize) -> &mut Node {
        let slot = &mut self.slots[i];
        if slot.is_none() {
            *slot = Some(Box::new(Node::new(NodeAddr(i as u32))));
            self.materialized += 1;
        }
        slot.as_deref_mut().expect("just materialized")
    }

    /// True iff node `i` has been written to (has real kernel state).
    pub fn is_materialized(&self, i: usize) -> bool {
        self.slots[i].is_some()
    }

    /// Number of nodes holding real kernel state.
    pub fn materialized_count(&self) -> usize {
        self.materialized
    }

    /// All `len()` nodes in address order, idle stand-ins included.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.slots
            .iter()
            .map(move |s| s.as_deref().unwrap_or(&self.idle))
    }

    /// Only the materialized nodes, in address order. Each carries its
    /// real `addr`, so callers needing the index read it from there.
    pub fn materialized(&self) -> impl Iterator<Item = &Node> {
        self.slots.iter().filter_map(|s| s.as_deref())
    }

    /// Only the materialized nodes, mutably, in address order.
    pub fn materialized_mut(&mut self) -> impl Iterator<Item = &mut Node> {
        self.slots.iter_mut().filter_map(|s| s.as_deref_mut())
    }
}

impl std::ops::Index<usize> for NodeTable {
    type Output = Node;
    fn index(&self, i: usize) -> &Node {
        self.get(i)
    }
}

impl std::ops::IndexMut<usize> for NodeTable {
    fn index_mut(&mut self, i: usize) -> &mut Node {
        self.get_mut(i)
    }
}

impl<'a> IntoIterator for &'a NodeTable {
    type Item = &'a Node;
    type IntoIter = Box<dyn Iterator<Item = &'a Node> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// Cross-shard bridge state for the sharded engine (DESIGN.md §12).
///
/// In a sharded build every shard owns one cluster's nodes and runs them in
/// a full copy of the `World`; frames whose destination lives on another
/// shard never enter the local fabric — the kernel parks them in `outbox`
/// with a delivery time computed from the fabric's per-link physics, and the
/// engine drains the outbox after every shard step and routes each frame
/// through the destination shard's mailbox. Sequential builds carry the
/// all-defaults value, where every check short-circuits.
pub struct ShardCtx {
    /// True when this world is one shard of a [`VorxShardedSim`].
    pub enabled: bool,
    /// This shard's index (== its cluster id under the cluster partition).
    pub shard_id: usize,
    /// Total number of shards.
    pub n_shards: usize,
    /// Owning shard per node address, shared (not cloned) across shards —
    /// at a million endpoints this table is the dominant per-shard cost.
    pub shard_of_node: std::sync::Arc<Vec<u32>>,
    /// Output registers currently serializing a bridged frame, per node.
    /// Only this shard's own nodes are ever set.
    pub tx_busy: Vec<bool>,
    /// Cross-shard frames produced since the engine last drained us.
    pub outbox: Vec<desim::OutMsg<Frame>>,
    /// Stride for channel-id allocation (`n_shards`), so managers on
    /// different shards can assign ids without coordinating.
    pub chan_stride: u32,
    /// Stride for token allocation, for the same reason.
    pub token_stride: u64,
}

impl Default for ShardCtx {
    fn default() -> Self {
        ShardCtx {
            enabled: false,
            shard_id: 0,
            n_shards: 1,
            shard_of_node: std::sync::Arc::new(Vec::new()),
            tx_busy: Vec::new(),
            outbox: Vec::new(),
            chan_stride: 1,
            token_stride: 1,
        }
    }
}

impl ShardCtx {
    /// Owning shard of node `a`.
    pub fn owner(&self, a: NodeAddr) -> usize {
        self.shard_of_node[a.0 as usize] as usize
    }

    /// True iff `a` lives on a different shard than this world.
    pub fn is_remote(&self, a: NodeAddr) -> bool {
        self.enabled && self.shard_of_node[a.0 as usize] as usize != self.shard_id
    }

    /// True iff `a`'s output register is busy with a bridged serialization.
    pub fn tx_busy(&self, a: NodeAddr) -> bool {
        self.enabled && self.tx_busy[a.0 as usize]
    }
}

/// The complete state of a simulated HPC/VORX installation.
pub struct World {
    /// Software cost model.
    pub calib: Calibration,
    /// The HPC interconnect.
    pub net: Fabric,
    /// Kernel state per endpoint, materialized on first touch.
    pub nodes: NodeTable,
    /// Object-manager configuration.
    pub objmgr_mode: ObjMgrMode,
    /// Processor allocator (§3.1).
    pub alloc: Allocator,
    /// Host workstations (§3.3), by host id.
    pub hosts: Vec<Host>,
    /// Per-host application resource managers' registry (§3.2).
    pub appmgr: crate::appmgr::AppRegistry,
    /// Debugger registry (`vdb`, §6).
    pub dbg: crate::debug::DbgState,
    /// Measurement trace (oscilloscope, profiler).
    pub trace: Trace<TraceEvent>,
    /// Fault-injection plane: the seeded schedule plus recovery statistics.
    pub faults: crate::fault::FaultState,
    /// Deterministic randomness for workloads.
    pub rng: SmallRng,
    /// Next channel id.
    pub next_chan: u32,
    /// Next open token / generic correlation id.
    pub next_token: u64,
    /// Shared payload-buffer pool: multi-fragment reassembly and UDCO
    /// gathers recycle their scatter/gather buffers through it instead of
    /// allocating fresh ones per message.
    pub payload_pool: crate::alloc::PayloadPool,
    /// Registered collective groups, by group id (DESIGN.md §16).
    pub coll_groups: HashMap<u32, crate::collective::GroupCfg>,
    /// Sharded-engine bridge state; inert defaults in sequential builds.
    pub shard: ShardCtx,
}

impl World {
    /// Mutable access to a node's kernel state (materializes it).
    pub fn node_mut(&mut self, a: NodeAddr) -> &mut Node {
        self.nodes.get_mut(a.0 as usize)
    }

    /// Shared access to a node's kernel state; untouched nodes read as
    /// the idle template (up, empty tables) without materializing.
    pub fn node(&self, a: NodeAddr) -> &Node {
        self.nodes.get(a.0 as usize)
    }

    /// Allocate a fresh correlation token. Sharded builds stride by the
    /// shard count from a per-shard offset, so tokens are globally unique
    /// without coordination; sequential builds stride by 1.
    pub fn token(&mut self) -> u64 {
        self.next_token += self.shard.token_stride;
        self.next_token
    }

    /// Allocate a fresh channel id (same striping rule as [`World::token`]).
    pub fn alloc_chan(&mut self) -> u32 {
        let id = self.next_chan;
        self.next_chan += self.shard.chan_stride;
        id
    }

    /// Charge `d` of *system* (interrupt-priority) CPU time on node `a`
    /// starting at `now` or when earlier system work completes; records the
    /// interval in the trace and returns its end time. System work preempts
    /// user compute (see [`crate::cpu`]); user time is charged through
    /// [`crate::api::compute`], which handles the preemption extension.
    pub fn charge(&mut self, now: SimTime, a: NodeAddr, cat: CpuCat, d: SimDuration) -> SimTime {
        debug_assert_eq!(
            cat,
            CpuCat::System,
            "user compute must go through api::compute"
        );
        let (start, end) = self.nodes.get_mut(a.0 as usize).cpu.reserve_system(now, d);
        if self.trace.is_enabled() && !d.is_zero() {
            self.trace.record(
                now,
                TraceEvent::Cpu {
                    node: a.0,
                    cat,
                    start_ns: start.as_ns(),
                    end_ns: end.as_ns(),
                },
            );
        }
        end
    }

    /// Record that a process on `a` blocked for `reason`.
    pub fn block(&mut self, now: SimTime, a: NodeAddr, reason: BlockReason) {
        self.trace
            .record(now, TraceEvent::Block { node: a.0, reason });
    }

    /// Record that a process on `a` unblocked.
    pub fn unblock(&mut self, now: SimTime, a: NodeAddr, reason: BlockReason) {
        self.trace
            .record(now, TraceEvent::Unblock { node: a.0, reason });
    }

    /// Per-link fault counters from the installed desim schedule (drops,
    /// corruptions, delays, down-drops, downs), keyed by link id. Empty on
    /// links that never saw a fault.
    pub fn link_fault_stats(&self) -> &std::collections::BTreeMap<u32, desim::LinkStats> {
        self.faults.schedule.link_stats()
    }
}

impl desim::ShardWorld for World {
    type Msg = Frame;

    fn drain_outbox(&mut self, into: &mut Vec<desim::OutMsg<Frame>>) {
        // `append` moves the elements and keeps both buffers' capacity: the
        // engine's scratch vector and this outbox reach their high-water
        // marks once and are then allocation-free for the rest of the run.
        into.append(&mut self.shard.outbox);
    }

    fn deliver(&mut self, s: &mut Scheduler<World>, f: Frame) {
        // A bridged frame arrives exactly as hardware would deliver it: into
        // the destination endpoint's receive FIFO, raising the rx interrupt.
        let out = self.net.inject_arrival(s.now().as_ns(), f);
        crate::kernel::process_output(self, s, out);
    }
}

/// Builder for a simulated HPC/VORX installation.
pub struct VorxBuilder {
    topo: Topology,
    netcfg: NetConfig,
    calib: Calibration,
    objmgr_mode: ObjMgrMode,
    trace_enabled: bool,
    seed: u64,
    n_hosts: usize,
    faults: Option<desim::FaultSchedule>,
    shards: Option<usize>,
}

impl VorxBuilder {
    /// A system whose endpoints all hang off one HPC cluster.
    pub fn single_cluster(n_endpoints: usize) -> Self {
        Self::with_topology(
            Topology::single_cluster(n_endpoints).expect("at most 12 endpoints per cluster"),
        )
    }

    /// The paper's incomplete-hypercube configuration.
    pub fn hypercube(n_clusters: usize, endpoints_per_cluster: usize) -> Self {
        Self::with_topology(
            Topology::incomplete_hypercube(n_clusters, endpoints_per_cluster)
                .expect("valid hypercube configuration"),
        )
    }

    /// Any custom topology.
    pub fn with_topology(topo: Topology) -> Self {
        VorxBuilder {
            topo,
            netcfg: NetConfig::paper_1988(),
            calib: Calibration::paper_1988(),
            objmgr_mode: ObjMgrMode::Distributed,
            trace_enabled: true,
            seed: 0x5EED,
            n_hosts: 0,
            faults: None,
            shards: None,
        }
    }

    /// Override the software cost model.
    pub fn calibration(mut self, c: Calibration) -> Self {
        self.calib = c;
        self
    }

    /// Override the hardware parameters.
    pub fn net_config(mut self, c: NetConfig) -> Self {
        self.netcfg = c;
        self
    }

    /// Select the object-manager architecture (§3.2).
    pub fn objmgr(mut self, m: ObjMgrMode) -> Self {
        self.objmgr_mode = m;
        self
    }

    /// Enable or disable trace recording (disable for long benchmarks).
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace_enabled = enabled;
        self
    }

    /// Seed for workload randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Install a deterministic fault schedule: node crash/restart instants
    /// fire as ordinary simulation events, and per-link message faults are
    /// drawn from the schedule's own seeded stream, so a given `(workload
    /// seed, fault seed)` pair replays bit-identically.
    pub fn faults(mut self, schedule: desim::FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Group clusters into exactly `n` shards for [`VorxBuilder::build_sharded`]
    /// instead of the default one-shard-per-cluster partition. Clusters map
    /// to shards in contiguous balanced blocks, so a hierarchical world's
    /// level-0 groups (where most traffic stays) land on one shard. Grouped
    /// mode uses a uniform cross-shard lookahead — the minimum links any
    /// cross-cluster frame crosses × the header-frame link latency — rather
    /// than the per-cluster-pair matrix, which would be O(clusters²) at
    /// hierarchical scale. The shard partition is part of the simulated
    /// outcome (it decides which frames ride the bridge approximation):
    /// traces are bit-identical across *worker* counts at a fixed shard
    /// count, not across different shard counts.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one shard");
        self.shards = Some(n);
        self
    }

    /// Designate the first `n` endpoints as host workstations (§3.3). Hosts
    /// get ids `0..n` and live on node addresses `0..n`; processing nodes
    /// occupy the remaining addresses.
    pub fn hosts(mut self, n: usize) -> Self {
        self.n_hosts = n;
        self
    }

    /// Construct the simulation.
    pub fn build(self) -> VorxSim {
        let n = self.topo.n_endpoints();
        assert!(self.n_hosts <= n, "more hosts than endpoints");
        let nodes = NodeTable::new(n);
        let hosts = (0..self.n_hosts)
            .map(|i| Host::new(i, NodeAddr(i as u32), &self.calib))
            .collect();
        let schedule = self
            .faults
            .unwrap_or_else(|| desim::FaultSchedule::new(self.seed));
        let mut events: Vec<desim::FaultEvent> = schedule.events().to_vec();
        events.sort_by_key(|e| e.at);
        let world = World {
            calib: self.calib,
            net: data_plane_fabric(self.topo, self.netcfg),
            nodes,
            objmgr_mode: self.objmgr_mode,
            alloc: Allocator::new(self.n_hosts, n),
            hosts,
            appmgr: crate::appmgr::AppRegistry::default(),
            dbg: crate::debug::DbgState::default(),
            trace: if self.trace_enabled {
                Trace::new()
            } else {
                Trace::disabled()
            },
            faults: crate::fault::FaultState::new(schedule),
            rng: SmallRng::seed_from_u64(self.seed),
            next_chan: 1,
            next_token: 0,
            payload_pool: crate::alloc::PayloadPool::default(),
            coll_groups: HashMap::new(),
            shard: ShardCtx::default(),
        };
        let vs = VorxSim {
            sim: Simulation::new(world),
        };
        spawn_fault_plane(&vs.sim, events);
        vs
    }

    /// Construct a sharded simulation: one shard per cluster, drained in
    /// parallel by up to `workers` threads under asynchronous conservative
    /// synchronization, with per-link lookahead derived from the fabric's
    /// link physics (DESIGN.md §12).
    ///
    /// The shard partition — and with it every simulated outcome — is fixed
    /// by the topology; `workers` only chooses how many OS threads drain the
    /// shards, so any worker count produces the identical merged trace. With
    /// a single-cluster topology the one shard executes byte-for-byte like
    /// [`VorxBuilder::build`].
    pub fn build_sharded(self, workers: usize) -> VorxShardedSim {
        let topo = self.topo;
        let n = topo.n_endpoints();
        assert!(self.n_hosts <= n, "more hosts than endpoints");
        let n_clusters = topo.n_clusters();
        let n_shards = self.shards.unwrap_or(n_clusters).min(n_clusters);

        // Clusters map to shards in contiguous balanced blocks; with the
        // default one-shard-per-cluster partition this is the identity.
        let shard_of_cluster: Vec<u32> = (0..n_clusters)
            .map(|c| (c * n_shards / n_clusters) as u32)
            .collect();
        let shard_of_node: std::sync::Arc<Vec<u32>> = std::sync::Arc::new(
            topo.endpoints()
                .map(|a| shard_of_cluster[topo.cluster_of(a).0 as usize])
                .collect(),
        );

        // Engine lookahead. Per-cluster partitions keep the tight per-pair
        // matrix: every bridged frame from cluster `a` to `b` crosses
        // `links[a][b]` links of at least a header-frame's latency each
        // (kernel::bridge charges exactly `links × (serialize + hop)`, and
        // faults can only lengthen routes, never shorten them below the
        // fault-free baseline). Grouped partitions — hierarchical scale,
        // where an O(clusters²) matrix is unaffordable — use the uniform
        // lower bound instead: the minimum links *any* cross-cluster frame
        // crosses (up-link + one inter-cluster hop + down-link = 3).
        // Diagonals carry `u64::MAX`: the bridge only ever carries frames
        // to other shards, so self-pairs never constrain the EIT.
        let probe_fabric = Fabric::new(topo.clone(), self.netcfg);
        let unit_ns = probe_fabric.header_link_latency_ns();
        let latency: Vec<Vec<u64>> = if n_shards == n_clusters {
            topo.cluster_link_counts()
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|&links| {
                            if links == 0 {
                                u64::MAX
                            } else {
                                links * unit_ns
                            }
                        })
                        .collect()
                })
                .collect()
        } else {
            let floor = topo
                .min_cross_cluster_links()
                .expect("grouped shards need cross-cluster traffic bounds")
                as u64
                * unit_ns;
            (0..n_shards)
                .map(|a| {
                    (0..n_shards)
                        .map(|b| if a == b { u64::MAX } else { floor })
                        .collect()
                })
                .collect()
        };

        // Map every fabric link to the shard that owns it: endpoint links
        // to the endpoint's shard, inter-cluster cables to the `from`
        // cluster's shard. One O(links) pass — no cluster-pair probing.
        let link_shard: Vec<u32> = (0..probe_fabric.n_links())
            .map(|l| {
                let c = probe_fabric.link_owner_cluster(hpcnet::LinkId(l as u32));
                shard_of_cluster[c.0 as usize]
            })
            .collect();
        drop(probe_fabric);

        let schedule = self
            .faults
            .unwrap_or_else(|| desim::FaultSchedule::new(self.seed));
        let mut events: Vec<desim::FaultEvent> = schedule.events().to_vec();
        events.sort_by_key(|e| e.at);
        let owner = |e: &desim::FaultEvent| match e.action {
            desim::FaultAction::Down(id) | desim::FaultAction::Up(id) => {
                shard_of_node[id as usize] as usize
            }
            desim::FaultAction::LinkDown(id)
            | desim::FaultAction::LinkUp(id)
            | desim::FaultAction::LinkDegrade(id) => link_shard[id as usize] as usize,
            desim::FaultAction::BudgetSqueeze(c) => shard_of_cluster[c as usize] as usize,
        };

        let mut shards = Vec::with_capacity(n_shards);
        for k in 0..n_shards {
            let world = World {
                calib: self.calib,
                net: data_plane_fabric(topo.clone(), self.netcfg),
                nodes: NodeTable::new(n),
                objmgr_mode: self.objmgr_mode,
                alloc: Allocator::new(self.n_hosts, n),
                hosts: (0..self.n_hosts)
                    .map(|i| Host::new(i, NodeAddr(i as u32), &self.calib))
                    .collect(),
                appmgr: crate::appmgr::AppRegistry::default(),
                dbg: crate::debug::DbgState::default(),
                trace: if self.trace_enabled {
                    Trace::new()
                } else {
                    Trace::disabled()
                },
                faults: crate::fault::FaultState::new(schedule.clone()),
                // Shard 0 seeds exactly like the sequential build, so a
                // single-shard sharded run replays it byte-for-byte.
                rng: SmallRng::seed_from_u64(
                    self.seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                next_chan: 1 + k as u32,
                next_token: k as u64,
                payload_pool: crate::alloc::PayloadPool::default(),
                coll_groups: HashMap::new(),
                shard: ShardCtx {
                    enabled: true,
                    shard_id: k,
                    n_shards,
                    shard_of_node: std::sync::Arc::clone(&shard_of_node),
                    tx_busy: vec![false; n],
                    outbox: Vec::new(),
                    chan_stride: n_shards as u32,
                    token_stride: n_shards as u64,
                },
            };
            let sim = Simulation::new(world);
            let mine: Vec<desim::FaultEvent> =
                events.iter().copied().filter(|e| owner(e) == k).collect();
            spawn_fault_plane(&sim, mine);
            shards.push(sim);
        }
        VorxShardedSim {
            engine: desim::ShardedSim::new(shards, latency, workers.max(1)),
            shard_of_node,
        }
    }
}

/// Build the world's fabric with the kernel's shed classifier installed:
/// only lowest-priority channel data fragments are eligible for overload
/// shedding. With the default unbounded budget the classifier is never
/// consulted on the drop path, so fault-free runs are byte-identical.
fn data_plane_fabric(topo: Topology, cfg: NetConfig) -> Fabric {
    let mut f = Fabric::new(topo, cfg);
    f.set_sheddable(|f| crate::proto::is_sheddable_kind(f.kind));
    f
}

/// Spawn the fault plane: an ordinary simulated process applying the
/// schedule's crash/restart/link events. They interleave with the workload
/// through the same `(time, seq)` event order, which is what makes replay
/// exact. No-op when `events` is empty.
fn spawn_fault_plane(sim: &Simulation<World>, events: Vec<desim::FaultEvent>) {
    if events.is_empty() {
        return;
    }
    sim.spawn("fault-plane", move |ctx: VCtx| {
        for e in events {
            let now = ctx.now();
            if e.at > now {
                ctx.sleep(SimDuration::from_ns(e.at.as_ns() - now.as_ns()));
            }
            ctx.with(|w, s| match e.action {
                desim::FaultAction::Down(id) => {
                    crate::fault::on_crash(w, s, NodeAddr(id));
                }
                desim::FaultAction::Up(id) => {
                    crate::fault::on_restart(w, s, NodeAddr(id));
                }
                desim::FaultAction::LinkDown(id) => {
                    crate::fault::on_link_down(w, s, hpcnet::LinkId(id));
                }
                desim::FaultAction::LinkUp(id) => {
                    crate::fault::on_link_up(w, s, hpcnet::LinkId(id));
                }
                desim::FaultAction::LinkDegrade(id) => {
                    let _ = w.faults.schedule.apply_degrade(id);
                }
                desim::FaultAction::BudgetSqueeze(c) => {
                    let b = w.faults.schedule.apply_squeeze(c);
                    w.net.set_cluster_byte_budget(ClusterId(c), b);
                }
            });
        }
    });
}

/// Worker-thread count for sharded runs, from `VORX_SIM_WORKERS` (default 1).
pub fn workers_from_env() -> usize {
    std::env::var("VORX_SIM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(1)
}

/// A runnable HPC/VORX installation: a thin wrapper over
/// `desim::Simulation<World>` with VORX-flavoured conveniences.
pub struct VorxSim {
    /// The underlying simulation.
    pub sim: Simulation<World>,
}

impl VorxSim {
    /// Spawn a simulated process. By convention the closure's code runs "on"
    /// whatever node it charges CPU to; `name` should identify the node for
    /// diagnostics (e.g. `"n3:fft-worker"`).
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> desim::ProcId
    where
        F: FnOnce(VCtx) + Send + 'static,
    {
        self.sim.spawn(name, f)
    }

    /// Run to quiescence, returning the idle report.
    pub fn run(&mut self) -> desim::IdleReport {
        self.sim.run_to_idle()
    }

    /// Run to quiescence and assert every process finished (no deadlock).
    pub fn run_all(&mut self) -> SimTime {
        let report = self.sim.run_to_idle();
        assert!(
            report.all_finished(),
            "processes deadlocked: {:?}",
            report.parked
        );
        report.now
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Inspect or mutate the world between runs.
    pub fn world(&self) -> parking_lot::MutexGuard<'_, World> {
        self.sim.world()
    }

    /// Number of endpoints.
    pub fn n_nodes(&self) -> usize {
        self.world().nodes.len()
    }
}

/// A sharded HPC/VORX installation: one [`World`] per cluster, run by the
/// conservative parallel engine ([`desim::ShardedSim`]).
///
/// Processes must be spawned on the shard owning the node they run on —
/// [`VorxShardedSim::spawn_at`] routes by node address. Simulated outcomes
/// are a function of the topology and seed only, never of the worker count.
pub struct VorxShardedSim {
    engine: desim::ShardedSim<World>,
    shard_of_node: std::sync::Arc<Vec<u32>>,
}

impl VorxShardedSim {
    /// Number of shards (clusters).
    pub fn n_shards(&self) -> usize {
        self.engine.n_shards()
    }

    /// Worker threads the run loop will use.
    pub fn workers(&self) -> usize {
        self.engine.workers()
    }

    /// The shard owning node `a`.
    pub fn shard_of(&self, a: NodeAddr) -> usize {
        self.shard_of_node[a.0 as usize] as usize
    }

    /// Spawn a simulated process on the shard owning `node`. The process
    /// must only touch that node's local state and communicate with other
    /// nodes through frames (channels, syscalls, multicast) — the same
    /// discipline real VORX software follows.
    pub fn spawn_at<F>(&self, node: NodeAddr, name: impl Into<String>, f: F) -> desim::ProcId
    where
        F: FnOnce(VCtx) + Send + 'static,
    {
        self.engine.shard(self.shard_of(node)).spawn(name, f)
    }

    /// Run to global quiescence, returning one idle report per shard.
    pub fn run(&mut self) -> Vec<desim::IdleReport> {
        self.engine.run_to_idle()
    }

    /// Run to quiescence and assert every process on every shard finished;
    /// returns the latest shard clock.
    pub fn run_all(&mut self) -> SimTime {
        let reports = self.run();
        for (k, r) in reports.iter().enumerate() {
            assert!(
                r.all_finished(),
                "shard {k}: processes deadlocked: {:?}",
                r.parked
            );
        }
        reports.iter().map(|r| r.now).max().unwrap_or(SimTime::ZERO)
    }

    /// Engine counters (run rounds, bridged messages, frontier bumps,
    /// per-worker stall accounting, per-shard event counts).
    pub fn stats(&self) -> &desim::PdesStats {
        self.engine.stats()
    }

    /// Pin each worker thread to a distinct allowed host CPU when the host
    /// grants enough of them (see [`desim::ShardedSim::pin_workers`]).
    pub fn pin_workers(&mut self, enable: bool) {
        self.engine.pin_workers(enable);
    }

    /// Introspection handle over the engine's frontiers and mailboxes, for
    /// deadlock watchdogs; stays valid while the engine runs elsewhere.
    pub fn monitor(&self) -> desim::PdesMonitor {
        self.engine.monitor()
    }

    /// Inspect or mutate one shard's world between runs.
    pub fn world(&self, shard: usize) -> parking_lot::MutexGuard<'_, World> {
        self.engine.shard(shard).world()
    }

    /// Drain every shard's trace and merge them into one global trace,
    /// ordered by time with shard index breaking ties — identical for every
    /// worker count, and directly consumable by the measurement tools
    /// (oscilloscope, profiler) exactly like a sequential trace.
    pub fn merged_trace(&mut self) -> Trace<TraceEvent> {
        let traces: Vec<Trace<TraceEvent>> = (0..self.n_shards())
            .map(|k| std::mem::replace(&mut self.world(k).trace, Trace::disabled()))
            .collect();
        Trace::merge(traces)
    }

    /// Sum of a per-shard statistic over all shards.
    pub fn sum_over_shards<F: Fn(&World) -> u64>(&self, f: F) -> u64 {
        (0..self.n_shards()).map(|k| f(&self.world(k))).sum()
    }
}
