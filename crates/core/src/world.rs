//! The simulated world: the fabric, every node's kernel state, the hosts,
//! the resource managers, and the measurement trace.

use std::collections::HashMap;

use desim::{sync::WaitSet, Ctx, Scheduler, SimDuration, SimTime, Simulation, Trace};
use hpcnet::{Fabric, NetConfig, NodeAddr, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::alloc::Allocator;
use crate::calib::Calibration;
use crate::channel::ChanEnd;
use crate::cpu::{BlockReason, Cpu, CpuCat, TraceEvent};
use crate::host::Host;
use crate::objmgr::{MgrState, ObjMgrMode};
use crate::udco::Udco;

/// Process context over the VORX world.
pub type VCtx = Ctx<World>;
/// Scheduler over the VORX world.
pub type VSched = Scheduler<World>;

/// Result slot for an in-flight channel open.
#[derive(Debug, Clone)]
pub enum OpenResult {
    /// Request sent, no reply yet. Carries everything needed to retransmit
    /// the request or re-resolve it after a manager restart.
    Pending {
        /// The object manager this request was routed to.
        mgr: NodeAddr,
        /// The rendezvous name.
        name: String,
        /// Channel or UDCO.
        kind: crate::proto::ObjKind,
        /// Retransmissions so far (stale timers key off this).
        attempts: u32,
        /// The manager acknowledged receipt (`KIND_OPEN_QUEUED`); stop
        /// retransmitting and park until the reply.
        queued: bool,
        /// The armed retransmit timer, disarmed when the request resolves
        /// so it cannot drag the simulated clock out to its fire time.
        timer: Option<desim::TimerHandle>,
    },
    /// Manager matched us: `(object id, peer node)`.
    Done(u32, NodeAddr),
    /// The open cannot complete (manager unreachable, node crashed).
    Failed(crate::VorxError),
}

/// Per-node kernel state.
pub struct Node {
    /// This node's fabric address.
    pub addr: NodeAddr,
    /// False while the node is crashed; its kernel state is wiped at crash
    /// time and frames die at its interface.
    pub up: bool,
    /// Processes parked in [`crate::fault::wait_until_up`] for this node.
    pub up_waiters: WaitSet,
    /// Reliably-delivered control frames awaiting their `KIND_CTL_ACK`,
    /// keyed by the control frame's `seq`.
    pub ctl_unacked: HashMap<u64, crate::fault::CtlPending>,
    /// The node's CPU.
    pub cpu: Cpu,
    /// Kernel frames waiting for the hardware output register.
    pub tx_q: std::collections::VecDeque<hpcnet::Frame>,
    /// Processes blocked waiting to inject a frame (user-level senders).
    pub tx_waiters: WaitSet,
    /// The kernel receive-service loop is active.
    pub rx_in_service: bool,
    /// Channel ends on this node, by channel id.
    pub chans: HashMap<u32, ChanEnd>,
    /// In-flight opens issued from this node, by token.
    pub open_waits: HashMap<u64, OpenResult>,
    /// Processes blocked in `open`.
    pub open_waiters: WaitSet,
    /// User-defined communications objects on this node, by tag.
    pub udcos: HashMap<u16, Udco>,
    /// In-flight forwarded syscalls from this node, by token.
    pub syscall_waits: HashMap<u64, Option<crate::host::SyscallRet>>,
    /// Processes blocked in `syscall`.
    pub syscall_waiters: WaitSet,
    /// Listening server names on this node (§4 name reuse).
    pub listeners: HashMap<String, crate::channel::ListenState>,
    /// Object-manager role state (every node can serve opens).
    pub mgr: MgrState,
    /// Membership state: which peers this node believes are partitioned
    /// away, and which it is currently probing with heartbeats.
    pub mbr: crate::membership::MbrState,
    /// Subprocess scheduler state (§5).
    pub sched: crate::sched::SchedState,
    /// Multicast group receiver ends (§4.2).
    pub mcast: HashMap<u16, crate::multicast::McastEnd>,
    /// Outstanding multicast writes from this node, by sequence token.
    pub mcast_pending: HashMap<u64, crate::multicast::McastPending>,
    /// Data frames that arrived before their channel end existed (the
    /// open-reply race); re-dispatched when the channel is created.
    pub orphans: Vec<hpcnet::Frame>,
}

impl Node {
    fn new(addr: NodeAddr) -> Self {
        Node {
            addr,
            up: true,
            up_waiters: WaitSet::new(),
            ctl_unacked: HashMap::new(),
            cpu: Cpu::new(),
            tx_q: Default::default(),
            tx_waiters: WaitSet::new(),
            rx_in_service: false,
            chans: HashMap::new(),
            open_waits: HashMap::new(),
            open_waiters: WaitSet::new(),
            syscall_waits: HashMap::new(),
            syscall_waiters: WaitSet::new(),
            udcos: HashMap::new(),
            listeners: HashMap::new(),
            mgr: MgrState::default(),
            mbr: crate::membership::MbrState::default(),
            sched: crate::sched::SchedState::default(),
            mcast: HashMap::new(),
            mcast_pending: HashMap::new(),
            orphans: Vec::new(),
        }
    }
}

/// The complete state of a simulated HPC/VORX installation.
pub struct World {
    /// Software cost model.
    pub calib: Calibration,
    /// The HPC interconnect.
    pub net: Fabric,
    /// Kernel state per endpoint.
    pub nodes: Vec<Node>,
    /// Object-manager configuration.
    pub objmgr_mode: ObjMgrMode,
    /// Processor allocator (§3.1).
    pub alloc: Allocator,
    /// Host workstations (§3.3), by host id.
    pub hosts: Vec<Host>,
    /// Per-host application resource managers' registry (§3.2).
    pub appmgr: crate::appmgr::AppRegistry,
    /// Debugger registry (`vdb`, §6).
    pub dbg: crate::debug::DbgState,
    /// Measurement trace (oscilloscope, profiler).
    pub trace: Trace<TraceEvent>,
    /// Fault-injection plane: the seeded schedule plus recovery statistics.
    pub faults: crate::fault::FaultState,
    /// Deterministic randomness for workloads.
    pub rng: SmallRng,
    /// Next channel id.
    pub next_chan: u32,
    /// Next open token / generic correlation id.
    pub next_token: u64,
    /// Shared payload-buffer pool: multi-fragment reassembly and UDCO
    /// gathers recycle their scatter/gather buffers through it instead of
    /// allocating fresh ones per message.
    pub payload_pool: crate::alloc::PayloadPool,
}

impl World {
    /// Mutable access to a node's kernel state.
    pub fn node_mut(&mut self, a: NodeAddr) -> &mut Node {
        &mut self.nodes[a.0 as usize]
    }

    /// Shared access to a node's kernel state.
    pub fn node(&self, a: NodeAddr) -> &Node {
        &self.nodes[a.0 as usize]
    }

    /// Allocate a fresh correlation token.
    pub fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// Charge `d` of *system* (interrupt-priority) CPU time on node `a`
    /// starting at `now` or when earlier system work completes; records the
    /// interval in the trace and returns its end time. System work preempts
    /// user compute (see [`crate::cpu`]); user time is charged through
    /// [`crate::api::compute`], which handles the preemption extension.
    pub fn charge(&mut self, now: SimTime, a: NodeAddr, cat: CpuCat, d: SimDuration) -> SimTime {
        debug_assert_eq!(
            cat,
            CpuCat::System,
            "user compute must go through api::compute"
        );
        let (start, end) = self.nodes[a.0 as usize].cpu.reserve_system(now, d);
        if self.trace.is_enabled() && !d.is_zero() {
            self.trace.record(
                now,
                TraceEvent::Cpu {
                    node: a.0,
                    cat,
                    start_ns: start.as_ns(),
                    end_ns: end.as_ns(),
                },
            );
        }
        end
    }

    /// Record that a process on `a` blocked for `reason`.
    pub fn block(&mut self, now: SimTime, a: NodeAddr, reason: BlockReason) {
        self.trace
            .record(now, TraceEvent::Block { node: a.0, reason });
    }

    /// Record that a process on `a` unblocked.
    pub fn unblock(&mut self, now: SimTime, a: NodeAddr, reason: BlockReason) {
        self.trace
            .record(now, TraceEvent::Unblock { node: a.0, reason });
    }

    /// Per-link fault counters from the installed desim schedule (drops,
    /// corruptions, delays, down-drops, downs), keyed by link id. Empty on
    /// links that never saw a fault.
    pub fn link_fault_stats(&self) -> &std::collections::BTreeMap<u32, desim::LinkStats> {
        self.faults.schedule.link_stats()
    }
}

/// Builder for a simulated HPC/VORX installation.
pub struct VorxBuilder {
    topo: Topology,
    netcfg: NetConfig,
    calib: Calibration,
    objmgr_mode: ObjMgrMode,
    trace_enabled: bool,
    seed: u64,
    n_hosts: usize,
    faults: Option<desim::FaultSchedule>,
}

impl VorxBuilder {
    /// A system whose endpoints all hang off one HPC cluster.
    pub fn single_cluster(n_endpoints: usize) -> Self {
        Self::with_topology(
            Topology::single_cluster(n_endpoints).expect("at most 12 endpoints per cluster"),
        )
    }

    /// The paper's incomplete-hypercube configuration.
    pub fn hypercube(n_clusters: usize, endpoints_per_cluster: usize) -> Self {
        Self::with_topology(
            Topology::incomplete_hypercube(n_clusters, endpoints_per_cluster)
                .expect("valid hypercube configuration"),
        )
    }

    /// Any custom topology.
    pub fn with_topology(topo: Topology) -> Self {
        VorxBuilder {
            topo,
            netcfg: NetConfig::paper_1988(),
            calib: Calibration::paper_1988(),
            objmgr_mode: ObjMgrMode::Distributed,
            trace_enabled: true,
            seed: 0x5EED,
            n_hosts: 0,
            faults: None,
        }
    }

    /// Override the software cost model.
    pub fn calibration(mut self, c: Calibration) -> Self {
        self.calib = c;
        self
    }

    /// Override the hardware parameters.
    pub fn net_config(mut self, c: NetConfig) -> Self {
        self.netcfg = c;
        self
    }

    /// Select the object-manager architecture (§3.2).
    pub fn objmgr(mut self, m: ObjMgrMode) -> Self {
        self.objmgr_mode = m;
        self
    }

    /// Enable or disable trace recording (disable for long benchmarks).
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace_enabled = enabled;
        self
    }

    /// Seed for workload randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Install a deterministic fault schedule: node crash/restart instants
    /// fire as ordinary simulation events, and per-link message faults are
    /// drawn from the schedule's own seeded stream, so a given `(workload
    /// seed, fault seed)` pair replays bit-identically.
    pub fn faults(mut self, schedule: desim::FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Designate the first `n` endpoints as host workstations (§3.3). Hosts
    /// get ids `0..n` and live on node addresses `0..n`; processing nodes
    /// occupy the remaining addresses.
    pub fn hosts(mut self, n: usize) -> Self {
        self.n_hosts = n;
        self
    }

    /// Construct the simulation.
    pub fn build(self) -> VorxSim {
        let n = self.topo.n_endpoints();
        assert!(self.n_hosts <= n, "more hosts than endpoints");
        let nodes = (0..n).map(|i| Node::new(NodeAddr(i as u16))).collect();
        let hosts = (0..self.n_hosts)
            .map(|i| Host::new(i, NodeAddr(i as u16), &self.calib))
            .collect();
        let schedule = self
            .faults
            .unwrap_or_else(|| desim::FaultSchedule::new(self.seed));
        let mut events: Vec<desim::FaultEvent> = schedule.events().to_vec();
        events.sort_by_key(|e| e.at);
        let world = World {
            calib: self.calib,
            net: Fabric::new(self.topo, self.netcfg),
            nodes,
            objmgr_mode: self.objmgr_mode,
            alloc: Allocator::new(self.n_hosts, n),
            hosts,
            appmgr: crate::appmgr::AppRegistry::default(),
            dbg: crate::debug::DbgState::default(),
            trace: if self.trace_enabled {
                Trace::new()
            } else {
                Trace::disabled()
            },
            faults: crate::fault::FaultState::new(schedule),
            rng: SmallRng::seed_from_u64(self.seed),
            next_chan: 1,
            next_token: 0,
            payload_pool: crate::alloc::PayloadPool::default(),
        };
        let vs = VorxSim {
            sim: Simulation::new(world),
        };
        if !events.is_empty() {
            // The fault plane is an ordinary simulated process: crash and
            // restart events interleave with the workload through the same
            // (time, seq) event order, which is what makes replay exact.
            vs.spawn("fault-plane", move |ctx| {
                for e in events {
                    let now = ctx.now();
                    if e.at > now {
                        ctx.sleep(SimDuration::from_ns(e.at.as_ns() - now.as_ns()));
                    }
                    ctx.with(|w, s| match e.action {
                        desim::FaultAction::Down(id) => {
                            crate::fault::on_crash(w, s, NodeAddr(id as u16));
                        }
                        desim::FaultAction::Up(id) => {
                            crate::fault::on_restart(w, s, NodeAddr(id as u16));
                        }
                        desim::FaultAction::LinkDown(id) => {
                            crate::fault::on_link_down(w, s, hpcnet::LinkId(id));
                        }
                        desim::FaultAction::LinkUp(id) => {
                            crate::fault::on_link_up(w, s, hpcnet::LinkId(id));
                        }
                        desim::FaultAction::LinkDegrade(id) => {
                            let _ = w.faults.schedule.apply_degrade(id);
                        }
                    });
                }
            });
        }
        vs
    }
}

/// A runnable HPC/VORX installation: a thin wrapper over
/// `desim::Simulation<World>` with VORX-flavoured conveniences.
pub struct VorxSim {
    /// The underlying simulation.
    pub sim: Simulation<World>,
}

impl VorxSim {
    /// Spawn a simulated process. By convention the closure's code runs "on"
    /// whatever node it charges CPU to; `name` should identify the node for
    /// diagnostics (e.g. `"n3:fft-worker"`).
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> desim::ProcId
    where
        F: FnOnce(VCtx) + Send + 'static,
    {
        self.sim.spawn(name, f)
    }

    /// Run to quiescence, returning the idle report.
    pub fn run(&mut self) -> desim::IdleReport {
        self.sim.run_to_idle()
    }

    /// Run to quiescence and assert every process finished (no deadlock).
    pub fn run_all(&mut self) -> SimTime {
        let report = self.sim.run_to_idle();
        assert!(
            report.all_finished(),
            "processes deadlocked: {:?}",
            report.parked
        );
        report.now
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Inspect or mutate the world between runs.
    pub fn world(&self) -> parking_lot::MutexGuard<'_, World> {
        self.sim.world()
    }

    /// Number of endpoints.
    pub fn n_nodes(&self) -> usize {
        self.world().nodes.len()
    }
}
