//! The simulated world: the fabric, every node's kernel state, the hosts,
//! the resource managers, and the measurement trace.

use std::collections::HashMap;

use desim::{sync::WaitSet, Ctx, Scheduler, SimDuration, SimTime, Simulation, Trace};
use hpcnet::{ClusterId, Fabric, Frame, NetConfig, NodeAddr, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::alloc::Allocator;
use crate::calib::Calibration;
use crate::channel::ChanEnd;
use crate::cpu::{BlockReason, Cpu, CpuCat, TraceEvent};
use crate::host::Host;
use crate::objmgr::{MgrState, ObjMgrMode};
use crate::udco::Udco;

/// Process context over the VORX world.
pub type VCtx = Ctx<World>;
/// Scheduler over the VORX world.
pub type VSched = Scheduler<World>;

/// Result slot for an in-flight channel open.
#[derive(Debug, Clone)]
pub enum OpenResult {
    /// Request sent, no reply yet. Carries everything needed to retransmit
    /// the request or re-resolve it after a manager restart.
    Pending {
        /// The object manager this request was routed to.
        mgr: NodeAddr,
        /// The rendezvous name.
        name: String,
        /// Channel or UDCO.
        kind: crate::proto::ObjKind,
        /// Retransmissions so far (stale timers key off this).
        attempts: u32,
        /// The manager acknowledged receipt (`KIND_OPEN_QUEUED`); stop
        /// retransmitting and park until the reply.
        queued: bool,
        /// The armed retransmit timer, disarmed when the request resolves
        /// so it cannot drag the simulated clock out to its fire time.
        timer: Option<desim::TimerHandle>,
    },
    /// Manager matched us: `(object id, peer node)`.
    Done(u32, NodeAddr),
    /// The open cannot complete (manager unreachable, node crashed).
    Failed(crate::VorxError),
}

/// Per-node kernel state.
pub struct Node {
    /// This node's fabric address.
    pub addr: NodeAddr,
    /// False while the node is crashed; its kernel state is wiped at crash
    /// time and frames die at its interface.
    pub up: bool,
    /// Processes parked in [`crate::fault::wait_until_up`] for this node.
    pub up_waiters: WaitSet,
    /// Reliably-delivered control frames awaiting their `KIND_CTL_ACK`,
    /// keyed by the control frame's `seq`.
    pub ctl_unacked: HashMap<u64, crate::fault::CtlPending>,
    /// The node's CPU.
    pub cpu: Cpu,
    /// Kernel frames waiting for the hardware output register.
    pub tx_q: std::collections::VecDeque<hpcnet::Frame>,
    /// Processes blocked waiting to inject a frame (user-level senders).
    pub tx_waiters: WaitSet,
    /// The kernel receive-service loop is active.
    pub rx_in_service: bool,
    /// Channel ends on this node, by channel id.
    pub chans: HashMap<u32, ChanEnd>,
    /// In-flight opens issued from this node, by token.
    pub open_waits: HashMap<u64, OpenResult>,
    /// Processes blocked in `open`.
    pub open_waiters: WaitSet,
    /// User-defined communications objects on this node, by tag.
    pub udcos: HashMap<u16, Udco>,
    /// In-flight forwarded syscalls from this node, by token.
    pub syscall_waits: HashMap<u64, Option<crate::host::SyscallRet>>,
    /// Processes blocked in `syscall`.
    pub syscall_waiters: WaitSet,
    /// Listening server names on this node (§4 name reuse).
    pub listeners: HashMap<String, crate::channel::ListenState>,
    /// Object-manager role state (every node can serve opens).
    pub mgr: MgrState,
    /// Epoch-guarded cache of name → serving-manager resolutions.
    pub resolve: crate::objmgr::ResolveCache,
    /// Membership state: which peers this node believes are partitioned
    /// away, and which it is currently probing with heartbeats.
    pub mbr: crate::membership::MbrState,
    /// Subprocess scheduler state (§5).
    pub sched: crate::sched::SchedState,
    /// Multicast group receiver ends (§4.2).
    pub mcast: HashMap<u16, crate::multicast::McastEnd>,
    /// Outstanding multicast writes from this node, by sequence token.
    pub mcast_pending: HashMap<u64, crate::multicast::McastPending>,
    /// Data frames that arrived before their channel end existed (the
    /// open-reply race); re-dispatched when the channel is created.
    pub orphans: Vec<hpcnet::Frame>,
}

impl Node {
    fn new(addr: NodeAddr) -> Self {
        Node {
            addr,
            up: true,
            up_waiters: WaitSet::new(),
            ctl_unacked: HashMap::new(),
            cpu: Cpu::new(),
            tx_q: Default::default(),
            tx_waiters: WaitSet::new(),
            rx_in_service: false,
            chans: HashMap::new(),
            open_waits: HashMap::new(),
            open_waiters: WaitSet::new(),
            syscall_waits: HashMap::new(),
            syscall_waiters: WaitSet::new(),
            udcos: HashMap::new(),
            listeners: HashMap::new(),
            mgr: MgrState::default(),
            resolve: crate::objmgr::ResolveCache::default(),
            mbr: crate::membership::MbrState::default(),
            sched: crate::sched::SchedState::default(),
            mcast: HashMap::new(),
            mcast_pending: HashMap::new(),
            orphans: Vec::new(),
        }
    }
}

/// Cross-shard bridge state for the sharded engine (DESIGN.md §12).
///
/// In a sharded build every shard owns one cluster's nodes and runs them in
/// a full copy of the `World`; frames whose destination lives on another
/// shard never enter the local fabric — the kernel parks them in `outbox`
/// with a delivery time computed from the fabric's per-link physics, and the
/// engine drains the outbox after every shard step and routes each frame
/// through the destination shard's mailbox. Sequential builds carry the
/// all-defaults value, where every check short-circuits.
pub struct ShardCtx {
    /// True when this world is one shard of a [`VorxShardedSim`].
    pub enabled: bool,
    /// This shard's index (== its cluster id under the cluster partition).
    pub shard_id: usize,
    /// Total number of shards.
    pub n_shards: usize,
    /// Owning shard per node address.
    pub shard_of_node: Vec<usize>,
    /// `links_between[a][b]`: directed links a frame crosses from a node in
    /// cluster `a` to a node in cluster `b` (endpoint up-link + baseline
    /// inter-cluster hops + endpoint down-link). Computed from the fault-free
    /// routing tables at build time and deliberately held static under link
    /// churn, so cross-shard latency — and with it the lookahead bound —
    /// never depends on when a shard observed a reroute.
    pub links_between: Vec<Vec<u64>>,
    /// Output registers currently serializing a bridged frame, per node.
    /// Only this shard's own nodes are ever set.
    pub tx_busy: Vec<bool>,
    /// Cross-shard frames produced since the engine last drained us.
    pub outbox: Vec<desim::OutMsg<Frame>>,
    /// Stride for channel-id allocation (`n_shards`), so managers on
    /// different shards can assign ids without coordinating.
    pub chan_stride: u32,
    /// Stride for token allocation, for the same reason.
    pub token_stride: u64,
}

impl Default for ShardCtx {
    fn default() -> Self {
        ShardCtx {
            enabled: false,
            shard_id: 0,
            n_shards: 1,
            shard_of_node: Vec::new(),
            links_between: Vec::new(),
            tx_busy: Vec::new(),
            outbox: Vec::new(),
            chan_stride: 1,
            token_stride: 1,
        }
    }
}

impl ShardCtx {
    /// Owning shard of node `a`.
    pub fn owner(&self, a: NodeAddr) -> usize {
        self.shard_of_node[a.0 as usize]
    }

    /// True iff `a` lives on a different shard than this world.
    pub fn is_remote(&self, a: NodeAddr) -> bool {
        self.enabled && self.shard_of_node[a.0 as usize] != self.shard_id
    }

    /// True iff `a`'s output register is busy with a bridged serialization.
    pub fn tx_busy(&self, a: NodeAddr) -> bool {
        self.enabled && self.tx_busy[a.0 as usize]
    }
}

/// The complete state of a simulated HPC/VORX installation.
pub struct World {
    /// Software cost model.
    pub calib: Calibration,
    /// The HPC interconnect.
    pub net: Fabric,
    /// Kernel state per endpoint.
    pub nodes: Vec<Node>,
    /// Object-manager configuration.
    pub objmgr_mode: ObjMgrMode,
    /// Processor allocator (§3.1).
    pub alloc: Allocator,
    /// Host workstations (§3.3), by host id.
    pub hosts: Vec<Host>,
    /// Per-host application resource managers' registry (§3.2).
    pub appmgr: crate::appmgr::AppRegistry,
    /// Debugger registry (`vdb`, §6).
    pub dbg: crate::debug::DbgState,
    /// Measurement trace (oscilloscope, profiler).
    pub trace: Trace<TraceEvent>,
    /// Fault-injection plane: the seeded schedule plus recovery statistics.
    pub faults: crate::fault::FaultState,
    /// Deterministic randomness for workloads.
    pub rng: SmallRng,
    /// Next channel id.
    pub next_chan: u32,
    /// Next open token / generic correlation id.
    pub next_token: u64,
    /// Shared payload-buffer pool: multi-fragment reassembly and UDCO
    /// gathers recycle their scatter/gather buffers through it instead of
    /// allocating fresh ones per message.
    pub payload_pool: crate::alloc::PayloadPool,
    /// Sharded-engine bridge state; inert defaults in sequential builds.
    pub shard: ShardCtx,
}

impl World {
    /// Mutable access to a node's kernel state.
    pub fn node_mut(&mut self, a: NodeAddr) -> &mut Node {
        &mut self.nodes[a.0 as usize]
    }

    /// Shared access to a node's kernel state.
    pub fn node(&self, a: NodeAddr) -> &Node {
        &self.nodes[a.0 as usize]
    }

    /// Allocate a fresh correlation token. Sharded builds stride by the
    /// shard count from a per-shard offset, so tokens are globally unique
    /// without coordination; sequential builds stride by 1.
    pub fn token(&mut self) -> u64 {
        self.next_token += self.shard.token_stride;
        self.next_token
    }

    /// Allocate a fresh channel id (same striping rule as [`World::token`]).
    pub fn alloc_chan(&mut self) -> u32 {
        let id = self.next_chan;
        self.next_chan += self.shard.chan_stride;
        id
    }

    /// Charge `d` of *system* (interrupt-priority) CPU time on node `a`
    /// starting at `now` or when earlier system work completes; records the
    /// interval in the trace and returns its end time. System work preempts
    /// user compute (see [`crate::cpu`]); user time is charged through
    /// [`crate::api::compute`], which handles the preemption extension.
    pub fn charge(&mut self, now: SimTime, a: NodeAddr, cat: CpuCat, d: SimDuration) -> SimTime {
        debug_assert_eq!(
            cat,
            CpuCat::System,
            "user compute must go through api::compute"
        );
        let (start, end) = self.nodes[a.0 as usize].cpu.reserve_system(now, d);
        if self.trace.is_enabled() && !d.is_zero() {
            self.trace.record(
                now,
                TraceEvent::Cpu {
                    node: a.0,
                    cat,
                    start_ns: start.as_ns(),
                    end_ns: end.as_ns(),
                },
            );
        }
        end
    }

    /// Record that a process on `a` blocked for `reason`.
    pub fn block(&mut self, now: SimTime, a: NodeAddr, reason: BlockReason) {
        self.trace
            .record(now, TraceEvent::Block { node: a.0, reason });
    }

    /// Record that a process on `a` unblocked.
    pub fn unblock(&mut self, now: SimTime, a: NodeAddr, reason: BlockReason) {
        self.trace
            .record(now, TraceEvent::Unblock { node: a.0, reason });
    }

    /// Per-link fault counters from the installed desim schedule (drops,
    /// corruptions, delays, down-drops, downs), keyed by link id. Empty on
    /// links that never saw a fault.
    pub fn link_fault_stats(&self) -> &std::collections::BTreeMap<u32, desim::LinkStats> {
        self.faults.schedule.link_stats()
    }
}

impl desim::ShardWorld for World {
    type Msg = Frame;

    fn drain_outbox(&mut self, into: &mut Vec<desim::OutMsg<Frame>>) {
        // `append` moves the elements and keeps both buffers' capacity: the
        // engine's scratch vector and this outbox reach their high-water
        // marks once and are then allocation-free for the rest of the run.
        into.append(&mut self.shard.outbox);
    }

    fn deliver(&mut self, s: &mut Scheduler<World>, f: Frame) {
        // A bridged frame arrives exactly as hardware would deliver it: into
        // the destination endpoint's receive FIFO, raising the rx interrupt.
        let out = self.net.inject_arrival(s.now().as_ns(), f);
        crate::kernel::process_output(self, s, out);
    }
}

/// Builder for a simulated HPC/VORX installation.
pub struct VorxBuilder {
    topo: Topology,
    netcfg: NetConfig,
    calib: Calibration,
    objmgr_mode: ObjMgrMode,
    trace_enabled: bool,
    seed: u64,
    n_hosts: usize,
    faults: Option<desim::FaultSchedule>,
}

impl VorxBuilder {
    /// A system whose endpoints all hang off one HPC cluster.
    pub fn single_cluster(n_endpoints: usize) -> Self {
        Self::with_topology(
            Topology::single_cluster(n_endpoints).expect("at most 12 endpoints per cluster"),
        )
    }

    /// The paper's incomplete-hypercube configuration.
    pub fn hypercube(n_clusters: usize, endpoints_per_cluster: usize) -> Self {
        Self::with_topology(
            Topology::incomplete_hypercube(n_clusters, endpoints_per_cluster)
                .expect("valid hypercube configuration"),
        )
    }

    /// Any custom topology.
    pub fn with_topology(topo: Topology) -> Self {
        VorxBuilder {
            topo,
            netcfg: NetConfig::paper_1988(),
            calib: Calibration::paper_1988(),
            objmgr_mode: ObjMgrMode::Distributed,
            trace_enabled: true,
            seed: 0x5EED,
            n_hosts: 0,
            faults: None,
        }
    }

    /// Override the software cost model.
    pub fn calibration(mut self, c: Calibration) -> Self {
        self.calib = c;
        self
    }

    /// Override the hardware parameters.
    pub fn net_config(mut self, c: NetConfig) -> Self {
        self.netcfg = c;
        self
    }

    /// Select the object-manager architecture (§3.2).
    pub fn objmgr(mut self, m: ObjMgrMode) -> Self {
        self.objmgr_mode = m;
        self
    }

    /// Enable or disable trace recording (disable for long benchmarks).
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace_enabled = enabled;
        self
    }

    /// Seed for workload randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Install a deterministic fault schedule: node crash/restart instants
    /// fire as ordinary simulation events, and per-link message faults are
    /// drawn from the schedule's own seeded stream, so a given `(workload
    /// seed, fault seed)` pair replays bit-identically.
    pub fn faults(mut self, schedule: desim::FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Designate the first `n` endpoints as host workstations (§3.3). Hosts
    /// get ids `0..n` and live on node addresses `0..n`; processing nodes
    /// occupy the remaining addresses.
    pub fn hosts(mut self, n: usize) -> Self {
        self.n_hosts = n;
        self
    }

    /// Construct the simulation.
    pub fn build(self) -> VorxSim {
        let n = self.topo.n_endpoints();
        assert!(self.n_hosts <= n, "more hosts than endpoints");
        let nodes = (0..n).map(|i| Node::new(NodeAddr(i as u16))).collect();
        let hosts = (0..self.n_hosts)
            .map(|i| Host::new(i, NodeAddr(i as u16), &self.calib))
            .collect();
        let schedule = self
            .faults
            .unwrap_or_else(|| desim::FaultSchedule::new(self.seed));
        let mut events: Vec<desim::FaultEvent> = schedule.events().to_vec();
        events.sort_by_key(|e| e.at);
        let world = World {
            calib: self.calib,
            net: data_plane_fabric(self.topo, self.netcfg),
            nodes,
            objmgr_mode: self.objmgr_mode,
            alloc: Allocator::new(self.n_hosts, n),
            hosts,
            appmgr: crate::appmgr::AppRegistry::default(),
            dbg: crate::debug::DbgState::default(),
            trace: if self.trace_enabled {
                Trace::new()
            } else {
                Trace::disabled()
            },
            faults: crate::fault::FaultState::new(schedule),
            rng: SmallRng::seed_from_u64(self.seed),
            next_chan: 1,
            next_token: 0,
            payload_pool: crate::alloc::PayloadPool::default(),
            shard: ShardCtx::default(),
        };
        let vs = VorxSim {
            sim: Simulation::new(world),
        };
        spawn_fault_plane(&vs.sim, events);
        vs
    }

    /// Construct a sharded simulation: one shard per cluster, drained in
    /// parallel by up to `workers` threads under asynchronous conservative
    /// synchronization, with per-link lookahead derived from the fabric's
    /// link physics (DESIGN.md §12).
    ///
    /// The shard partition — and with it every simulated outcome — is fixed
    /// by the topology; `workers` only chooses how many OS threads drain the
    /// shards, so any worker count produces the identical merged trace. With
    /// a single-cluster topology the one shard executes byte-for-byte like
    /// [`VorxBuilder::build`].
    pub fn build_sharded(self, workers: usize) -> VorxShardedSim {
        let topo = self.topo;
        let n = topo.n_endpoints();
        assert!(self.n_hosts <= n, "more hosts than endpoints");
        let n_shards = topo.n_clusters();
        let shard_of_node: Vec<usize> = topo
            .endpoints()
            .map(|a| topo.cluster_of(a).0 as usize)
            .collect();

        // Baseline (fault-free) link counts between cluster pairs. Faults
        // can only lengthen routes (rerouting) or kill them, never shorten
        // below the baseline, so these stay valid lower bounds all run.
        let links_between = topo.cluster_link_counts();

        // Per-pair lookahead for the engine: every bridged frame crosses
        // `links_between[a][b]` links of at least a header-frame's latency
        // each (kernel::bridge charges exactly `links × (serialize + hop)`).
        // Pairs that never exchange frames — the diagonal (the bridge only
        // carries remote targets) and unreachable or endpoint-free clusters
        // — carry `u64::MAX`, removing them from the EIT computation.
        let probe_fabric = Fabric::new(topo.clone(), self.netcfg);
        let unit_ns = probe_fabric.header_link_latency_ns();
        let latency: Vec<Vec<u64>> = links_between
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&links| {
                        if links == 0 {
                            u64::MAX
                        } else {
                            links * unit_ns
                        }
                    })
                    .collect()
            })
            .collect();

        // Map every fabric link to the shard that owns it: endpoint links to
        // the endpoint's shard, inter-cluster links to the `from` cluster.
        let mut link_shard = vec![0usize; probe_fabric.n_links()];
        for a in topo.endpoints() {
            let sh = shard_of_node[a.0 as usize];
            link_shard[probe_fabric.endpoint_up_link(a).0 as usize] = sh;
            link_shard[probe_fabric.endpoint_down_link(a).0 as usize] = sh;
        }
        for ca in 0..n_shards {
            for cb in 0..n_shards {
                if let Some(l) =
                    probe_fabric.cluster_link(ClusterId(ca as u16), ClusterId(cb as u16))
                {
                    link_shard[l.0 as usize] = ca;
                }
            }
        }
        drop(probe_fabric);

        let schedule = self
            .faults
            .unwrap_or_else(|| desim::FaultSchedule::new(self.seed));
        let mut events: Vec<desim::FaultEvent> = schedule.events().to_vec();
        events.sort_by_key(|e| e.at);
        let owner = |e: &desim::FaultEvent| match e.action {
            desim::FaultAction::Down(id) | desim::FaultAction::Up(id) => shard_of_node[id as usize],
            desim::FaultAction::LinkDown(id)
            | desim::FaultAction::LinkUp(id)
            | desim::FaultAction::LinkDegrade(id) => link_shard[id as usize],
            // Shard index == cluster index in the by-cluster partition.
            desim::FaultAction::BudgetSqueeze(c) => c as usize,
        };

        let mut shards = Vec::with_capacity(n_shards);
        for k in 0..n_shards {
            let world = World {
                calib: self.calib,
                net: data_plane_fabric(topo.clone(), self.netcfg),
                nodes: (0..n).map(|i| Node::new(NodeAddr(i as u16))).collect(),
                objmgr_mode: self.objmgr_mode,
                alloc: Allocator::new(self.n_hosts, n),
                hosts: (0..self.n_hosts)
                    .map(|i| Host::new(i, NodeAddr(i as u16), &self.calib))
                    .collect(),
                appmgr: crate::appmgr::AppRegistry::default(),
                dbg: crate::debug::DbgState::default(),
                trace: if self.trace_enabled {
                    Trace::new()
                } else {
                    Trace::disabled()
                },
                faults: crate::fault::FaultState::new(schedule.clone()),
                // Shard 0 seeds exactly like the sequential build, so a
                // single-shard sharded run replays it byte-for-byte.
                rng: SmallRng::seed_from_u64(
                    self.seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                next_chan: 1 + k as u32,
                next_token: k as u64,
                payload_pool: crate::alloc::PayloadPool::default(),
                shard: ShardCtx {
                    enabled: true,
                    shard_id: k,
                    n_shards,
                    shard_of_node: shard_of_node.clone(),
                    links_between: links_between.clone(),
                    tx_busy: vec![false; n],
                    outbox: Vec::new(),
                    chan_stride: n_shards as u32,
                    token_stride: n_shards as u64,
                },
            };
            let sim = Simulation::new(world);
            let mine: Vec<desim::FaultEvent> =
                events.iter().copied().filter(|e| owner(e) == k).collect();
            spawn_fault_plane(&sim, mine);
            shards.push(sim);
        }
        VorxShardedSim {
            engine: desim::ShardedSim::new(shards, latency, workers.max(1)),
            shard_of_node,
        }
    }
}

/// Build the world's fabric with the kernel's shed classifier installed:
/// only lowest-priority channel data fragments are eligible for overload
/// shedding. With the default unbounded budget the classifier is never
/// consulted on the drop path, so fault-free runs are byte-identical.
fn data_plane_fabric(topo: Topology, cfg: NetConfig) -> Fabric {
    let mut f = Fabric::new(topo, cfg);
    f.set_sheddable(|f| crate::proto::is_sheddable_kind(f.kind));
    f
}

/// Spawn the fault plane: an ordinary simulated process applying the
/// schedule's crash/restart/link events. They interleave with the workload
/// through the same `(time, seq)` event order, which is what makes replay
/// exact. No-op when `events` is empty.
fn spawn_fault_plane(sim: &Simulation<World>, events: Vec<desim::FaultEvent>) {
    if events.is_empty() {
        return;
    }
    sim.spawn("fault-plane", move |ctx: VCtx| {
        for e in events {
            let now = ctx.now();
            if e.at > now {
                ctx.sleep(SimDuration::from_ns(e.at.as_ns() - now.as_ns()));
            }
            ctx.with(|w, s| match e.action {
                desim::FaultAction::Down(id) => {
                    crate::fault::on_crash(w, s, NodeAddr(id as u16));
                }
                desim::FaultAction::Up(id) => {
                    crate::fault::on_restart(w, s, NodeAddr(id as u16));
                }
                desim::FaultAction::LinkDown(id) => {
                    crate::fault::on_link_down(w, s, hpcnet::LinkId(id));
                }
                desim::FaultAction::LinkUp(id) => {
                    crate::fault::on_link_up(w, s, hpcnet::LinkId(id));
                }
                desim::FaultAction::LinkDegrade(id) => {
                    let _ = w.faults.schedule.apply_degrade(id);
                }
                desim::FaultAction::BudgetSqueeze(c) => {
                    let b = w.faults.schedule.apply_squeeze(c);
                    w.net.set_cluster_byte_budget(ClusterId(c as u16), b);
                }
            });
        }
    });
}

/// Worker-thread count for sharded runs, from `VORX_SIM_WORKERS` (default 1).
pub fn workers_from_env() -> usize {
    std::env::var("VORX_SIM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(1)
}

/// A runnable HPC/VORX installation: a thin wrapper over
/// `desim::Simulation<World>` with VORX-flavoured conveniences.
pub struct VorxSim {
    /// The underlying simulation.
    pub sim: Simulation<World>,
}

impl VorxSim {
    /// Spawn a simulated process. By convention the closure's code runs "on"
    /// whatever node it charges CPU to; `name` should identify the node for
    /// diagnostics (e.g. `"n3:fft-worker"`).
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> desim::ProcId
    where
        F: FnOnce(VCtx) + Send + 'static,
    {
        self.sim.spawn(name, f)
    }

    /// Run to quiescence, returning the idle report.
    pub fn run(&mut self) -> desim::IdleReport {
        self.sim.run_to_idle()
    }

    /// Run to quiescence and assert every process finished (no deadlock).
    pub fn run_all(&mut self) -> SimTime {
        let report = self.sim.run_to_idle();
        assert!(
            report.all_finished(),
            "processes deadlocked: {:?}",
            report.parked
        );
        report.now
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Inspect or mutate the world between runs.
    pub fn world(&self) -> parking_lot::MutexGuard<'_, World> {
        self.sim.world()
    }

    /// Number of endpoints.
    pub fn n_nodes(&self) -> usize {
        self.world().nodes.len()
    }
}

/// A sharded HPC/VORX installation: one [`World`] per cluster, run by the
/// conservative parallel engine ([`desim::ShardedSim`]).
///
/// Processes must be spawned on the shard owning the node they run on —
/// [`VorxShardedSim::spawn_at`] routes by node address. Simulated outcomes
/// are a function of the topology and seed only, never of the worker count.
pub struct VorxShardedSim {
    engine: desim::ShardedSim<World>,
    shard_of_node: Vec<usize>,
}

impl VorxShardedSim {
    /// Number of shards (clusters).
    pub fn n_shards(&self) -> usize {
        self.engine.n_shards()
    }

    /// Worker threads the run loop will use.
    pub fn workers(&self) -> usize {
        self.engine.workers()
    }

    /// The shard owning node `a`.
    pub fn shard_of(&self, a: NodeAddr) -> usize {
        self.shard_of_node[a.0 as usize]
    }

    /// Spawn a simulated process on the shard owning `node`. The process
    /// must only touch that node's local state and communicate with other
    /// nodes through frames (channels, syscalls, multicast) — the same
    /// discipline real VORX software follows.
    pub fn spawn_at<F>(&self, node: NodeAddr, name: impl Into<String>, f: F) -> desim::ProcId
    where
        F: FnOnce(VCtx) + Send + 'static,
    {
        self.engine.shard(self.shard_of(node)).spawn(name, f)
    }

    /// Run to global quiescence, returning one idle report per shard.
    pub fn run(&mut self) -> Vec<desim::IdleReport> {
        self.engine.run_to_idle()
    }

    /// Run to quiescence and assert every process on every shard finished;
    /// returns the latest shard clock.
    pub fn run_all(&mut self) -> SimTime {
        let reports = self.run();
        for (k, r) in reports.iter().enumerate() {
            assert!(
                r.all_finished(),
                "shard {k}: processes deadlocked: {:?}",
                r.parked
            );
        }
        reports.iter().map(|r| r.now).max().unwrap_or(SimTime::ZERO)
    }

    /// Engine counters (run rounds, bridged messages, frontier bumps,
    /// per-worker stall accounting, per-shard event counts).
    pub fn stats(&self) -> &desim::PdesStats {
        self.engine.stats()
    }

    /// Pin each worker thread to a distinct allowed host CPU when the host
    /// grants enough of them (see [`desim::ShardedSim::pin_workers`]).
    pub fn pin_workers(&mut self, enable: bool) {
        self.engine.pin_workers(enable);
    }

    /// Introspection handle over the engine's frontiers and mailboxes, for
    /// deadlock watchdogs; stays valid while the engine runs elsewhere.
    pub fn monitor(&self) -> desim::PdesMonitor {
        self.engine.monitor()
    }

    /// Inspect or mutate one shard's world between runs.
    pub fn world(&self, shard: usize) -> parking_lot::MutexGuard<'_, World> {
        self.engine.shard(shard).world()
    }

    /// Drain every shard's trace and merge them into one global trace,
    /// ordered by time with shard index breaking ties — identical for every
    /// worker count, and directly consumable by the measurement tools
    /// (oscilloscope, profiler) exactly like a sequential trace.
    pub fn merged_trace(&mut self) -> Trace<TraceEvent> {
        let traces: Vec<Trace<TraceEvent>> = (0..self.n_shards())
            .map(|k| std::mem::replace(&mut self.world(k).trace, Trace::disabled()))
            .collect();
        Trace::merge(traces)
    }

    /// Sum of a per-shard statistic over all shards.
    pub fn sum_over_shards<F: Fn(&World) -> u64>(&self, f: F) -> u64 {
        (0..self.n_shards()).map(|k| f(&self.world(k))).sum()
    }
}
