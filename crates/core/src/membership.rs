//! Heartbeat membership and partition detection.
//!
//! The PR 2 fault plane distinguishes exactly two peer states: *up* and
//! *crashed*. Link failures introduce a third: **partitioned** — the peer's
//! node is alive and its kernel state intact, but no surviving fabric path
//! connects the two ends. The distinction matters because the correct
//! recoveries differ: a crashed peer's channel state is gone forever
//! ([`crate::VorxError::PeerDown`], ends are wiped), while a partitioned
//! peer will come back exactly as it was — blocked callers get
//! [`crate::VorxError::Partitioned`], in-flight windows are *paused*, and
//! the heal sweep reconnects rather than wiping state.
//!
//! Two detectors feed the distinction, mirroring the two crash detectors of
//! PR 2 (retry exhaustion and the `crash_detect_ns` sweep):
//!
//! * **Heartbeat probes** ([`suspect`]): when a channel's retransmit budget
//!   exhausts while the partition plane is active and the peer is still
//!   believed alive, the sender emits one `KIND_HEARTBEAT` beacon over the
//!   PR 2 reliable control plane instead of declaring the peer down. The
//!   beacon's `KIND_CTL_ACK` is the liveness evidence: an ack means the
//!   fabric found an alternate route (resume the stalled window over it);
//!   exhaustion of the beacon's own retry budget means the peer is
//!   unreachable — partitioned if still up, down if it crashed meanwhile.
//!   Probe resolution is bounded by the control plane's doubling timeouts,
//!   which is what keeps the "no write ever hangs" guarantee.
//! * **The partition-detection sweep** ([`schedule_partition_sweep`]):
//!   `partition_detect_ns` after a link failure, every ordered pair of live
//!   nodes whose clusters the routing tables can no longer connect is
//!   declared partitioned, waking blocked readers and writers that would
//!   otherwise park forever waiting for traffic that cannot arrive. Pairs
//!   are snapshotted at link-down time and rechecked at fire time, so a
//!   heal inside the window suppresses the declaration.
//!
//! Everything runs as ordinary simulation events off the seeded fault
//! schedule; fault-free runs execute none of this code, preserving PR 3
//! trace bit-identity.

use std::collections::{BTreeMap, BTreeSet};

use desim::{SimDuration, Wakeup};
use hpcnet::{Frame, NodeAddr, Payload};

use crate::proto;
use crate::rtt::RttEstimator;
use crate::world::{VSched, World};

/// Per-node membership state.
#[derive(Debug, Default)]
pub struct MbrState {
    /// Peers this node currently believes are partitioned away (alive but
    /// unreachable). Cleared pairwise by the heal sweep.
    pub partitioned: BTreeSet<u32>,
    /// Peers with a heartbeat beacon in flight, keyed to the sim time the
    /// probe was sent (feeds the heartbeat RTT estimator on the ack).
    pub probing: BTreeMap<u32, u64>,
    /// Observed heartbeat round-trip estimators per peer (phi-accrual-lite:
    /// the suspicion window is `SRTT + 4·RTTVAR`, clamped, instead of a
    /// fixed constant). Only populated when a gray fault armed adaptation.
    pub peer_rtt: BTreeMap<u32, RttEstimator>,
}

/// True when `node` currently believes `peer` is partitioned away.
pub fn is_partitioned(w: &World, node: NodeAddr, peer: NodeAddr) -> bool {
    w.node(node).mbr.partitioned.contains(&peer.0)
}

/// Channel retry exhaustion against a peer still believed alive: send one
/// heartbeat beacon to disambiguate *slow/rerouting* from *unreachable*.
/// At most one probe per (node, peer) pair is in flight; the stalled
/// transfers stay paused until it resolves.
///
/// The probe deadline adapts to gray degradation: when the fault schedule
/// armed the estimators, the beacon's base timeout is the largest of the
/// control-plane constant, the peer's observed heartbeat RTO, and the RTO
/// of the channels that stalled behind it — so a *slow* peer's probes
/// outlive its latency inflation instead of inheriting the exhausted
/// channel's (too short) fixed chain and declaring a live peer partitioned.
pub fn suspect(w: &mut World, s: &mut VSched, node: NodeAddr, peer: NodeAddr) {
    if w.node(node).mbr.partitioned.contains(&peer.0) {
        return; // verdict already in
    }
    let now = s.now().as_ns();
    if w.node(node).mbr.probing.contains_key(&peer.0) {
        return; // a probe is already out
    }
    w.node_mut(node).mbr.probing.insert(peer.0, now);
    w.faults.stats.probes_sent += 1;
    let token = w.token();
    let f = Frame::unicast(
        node,
        peer,
        proto::KIND_HEARTBEAT,
        token,
        Payload::Synthetic(0),
    );
    let base = probe_timeout_ns(w, node, peer);
    crate::fault::reliable_send_with_timeout(w, s, f, base);
}

/// Base retransmit timeout for a heartbeat probe from `node` to `peer`:
/// the fixed `ctl_timeout_ns` until a gray fault arms adaptation, then the
/// widest of the fixed constant, the heartbeat-RTT estimate, and the RTO of
/// the channel ends stalled behind the probe.
fn probe_timeout_ns(w: &World, node: NodeAddr, peer: NodeAddr) -> u64 {
    let fixed = w.calib.ctl_timeout_ns;
    if !w.faults.gray_armed {
        return fixed;
    }
    let floor = w.calib.rto_floor_ns;
    let ceil = w.calib.rto_ceil_ns;
    let hb = w
        .node(node)
        .mbr
        .peer_rtt
        .get(&peer.0)
        .and_then(|e| e.rto_ns(floor, ceil))
        .unwrap_or(0);
    let chan = crate::channel::peer_rto_hint(w, node, peer).unwrap_or(0);
    fixed.max(hb).max(chan)
}

/// Kernel handler: a heartbeat beacon arrived. Liveness evidence is the
/// control-plane ack itself; nothing else to do.
pub fn on_heartbeat(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    crate::fault::ack_ctl(w, s, node, &f);
}

/// The peer acked our beacon: it is reachable after all (the fabric found an
/// alternate route). Resume every transfer that stalled behind the probe.
/// `attempts` is the beacon's retransmission count — only a never-
/// retransmitted probe yields an unambiguous RTT sample (Karn's rule).
pub fn on_probe_ack(w: &mut World, s: &mut VSched, node: NodeAddr, peer: NodeAddr, attempts: u32) {
    let Some(sent_ns) = w.node_mut(node).mbr.probing.remove(&peer.0) else {
        return;
    };
    if w.faults.gray_armed && attempts == 0 {
        let rtt = s.now().as_ns().saturating_sub(sent_ns);
        w.node_mut(node)
            .mbr
            .peer_rtt
            .entry(peer.0)
            .or_default()
            .sample(rtt);
    }
    crate::channel::resume_peer(w, s, node, peer);
}

/// Our beacon's retry budget exhausted: the peer is unreachable. Partitioned
/// if it is still up; ordinary PR 2 peer-down semantics if it crashed while
/// the probe was out.
pub fn on_probe_failed(w: &mut World, s: &mut VSched, node: NodeAddr, peer: NodeAddr) {
    if w.node_mut(node).mbr.probing.remove(&peer.0).is_none() {
        return;
    }
    if w.node(peer).up {
        mark_partitioned(w, s, node, peer);
    } else {
        crate::channel::mark_peer_down(w, s, node, peer);
    }
}

/// Declare `peer` partitioned from `node`: pause (never wipe) every channel
/// end peered with it, wake blocked callers so they observe
/// [`crate::VorxError::Partitioned`], and fail pending opens over to the
/// name's successor replica when their hash-home sits behind the partition.
pub(crate) fn mark_partitioned(w: &mut World, s: &mut VSched, node: NodeAddr, peer: NodeAddr) {
    if !w.node_mut(node).mbr.partitioned.insert(peer.0) {
        return;
    }
    w.faults.stats.partitions += 1;
    let mut ids: Vec<u32> = w
        .node(node)
        .chans
        .iter()
        .filter(|(_, e)| e.peer == peer && !e.peer_down && !e.partitioned)
        .map(|(id, _)| *id)
        .collect();
    ids.sort_unstable();
    for id in ids {
        let Some(end) = w.node_mut(node).chans.get_mut(&id) else {
            continue;
        };
        end.partitioned = true;
        crate::channel::pause_tx(end);
        end.rx_waiters.wake_all(s, Wakeup::START);
        end.tx_wait.wake_all(s, Wakeup::START);
    }
    crate::objmgr::failover_opens(w, s, node, peer);
}

/// Every ordered pair of live nodes the current routing tables cannot
/// connect, sorted.
fn unreachable_pairs(w: &World) -> Vec<(u32, u32)> {
    let topo = w.net.topology();
    let n = w.nodes.len();
    let mut out = Vec::new();
    for a in 0..n {
        if !w.nodes[a].up {
            continue;
        }
        let ca = topo.cluster_of(NodeAddr(a as u32));
        for b in 0..n {
            if a == b || !w.nodes[b].up {
                continue;
            }
            let cb = topo.cluster_of(NodeAddr(b as u32));
            if !topo.reachable(ca, cb) {
                out.push((a as u32, b as u32));
            }
        }
    }
    out
}

/// Schedule the partition-detection sweep after a link failure. See the
/// module docs; a no-op when the failure cut no routes or detection is
/// disabled (`partition_detect_ns == u64::MAX`).
pub fn schedule_partition_sweep(w: &mut World, s: &mut VSched) {
    let detect = w.calib.partition_detect_ns;
    if detect == u64::MAX {
        return;
    }
    let pairs = unreachable_pairs(w);
    if pairs.is_empty() {
        return;
    }
    s.schedule_in(SimDuration::from_ns(detect), move |w: &mut World, s| {
        // Recheck against the *current* tables: pairs the fabric healed (or
        // whose nodes crashed) inside the window are not declared.
        let still: BTreeSet<(u32, u32)> = unreachable_pairs(w).into_iter().collect();
        for &(a, b) in &pairs {
            if still.contains(&(a, b)) {
                mark_partitioned(w, s, NodeAddr(a), NodeAddr(b));
            }
        }
    });
}

/// Link-up heal sweep: clear the partition marks of every pair the fabric
/// can connect again, resume their paused transfers over the restored
/// route, and run the object manager's anti-entropy reconciliation so
/// registrations accepted on either side of the partition converge.
pub fn on_heal(w: &mut World, s: &mut VSched) {
    let mut healed = false;
    for a in 0..w.nodes.len() {
        let na = NodeAddr(a as u32);
        let marks: Vec<u32> = w.nodes[a].mbr.partitioned.iter().copied().collect();
        for b in marks {
            let nb = NodeAddr(b);
            let topo = w.net.topology();
            if topo.reachable(topo.cluster_of(na), topo.cluster_of(nb)) {
                w.nodes[a].mbr.partitioned.remove(&b);
                w.faults.stats.heals += 1;
                healed = true;
                crate::channel::resume_peer(w, s, na, nb);
            }
        }
    }
    if healed {
        crate::objmgr::anti_entropy(w, s);
    }
}
