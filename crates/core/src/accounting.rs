//! Per-node memory accounting: what each simulated kernel currently keeps
//! resident, in approximate bytes.
//!
//! ROADMAP item 2 (million-endpoint worlds) needs the per-node cost of an
//! *idle* node to be a small O(1) constant: every table a node owns is
//! either empty until used or bounded by a calibration budget (DESIGN.md
//! §13). This module is the measurement side of that contract — campaign
//! bins report the accountant's numbers so a regression that makes idle
//! nodes grow shows up as a number, not an OOM three PRs later.
//!
//! The figures are approximations (container headers and allocator slack
//! are modeled as a flat per-entry overhead), but they are *deterministic*
//! approximations: the same run yields the same bytes, so they are safe to
//! assert on in tests and campaigns.

use hpcnet::Frame;

use crate::world::{Node, World};

/// Modeled bookkeeping cost per container entry (hash-table slot or deque
/// cell plus allocator slack). Deliberately coarse: the accountant tracks
/// growth, not malloc internals.
pub const ENTRY_BYTES: u64 = 48;

fn frame_bytes<'a>(it: impl Iterator<Item = &'a Frame>) -> u64 {
    it.map(|f| u64::from(f.wire_bytes())).sum()
}

/// Approximate resident bytes of one node's kernel state: the fixed `Node`
/// struct plus everything its tables currently hold. An idle node — booted
/// but never communicating — pays only the fixed part.
pub fn node_mem_bytes(node: &Node) -> u64 {
    let mut b = std::mem::size_of::<Node>() as u64;
    // Transmit path: queued frames and reliably-sent control frames.
    b += frame_bytes(node.tx_q.iter()) + node.tx_q.len() as u64 * ENTRY_BYTES;
    b += frame_bytes(node.ctl_unacked.values().map(|p| &p.frame))
        + node.ctl_unacked.len() as u64 * ENTRY_BYTES;
    // Channels: each end reports its own buffered payloads.
    b += node.chans.values().map(|e| e.mem_bytes()).sum::<u64>()
        + node.chans.len() as u64 * ENTRY_BYTES;
    // Open/syscall rendezvous tables.
    b += (node.open_waits.len() + node.syscall_waits.len()) as u64 * ENTRY_BYTES;
    // Listeners and their (bounded) unaccepted-connection backlogs.
    b += node
        .listeners
        .values()
        .map(|ls| ENTRY_BYTES * (1 + ls.pending.len() as u64))
        .sum::<u64>();
    // Object-manager role state: registrations, pending opens, dedup window.
    let mgr = &node.mgr;
    b += (mgr.servers.len() + mgr.seen.len() + mgr.seen_order.len()) as u64 * ENTRY_BYTES;
    b += mgr
        .pending
        .values()
        .map(|q| ENTRY_BYTES * (1 + q.len() as u64))
        .sum::<u64>();
    // Name-resolution cache and membership sets.
    b += node.resolve.len() as u64 * ENTRY_BYTES;
    b += (node.mbr.partitioned.len() + node.mbr.probing.len()) as u64 * ENTRY_BYTES;
    // UDCOs, multicast ends, and frames parked for not-yet-created channels.
    b += (node.udcos.len() + node.mcast.len() + node.mcast_pending.len()) as u64 * ENTRY_BYTES;
    b += frame_bytes(node.orphans.iter()) + node.orphans.len() as u64 * ENTRY_BYTES;
    b
}

/// The fixed cost of a *materialized* node holding no kernel state: the
/// accountant's baseline for a node that communicated once and went quiet.
pub fn idle_node_bytes() -> u64 {
    std::mem::size_of::<Node>() as u64
}

/// The cost of an endpoint that has never been touched at all: one lazy
/// [`crate::world::NodeTable`] slot (a null pointer). This — not
/// [`idle_node_bytes`] — is the per-endpoint price of *scale*: a booted
/// million-endpoint world pays `n × idle_slot_bytes()` for its kernel
/// tables until traffic actually reaches a node (DESIGN.md §14).
pub fn idle_slot_bytes() -> u64 {
    std::mem::size_of::<Option<Box<Node>>>() as u64
}

/// Documented O(1) idle budget, bytes per endpoint, for a booted world
/// that has run zero traffic: the lazy slot plus modeled allocator slack.
/// The 100k-endpoint baseline test and the scale campaign assert against
/// this number; raising it is an API-visible regression.
pub const IDLE_BYTES_PER_ENDPOINT_BUDGET: u64 = 16;

/// World-level summary: `(max single-node bytes, total bytes, idle nodes)`.
/// "Idle" counts endpoints at or below their baseline: never-touched slots
/// (costing [`idle_slot_bytes`]) and materialized-but-quiet nodes (costing
/// exactly [`idle_node_bytes`]). Walks only materialized nodes — O(active),
/// not O(endpoints).
pub fn world_mem_report(w: &World) -> (u64, u64, usize) {
    let mut max = 0u64;
    let mut total = w.nodes.len() as u64 * idle_slot_bytes();
    let mut idle = w.nodes.len() - w.nodes.materialized_count();
    for node in w.nodes.materialized() {
        let b = node_mem_bytes(node);
        max = max.max(b);
        total += b;
        if b == idle_node_bytes() {
            idle += 1;
        }
    }
    (max, total, idle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::open;
    use crate::world::VorxBuilder;
    use hpcnet::{NodeAddr, Payload};

    #[test]
    fn idle_nodes_cost_exactly_the_o1_baseline() {
        let mut v = VorxBuilder::single_cluster(8).build();
        // Only nodes 1 and 2 ever communicate; 0 and 3..7 stay idle.
        v.spawn("n1:w", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "acct");
            ch.write(&ctx, Payload::copy_from(b"hello")).unwrap();
        });
        v.spawn("n2:r", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "acct");
            let _ = ch.read(&ctx).unwrap();
        });
        v.run_all();
        let w = v.sim.world();
        let baseline = idle_node_bytes();
        for i in [0usize, 3, 4, 5, 6, 7] {
            // The object manager for "acct" lives on a hash-chosen node;
            // skip it if it landed on one of these. Nodes that were never
            // touched at all still cost only their lazy slot.
            if !w.nodes.is_materialized(i) {
                continue;
            }
            let n = &w.nodes[i];
            if n.mgr.servers.is_empty() && n.mgr.seen.is_empty() {
                assert_eq!(
                    node_mem_bytes(n),
                    baseline,
                    "idle node {i} grew beyond the O(1) baseline"
                );
            }
        }
        let (max, total, idle) = world_mem_report(&w);
        assert!(max > baseline, "communicating nodes must cost more");
        assert!(total >= 8 * idle_slot_bytes());
        assert!(idle >= 5, "at most nodes 1, 2, and the manager are busy");
    }

    /// ROADMAP item 2, measured: a booted 100k-endpoint hierarchical world
    /// that runs zero traffic stays at the documented O(1) idle budget per
    /// endpoint, and no kernel is ever faulted in.
    #[test]
    fn idle_100k_world_stays_o1_per_endpoint() {
        use hpcnet::Topology;
        let topo = Topology::hierarchical_hypercube(&[64, 20, 20], 4).unwrap();
        assert_eq!(topo.n_endpoints(), 102_400);
        let mut v = VorxBuilder::with_topology(topo).trace(false).build();
        v.run();
        let w = v.sim.world();
        assert_eq!(
            w.nodes.materialized_count(),
            0,
            "an idle world must not fault in any kernel"
        );
        let (max, total, idle) = world_mem_report(&w);
        assert_eq!(max, 0, "no materialized node, no max");
        assert_eq!(idle, 102_400);
        let per_endpoint = total / w.nodes.len() as u64;
        assert!(
            per_endpoint <= IDLE_BYTES_PER_ENDPOINT_BUDGET,
            "idle world costs {per_endpoint} B/endpoint, budget is {}",
            IDLE_BYTES_PER_ENDPOINT_BUDGET
        );
    }
}
