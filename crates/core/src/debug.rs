//! Kernel-side debugging support for `vdb` (§6).
//!
//! "VORX makes it possible for the programmer to attach vdb to any process
//! that is running and to switch between the processes of his application."
//!
//! The kernel keeps a registry of application processes and, per process,
//! the cooperative debugging state: published variables (the simulation's
//! stand-in for reading a process's memory through the symbol table),
//! breakpoint labels, and the stopped/running flag. The user-facing tool
//! lives in `vorx-tools::vdb`; this module is the part the "kernel" owns —
//! exactly how the real vdb worked against kernel-held process state.

use std::collections::{BTreeMap, HashSet};

use desim::{sync::WaitSet, ProcId, Wakeup};
use hpcnet::NodeAddr;

use crate::world::{VCtx, World};

/// Debug-visible state of one registered process.
#[derive(Debug)]
pub struct DbgProc {
    /// The simulation process id.
    pub pid: ProcId,
    /// The registered name (e.g. `"n3:solver"`).
    pub name: String,
    /// The node it runs on.
    pub node: NodeAddr,
    /// Published "local variables" (symbol -> rendered value).
    pub vars: BTreeMap<String, String>,
    /// Armed breakpoint labels.
    pub breaks: HashSet<String>,
    /// Stop at the next breakpoint regardless of label (attach-and-stop).
    pub stop_requested: bool,
    /// Currently stopped at a breakpoint: `(label, wait set)`.
    pub stopped_at: Option<String>,
    /// Processes (the stopped one) waiting for `continue`.
    pub cont_waiters: WaitSet,
    /// Breakpoints hit so far.
    pub hits: u64,
}

/// The kernel's debugger registry.
#[derive(Debug, Default)]
pub struct DbgState {
    /// Registered processes, in registration order.
    pub procs: Vec<DbgProc>,
}

impl DbgState {
    /// Find a process by registered name.
    pub fn by_name(&self, name: &str) -> Option<usize> {
        self.procs.iter().position(|p| p.name == name)
    }
}

/// Register the calling process with the debugger (typically at startup).
/// Returns its registry index.
pub fn register_process(ctx: &VCtx, node: NodeAddr, name: &str) -> usize {
    let pid = ctx.pid();
    let name = name.to_string();
    ctx.with(move |w, _| {
        let dbg = &mut w.dbg;
        assert!(
            dbg.by_name(&name).is_none(),
            "process name {name:?} already registered"
        );
        dbg.procs.push(DbgProc {
            pid,
            name,
            node,
            vars: BTreeMap::new(),
            breaks: HashSet::new(),
            stop_requested: false,
            stopped_at: None,
            cont_waiters: WaitSet::new(),
            hits: 0,
        });
        dbg.procs.len() - 1
    })
}

/// Publish (or update) a debug-visible variable for the calling process —
/// the stand-in for vdb reading locals through the symbol table.
pub fn publish(ctx: &VCtx, idx: usize, var: &str, value: impl ToString) {
    let var = var.to_string();
    let value = value.to_string();
    ctx.with(move |w, _| {
        w.dbg.procs[idx].vars.insert(var, value);
    });
}

/// A cooperative breakpoint: if `label` is armed (or an unconditional stop
/// was requested), the process stops here until the debugger continues it.
/// Free when not armed — like a compiled-in breakpoint trap.
pub fn breakpoint(ctx: &VCtx, idx: usize, label: &str) {
    let label_owned = label.to_string();
    let should_stop = ctx.with(move |w, _| {
        let p = &mut w.dbg.procs[idx];
        if p.breaks.contains(&label_owned) || p.stop_requested {
            p.stop_requested = false;
            p.stopped_at = Some(label_owned);
            p.hits += 1;
            true
        } else {
            false
        }
    });
    if !should_stop {
        return;
    }
    let pid = ctx.pid();
    ctx.wait_until(move |w, _| {
        let p = &mut w.dbg.procs[idx];
        if p.stopped_at.is_none() {
            Some(())
        } else {
            p.cont_waiters.register(pid);
            None
        }
    });
}

/// Resume a stopped process (the debugger's `cont` command). Event-context
/// so tools can call it through `Simulation::setup`. Returns true iff the
/// process was stopped.
pub fn cont(w: &mut World, s: &mut crate::world::VSched, idx: usize) -> bool {
    let p = &mut w.dbg.procs[idx];
    if p.stopped_at.is_none() {
        return false;
    }
    p.stopped_at = None;
    p.cont_waiters.wake_all(s, Wakeup::START);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::VorxBuilder;
    use desim::SimDuration;

    #[test]
    fn unarmed_breakpoints_are_free() {
        let mut v = VorxBuilder::single_cluster(1).build();
        v.spawn("n0:app", |ctx| {
            let me = register_process(&ctx, NodeAddr(0), "n0:app");
            for i in 0..5 {
                publish(&ctx, me, "i", i);
                breakpoint(&ctx, me, "loop-top");
            }
        });
        v.run_all();
        let w = v.world();
        assert_eq!(w.dbg.procs[0].hits, 0);
        assert_eq!(w.dbg.procs[0].vars["i"], "4");
    }

    #[test]
    fn armed_breakpoint_stops_until_continued() {
        let mut v = VorxBuilder::single_cluster(1).build();
        v.spawn("n0:app", |ctx| {
            let me = register_process(&ctx, NodeAddr(0), "n0:app");
            // Arm our own breakpoint (normally the debugger does this).
            ctx.with(move |w, _| {
                w.dbg.procs[me].breaks.insert("phase2".into());
            });
            breakpoint(&ctx, me, "phase1"); // not armed: free
            breakpoint(&ctx, me, "phase2"); // stops here
            ctx.sleep(SimDuration::from_us(1));
        });
        // Run: the process parks at the breakpoint.
        let report = v.run();
        assert_eq!(report.parked.len(), 1);
        {
            let w = v.world();
            assert_eq!(w.dbg.procs[0].stopped_at.as_deref(), Some("phase2"));
            assert_eq!(w.dbg.procs[0].hits, 1);
        }
        // Continue and finish.
        v.sim.setup(|w, s| {
            assert!(cont(w, s, 0));
        });
        v.run_all();
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_names_rejected() {
        let mut v = VorxBuilder::single_cluster(1).build();
        v.spawn("a", |ctx| {
            register_process(&ctx, NodeAddr(0), "dup");
            register_process(&ctx, NodeAddr(0), "dup");
        });
        v.run_all();
    }
}
