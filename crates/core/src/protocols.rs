//! User-written protocols over user-defined communications objects (§4.1).
//!
//! "We have seen two ways in which users can write protocols with better
//! performance than channels. One is to use sliding-window protocols and the
//! other is to use no flow-control protocol at all."
//!
//! [`sliding_window`] is the exact benchmark protocol of Table 1
//! ("reader-active"): the receiver pre-issues `k` buffer-available messages
//! and sends one more for every message it consumes; the sender keeps a
//! credit count and transmits whenever it is positive. [`no_flow`] is the
//! §4.1 raw-stream technique (bitmap transmission, parallel SPICE): the
//! only flow control is the HPC hardware's.

use hpcnet::{NodeAddr, Payload};

use crate::udco::{self, UdcoMode};
use crate::world::VCtx;

/// The sliding-window ("reader-active") protocol of Table 1.
pub mod sliding_window {
    use super::*;

    /// Parameters of one sliding-window transfer.
    #[derive(Debug, Clone, Copy)]
    pub struct SwParams {
        /// UDCO tag for data frames.
        pub data_tag: u16,
        /// UDCO tag for buffer-available (credit) frames.
        pub credit_tag: u16,
        /// Fixed message length, bytes ("both the sender and receiver know
        /// the length of the messages").
        pub msg_len: u32,
        /// Messages to transfer (the paper uses 1000).
        pub n_msgs: u64,
        /// Receiver input buffers = initial credits (`k`).
        pub bufs: u32,
    }

    /// Receiver side: register the UDCOs, grant `bufs` initial credits, and
    /// send one credit per message consumed.
    pub fn receiver(ctx: &VCtx, node: NodeAddr, peer: NodeAddr, p: SwParams) {
        udco::register(ctx, node, p.data_tag, UdcoMode::Interrupt);
        for i in 0..u64::from(p.bufs) {
            udco::send(ctx, node, peer, p.credit_tag, i, Payload::Synthetic(0));
        }
        for _ in 0..p.n_msgs {
            let m = udco::recv(ctx, node, p.data_tag);
            debug_assert_eq!(m.payload.len(), p.msg_len);
            udco::send(ctx, node, peer, p.credit_tag, 0, Payload::Synthetic(0));
        }
    }

    /// Sender side: "The sender keeps its own count of the number of
    /// receiver buffers available. [...] If the count is greater than zero,
    /// the sender can send a message immediately, otherwise it blocks until
    /// the count becomes greater than zero."
    pub fn sender(ctx: &VCtx, node: NodeAddr, peer: NodeAddr, p: SwParams) {
        udco::register(ctx, node, p.credit_tag, UdcoMode::Interrupt);
        let mut credits: u64 = 0;
        for i in 0..p.n_msgs {
            if credits == 0 {
                // Block for at least one credit; absorb any others already
                // queued by the ISR (counting them is a register update, not
                // a message receive).
                let _ = udco::recv(ctx, node, p.credit_tag);
                credits += 1;
                credits += ctx.with(move |w, _| {
                    let u = w
                        .node_mut(node)
                        .udcos
                        .get_mut(&p.credit_tag)
                        .expect("credit UDCO registered");
                    let extra = u.rx.len() as u64;
                    u.rx.clear();
                    extra
                });
            }
            credits -= 1;
            udco::send(
                ctx,
                node,
                peer,
                p.data_tag,
                i,
                Payload::Synthetic(p.msg_len),
            );
        }
    }
}

/// No-flow-control streaming (§4.1): blast frames; only the hardware's own
/// flow control paces the sender.
pub mod no_flow {
    use super::*;

    /// Send `n_msgs` messages of `msg_len` bytes to `dst` as fast as the
    /// hardware accepts them.
    pub fn stream(ctx: &VCtx, node: NodeAddr, dst: NodeAddr, tag: u16, n_msgs: u64, msg_len: u32) {
        for i in 0..n_msgs {
            udco::send(ctx, node, dst, tag, i, Payload::Synthetic(msg_len));
        }
    }

    /// Receive `n_msgs` messages on `tag`, returning the total payload bytes.
    pub fn sink(ctx: &VCtx, node: NodeAddr, tag: u16, n_msgs: u64) -> u64 {
        let mut total = 0u64;
        for _ in 0..n_msgs {
            let m = udco::recv(ctx, node, tag);
            total += u64::from(m.payload.len());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::sliding_window::{receiver, sender, SwParams};
    use super::*;
    use crate::udco::UdcoMode;
    use crate::world::VorxBuilder;
    use desim::SimDuration;

    fn run_sw(bufs: u32, msg_len: u32, n_msgs: u64) -> SimDuration {
        let mut v = VorxBuilder::single_cluster(2).trace(false).build();
        let p = SwParams {
            data_tag: 1,
            credit_tag: 2,
            msg_len,
            n_msgs,
            bufs,
        };
        v.spawn("n0:sender", move |ctx| {
            sender(&ctx, NodeAddr(0), NodeAddr(1), p);
        });
        v.spawn("n1:receiver", move |ctx| {
            receiver(&ctx, NodeAddr(1), NodeAddr(0), p);
        });
        let end = {
            let report = v.sim.run_to_idle();
            assert!(report.all_finished(), "deadlock: {:?}", report.parked);
            report.now
        };
        end - desim::SimTime::ZERO
    }

    #[test]
    fn sliding_window_transfers_all_messages() {
        let elapsed = run_sw(4, 64, 50);
        assert!(!elapsed.is_zero());
    }

    #[test]
    fn more_buffers_reduce_per_message_latency() {
        let t1 = run_sw(1, 4, 200);
        let t2 = run_sw(2, 4, 200);
        let t8 = run_sw(8, 4, 200);
        assert!(t2 < t1, "2 buffers ({t2}) should beat 1 ({t1})");
        assert!(t8 < t2, "8 buffers ({t8}) should beat 2 ({t2})");
    }

    #[test]
    fn no_flow_stream_delivers_everything() {
        let mut v = VorxBuilder::single_cluster(2).trace(false).build();
        v.spawn("n0:src", |ctx| {
            udco::register(&ctx, NodeAddr(0), 7, UdcoMode::Interrupt);
            no_flow::stream(&ctx, NodeAddr(0), NodeAddr(1), 7, 100, 1024);
        });
        v.spawn("n1:sink", |ctx| {
            udco::register(&ctx, NodeAddr(1), 7, UdcoMode::Interrupt);
            let total = no_flow::sink(&ctx, NodeAddr(1), 7, 100);
            assert_eq!(total, 100 * 1024);
        });
        v.run_all();
    }
}
