//! VORX error codes surfaced on the public API under fault injection.
//!
//! The 1988 system could largely pretend failures did not happen: the HPC
//! hardware never lost a frame and nodes did not crash mid-experiment. Under
//! the fault plane, every blocking primitive can instead fail, and these are
//! the codes it fails with. They follow the UNIX-y spirit of the original
//! host interface: a small fixed set of conditions, reported at the syscall
//! boundary instead of by panicking the simulated kernel.

use std::fmt;

/// Why a VORX operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VorxError {
    /// The peer end of the channel was closed.
    PeerClosed,
    /// This end of the channel was closed locally.
    LocalClosed,
    /// The peer's node crashed (detected by retry exhaustion or by the
    /// failure-detection sweep).
    PeerDown,
    /// The calling process's own node crashed while the operation was in
    /// flight; its kernel state is gone.
    NodeDown,
    /// The referenced channel does not exist on this node.
    UnknownChannel,
    /// The node has no host stub; `create_stub` was never called.
    NoStub,
    /// The host serving this node is unreachable.
    HostDown,
    /// The object manager did not answer within the retry budget.
    Unreachable,
    /// The peer's node is alive but unreachable: a network partition
    /// separates the two ends. Unlike [`VorxError::PeerDown`], no state was
    /// wiped — when the partition heals, the channel reconnects and resumes.
    Partitioned,
    /// A bounded kernel table (channel table, listener backlog, object
    /// manager registration queue) is full. The operation was refused so the
    /// node degrades instead of growing without limit; retrying after
    /// existing entries drain may succeed.
    ResourceExhausted,
}

impl fmt::Display for VorxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VorxError::PeerClosed => write!(f, "peer end closed"),
            VorxError::LocalClosed => write!(f, "local end closed"),
            VorxError::PeerDown => write!(f, "peer node is down"),
            VorxError::NodeDown => write!(f, "local node went down"),
            VorxError::UnknownChannel => write!(f, "unknown channel"),
            VorxError::NoStub => write!(f, "no host stub for this node"),
            VorxError::HostDown => write!(f, "host is down"),
            VorxError::Unreachable => write!(f, "object manager unreachable"),
            VorxError::Partitioned => write!(f, "peer unreachable (network partition)"),
            VorxError::ResourceExhausted => write!(f, "kernel resource budget exhausted"),
        }
    }
}

impl std::error::Error for VorxError {}

/// Result alias for fallible VORX operations.
pub type VorxResult<T> = Result<T, VorxError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(VorxError::PeerDown.to_string(), "peer node is down");
        assert_eq!(
            VorxError::Unreachable.to_string(),
            "object manager unreachable"
        );
        assert_eq!(
            VorxError::Partitioned.to_string(),
            "peer unreachable (network partition)"
        );
        assert_eq!(
            VorxError::ResourceExhausted.to_string(),
            "kernel resource budget exhausted"
        );
    }
}
