//! Collective operations: barrier, reduce, allreduce, and all-to-all.
//!
//! Two interchangeable engines implement the same blocking API (ROADMAP
//! item 3, DESIGN.md §16):
//!
//! * **In-network** — members send one combinable [`crate::proto::KIND_COLL_UP`]
//!   frame toward the group root; the fabric's combining tables
//!   ([`hpcnet::Fabric::comb_register_group`]) merge them at every star
//!   coupler on the way, so the root's software sees O(active clusters)
//!   merged frames instead of O(n) individual ones, and the result rides the
//!   existing hardware-multicast path back down.
//! * **Software tree** — a configurable-radix reduction tree built on
//!   ordinary channels, paying the full per-message channel software cost at
//!   every level. This is the baseline the in-network engine races in
//!   `collective_campaign`.
//!
//! Reliability follows the PR 2 retry/dedup discipline, adapted to
//! combining: a contribution that *might already be merged* must never be
//! re-sent under the same identity, so retransmission opens a fresh
//! *attempt* epoch ([`hpcnet::combine::enc_seq`]). The root accumulates each
//! `(sequence, attempt)` independently and completes on the first attempt
//! whose count reaches the group size; a lost contribution or partial makes
//! that attempt incomplete forever, and the root's retry timer multicasts a
//! [`crate::proto::KIND_COLL_RETRY`] that bumps the epoch. A member that
//! contributed but never saw the result asks for a replay with
//! [`crate::proto::KIND_COLL_NUDGE`]. Channels carry their own reliability,
//! so the software tree needs none of this.

use std::collections::HashMap;

use desim::{sync::WaitSet, SimDuration, TimerHandle, Wakeup};
use hpcnet::combine::{self, CombOp};
use hpcnet::{Dest, Frame, NodeAddr, Payload};

use crate::api;
use crate::channel::{self, ChannelHandle};
use crate::cpu::{BlockReason, CpuCat};
use crate::world::{VCtx, VSched, VorxShardedSim, World};
use crate::{kernel, proto};

/// How a collective group executes its operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollMode {
    /// Combining inside the fabric's star couplers (DESIGN.md §16).
    InNetwork,
    /// A software reduction tree of the given radix over ordinary channels.
    SoftwareTree {
        /// Children per tree node (≥ 1).
        radix: u32,
    },
}

/// Static configuration of one collective group.
#[derive(Debug, Clone)]
pub struct GroupCfg {
    /// Group id (≤ [`hpcnet::combine::MAX_GROUP`]).
    pub group: u32,
    /// The member nodes. Sorted ascending at registration; the first member
    /// is the root.
    pub members: Vec<NodeAddr>,
    /// Execution engine.
    pub mode: CollMode,
}

/// Per-node, per-group collective protocol state (lives in
/// [`crate::world::Node::coll`]; wiped cold by a crash like every other
/// kernel table).
#[derive(Default)]
pub struct CollNodeState {
    /// Next operation sequence number on this node. Members of a group call
    /// the same operations in the same program order, so sequence numbers
    /// align across the group without coordination.
    pub next_cseq: u32,
    /// Processes blocked in a collective op on this node/group.
    pub waiters: WaitSet,
    /// The member-side in-flight operation, if any (ops block, so at most
    /// one per group per node).
    pub pending: Option<PendingUp>,
    /// Latest completed `(sequence, result)` seen on this node.
    pub completed: Option<(u32, u64)>,
    /// A `KIND_COLL_RETRY` that arrived before this member reached the
    /// operation it names: `(sequence, attempt)` to start from.
    pub retry_hint: Option<(u32, u8)>,
    /// Root side: per-`(sequence, attempt)` accumulated `(value, count)`.
    pub accs: HashMap<(u32, u8), (u64, u32)>,
    /// Root side: the in-flight operation this root is collecting.
    pub root_pending: Option<RootPending>,
    /// Root side: recently completed results, kept for `KIND_COLL_NUDGE`
    /// replay. A straggler can lag at most one full operation behind the
    /// root (every op is a full synchronization), so only the last two
    /// sequences are retained.
    pub done: HashMap<u32, (u64, CombOp, u32)>,
    /// All-to-all: the in-flight gather on this node.
    pub a2a: Option<A2aPending>,
    /// All-to-all: own `(sequence → value)` contributions, kept for
    /// `KIND_COLL_A2A_REQ` replay (last two sequences, same bound as
    /// `done`).
    pub a2a_sent: HashMap<u32, u64>,
    /// All-to-all values that arrived before this node entered the
    /// operation, keyed by sequence.
    pub a2a_early: HashMap<u32, Vec<(u32, u64)>>,
}

/// A member's in-flight contribution awaiting its result.
pub struct PendingUp {
    /// Operation sequence.
    pub cseq: u32,
    /// Combining operation.
    pub op: CombOp,
    /// This member's operand.
    pub value: u64,
    /// Current attempt epoch (high-water: retries only move it up).
    pub attempt: u8,
    /// The group root (result source, nudge target).
    pub root: NodeAddr,
    /// Armed nudge timer.
    pub timer: Option<TimerHandle>,
}

/// The root's in-flight collection.
pub struct RootPending {
    /// Operation sequence.
    pub cseq: u32,
    /// Combining operation.
    pub op: CombOp,
    /// The root's own operand (re-folded into every fresh attempt).
    pub own: u64,
    /// Current attempt epoch.
    pub attempt: u8,
    /// Full group size (completion threshold).
    pub total: u32,
    /// Every member except the root (retry/result multicast targets).
    pub others: Vec<NodeAddr>,
    /// Armed retry timer.
    pub timer: Option<TimerHandle>,
}

/// One node's in-flight all-to-all gather.
pub struct A2aPending {
    /// Operation sequence.
    pub cseq: u32,
    /// Received values by member index (own slot filled at start).
    pub vals: Vec<Option<u64>>,
    /// Armed recovery timer.
    pub timer: Option<TimerHandle>,
}

impl A2aPending {
    fn missing(&self) -> usize {
        self.vals.iter().filter(|v| v.is_none()).count()
    }
}

/// Register a collective group in one world. Sequential builds call this
/// once through [`VorxSim::world`](crate::world::VorxSim::world); sharded
/// builds must register on *every* shard ([`register_group_sharded`]).
///
/// For an in-network group this also arms the fabric's combining tables —
/// but only on the shard owning the root, because that is the only fabric
/// that ever carries `KIND_COLL_UP` frames (members elsewhere bridge
/// straight into it). Shards that never see collective traffic keep their
/// combining state disarmed and their traces byte-identical to
/// collective-free builds.
pub fn register_group(w: &mut World, cfg: &GroupCfg) {
    let mut cfg = cfg.clone();
    cfg.members.sort();
    cfg.members.dedup();
    assert!(!cfg.members.is_empty(), "collective group needs members");
    assert!(
        cfg.group <= combine::MAX_GROUP,
        "collective group id exceeds 24 bits"
    );
    if let CollMode::SoftwareTree { radix } = cfg.mode {
        assert!(radix >= 1, "software tree radix must be >= 1");
    }
    let root = cfg.members[0];
    if cfg.mode == CollMode::InNetwork {
        let total = cfg.members.len() as u32;
        if w.shard.enabled {
            if !w.shard.is_remote(root) {
                // Only members co-located with the root route through this
                // fabric; everyone else's frames arrive over the bridge and
                // merge at the root's own cluster.
                let local: Vec<NodeAddr> = cfg
                    .members
                    .iter()
                    .copied()
                    .filter(|m| !w.shard.is_remote(*m))
                    .collect();
                w.net
                    .comb_register_group(cfg.group, proto::KIND_COLL_UP, &local, root, total);
            }
        } else {
            w.net
                .comb_register_group(cfg.group, proto::KIND_COLL_UP, &cfg.members, root, total);
        }
    }
    w.coll_groups.insert(cfg.group, cfg);
}

/// [`register_group`] on every shard of a sharded simulation. Call before
/// spawning member processes.
pub fn register_group_sharded(sim: &VorxShardedSim, cfg: &GroupCfg) {
    for k in 0..sim.n_shards() {
        register_group(&mut sim.world(k), cfg);
    }
}

/// A process-side handle to one collective group, bound to the calling
/// member's node. [`attach`] it once, then call operations in the same
/// order from every member.
pub struct Collective {
    group: u32,
    node: NodeAddr,
    idx: usize,
    members: Vec<NodeAddr>,
    engine: Engine,
}

enum Engine {
    InNetwork,
    Software {
        parent: Option<ChannelHandle>,
        children: Vec<ChannelHandle>,
    },
}

/// Attach to a registered group from a member process running on `node`.
/// For a software-tree group this opens the tree channels (blocking until
/// the tree peers attach too); in-network groups attach instantly.
pub fn attach(ctx: &VCtx, node: NodeAddr, group: u32) -> Collective {
    let cfg = ctx.with(move |w, _| {
        w.coll_groups
            .get(&group)
            .unwrap_or_else(|| panic!("collective group {group} is not registered"))
            .clone()
    });
    let idx = cfg
        .members
        .binary_search(&node)
        .unwrap_or_else(|_| panic!("{node} is not a member of collective group {group}"));
    let engine = match cfg.mode {
        CollMode::InNetwork => Engine::InNetwork,
        CollMode::SoftwareTree { radix } => {
            // Deadlock-free open order: post the parent edge first (so the
            // parent's matching open always finds it), then child edges in
            // ascending order.
            let r = radix as usize;
            let parent =
                (idx > 0).then(|| channel::open(ctx, node, &format!("coll{group}.e{idx}")));
            let children = (1..=r)
                .map(|k| idx * r + k)
                .filter(|&c| c < cfg.members.len())
                .map(|c| channel::open(ctx, node, &format!("coll{group}.e{c}")))
                .collect();
            Engine::Software { parent, children }
        }
    };
    Collective {
        group,
        node,
        idx,
        members: cfg.members,
        engine,
    }
}

impl Collective {
    /// This member's index within the group (0 = root).
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Block until every member has entered the barrier.
    pub fn barrier(&self, ctx: &VCtx) {
        self.allreduce(ctx, CombOp::Sum, 0);
    }

    /// Fold every member's operand with `op`; every member returns when the
    /// reduction completes, and all of them receive the folded value (the
    /// result broadcast doubles as the completion acknowledgement, so a
    /// root-only variant would cost exactly the same — `reduce` *is*
    /// `allreduce`).
    pub fn reduce(&self, ctx: &VCtx, op: CombOp, operand: u64) -> u64 {
        self.allreduce(ctx, op, operand)
    }

    /// Fetch-and-add: every member contributes `operand` and receives the
    /// group total. (The Ultracomputer's per-requester serialization prefix
    /// is not modeled — a documented simplification; see
    /// [`hpcnet::combine::CombOp::FetchAdd`].)
    pub fn fetch_add(&self, ctx: &VCtx, operand: u64) -> u64 {
        self.allreduce(ctx, CombOp::FetchAdd, operand)
    }

    /// Fold every member's operand with `op` and deliver the result to all.
    pub fn allreduce(&self, ctx: &VCtx, op: CombOp, operand: u64) -> u64 {
        match &self.engine {
            Engine::InNetwork => self.innet_allreduce(ctx, op, operand),
            Engine::Software { parent, children } => {
                self.sw_allreduce(ctx, op, operand, parent, children)
            }
        }
    }

    /// Exchange one value with every member: returns the full vector of
    /// member values, indexed by member index (own value included).
    pub fn all_to_all(&self, ctx: &VCtx, value: u64) -> Vec<u64> {
        match &self.engine {
            Engine::InNetwork => self.innet_all_to_all(ctx, value),
            Engine::Software { parent, children } => {
                self.sw_all_to_all(ctx, value, parent, children)
            }
        }
    }

    // ----- in-network engine -----

    fn innet_allreduce(&self, ctx: &VCtx, op: CombOp, operand: u64) -> u64 {
        let node = self.node;
        let group = self.group;
        let cal = ctx.with(|w, _| w.calib);
        // The lean direct-hardware send (the raw UDCO path of §4.1): build
        // a 13-byte operand and poke the output registers.
        api::compute_ns(
            ctx,
            node,
            CpuCat::User,
            cal.raw_send_ns + cal.udco_copy_ns_per_byte * u64::from(combine::COMB_PAYLOAD_BYTES),
        );
        let cseq = if self.idx == 0 {
            let members = self.members.clone();
            ctx.with(move |w, s| root_begin(w, s, node, group, op, operand, &members))
        } else {
            let root = self.members[0];
            ctx.with(move |w, s| member_begin(w, s, node, group, op, operand, root))
        };
        wait_completed(ctx, node, group, cseq)
    }

    fn innet_all_to_all(&self, ctx: &VCtx, value: u64) -> Vec<u64> {
        let node = self.node;
        let group = self.group;
        let idx = self.idx as u32;
        let n = self.members.len();
        let cal = ctx.with(|w, _| w.calib);
        api::compute_ns(
            ctx,
            node,
            CpuCat::User,
            cal.raw_send_ns + cal.udco_copy_ns_per_byte * 12,
        );
        let others: Vec<NodeAddr> = self
            .members
            .iter()
            .copied()
            .filter(|&m| m != node)
            .collect();
        let cseq = ctx.with(move |w, s| {
            let st = coll_state(w, node, group);
            let cseq = st.next_cseq;
            st.next_cseq += 1;
            let mut vals = vec![None; n];
            vals[idx as usize] = Some(value);
            let early = st.a2a_early.remove(&cseq).unwrap_or_default();
            for (i, v) in early {
                vals[i as usize] = Some(v);
            }
            st.a2a_sent.insert(cseq, value);
            st.a2a_sent.retain(|&c, _| c + 2 > cseq);
            st.a2a = Some(A2aPending {
                cseq,
                vals,
                timer: None,
            });
            if !others.is_empty() {
                let f = Frame {
                    src: node,
                    dst: Dest::Multicast(others.into()),
                    kind: proto::KIND_COLL_A2A,
                    seq: combine::enc_seq(group, cseq, 0),
                    payload: proto::pack_a2a(idx, value),
                    corrupted: false,
                };
                kernel::send_frame(w, s, f);
            }
            arm_a2a_timer(w, s, node, group, cseq, 0);
            cseq
        });
        let pid = ctx.pid();
        let mut blocked = false;
        let (vals, was_blocked) = ctx.wait_until(move |w, s| {
            let now = s.now();
            let st = coll_state(w, node, group);
            let done = st
                .a2a
                .as_ref()
                .is_some_and(|p| p.cseq == cseq && p.missing() == 0);
            if done {
                let mut p = st.a2a.take().expect("checked above");
                if let Some(t) = p.timer.take() {
                    t.cancel();
                }
                let vals: Vec<u64> = p.vals.into_iter().map(|v| v.expect("complete")).collect();
                if blocked {
                    w.unblock(now, node, BlockReason::Input);
                }
                Some((vals, blocked))
            } else {
                let st = coll_state(w, node, group);
                st.waiters.register(pid);
                if !blocked {
                    blocked = true;
                    w.block(now, node, BlockReason::Input);
                }
                None
            }
        });
        if was_blocked {
            api::compute_ns(ctx, node, CpuCat::System, cal.ctx_switch_ns);
        }
        vals
    }

    // ----- software-tree engine -----

    fn sw_allreduce(
        &self,
        ctx: &VCtx,
        op: CombOp,
        operand: u64,
        parent: &Option<ChannelHandle>,
        children: &[ChannelHandle],
    ) -> u64 {
        // Up: fold the children's subtree results into our own operand.
        let mut acc = operand;
        for ch in children {
            let p = ch.read(ctx).expect("collective tree channel closed");
            let (cop, v, _) = combine::unpack(&p).expect("malformed tree operand");
            debug_assert_eq!(cop.code(), op.code(), "mixed ops in one collective");
            acc = op.apply(acc, v);
        }
        // The root now holds the result; everyone else sends up and waits
        // for it to come back down.
        let result = match parent {
            None => acc,
            Some(up) => {
                up.write(ctx, combine::pack(op, acc, 1))
                    .expect("collective tree channel closed");
                let p = up.read(ctx).expect("collective tree channel closed");
                let (_, v, _) = combine::unpack(&p).expect("malformed tree result");
                v
            }
        };
        // Down: forward to our subtree.
        for ch in children {
            ch.write(ctx, combine::pack(op, result, 1))
                .expect("collective tree channel closed");
        }
        result
    }

    fn sw_all_to_all(
        &self,
        ctx: &VCtx,
        value: u64,
        parent: &Option<ChannelHandle>,
        children: &[ChannelHandle],
    ) -> Vec<u64> {
        // Up: gather (index, value) pairs from the subtree.
        let mut pairs: Vec<(u32, u64)> = vec![(self.idx as u32, value)];
        for ch in children {
            let p = ch.read(ctx).expect("collective tree channel closed");
            pairs.extend(parse_pairs(&p));
        }
        let full = match parent {
            None => {
                assert_eq!(pairs.len(), self.members.len(), "gather incomplete");
                pairs
            }
            Some(up) => {
                up.write(ctx, pack_pairs(&pairs))
                    .expect("collective tree channel closed");
                let p = up.read(ctx).expect("collective tree channel closed");
                parse_pairs(&p)
            }
        };
        for ch in children {
            ch.write(ctx, pack_pairs(&full))
                .expect("collective tree channel closed");
        }
        let mut vals = vec![0u64; self.members.len()];
        for (i, v) in full {
            vals[i as usize] = v;
        }
        vals
    }
}

/// Pack a list of `(index, value)` pairs (12 bytes each) for tree gathers.
fn pack_pairs(pairs: &[(u32, u64)]) -> Payload {
    let mut b = Vec::with_capacity(pairs.len() * 12);
    for &(i, v) in pairs {
        b.extend_from_slice(&i.to_be_bytes());
        b.extend_from_slice(&v.to_be_bytes());
    }
    Payload::copy_from(&b)
}

fn parse_pairs(p: &Payload) -> Vec<(u32, u64)> {
    let b = p.bytes().expect("tree gather carries data");
    assert_eq!(b.len() % 12, 0, "malformed tree gather payload");
    b.chunks_exact(12)
        .map(|c| {
            let mut i = [0u8; 4];
            i.copy_from_slice(&c[..4]);
            let mut v = [0u8; 8];
            v.copy_from_slice(&c[4..12]);
            (u32::from_be_bytes(i), u64::from_be_bytes(v))
        })
        .collect()
}

// ----- kernel-side machinery (in-network engine) -----

fn coll_state(w: &mut World, node: NodeAddr, group: u32) -> &mut CollNodeState {
    w.node_mut(node).coll.entry(group).or_default()
}

/// Start a member-side operation: allocate the sequence, send the operand
/// up, arm the nudge timer.
fn member_begin(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    group: u32,
    op: CombOp,
    value: u64,
    root: NodeAddr,
) -> u32 {
    let st = coll_state(w, node, group);
    let cseq = st.next_cseq;
    st.next_cseq += 1;
    let attempt = match st.retry_hint.take() {
        Some((c, a)) if c == cseq => a,
        _ => 0,
    };
    st.pending = Some(PendingUp {
        cseq,
        op,
        value,
        attempt,
        root,
        timer: None,
    });
    let f = Frame::unicast(
        node,
        root,
        proto::KIND_COLL_UP,
        combine::enc_seq(group, cseq, attempt),
        combine::pack(op, value, 1),
    );
    kernel::send_frame(w, s, f);
    arm_member_timer(w, s, node, group, cseq, 0);
    cseq
}

/// Start the root-side collection: fold the root's own operand into attempt
/// 0 and arm the retry timer. Early contributions (members that raced
/// ahead) are already accumulated.
fn root_begin(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    group: u32,
    op: CombOp,
    own: u64,
    members: &[NodeAddr],
) -> u32 {
    let others: Vec<NodeAddr> = members.iter().copied().filter(|&m| m != node).collect();
    let total = members.len() as u32;
    let st = coll_state(w, node, group);
    let cseq = st.next_cseq;
    st.next_cseq += 1;
    let e = st.accs.entry((cseq, 0)).or_insert((op.identity(), 0));
    e.0 = op.apply(e.0, own);
    e.1 += 1;
    st.root_pending = Some(RootPending {
        cseq,
        op,
        own,
        attempt: 0,
        total,
        others,
        timer: None,
    });
    try_complete_root(w, s, node, group, cseq, 0);
    if coll_state(w, node, group).root_pending.is_some() {
        arm_root_timer(w, s, node, group, cseq, 0);
    }
    cseq
}

/// Block until `cseq` completes on this node and return its result.
fn wait_completed(ctx: &VCtx, node: NodeAddr, group: u32, cseq: u32) -> u64 {
    let pid = ctx.pid();
    let mut blocked = false;
    let (val, was_blocked) = ctx.wait_until(move |w, s| {
        let now = s.now();
        let st = coll_state(w, node, group);
        match st.completed {
            Some((c, v)) if c == cseq => {
                if blocked {
                    w.unblock(now, node, BlockReason::Input);
                }
                Some((v, blocked))
            }
            _ => {
                st.waiters.register(pid);
                if !blocked {
                    blocked = true;
                    w.block(now, node, BlockReason::Input);
                }
                None
            }
        }
    });
    if was_blocked {
        let c = ctx.with(|w, _| w.calib);
        api::compute_ns(ctx, node, CpuCat::System, c.ctx_switch_ns);
    }
    val
}

/// Member nudge timer: the result hasn't come back — ask the root to
/// replay it (or, if the root is still collecting, let its own retry timer
/// drive recovery). Backoff doubles with a capped shift; the loss and
/// degradation fault models are probabilistic per transmission, so retries
/// eventually succeed.
fn arm_member_timer(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    group: u32,
    cseq: u32,
    attempts: u32,
) {
    let delay = w.calib.ctl_timeout_ns << attempts.min(10);
    let t = s.schedule_cancellable_in(SimDuration::from_ns(delay), move |w: &mut World, s| {
        if !w.node(node).up {
            return;
        }
        let Some(st) = w.node_mut(node).coll.get_mut(&group) else {
            return;
        };
        let Some(p) = &st.pending else { return };
        if p.cseq != cseq {
            return;
        }
        let (root, attempt) = (p.root, p.attempt);
        let f = Frame::unicast(
            node,
            root,
            proto::KIND_COLL_NUDGE,
            combine::enc_seq(group, cseq, attempt),
            Payload::Synthetic(0),
        );
        kernel::send_frame(w, s, f);
        arm_member_timer(w, s, node, group, cseq, attempts + 1);
    });
    if let Some(p) = &mut coll_state(w, node, group).pending {
        if p.cseq == cseq {
            p.timer = Some(t);
        }
    }
}

/// Root retry timer: the current attempt didn't complete in time — a
/// contribution (or a flushed partial) was lost, or a straggler is slow.
/// Open a fresh attempt epoch and ask every member to re-send under it.
fn arm_root_timer(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    group: u32,
    cseq: u32,
    attempts: u32,
) {
    let delay = w.calib.ctl_timeout_ns << attempts.min(10);
    let t = s.schedule_cancellable_in(SimDuration::from_ns(delay), move |w: &mut World, s| {
        if !w.node(node).up {
            return;
        }
        let Some(st) = w.node_mut(node).coll.get_mut(&group) else {
            return;
        };
        let Some(rp) = &mut st.root_pending else {
            return;
        };
        if rp.cseq != cseq {
            return;
        }
        rp.attempt = rp.attempt.saturating_add(1);
        let (a, op, own, others) = (rp.attempt, rp.op, rp.own, rp.others.clone());
        let e = st.accs.entry((cseq, a)).or_insert((op.identity(), 0));
        e.0 = op.apply(e.0, own);
        e.1 += 1;
        w.faults.stats.coll_retries += 1;
        if !others.is_empty() {
            let f = Frame {
                src: node,
                dst: Dest::Multicast(others.into()),
                kind: proto::KIND_COLL_RETRY,
                seq: combine::enc_seq(group, cseq, a),
                payload: Payload::Synthetic(0),
                corrupted: false,
            };
            kernel::send_frame(w, s, f);
        }
        try_complete_root(w, s, node, group, cseq, a);
        if coll_state(w, node, group).root_pending.is_some() {
            arm_root_timer(w, s, node, group, cseq, attempts + 1);
        }
    });
    if let Some(rp) = &mut coll_state(w, node, group).root_pending {
        if rp.cseq == cseq {
            rp.timer = Some(t);
        }
    }
}

/// If `attempt`'s accumulation reached the group size, finish the
/// operation: record the result, wake the root's waiter, and multicast the
/// result down the hardware path.
fn try_complete_root(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    group: u32,
    cseq: u32,
    attempt: u8,
) {
    let st = coll_state(w, node, group);
    let Some(rp) = &st.root_pending else { return };
    if rp.cseq != cseq {
        return;
    }
    let total = rp.total;
    let Some(&(val, cnt)) = st.accs.get(&(cseq, attempt)) else {
        return;
    };
    if cnt < total {
        return;
    }
    let mut rp = st.root_pending.take().expect("checked above");
    if let Some(t) = rp.timer.take() {
        t.cancel();
    }
    let op = rp.op;
    st.accs.retain(|&(c, _), _| c != cseq);
    st.completed = Some((cseq, val));
    st.done.insert(cseq, (val, op, cnt));
    st.done.retain(|&c, _| c + 2 > cseq);
    st.waiters.wake_all(s, Wakeup::START);
    if !rp.others.is_empty() {
        let now = s.now();
        w.charge(
            now,
            node,
            CpuCat::System,
            SimDuration::from_ns(w.calib.chan_ack_gen_ns),
        );
        let f = Frame {
            src: node,
            dst: Dest::Multicast(rp.others.into()),
            kind: proto::KIND_COLL_RESULT,
            seq: combine::enc_seq(group, cseq, 0),
            payload: combine::pack(op, val, cnt),
            corrupted: false,
        };
        kernel::send_frame(w, s, f);
    }
}

/// Kernel handler: a (possibly fabric-merged) contribution reached the
/// root. Fold it into its `(sequence, attempt)` accumulator.
pub fn on_up(w: &mut World, s: &mut VSched, a: NodeAddr, f: Frame) {
    let group = combine::seq_group(f.seq);
    let cseq = combine::seq_cseq(f.seq);
    let attempt = combine::seq_attempt(f.seq);
    let Some((op, v, c)) = combine::unpack(&f.payload) else {
        return; // not a well-formed operand; drop
    };
    let st = coll_state(w, a, group);
    if st.done.contains_key(&cseq) || st.completed.is_some_and(|(dc, _)| dc >= cseq) {
        return; // stale straggler for a completed operation
    }
    let e = st.accs.entry((cseq, attempt)).or_insert((op.identity(), 0));
    e.0 = op.apply(e.0, v);
    e.1 += c;
    try_complete_root(w, s, a, group, cseq, attempt);
}

/// Kernel handler: the result came down from the root.
pub fn on_result(w: &mut World, s: &mut VSched, a: NodeAddr, f: Frame) {
    let group = combine::seq_group(f.seq);
    let cseq = combine::seq_cseq(f.seq);
    let Some((_, v, _)) = combine::unpack(&f.payload) else {
        return;
    };
    let st = coll_state(w, a, group);
    if st.completed.is_some_and(|(c, _)| c >= cseq) {
        return; // duplicate replay
    }
    st.completed = Some((cseq, v));
    if let Some(mut p) = st.pending.take() {
        if p.cseq == cseq {
            if let Some(t) = p.timer.take() {
                t.cancel();
            }
        } else {
            st.pending = Some(p);
        }
    }
    st.waiters.wake_all(s, Wakeup::START);
}

/// Kernel handler: the root opened a fresh attempt epoch — re-send our
/// contribution under it (members that haven't reached the operation yet
/// stash the epoch and start from it directly).
pub fn on_retry(w: &mut World, s: &mut VSched, a: NodeAddr, f: Frame) {
    let group = combine::seq_group(f.seq);
    let cseq = combine::seq_cseq(f.seq);
    let attempt = combine::seq_attempt(f.seq);
    let st = coll_state(w, a, group);
    if st.completed.is_some_and(|(c, _)| c >= cseq) {
        return; // already have the result; the retry crossed it in flight
    }
    match &mut st.pending {
        Some(p) if p.cseq == cseq => {
            if attempt <= p.attempt {
                return; // stale or duplicate epoch
            }
            p.attempt = attempt;
            let (op, value, root) = (p.op, p.value, p.root);
            let frame = Frame::unicast(
                a,
                root,
                proto::KIND_COLL_UP,
                combine::enc_seq(group, cseq, attempt),
                combine::pack(op, value, 1),
            );
            kernel::send_frame(w, s, frame);
        }
        _ => {
            if st.next_cseq <= cseq {
                // We haven't entered this operation yet; start at the
                // freshest epoch when we do.
                match st.retry_hint {
                    Some((c, hint)) if c == cseq && hint >= attempt => {}
                    _ => st.retry_hint = Some((cseq, attempt)),
                }
            }
        }
    }
}

/// Kernel handler (root side): a member wants the result replayed.
pub fn on_nudge(w: &mut World, s: &mut VSched, a: NodeAddr, f: Frame) {
    let group = combine::seq_group(f.seq);
    let cseq = combine::seq_cseq(f.seq);
    let from = f.src;
    let st = coll_state(w, a, group);
    let Some(&(val, op, cnt)) = st.done.get(&cseq) else {
        return; // still collecting (our retry timer drives), or ancient
    };
    let now = s.now();
    w.charge(
        now,
        a,
        CpuCat::System,
        SimDuration::from_ns(w.calib.chan_ack_gen_ns),
    );
    let frame = Frame::unicast(
        a,
        from,
        proto::KIND_COLL_RESULT,
        combine::enc_seq(group, cseq, 0),
        combine::pack(op, val, cnt),
    );
    kernel::send_frame(w, s, frame);
}

/// All-to-all recovery timer: unicast a replay request to every member
/// whose value is still missing.
fn arm_a2a_timer(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    group: u32,
    cseq: u32,
    attempts: u32,
) {
    let delay = w.calib.ctl_timeout_ns << attempts.min(10);
    let t = s.schedule_cancellable_in(SimDuration::from_ns(delay), move |w: &mut World, s| {
        if !w.node(node).up {
            return;
        }
        let members = match w.coll_groups.get(&group) {
            Some(cfg) => cfg.members.clone(),
            None => return,
        };
        let my_idx = members.binary_search(&node).unwrap_or(usize::MAX) as u32;
        let Some(st) = w.node_mut(node).coll.get_mut(&group) else {
            return;
        };
        let Some(p) = &st.a2a else { return };
        if p.cseq != cseq || p.missing() == 0 {
            return;
        }
        let missing: Vec<NodeAddr> = p
            .vals
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_none())
            .map(|(i, _)| members[i])
            .collect();
        for m in missing {
            let f = Frame::unicast(
                node,
                m,
                proto::KIND_COLL_A2A_REQ,
                combine::enc_seq(group, cseq, 0),
                proto::pack_a2a_req(my_idx),
            );
            kernel::send_frame(w, s, f);
        }
        arm_a2a_timer(w, s, node, group, cseq, attempts + 1);
    });
    if let Some(p) = &mut coll_state(w, node, group).a2a {
        if p.cseq == cseq {
            p.timer = Some(t);
        }
    }
}

/// Kernel handler: an all-to-all value arrived (broadcast or replay).
pub fn on_a2a_val(w: &mut World, s: &mut VSched, a: NodeAddr, f: Frame) {
    let group = combine::seq_group(f.seq);
    let cseq = combine::seq_cseq(f.seq);
    let (idx, v) = proto::parse_a2a(&f.payload);
    let st = coll_state(w, a, group);
    match &mut st.a2a {
        Some(p) if p.cseq == cseq => {
            p.vals[idx as usize] = Some(v);
            if p.missing() == 0 {
                st.waiters.wake_all(s, Wakeup::START);
            }
        }
        _ => {
            if st.next_cseq <= cseq {
                st.a2a_early.entry(cseq).or_default().push((idx, v));
            }
        }
    }
}

/// Kernel handler: replay our own all-to-all value to a requester that
/// missed the broadcast.
pub fn on_a2a_req(w: &mut World, s: &mut VSched, a: NodeAddr, f: Frame) {
    let group = combine::seq_group(f.seq);
    let cseq = combine::seq_cseq(f.seq);
    let req_idx = proto::parse_a2a_req(&f.payload) as usize;
    let Some(cfg) = w.coll_groups.get(&group) else {
        return;
    };
    let Some(&req_node) = cfg.members.get(req_idx) else {
        return;
    };
    let my_idx = match cfg.members.binary_search(&a) {
        Ok(i) => i as u32,
        Err(_) => return,
    };
    let st = coll_state(w, a, group);
    let Some(&v) = st.a2a_sent.get(&cseq) else {
        return; // haven't entered that operation yet; requester will re-ask
    };
    let frame = Frame::unicast(
        a,
        req_node,
        proto::KIND_COLL_A2A_VAL,
        combine::enc_seq(group, cseq, 0),
        proto::pack_a2a(my_idx, v),
    );
    kernel::send_frame(w, s, frame);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::VorxBuilder;
    use std::sync::{Arc, Mutex};

    fn group(members: &[u32], mode: CollMode) -> GroupCfg {
        GroupCfg {
            group: 7,
            members: members.iter().map(|&m| NodeAddr(m)).collect(),
            mode,
        }
    }

    fn run_allreduce(mode: CollMode) -> Vec<u64> {
        let members: Vec<u32> = (0..8).collect();
        let mut v = VorxBuilder::hypercube(4, 2).build();
        register_group(&mut v.world(), &group(&members, mode));
        let results = Arc::new(Mutex::new(vec![0u64; members.len()]));
        for (i, m) in members.iter().copied().enumerate() {
            let results = Arc::clone(&results);
            v.spawn(format!("n{m}:coll"), move |ctx| {
                let c = attach(&ctx, NodeAddr(m), 7);
                let r = c.allreduce(&ctx, CombOp::Sum, u64::from(m) + 1);
                results.lock().unwrap()[i] = r;
            });
        }
        v.run_all();
        assert_eq!(v.world().net.in_flight(), 0);
        let r = results.lock().unwrap().clone();
        r
    }

    #[test]
    fn in_network_allreduce_sums_every_member() {
        let r = run_allreduce(CollMode::InNetwork);
        assert!(r.iter().all(|&v| v == 36), "results {r:?}");
    }

    #[test]
    fn software_tree_allreduce_matches() {
        let r = run_allreduce(CollMode::SoftwareTree { radix: 2 });
        assert!(r.iter().all(|&v| v == 36), "results {r:?}");
    }

    #[test]
    fn in_network_beats_software_tree_in_simulated_time() {
        let t = |mode| {
            let members: Vec<u32> = (0..12).collect();
            let mut v = VorxBuilder::hypercube(4, 3).build();
            register_group(&mut v.world(), &group(&members, mode));
            for m in members.iter().copied() {
                v.spawn(format!("n{m}:coll"), move |ctx| {
                    let c = attach(&ctx, NodeAddr(m), 7);
                    c.barrier(&ctx);
                });
            }
            v.run_all().as_ns()
        };
        let innet = t(CollMode::InNetwork);
        let tree = t(CollMode::SoftwareTree { radix: 2 });
        assert!(
            innet < tree,
            "in-network {innet} ns should beat software tree {tree} ns"
        );
    }

    #[test]
    fn all_to_all_exchanges_every_value() {
        for mode in [CollMode::InNetwork, CollMode::SoftwareTree { radix: 3 }] {
            let members: Vec<u32> = (0..6).collect();
            let mut v = VorxBuilder::hypercube(2, 3).build();
            register_group(&mut v.world(), &group(&members, mode));
            let results = Arc::new(Mutex::new(Vec::new()));
            for m in members.iter().copied() {
                let results = Arc::clone(&results);
                v.spawn(format!("n{m}:a2a"), move |ctx| {
                    let c = attach(&ctx, NodeAddr(m), 7);
                    let r = c.all_to_all(&ctx, u64::from(m) * 100);
                    results.lock().unwrap().push(r);
                });
            }
            v.run_all();
            let want: Vec<u64> = (0..6).map(|i| i * 100).collect();
            for r in results.lock().unwrap().iter() {
                assert_eq!(r, &want, "mode {mode:?}");
            }
        }
    }

    #[test]
    fn mixed_op_sequence_stays_aligned() {
        let members: Vec<u32> = (0..4).collect();
        let mut v = VorxBuilder::hypercube(2, 2).build();
        register_group(&mut v.world(), &group(&members, CollMode::InNetwork));
        let oks = Arc::new(Mutex::new(0u32));
        for m in members.iter().copied() {
            let oks = Arc::clone(&oks);
            v.spawn(format!("n{m}:mix"), move |ctx| {
                let c = attach(&ctx, NodeAddr(m), 7);
                c.barrier(&ctx);
                let mx = c.reduce(&ctx, CombOp::Max, u64::from(m));
                assert_eq!(mx, 3);
                let mn = c.allreduce(&ctx, CombOp::Min, u64::from(m) + 10);
                assert_eq!(mn, 10);
                let fa = c.fetch_add(&ctx, 2);
                assert_eq!(fa, 8);
                let vals = c.all_to_all(&ctx, u64::from(m) ^ 5);
                assert_eq!(vals, vec![5, 4, 7, 6]);
                *oks.lock().unwrap() += 1;
            });
        }
        v.run_all();
        assert_eq!(*oks.lock().unwrap(), 4);
    }

    #[test]
    fn sharded_in_network_allreduce_is_worker_invariant() {
        let run = |workers: usize| {
            let members: Vec<u32> = (0..12).collect();
            let cfg = group(&members, CollMode::InNetwork);
            let v = VorxBuilder::hypercube(4, 3).seed(11).build_sharded(workers);
            register_group_sharded(&v, &cfg);
            let results = Arc::new(Mutex::new(vec![0u64; members.len()]));
            for (i, m) in members.iter().copied().enumerate() {
                let results = Arc::clone(&results);
                v.spawn_at(NodeAddr(m), format!("n{m}:coll"), move |ctx| {
                    let c = attach(&ctx, NodeAddr(m), 7);
                    let r = c.allreduce(&ctx, CombOp::Sum, u64::from(m));
                    results.lock().unwrap()[i] = r;
                });
            }
            let mut v = v;
            let end = v.run_all().as_ns();
            let r = results.lock().unwrap().clone();
            let trace = v.merged_trace().to_json();
            (end, r, trace)
        };
        let (e1, r1, t1) = run(1);
        let (e4, r4, t4) = run(4);
        assert!(r1.iter().all(|&v| v == 66), "results {r1:?}");
        assert_eq!(r1, r4);
        assert_eq!(e1, e4);
        assert_eq!(t1, t4);
    }
}
