//! Channels: VORX's standard communications abstraction (§4).
//!
//! "Channels provide low latency, high bandwidth message passing
//! communications between processors. [...] they are set up with a single
//! open call and data is transferred with read and write calls."
//!
//! Implementation follows the paper:
//!
//! * **Rendezvous by name** through the object manager (§3.2 /
//!   [`crate::objmgr`]).
//! * **Stop-and-wait** protocol: the writer's kernel transmits one fragment
//!   and blocks the writing process until the *receiving kernel*
//!   acknowledges it. No sender-side copy is needed, because the data stays
//!   in place until acknowledged.
//! * **Side buffers**: the receiving kernel copies each fragment into a
//!   side buffer and acks; if the side buffers are full (rare), the ack is
//!   withheld until the reader frees space, which stalls the writer — the
//!   protocol's flow control.
//! * Writes larger than the 1024-byte hardware payload are fragmented and
//!   reassembled transparently; a read returns one whole written message.
//! * **Multiplexed read** ([`read_any`]): block until data arrives on any of
//!   several channels.
//!
//! ## Windowed mode (`Calibration::chan_window > 1`)
//!
//! The paper's Table 1 shows sliding-window transfer roughly doubling
//! goodput over stop-and-wait. With `chan_window = W > 1` the kernel data
//! path pipelines: a `write` returns once its fragments are accepted into
//! the kernel's W-deep transmit window (blocking only while the window is
//! full or the receiver's credit is exhausted), acknowledgements are
//! cumulative with a selective-ack bitmap ([`proto::KIND_CHAN_WACK`]), lost
//! fragments are retransmitted by a single window-base timer with the same
//! doubling backoff and retry budget as stop-and-wait, and the receiver
//! reassembles in order through a bounded reorder buffer while granting
//! credits. `W = 1` never touches any of this machinery — the stop-and-wait
//! code path below runs unchanged, bit-for-bit. See DESIGN.md §10.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::Bytes;
use desim::{sync::WaitSet, Wakeup};
use hpcnet::{Frame, NodeAddr, Payload, MAX_PAYLOAD};

use crate::alloc::PayloadPool;
use crate::api;
use crate::calib::Calibration;
use crate::cpu::{BlockReason, CpuCat};
use crate::kernel;
use crate::proto;
use crate::world::{VCtx, VSched, World};

/// Channel operation errors (an alias of the unified [`crate::VorxError`];
/// variant paths like `ChanError::PeerClosed` keep working through it).
pub type ChanError = crate::VorxError;

/// Result of a channel operation.
pub type ChanResult<T> = Result<T, ChanError>;

/// Consecutive `KIND_CHAN_BUSY` grants a writer honors before concluding
/// the reader is never coming back and counting silence against the retry
/// budget again.
const MAX_BUSY_GRANTS: u32 = 64;

/// The writer's outstanding (unacknowledged) fragment.
#[derive(Debug, Clone)]
pub struct TxPending {
    /// The frame, kept for retransmission.
    pub frame: Frame,
    /// Its fragment number.
    pub frag: u32,
    /// Sim time of the *first* transmission (never reset on retransmit):
    /// an ack with `rexmit == false` yields an unambiguous RTT sample.
    pub sent_ns: u64,
    /// Retransmitted at least once — its ack is ambiguous, so it never
    /// contributes an RTT sample (Karn's rule). Unlike `attempts`, never
    /// reset by a probe-ack resume.
    pub rexmit: bool,
    /// Retransmissions so far.
    pub attempts: u32,
    /// Timer-chain epoch: bumped whenever the chain is reset so stale
    /// timers die on mismatch.
    pub epoch: u32,
    /// `KIND_CHAN_BUSY` grants consumed (see [`MAX_BUSY_GRANTS`]).
    pub busy_grants: u32,
    /// The armed ack-timeout timer, disarmed when the fragment resolves.
    pub timer: Option<desim::TimerHandle>,
}

/// Drop all outstanding transmit state and disarm its timers (ack received,
/// peer closed/down, or crash cleanup). Covers both the stop-and-wait
/// fragment and the windowed in-flight set.
pub(crate) fn clear_tx(end: &mut ChanEnd) {
    if let Some(tp) = end.tx_pending.take() {
        if let Some(t) = tp.timer {
            t.cancel();
        }
    }
    if let Some(t) = end.win.timer.take() {
        t.cancel();
    }
    end.win.inflight.clear();
}

/// Pause a stalled end's retransmit machinery without wiping it: disarm the
/// timers but keep the outstanding fragment and the in-flight window, so
/// the heal resume can retransmit them over the restored route. The
/// partition-tolerant counterpart of [`clear_tx`].
pub(crate) fn pause_tx(end: &mut ChanEnd) {
    if let Some(tp) = end.tx_pending.as_mut() {
        if let Some(t) = tp.timer.take() {
            t.cancel();
        }
    }
    if let Some(t) = end.win.timer.take() {
        t.cancel();
    }
}

/// Restart the retransmit machinery of every end on `node` peered with
/// `peer` (heartbeat-probe ack or partition heal): clear the partition
/// mark, bump the timer epoch, zero the retry budget, and retransmit the
/// outstanding state immediately over whatever route the fabric has now.
pub(crate) fn resume_peer(w: &mut World, s: &mut VSched, node: NodeAddr, peer: NodeAddr) {
    let mut ids: Vec<u32> = w
        .node(node)
        .chans
        .iter()
        .filter(|(_, e)| e.peer == peer)
        .map(|(id, _)| *id)
        .collect();
    ids.sort_unstable();
    for id in ids {
        resume_tx(w, s, node, id);
    }
}

fn resume_tx(w: &mut World, s: &mut VSched, node: NodeAddr, chan: u32) {
    enum Re {
        Idle,
        Data(Frame, u32, u32),
        Win(Vec<Frame>, u32),
    }
    let re = {
        let Some(end) = w.node_mut(node).chans.get_mut(&chan) else {
            return;
        };
        end.partitioned = false;
        if end.peer_down {
            return; // the peer crashed while partitioned; nothing to resume
        }
        if let Some(t) = end.win.timer.take() {
            t.cancel();
        }
        if let Some(tp) = end.tx_pending.as_mut() {
            if let Some(t) = tp.timer.take() {
                t.cancel();
            }
            end.tx_epoch += 1;
            let e = end.tx_epoch;
            let tp = end.tx_pending.as_mut().expect("checked just above");
            tp.epoch = e;
            tp.attempts = 0;
            tp.rexmit = true;
            Re::Data(tp.frame.clone(), tp.frag, e)
        } else if !end.win.inflight.is_empty() {
            end.win.epoch += 1;
            end.win.attempts = 0;
            Re::Win(
                end.win
                    .inflight
                    .values_mut()
                    .filter(|fr| !fr.sacked)
                    .map(|fr| {
                        fr.rexmit = true;
                        fr.frame.clone()
                    })
                    .collect(),
                end.win.epoch,
            )
        } else {
            Re::Idle
        }
    };
    match re {
        Re::Idle => {}
        Re::Data(f, frag, epoch) => {
            w.faults.stats.retransmits += 1;
            kernel::send_frame(w, s, f);
            arm_data_timer(w, s, node, chan, frag, epoch, 0);
        }
        Re::Win(frames, epoch) => {
            w.faults.stats.retransmits += frames.len() as u64;
            for f in frames {
                kernel::send_frame(w, s, f);
            }
            arm_win_timer(w, s, node, chan, epoch, 0);
        }
    }
    // Wake blocked readers and writers either way: the end is usable again.
    if let Some(end) = w.node_mut(node).chans.get_mut(&chan) {
        end.rx_waiters.wake_all(s, Wakeup::START);
        end.tx_wait.wake_all(s, Wakeup::START);
    }
}

/// Declare the peer of every end on `node` peered with `peer` down (a
/// heartbeat probe outlived the peer's crash): PR 2 semantics — wipe the
/// transmit state and wake blocked callers with `PeerDown`.
pub(crate) fn mark_peer_down(w: &mut World, s: &mut VSched, node: NodeAddr, peer: NodeAddr) {
    let mut ids: Vec<u32> = w
        .node(node)
        .chans
        .iter()
        .filter(|(_, e)| e.peer == peer && !e.peer_down)
        .map(|(id, _)| *id)
        .collect();
    ids.sort_unstable();
    for id in ids {
        let Some(end) = w.node_mut(node).chans.get_mut(&id) else {
            continue;
        };
        end.peer_down = true;
        clear_tx(end);
        end.rx_waiters.wake_all(s, Wakeup::START);
        end.tx_wait.wake_all(s, Wakeup::START);
        w.faults.stats.peer_down_events += 1;
    }
}

/// Per-end protocol parameters, frozen from the [`Calibration`] when the end
/// is created (so every frame of a channel's life obeys one mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConfig {
    /// Fragments the writer may keep unacked; 1 = stop-and-wait.
    pub window: u32,
    /// Receiver fragment-buffer capacity advertised as credit (windowed).
    pub rx_frag_buffers: u32,
    /// Reorder-buffer bound in fragments (windowed), ≤ 32 so the
    /// selective-ack bitmap can describe every held fragment.
    pub reorder_frags: u32,
}

impl ChannelConfig {
    /// Derive the per-channel configuration from the world calibration.
    pub fn from_calib(c: &Calibration) -> Self {
        let window = c.chan_window.max(1);
        ChannelConfig {
            window,
            rx_frag_buffers: c.chan_rx_frag_buffers.max(window),
            reorder_frags: c.chan_reorder_frags.clamp(1, 32),
        }
    }
}

/// Reassembles fragments of one written message. Fragments are held as
/// refcounted slices: a single-fragment message (the common case) is
/// delivered zero-copy, and only a multi-fragment gather touches payload
/// bytes — through a pooled buffer, with the copy metered.
#[derive(Debug, Default)]
pub struct PayloadAsm {
    parts: Vec<Bytes>,
    synth: u32,
    frags: usize,
}

impl PayloadAsm {
    /// Append one fragment (no copy; the fragment's bytes are shared).
    pub fn push(&mut self, p: Payload) {
        self.frags += 1;
        match p {
            Payload::Data(b) => {
                assert_eq!(self.synth, 0, "mixed data and synthetic fragments");
                self.parts.push(b);
            }
            Payload::Synthetic(n) => {
                assert!(self.parts.is_empty(), "mixed data and synthetic fragments");
                self.synth += n;
            }
        }
    }

    /// Number of fragments buffered.
    pub fn frags(&self) -> usize {
        self.frags
    }

    /// Payload bytes currently held by buffered fragments (shared refcounted
    /// slices count their full length — the accountant measures what this
    /// end keeps alive, not unique ownership).
    pub fn bytes_held(&self) -> u64 {
        self.parts.iter().map(|b| b.len() as u64).sum::<u64>() + u64::from(self.synth)
    }

    /// Take the assembled message, resetting the assembler. One fragment
    /// passes straight through (zero-copy); several are gathered into a
    /// buffer recycled through `pool`.
    pub fn take(&mut self, pool: &PayloadPool) -> Payload {
        self.frags = 0;
        if self.parts.is_empty() {
            let n = self.synth;
            self.synth = 0;
            return Payload::Synthetic(n);
        }
        if self.parts.len() == 1 {
            return Payload::Data(self.parts.pop().expect("checked"));
        }
        let total: usize = self.parts.iter().map(Bytes::len).sum();
        let mut buf = pool.acquire(total);
        for b in self.parts.drain(..) {
            buf.extend_from_slice(&b);
        }
        hpcnet::copymeter::add(total as u64);
        Payload::Data(buf.freeze())
    }
}

/// Windowed-mode transmit state: the in-flight window and its base timer.
#[derive(Debug, Default)]
pub struct WinTx {
    /// Unacked fragments by fragment number, kept for retransmission.
    /// `sacked` marks fragments the receiver already holds out of order
    /// (selective ack) so a timeout skips them.
    pub inflight: BTreeMap<u32, WinFrag>,
    /// Highest fragment number the receiver has granted credit for
    /// (cumulative ack + advertised credit, monotonic). A writer whose
    /// window is otherwise empty may send one fragment past this as a
    /// zero-window probe.
    pub tx_limit: u32,
    /// Timer-chain epoch: bumped on every ack progress so stale timers die.
    pub epoch: u32,
    /// Consecutive timeouts without cumulative progress.
    pub attempts: u32,
    /// Zero-credit grants honored without counting silence against the
    /// retry budget (the windowed analog of `KIND_CHAN_BUSY`, capped by
    /// [`MAX_BUSY_GRANTS`]).
    pub busy_grants: u32,
    /// The armed window-base retransmit timer.
    pub timer: Option<desim::TimerHandle>,
}

/// One in-flight windowed fragment.
#[derive(Debug, Clone)]
pub struct WinFrag {
    /// The frame, kept for retransmission.
    pub frame: Frame,
    /// Selectively acknowledged: held by the receiver, skip on timeout.
    pub sacked: bool,
    /// Sim time of the first transmission.
    pub sent_ns: u64,
    /// Retransmitted at least once — its ack is ambiguous, so it never
    /// contributes an RTT sample (Karn's rule).
    pub rexmit: bool,
}

/// Windowed-mode receive state: the bounded reorder buffer and the credit
/// accounting behind the grants advertised in every windowed ack.
#[derive(Debug, Default)]
pub struct WinRx {
    /// Fragments copied into side buffers but not yet in-order-committable,
    /// by fragment number, with their `last` flag. Bounded by
    /// `ChannelConfig::reorder_frags`; dedup state never outlives the
    /// cumulative ack, because committing a fragment removes it here and
    /// advances `rx_next_frag` past it.
    pub ready: BTreeMap<u32, (Payload, bool)>,
    /// Fragments whose side-buffer copy charge is in flight; duplicates
    /// arriving mid-copy are dropped.
    pub copying: BTreeSet<u32>,
    /// Fragment count of each queued `rx` message, popped in lockstep by
    /// [`ChanEnd::pop_rx`] to release the credit those fragments held.
    pub rx_frag_counts: VecDeque<u32>,
    /// Fragments committed but not yet consumed by a reader (in `asm` or in
    /// queued `rx` messages); they hold credit.
    pub held: u32,
    /// The last advertised credit was zero; the next reader-side release
    /// must push a credit update or the writer stays stalled.
    pub starved: bool,
}

/// One end of a channel, owned by a node's kernel.
#[derive(Debug)]
pub struct ChanEnd {
    /// Channel id (same on both ends).
    pub id: u32,
    /// The rendezvous name.
    pub name: String,
    /// The other end's node.
    pub peer: NodeAddr,
    /// Complete received messages awaiting `read` (kernel side buffers).
    pub rx: VecDeque<Payload>,
    /// Partial message being reassembled.
    pub asm: PayloadAsm,
    /// Fragments received while the side buffers were full; their acks are
    /// withheld until the reader frees space.
    pub deferred: VecDeque<Frame>,
    /// Processes blocked in `read`.
    pub rx_waiters: WaitSet,
    /// Process blocked in `write` awaiting the kernel ack.
    pub tx_wait: WaitSet,
    /// The ack for the outstanding fragment has arrived.
    pub ack_ready: bool,
    /// The outstanding fragment, kept for retransmission until acked.
    pub tx_pending: Option<TxPending>,
    /// Timer-chain epoch counter (see [`TxPending::epoch`]).
    pub tx_epoch: u32,
    /// Next fragment number expected from the peer; anything below it is a
    /// duplicate (its ack was lost) and is re-acked, not re-delivered.
    pub rx_next_frag: u32,
    /// Fragment currently being copied into a side buffer (its charge is in
    /// flight); a duplicate arriving in that window is dropped.
    pub accepting: Option<u32>,
    /// The peer's node is known to be down (retry exhaustion or the
    /// failure-detection sweep).
    pub peer_down: bool,
    /// The peer is alive but unreachable (network partition). Unlike
    /// `peer_down`, nothing is wiped: timers are paused, the transmit
    /// window is preserved, and the heal sweep clears this flag and resumes
    /// the transfer. Blocked callers observe
    /// [`crate::VorxError::Partitioned`].
    pub partitioned: bool,
    /// Fragments sent from this end (for `cdb`).
    pub msgs_tx: u64,
    /// Messages delivered to readers at this end (for `cdb`).
    pub msgs_rx: u64,
    /// A reader is currently blocked on this end (for `cdb`).
    pub reader_blocked: bool,
    /// A writer is currently blocked on this end (for `cdb`).
    pub writer_blocked: bool,
    /// This end has been closed by the local process.
    pub closed_local: bool,
    /// The peer's end has been closed (close notification received).
    pub closed_remote: bool,
    /// Protocol parameters frozen at creation (window, credit pool).
    pub cfg: ChannelConfig,
    /// Windowed transmit state (untouched when `cfg.window == 1`).
    pub win: WinTx,
    /// Windowed receive state (untouched when `cfg.window == 1`).
    pub winrx: WinRx,
    /// Jacobson/Karn round-trip estimator for this end's data acks. Sampled
    /// only while a gray fault has armed adaptation
    /// ([`crate::fault::FaultState::gray_armed`]); fault-free runs never
    /// touch it, so their traces stay bit-identical.
    pub rtt: crate::rtt::RttEstimator,
    /// Karn backoff persistence: doublings applied to the *base* timeout of
    /// fresh fragments after a timeout fired, until the next unambiguous
    /// sample resets it. Without this the estimator cannot bootstrap when
    /// the true RTT exceeds the fixed timeout — every fragment would be
    /// retransmitted once (ambiguous ack, no sample) forever. Only bumped
    /// and consulted while `gray_armed`.
    pub rto_backoff: u32,
}

impl ChanEnd {
    fn new(id: u32, name: String, peer: NodeAddr, cfg: ChannelConfig) -> Self {
        // Until the first ack arrives, the writer trusts the configured
        // receive capacity (both ends share one calibration).
        let win = WinTx {
            tx_limit: cfg.rx_frag_buffers,
            ..WinTx::default()
        };
        ChanEnd {
            id,
            name,
            peer,
            rx: VecDeque::new(),
            asm: PayloadAsm::default(),
            deferred: VecDeque::new(),
            rx_waiters: WaitSet::new(),
            tx_wait: WaitSet::new(),
            ack_ready: false,
            tx_pending: None,
            tx_epoch: 0,
            rx_next_frag: 1,
            accepting: None,
            peer_down: false,
            partitioned: false,
            msgs_tx: 0,
            msgs_rx: 0,
            reader_blocked: false,
            writer_blocked: false,
            closed_local: false,
            closed_remote: false,
            cfg,
            win,
            winrx: WinRx::default(),
            rtt: crate::rtt::RttEstimator::new(),
            rto_backoff: 0,
        }
    }

    /// Side-buffer slots in use (complete messages + an in-progress
    /// reassembly counts as one).
    fn sidebuf_used(&self) -> usize {
        self.rx.len() + usize::from(self.asm.frags() > 0)
    }

    /// Approximate resident bytes this channel end keeps alive: the fixed
    /// struct plus every buffered payload (receive queue, reassembly,
    /// deferred frames, retransmit window, reorder buffer). Used by the
    /// per-node memory accountant (`crate::accounting`).
    pub fn mem_bytes(&self) -> u64 {
        let frames = |it: &mut dyn Iterator<Item = &Frame>| -> u64 {
            it.map(|f| u64::from(f.wire_bytes())).sum()
        };
        std::mem::size_of::<ChanEnd>() as u64
            + self.name.len() as u64
            + self.rx.iter().map(|p| u64::from(p.len())).sum::<u64>()
            + self.asm.bytes_held()
            + frames(&mut self.deferred.iter())
            + frames(&mut self.win.inflight.values().map(|fr| &fr.frame))
            + self
                .winrx
                .ready
                .values()
                .map(|(p, _)| u64::from(p.len()))
                .sum::<u64>()
            + self
                .tx_pending
                .as_ref()
                .map_or(0, |tp| u64::from(tp.frame.wire_bytes()))
    }

    /// Pop the next complete message, releasing the credit its fragments
    /// held (windowed mode; a no-op beyond the pop for stop-and-wait).
    pub(crate) fn pop_rx(&mut self) -> Option<Payload> {
        let p = self.rx.pop_front();
        if p.is_some() {
            if let Some(n) = self.winrx.rx_frag_counts.pop_front() {
                self.winrx.held = self.winrx.held.saturating_sub(n);
            }
        }
        p
    }

    /// Receiver fragment-buffer slots currently free (the credit grant).
    fn win_avail(&self) -> u32 {
        let used =
            self.winrx.held + self.winrx.ready.len() as u32 + self.winrx.copying.len() as u32;
        self.cfg.rx_frag_buffers.saturating_sub(used)
    }
}

/// Create a channel end on `node` (called by the object manager's reply
/// handler, and directly by tests).
pub fn create_end(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    id: u32,
    name: String,
    peer: NodeAddr,
) {
    let cfg = ChannelConfig::from_calib(&w.calib);
    let prev = w
        .node_mut(node)
        .chans
        .insert(id, ChanEnd::new(id, name, peer, cfg));
    assert!(prev.is_none(), "channel id {id} already exists on {node}");
    kernel::drain_orphans(w, s, node, id);
}

/// A user-level handle to one channel end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelHandle {
    /// Channel id.
    pub id: u32,
    /// The local node.
    pub node: NodeAddr,
    /// The peer node.
    pub peer: NodeAddr,
}

/// Open a channel named `name` from `node`: sends an open request to the
/// responsible object manager and blocks until another process opens the
/// same name. Returns the connected handle. Panics if the open fails under
/// fault injection; use [`try_open`] to handle that.
pub fn open(ctx: &VCtx, node: NodeAddr, name: &str) -> ChannelHandle {
    try_open(ctx, node, name).expect("channel open failed")
}

/// Fallible [`open`]: fails with [`ChanError::Unreachable`] when the object
/// manager does not answer within the retry budget, or
/// [`ChanError::NodeDown`] when the opener's own node crashes mid-open.
pub fn try_open(ctx: &VCtx, node: NodeAddr, name: &str) -> ChanResult<ChannelHandle> {
    let c = ctx.with(|w, _| w.calib);
    api::compute_ns(ctx, node, CpuCat::System, c.chan_read_syscall_ns);
    let (id, peer) = crate::objmgr::rendezvous(ctx, node, name, proto::ObjKind::Channel)?;
    Ok(ChannelHandle { id, node, peer })
}

/// Split a payload into hardware-sized fragments, flagging the last.
fn fragment(payload: Payload) -> Vec<(Payload, bool)> {
    let total = payload.len();
    if total <= MAX_PAYLOAD {
        return vec![(payload, true)];
    }
    let mut out = Vec::new();
    match payload {
        Payload::Data(b) => {
            let mut off = 0usize;
            while off < b.len() {
                let end = (off + MAX_PAYLOAD as usize).min(b.len());
                out.push((Payload::Data(b.slice(off..end)), end == b.len()));
                off = end;
            }
        }
        Payload::Synthetic(mut n) => {
            while n > 0 {
                let chunk = n.min(MAX_PAYLOAD);
                n -= chunk;
                out.push((Payload::Synthetic(chunk), n == 0));
            }
        }
    }
    out
}

impl ChannelHandle {
    /// Write one message. Blocks (stop-and-wait) until the receiving kernel
    /// has acknowledged every fragment. Fails if either end is closed
    /// (writes racing a close may be partially delivered and then fail, as
    /// on a real machine).
    pub fn write(&self, ctx: &VCtx, payload: Payload) -> ChanResult<()> {
        let h = *self;
        let c = ctx.with(|w, _| w.calib);
        if c.chan_window > 1 {
            return self.write_windowed(ctx, payload, c);
        }
        let pid = ctx.pid();
        for (frag, last) in fragment(payload) {
            // Syscall entry + protocol work, then transmit and block.
            api::compute_ns(ctx, h.node, CpuCat::System, c.chan_write_syscall_ns);
            let pre = ctx.with(move |w, s| {
                let now = s.now();
                if !w.node(h.node).up {
                    return Err(ChanError::NodeDown);
                }
                let Some(end) = w.node_mut(h.node).chans.get_mut(&h.id) else {
                    return Err(ChanError::NodeDown);
                };
                if end.closed_local {
                    return Err(ChanError::LocalClosed);
                }
                if end.closed_remote {
                    return Err(ChanError::PeerClosed);
                }
                if end.peer_down {
                    return Err(ChanError::PeerDown);
                }
                if end.partitioned {
                    return Err(ChanError::Partitioned);
                }
                end.msgs_tx += 1;
                let frag_no = end.msgs_tx as u32;
                end.writer_blocked = true;
                let kind = if last {
                    proto::KIND_CHAN_DATA_LAST
                } else {
                    proto::KIND_CHAN_DATA
                };
                let f = Frame::unicast(h.node, h.peer, kind, proto::chan_seq(h.id, frag_no), frag);
                end.tx_epoch += 1;
                let epoch = end.tx_epoch;
                end.tx_pending = Some(TxPending {
                    frame: f.clone(),
                    frag: frag_no,
                    sent_ns: now.as_ns(),
                    rexmit: false,
                    attempts: 0,
                    epoch,
                    busy_grants: 0,
                    timer: None,
                });
                w.block(now, h.node, BlockReason::Output);
                kernel::send_frame(w, s, f);
                arm_data_timer(w, s, h.node, h.id, frag_no, epoch, 0);
                Ok(())
            });
            pre?;
            let acked = ctx.wait_until(move |w, s| {
                let outcome = match w.node_mut(h.node).chans.get_mut(&h.id) {
                    None => Some(Err(ChanError::NodeDown)),
                    Some(end) => {
                        if end.ack_ready {
                            end.ack_ready = false;
                            end.writer_blocked = false;
                            Some(Ok(()))
                        } else if end.closed_remote {
                            end.writer_blocked = false;
                            clear_tx(end);
                            Some(Err(ChanError::PeerClosed))
                        } else if end.peer_down {
                            end.writer_blocked = false;
                            clear_tx(end);
                            Some(Err(ChanError::PeerDown))
                        } else if end.partitioned {
                            // The write failed; its fragment must not linger
                            // to be retransmitted by the heal resume, and its
                            // fragment number is handed back so an app-level
                            // retry reuses it — the receiver still expects
                            // it (or, if the data crossed before the cut,
                            // acks the retry as a duplicate).
                            end.writer_blocked = false;
                            clear_tx(end);
                            end.msgs_tx -= 1;
                            Some(Err(ChanError::Partitioned))
                        } else {
                            end.tx_wait.register(pid);
                            None
                        }
                    }
                };
                if outcome.is_some() {
                    // Unblock inside the wait closure (as `read` does): one
                    // lock acquisition instead of a trailing `with`.
                    let now = s.now();
                    w.unblock(now, h.node, BlockReason::Output);
                }
                outcome
            });
            // The writer was blocked; switching back in costs a context
            // switch.
            api::compute_ns(ctx, h.node, CpuCat::System, c.ctx_switch_ns);
            acked?;
        }
        Ok(())
    }

    /// Windowed-mode write (`chan_window > 1`): each fragment is accepted
    /// into the kernel's transmit window as soon as there is window space
    /// and receiver credit, so `write` returns without waiting for
    /// acknowledgements. The window-base timer retransmits and the
    /// cumulative/selective acks ([`on_wack`]) drain the window behind us;
    /// [`ChannelHandle::close`] flushes it.
    fn write_windowed(&self, ctx: &VCtx, payload: Payload, c: Calibration) -> ChanResult<()> {
        let h = *self;
        let pid = ctx.pid();
        for (frag, last) in fragment(payload) {
            // Syscall entry + protocol work for this fragment.
            api::compute_ns(ctx, h.node, CpuCat::System, c.chan_write_syscall_ns);
            let mut frag_slot = Some(frag);
            let mut blocked = false;
            let (res, was_blocked) = ctx.wait_until(move |w, s| {
                let now = s.now();
                let Some(end) = w.node_mut(h.node).chans.get_mut(&h.id) else {
                    if blocked {
                        w.unblock(now, h.node, BlockReason::Output);
                    }
                    return Some((Err(ChanError::NodeDown), blocked));
                };
                let err = if end.closed_local {
                    Some(ChanError::LocalClosed)
                } else if end.closed_remote {
                    Some(ChanError::PeerClosed)
                } else if end.peer_down {
                    Some(ChanError::PeerDown)
                } else if end.partitioned {
                    // Fragments already accepted into the window stay there
                    // (the heal resume retransmits them); this fragment was
                    // never accepted, so the write fails cleanly.
                    Some(ChanError::Partitioned)
                } else {
                    None
                };
                if let Some(e) = err {
                    if blocked {
                        end.writer_blocked = false;
                        w.unblock(now, h.node, BlockReason::Output);
                    }
                    return Some((Err(e), blocked));
                }
                let next = end.msgs_tx as u32 + 1;
                // Window space plus receiver credit; a writer whose window
                // is empty may send one fragment past the credit limit as a
                // zero-window probe (the receiver re-acks it with fresh
                // credit, or defers it and grants later).
                let can_send = (end.win.inflight.len() as u32) < end.cfg.window
                    && (next <= end.win.tx_limit || end.win.inflight.is_empty());
                if !can_send {
                    end.tx_wait.register(pid);
                    if !blocked {
                        blocked = true;
                        end.writer_blocked = true;
                        w.block(now, h.node, BlockReason::Output);
                    }
                    return None;
                }
                let p = frag_slot.take().expect("fragment transmitted twice");
                end.msgs_tx += 1;
                let frag_no = end.msgs_tx as u32;
                let kind = if last {
                    proto::KIND_CHAN_DATA_LAST
                } else {
                    proto::KIND_CHAN_DATA
                };
                let f = Frame::unicast(h.node, h.peer, kind, proto::chan_seq(h.id, frag_no), p);
                end.win.inflight.insert(
                    frag_no,
                    WinFrag {
                        frame: f.clone(),
                        sacked: false,
                        sent_ns: now.as_ns(),
                        rexmit: false,
                    },
                );
                let arm = end.win.timer.is_none();
                let epoch = end.win.epoch;
                let attempts = end.win.attempts;
                if blocked {
                    end.writer_blocked = false;
                    w.unblock(now, h.node, BlockReason::Output);
                }
                kernel::send_frame(w, s, f);
                if arm {
                    arm_win_timer(w, s, h.node, h.id, epoch, attempts);
                }
                Some((Ok(()), blocked))
            });
            if was_blocked {
                // The writer was parked awaiting window space; switching
                // back in costs a context switch.
                api::compute_ns(ctx, h.node, CpuCat::System, c.ctx_switch_ns);
            }
            res?;
        }
        Ok(())
    }

    /// Read one whole message, blocking until it arrives. Buffered messages
    /// remain readable after a close; once drained, reads fail.
    pub fn read(&self, ctx: &VCtx) -> ChanResult<Payload> {
        let h = *self;
        let c = ctx.with(|w, _| w.calib);
        api::compute_ns(ctx, h.node, CpuCat::System, c.chan_read_syscall_ns);
        let pid = ctx.pid();
        let mut blocked = false;
        let outcome = ctx.wait_until(move |w, s| {
            let now = s.now();
            let Some(end) = w.node_mut(h.node).chans.get_mut(&h.id) else {
                // The node crashed out from under us; the wake that
                // delivered us here came from the crash cleanup.
                if blocked {
                    w.unblock(now, h.node, BlockReason::Input);
                }
                return Some((Err(ChanError::NodeDown), blocked));
            };
            match end.pop_rx() {
                Some(p) => {
                    if blocked {
                        end.reader_blocked = false;
                        w.unblock(now, h.node, BlockReason::Input);
                    }
                    Some((Ok(p), blocked))
                }
                None if end.closed_local
                    || end.closed_remote
                    || end.peer_down
                    || end.partitioned =>
                {
                    let err = if end.closed_local {
                        ChanError::LocalClosed
                    } else if end.closed_remote {
                        ChanError::PeerClosed
                    } else if end.peer_down {
                        ChanError::PeerDown
                    } else {
                        ChanError::Partitioned
                    };
                    if blocked {
                        end.reader_blocked = false;
                        w.unblock(now, h.node, BlockReason::Input);
                    }
                    Some((Err(err), blocked))
                }
                None => {
                    end.rx_waiters.register(pid);
                    if !blocked {
                        blocked = true;
                        end.reader_blocked = true;
                        w.block(now, h.node, BlockReason::Input);
                    }
                    None
                }
            }
        });
        let (outcome, was_blocked) = outcome;
        if was_blocked {
            api::compute_ns(ctx, h.node, CpuCat::System, c.ctx_switch_ns);
        }
        let payload = outcome?;
        // Stop-and-wait copies from the side buffer into the user's buffer;
        // the windowed path hands the user the refcounted payload directly.
        if c.chan_window <= 1 {
            api::compute(
                ctx,
                h.node,
                CpuCat::System,
                crate::calib::Calibration::per_byte(c.copy_user_ns_per_byte, payload.len()),
            );
        }
        // Freeing the side buffer may release a deferred fragment (and its
        // withheld ack).
        ctx.with(move |w, s| release_deferred(w, s, h.node, h.id));
        Ok(payload)
    }

    /// Number of complete messages ready to read (non-blocking peek).
    /// Returns 0 if the channel no longer exists (node crashed).
    pub fn readable(&self, ctx: &VCtx) -> usize {
        let h = *self;
        ctx.with(move |w, _| {
            w.node(h.node)
                .chans
                .get(&h.id)
                .map(|e| e.rx.len())
                .unwrap_or(0)
        })
    }

    /// Close this end (§4: channels "are dynamically created and destroyed
    /// during program execution"). Sends a close notification to the peer;
    /// idempotent. Buffered inbound messages stay readable at the peer.
    pub fn close(&self, ctx: &VCtx) {
        let h = *self;
        let c = ctx.with(|w, _| w.calib);
        if c.chan_window > 1 {
            // Pipelined writes return before their acks; flush the transmit
            // window so a close never races data still in flight. Errors
            // (peer down/closed) end the flush — nothing left to wait for.
            let pid = ctx.pid();
            ctx.wait_until(move |w, _| {
                let Some(end) = w.node_mut(h.node).chans.get_mut(&h.id) else {
                    return Some(());
                };
                if end.win.inflight.is_empty() || end.closed_remote || end.peer_down {
                    Some(())
                } else {
                    end.tx_wait.register(pid);
                    None
                }
            });
        }
        api::compute_ns(ctx, h.node, CpuCat::System, c.chan_read_syscall_ns);
        ctx.with(move |w, s| {
            let Some(end) = w.node_mut(h.node).chans.get_mut(&h.id) else {
                return; // node crashed; nothing left to close
            };
            if end.closed_local {
                return; // idempotent
            }
            end.closed_local = true;
            if end.peer_down {
                return; // peer is gone; nobody to notify
            }
            let f = Frame::unicast(
                h.node,
                h.peer,
                proto::KIND_CHAN_CLOSE,
                proto::chan_seq(h.id, 0),
                Payload::Synthetic(0),
            );
            // Close notifications must survive loss or the peer blocks
            // forever: deliver reliably (receiver acks, sender retransmits).
            crate::fault::reliable_send(w, s, f);
        });
    }
}

/// Kernel handler: the peer closed its end.
pub fn on_close(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    crate::fault::ack_ctl(w, s, node, &f);
    let chan = proto::seq_chan(f.seq);
    let Some(end) = w.node_mut(node).chans.get_mut(&chan) else {
        // Close may race the open reply; stash like data frames. (A
        // retransmitted close after a crash wiped the end lands here too
        // and is dropped with the orphan list if the end never reappears.)
        w.node_mut(node).orphans.push(f);
        return;
    };
    if end.closed_remote {
        return; // duplicate close (our ack was lost)
    }
    end.closed_remote = true;
    clear_tx(end);
    // Wake everyone so blocked reads/writes observe the close.
    end.rx_waiters.wake_all(s, Wakeup::START);
    end.tx_wait.wake_all(s, Wakeup::START);
}

/// Multiplexed read (§4): block until a message is available on *any* of
/// `handles` (all local to `node`), then read it. Returns the index of the
/// handle that produced data and the message.
pub fn read_any(
    ctx: &VCtx,
    node: NodeAddr,
    handles: &[ChannelHandle],
) -> ChanResult<(usize, Payload)> {
    assert!(!handles.is_empty(), "read_any with no channels");
    assert!(
        handles.iter().all(|h| h.node == node),
        "read_any channels must share a node"
    );
    let c = ctx.with(|w, _| w.calib);
    api::compute_ns(ctx, node, CpuCat::System, c.chan_read_syscall_ns);
    let pid = ctx.pid();
    // `wait_until` runs its closure inline on this thread, so the handle
    // slice can be borrowed directly — no per-poll `to_vec`.
    let hs = handles;
    let mut blocked = false;
    let (outcome, was_blocked) = ctx.wait_until(move |w, s| {
        let now = s.now();
        let mut all_closed = true;
        for (i, h) in hs.iter().enumerate() {
            let Some(end) = w.node_mut(h.node).chans.get_mut(&h.id) else {
                // Our node crashed and wiped the channels.
                if blocked {
                    w.unblock(now, node, BlockReason::Input);
                }
                return Some((Err(ChanError::NodeDown), blocked));
            };
            if let Some(p) = end.pop_rx() {
                if blocked {
                    end.reader_blocked = false;
                    w.unblock(now, node, BlockReason::Input);
                }
                return Some((Ok((i, p)), blocked));
            }
            if !(end.closed_local || end.closed_remote || end.peer_down) {
                all_closed = false;
            }
        }
        if all_closed {
            if blocked {
                w.unblock(now, node, BlockReason::Input);
            }
            return Some((Err(ChanError::PeerClosed), blocked));
        }
        for h in hs {
            let end = w.node_mut(h.node).chans.get_mut(&h.id).expect("checked");
            end.rx_waiters.register(pid);
            if !blocked {
                end.reader_blocked = true;
            }
        }
        if !blocked {
            blocked = true;
            w.block(now, node, BlockReason::Input);
        }
        None
    });
    if was_blocked {
        api::compute_ns(ctx, node, CpuCat::System, c.ctx_switch_ns);
        // Clear the blocked marker on the channels that did not fire.
        ctx.with(|w, _| {
            for h in handles {
                if let Some(end) = w.node_mut(h.node).chans.get_mut(&h.id) {
                    end.reader_blocked = false;
                }
            }
        });
    }
    let (idx, payload) = outcome?;
    // As in `read`: the user-copy charge is a stop-and-wait cost only.
    if c.chan_window <= 1 {
        api::compute(
            ctx,
            node,
            CpuCat::System,
            crate::calib::Calibration::per_byte(c.copy_user_ns_per_byte, payload.len()),
        );
    }
    let h = handles[idx];
    ctx.with(move |w, s| release_deferred(w, s, h.node, h.id));
    Ok((idx, payload))
}

/// Base (attempt-0) retransmit timeout for `chan` on `node`: the fixed
/// `chan_ack_timeout_ns` until a gray fault arms adaptation and the end has
/// observed at least one round trip, then the Jacobson RTO
/// `clamp(SRTT + 4·RTTVAR, rto_floor_ns, rto_ceil_ns)`. The doubling
/// backoff (`base << attempts`) is layered on top either way.
fn rto_base_ns(w: &World, node: NodeAddr, chan: u32) -> u64 {
    let fixed = w.calib.chan_ack_timeout_ns;
    if !w.faults.gray_armed {
        return fixed;
    }
    let floor = w.calib.rto_floor_ns;
    let ceil = w.calib.rto_ceil_ns;
    let Some(end) = w.node(node).chans.get(&chan) else {
        return fixed;
    };
    let base = end.rtt.rto_ns(floor, ceil).unwrap_or(fixed);
    // Karn backoff persistence: keep a timed-out end's doubled base until a
    // valid sample replaces it, clamped to the configured ceiling.
    (base << end.rto_backoff.min(10)).clamp(floor, ceil.max(floor))
}

/// The widest adaptive RTO among `node`'s channel ends peered with `peer`,
/// or `None` when no such end has a round-trip sample yet. Feeds the
/// heartbeat-probe deadline (`crate::membership`): a probe sent because a
/// degraded channel exhausted its retries must outlive the degradation the
/// channel itself observed. Taking the max over ends is order-independent,
/// so sharded replays stay deterministic.
pub(crate) fn peer_rto_hint(w: &World, node: NodeAddr, peer: NodeAddr) -> Option<u64> {
    let floor = w.calib.rto_floor_ns;
    let ceil = w.calib.rto_ceil_ns;
    w.node(node)
        .chans
        .values()
        .filter(|end| end.peer == peer)
        .filter_map(|end| end.rtt.rto_ns(floor, ceil))
        .max()
}

/// Arm (or re-arm) the writer's ack-timeout timer for the outstanding
/// fragment. The timer is a no-op unless the exact `(frag, epoch, attempts)`
/// it was armed for is still outstanding when it fires — acks, closes,
/// crashes, and `KIND_CHAN_BUSY` resets all invalidate it by changing one of
/// the three. Timeouts double per retry; after `chan_max_retries` silent
/// retries the writer declares the peer down.
fn arm_data_timer(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    chan: u32,
    frag: u32,
    epoch: u32,
    attempts: u32,
) {
    let base = rto_base_ns(w, node, chan);
    let delay = base << attempts.min(10);
    let timer = s.schedule_cancellable_in(desim::SimDuration::from_ns(delay), move |w, s| {
        if !w.node(node).up {
            return;
        }
        let max = w.calib.chan_max_retries;
        enum Next {
            Stale,
            GiveUp(NodeAddr),
            Resend(Frame),
        }
        let next = {
            let gray = w.faults.gray_armed;
            let Some(end) = w.node_mut(node).chans.get_mut(&chan) else {
                return; // channel gone (crash wiped it)
            };
            let next = match end.tx_pending.as_mut() {
                Some(tp) if tp.frag == frag && tp.epoch == epoch && tp.attempts == attempts => {
                    if tp.attempts >= max {
                        Next::GiveUp(end.peer)
                    } else {
                        tp.attempts += 1;
                        tp.rexmit = true;
                        Next::Resend(tp.frame.clone())
                    }
                }
                _ => Next::Stale, // acked, or a newer timer chain owns it
            };
            if gray && matches!(next, Next::Resend(_)) {
                end.rto_backoff = (end.rto_backoff + 1).min(10);
            }
            next
        };
        match next {
            Next::Stale => {}
            Next::GiveUp(peer) => {
                let rideout = w.net.overload_active();
                if (w.net.topology().generation() > 0 || rideout || w.faults.gray_armed)
                    && w.node(peer).up
                {
                    // The partition plane is active (or the fabric is under
                    // an overload budget that may be shedding our data, or a
                    // gray fault may be delaying acks past the retry chain)
                    // and the peer's node is alive: the silence may be a
                    // routing outage, overload, or degradation rather than a
                    // crash. Park the fragment (the exhausted timer is
                    // already dead) and let a heartbeat probe — never shed —
                    // decide between resume and peer-down.
                    if rideout {
                        w.faults.stats.overload_rideouts += 1;
                    }
                    crate::membership::suspect(w, s, node, peer);
                } else {
                    let end = w
                        .node_mut(node)
                        .chans
                        .get_mut(&chan)
                        .expect("present just above");
                    end.tx_pending = None;
                    end.peer_down = true;
                    end.rx_waiters.wake_all(s, Wakeup::START);
                    end.tx_wait.wake_all(s, Wakeup::START);
                    w.faults.stats.peer_down_events += 1;
                }
            }
            Next::Resend(f) => {
                w.faults.stats.retransmits += 1;
                kernel::send_frame(w, s, f);
                arm_data_timer(w, s, node, chan, frag, epoch, attempts + 1);
            }
        }
    });
    // Hand the disarm handle to the outstanding fragment it guards.
    if let Some(end) = w.node_mut(node).chans.get_mut(&chan) {
        if let Some(tp) = end.tx_pending.as_mut() {
            if tp.frag == frag && tp.epoch == epoch {
                tp.timer = Some(timer);
            }
        }
    }
}

/// Kernel handler: a channel data fragment arrived at `node`.
///
/// Under loss, the same fragment may arrive more than once (the writer
/// retransmits when its ack is lost or late). The receiver is the dedup
/// point: `rx_next_frag` says which fragment is next in the stream, so
/// anything earlier is re-acked without re-delivery and anything currently
/// being copied (`accepting`) or deferred is dropped as a duplicate.
pub fn on_data(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame, last: bool) {
    let chan = proto::seq_chan(f.seq);
    let windowed = match w.node(node).chans.get(&chan) {
        Some(end) => end.cfg.window > 1,
        None => w.calib.chan_window > 1,
    };
    if windowed {
        return on_data_windowed(w, s, node, f, last);
    }
    let frag = proto::seq_frag(f.seq);
    let src = f.src;
    let seq = f.seq;
    enum Act {
        Orphan,
        ReAck,
        DropAhead,
        DropDup,
        ReBusy,
        Defer,
        Accept,
    }
    let act = match w.node(node).chans.get(&chan) {
        // Open-reply race: the peer learned about the channel before we did.
        None => Act::Orphan,
        Some(end) => {
            if frag < end.rx_next_frag {
                // Already committed: the ack was lost or the retransmission
                // crossed it in flight.
                Act::ReAck
            } else if frag > end.rx_next_frag {
                // Stop-and-wait never runs ahead; a frame from the future
                // can only be damage we failed to detect. Drop it.
                Act::DropAhead
            } else if end.accepting == Some(frag) {
                // The first copy of this fragment is mid-copy; its ack is
                // coming.
                Act::DropDup
            } else if !end.deferred.is_empty() {
                // Already deferred (side buffers full): the BUSY we sent was
                // lost, so the writer's timer fired. Tell it again.
                Act::ReBusy
            } else if end.sidebuf_used() >= w.calib.chan_side_buffers {
                // Side buffers full: hold the fragment, withhold the ack,
                // and send BUSY so the stall is not mistaken for loss. The
                // writer stays blocked — this is the protocol's flow
                // control.
                Act::Defer
            } else {
                Act::Accept
            }
        }
    };
    match act {
        Act::Orphan => w.node_mut(node).orphans.push(f),
        Act::ReAck => {
            w.faults.stats.dups_suppressed += 1;
            let ack = Frame::unicast(node, src, proto::KIND_CHAN_ACK, seq, Payload::Synthetic(0));
            kernel::send_frame(w, s, ack);
        }
        Act::DropAhead | Act::DropDup => {
            w.faults.stats.dups_suppressed += 1;
        }
        Act::ReBusy => {
            w.faults.stats.dups_suppressed += 1;
            let busy = Frame::unicast(node, src, proto::KIND_CHAN_BUSY, seq, Payload::Synthetic(0));
            kernel::send_frame(w, s, busy);
        }
        Act::Defer => {
            w.node_mut(node)
                .chans
                .get_mut(&chan)
                .expect("matched just above")
                .deferred
                .push_back(f);
            w.faults.stats.busy_sent += 1;
            let busy = Frame::unicast(node, src, proto::KIND_CHAN_BUSY, seq, Payload::Synthetic(0));
            kernel::send_frame(w, s, busy);
        }
        Act::Accept => accept_fragment(w, s, node, f, last),
    }
}

/// Copy a fragment into the side buffer (charged), then commit it and send
/// the ack. Marks the fragment `accepting` for the duration of the copy so
/// a duplicate arriving mid-copy is not committed twice.
fn accept_fragment(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame, last: bool) {
    let chan = proto::seq_chan(f.seq);
    if let Some(end) = w.node_mut(node).chans.get_mut(&chan) {
        end.accepting = Some(proto::seq_frag(f.seq));
    }
    let c = w.calib;
    let cost = c.chan_sidebuf_ns_per_byte * u64::from(f.payload.len()) + c.chan_ack_gen_ns;
    let now = s.now();
    let end_t = w.charge(now, node, CpuCat::System, desim::SimDuration::from_ns(cost));
    s.schedule_in(end_t - now, move |w: &mut World, s| {
        commit_fragment(w, s, node, f, last);
    });
}

fn commit_fragment(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame, last: bool) {
    let chan = proto::seq_chan(f.seq);
    let src = f.src;
    let seq = f.seq;
    let pool = w.payload_pool.clone();
    {
        let Some(end) = w.node_mut(node).chans.get_mut(&chan) else {
            return; // the node crashed while the copy charge was in flight
        };
        end.accepting = None;
        end.rx_next_frag = proto::seq_frag(seq) + 1;
        end.asm.push(f.payload);
        if last {
            let msg = end.asm.take(&pool);
            end.rx.push_back(msg);
            end.msgs_rx += 1;
            end.rx_waiters.wake_all(s, Wakeup::START);
        }
    }
    // Kernel-level acknowledgement back to the writer's kernel.
    let ack = Frame::unicast(node, src, proto::KIND_CHAN_ACK, seq, Payload::Synthetic(0));
    kernel::send_frame(w, s, ack);
}

/// Kernel handler: a channel ack arrived at the writer's node.
pub fn on_ack(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    let chan = proto::seq_chan(f.seq);
    let now_ns = s.now().as_ns();
    let gray = w.faults.gray_armed;
    let Some(end) = w.node_mut(node).chans.get_mut(&chan) else {
        return; // crash or close raced the ack
    };
    let Some(tp) = end.tx_pending.as_ref() else {
        return; // duplicate ack for an already-acknowledged fragment
    };
    if tp.frag != proto::seq_frag(f.seq) {
        return;
    }
    // Karn's rule: only a never-retransmitted fragment's ack is an
    // unambiguous round-trip sample.
    if gray && !tp.rexmit && tp.attempts == 0 {
        let rtt = now_ns.saturating_sub(tp.sent_ns);
        end.rtt.sample(rtt);
        end.rto_backoff = 0;
    }
    clear_tx(end);
    end.ack_ready = true;
    end.tx_wait.wake_all(s, Wakeup::START);
}

/// Kernel handler: the receiver's side buffers are full (`KIND_CHAN_BUSY`).
/// The outstanding fragment was *received*, not lost: stop counting silence
/// against the retry budget and restart the timer chain from zero. Grants
/// are capped ([`MAX_BUSY_GRANTS`]) so a receiver that never drains cannot
/// hold the writer forever.
pub fn on_busy(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    let chan = proto::seq_chan(f.seq);
    let frag = proto::seq_frag(f.seq);
    let epoch = {
        let Some(end) = w.node_mut(node).chans.get_mut(&chan) else {
            return;
        };
        match end.tx_pending.as_mut() {
            Some(tp) if tp.frag == frag && tp.busy_grants < MAX_BUSY_GRANTS => {
                tp.busy_grants += 1;
                tp.attempts = 0;
                // The silence-counting chain is being replaced; disarm it.
                if let Some(t) = tp.timer.take() {
                    t.cancel();
                }
            }
            _ => return, // stale: already acked, or grants exhausted
        }
        end.tx_epoch += 1;
        let e = end.tx_epoch;
        if let Some(tp) = end.tx_pending.as_mut() {
            tp.epoch = e;
        }
        e
    };
    arm_data_timer(w, s, node, chan, frag, epoch, 0);
}

// ---------------------------------------------------------------------------
// Windowed mode (`chan_window > 1`): credit-based pipelining. See the module
// docs and DESIGN.md §10. None of this runs at W = 1.
// ---------------------------------------------------------------------------

/// Windowed-mode data handler: dedup against the cumulative ack, the reorder
/// buffer, and in-flight copies; drop (and re-ack) fragments beyond the
/// reorder bound or the credit pool; accept the rest out of order.
fn on_data_windowed(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame, last: bool) {
    let chan = proto::seq_chan(f.seq);
    let frag = proto::seq_frag(f.seq);
    enum Act {
        Orphan,
        ReAck,
        DropDup,
        DropOverflow,
        Accept,
    }
    let act = match w.node(node).chans.get(&chan) {
        // Open-reply race: the peer learned about the channel before we did.
        None => Act::Orphan,
        Some(end) => {
            if frag < end.rx_next_frag {
                // Already committed; the ack was lost. Re-advertise it.
                Act::ReAck
            } else if end.winrx.copying.contains(&frag) || end.winrx.ready.contains_key(&frag) {
                // Duplicate of a fragment we already hold out of order.
                Act::DropDup
            } else if frag >= end.rx_next_frag + end.cfg.reorder_frags || end.win_avail() == 0 {
                // Beyond the reorder bound or out of credit: drop it and
                // send a duplicate ack so the writer relearns the window.
                Act::DropOverflow
            } else {
                Act::Accept
            }
        }
    };
    match act {
        Act::Orphan => w.node_mut(node).orphans.push(f),
        Act::ReAck => {
            w.faults.stats.dups_suppressed += 1;
            send_wack(w, s, node, chan);
        }
        Act::DropDup => {
            w.faults.stats.dups_suppressed += 1;
        }
        Act::DropOverflow => {
            w.faults.stats.busy_sent += 1;
            send_wack(w, s, node, chan);
        }
        Act::Accept => accept_win_fragment(w, s, node, f, last),
    }
}

/// Accept a windowed fragment: pin its refcounted payload (no side-buffer
/// copy — the kernel keeps a reference to the arrival buffer, so the only
/// charge is ack generation), then commit it. While the charge is in flight
/// the fragment sits in `copying`, which both dedups retransmissions and
/// holds its credit slot.
fn accept_win_fragment(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame, last: bool) {
    let chan = proto::seq_chan(f.seq);
    if let Some(end) = w.node_mut(node).chans.get_mut(&chan) {
        end.winrx.copying.insert(proto::seq_frag(f.seq));
    }
    let c = w.calib;
    let cost = c.chan_ack_gen_ns;
    let now = s.now();
    let end_t = w.charge(now, node, CpuCat::System, desim::SimDuration::from_ns(cost));
    s.schedule_in(end_t - now, move |w: &mut World, s| {
        commit_win_fragment(w, s, node, f, last);
    });
}

/// Move a copied fragment into the reorder buffer, drain everything that is
/// now in order into the reassembler (completed messages go to `rx`,
/// zero-copy), and acknowledge with the updated cumulative/selective state.
fn commit_win_fragment(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame, last: bool) {
    let chan = proto::seq_chan(f.seq);
    let frag = proto::seq_frag(f.seq);
    let pool = w.payload_pool.clone();
    {
        let Some(end) = w.node_mut(node).chans.get_mut(&chan) else {
            return; // the node crashed while the copy charge was in flight
        };
        if !end.winrx.copying.remove(&frag) {
            return; // crash cleanup raced the commit
        }
        end.winrx.ready.insert(frag, (f.payload, last));
        // In-order drain: commit every consecutive fragment starting at the
        // stream position. Committed fragments hold credit (`held`) until a
        // reader consumes their message.
        while let Some((p, l)) = end.winrx.ready.remove(&end.rx_next_frag) {
            end.rx_next_frag += 1;
            end.winrx.held += 1;
            end.asm.push(p);
            if l {
                let frags = end.asm.frags() as u32;
                let msg = end.asm.take(&pool);
                end.rx.push_back(msg);
                end.winrx.rx_frag_counts.push_back(frags);
                end.msgs_rx += 1;
                end.rx_waiters.wake_all(s, Wakeup::START);
            }
        }
    }
    send_wack(w, s, node, chan);
}

/// Send a windowed ack: cumulative ack in the seq's fragment field, plus a
/// selective-ack bitmap of out-of-order holdings and the current credit
/// grant. Advertising zero credit sets `starved` so the next reader-side
/// release pushes a fresh grant.
fn send_wack(w: &mut World, s: &mut VSched, node: NodeAddr, chan: u32) {
    let Some(end) = w.node_mut(node).chans.get_mut(&chan) else {
        return;
    };
    let cum = end.rx_next_frag - 1;
    let mut sack = 0u32;
    for &frag in end.winrx.ready.keys().chain(end.winrx.copying.iter()) {
        let off = frag.wrapping_sub(cum + 1);
        if off < 32 {
            sack |= 1 << off;
        }
    }
    let avail = end.win_avail();
    end.winrx.starved = avail == 0;
    let peer = end.peer;
    let f = Frame::unicast(
        node,
        peer,
        proto::KIND_CHAN_WACK,
        proto::chan_seq(chan, cum),
        proto::pack_wack(sack, avail),
    );
    kernel::send_frame(w, s, f);
}

/// Wake a parked windowed writer only when it can actually transmit, and —
/// hysteresis — only when the window has drained to half empty (or fully
/// empty, or credit just reopened a stalled stream). Each wake costs the
/// writer a context switch, so acking fragment-by-fragment must not wake
/// fragment-by-fragment.
fn maybe_wake_writer(end: &mut ChanEnd, s: &mut VSched, limit_opened: bool) {
    let next = end.msgs_tx as u32 + 1;
    let space = end.cfg.window.saturating_sub(end.win.inflight.len() as u32);
    let can_send = space > 0 && (next <= end.win.tx_limit || end.win.inflight.is_empty());
    if can_send
        && (end.win.inflight.is_empty()
            || space * 2 >= end.cfg.window
            || (limit_opened && next <= end.win.tx_limit))
    {
        end.tx_wait.wake_all(s, Wakeup::START);
    }
}

/// Kernel handler: a windowed ack (`KIND_CHAN_WACK`) arrived at the writer.
pub fn on_wack(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    let chan = proto::seq_chan(f.seq);
    let cum = proto::seq_frag(f.seq);
    let (sack, credit) = proto::parse_wack(&f.payload);
    let now_ns = s.now().as_ns();
    let gray = w.faults.gray_armed;
    let rearm_epoch = {
        let Some(end) = w.node_mut(node).chans.get_mut(&chan) else {
            return; // crash or close raced the ack
        };
        if end.cfg.window <= 1 {
            return; // defensive: stop-and-wait ends never use this kind
        }
        // Cumulative ack: everything at or below `cum` is delivered. The
        // *newest* never-retransmitted fragment it drains is the one
        // unambiguous round-trip sample this ack carries (Karn's rule —
        // older drained fragments may have been covered by a lost earlier
        // ack, so their elapsed time overestimates the path).
        let before = end.win.inflight.len();
        let mut rtt_sample = None;
        while let Some((&k, _)) = end.win.inflight.iter().next() {
            if k > cum {
                break;
            }
            if let Some(fr) = end.win.inflight.remove(&k) {
                if gray && !fr.rexmit {
                    rtt_sample = Some(now_ns.saturating_sub(fr.sent_ns));
                }
            }
        }
        if let Some(rtt) = rtt_sample {
            end.rtt.sample(rtt);
            end.rto_backoff = 0;
        }
        let progress = end.win.inflight.len() < before;
        // Selective acks: skip these on retransmit timeouts.
        let mut sacked_new = false;
        for i in 0..32u32 {
            if sack & (1 << i) != 0 {
                if let Some(fr) = end.win.inflight.get_mut(&(cum + 1 + i)) {
                    if !fr.sacked {
                        fr.sacked = true;
                        sacked_new = true;
                    }
                }
            }
        }
        // The transmit limit is monotonic (a reordered stale ack must not
        // shrink it): `cum + credit` only ever ratchets up.
        let new_limit = cum.saturating_add(credit);
        let limit_opened = new_limit > end.win.tx_limit;
        if limit_opened {
            end.win.tx_limit = new_limit;
        }
        if progress || sacked_new {
            // Forward progress: reset the retry budget and restart the
            // window-base timer chain.
            end.win.attempts = 0;
            end.win.busy_grants = 0;
            end.win.epoch += 1;
            if let Some(t) = end.win.timer.take() {
                t.cancel();
            }
            maybe_wake_writer(end, s, limit_opened);
            if end.win.inflight.is_empty() {
                None
            } else {
                Some(end.win.epoch)
            }
        } else if credit == 0 && !end.win.inflight.is_empty() {
            // Zero credit, no progress: the receiver is full, not the
            // network lossy — the windowed analog of `KIND_CHAN_BUSY`.
            // Stop counting silence against the retry budget, but cap the
            // grants so a reader that never drains cannot park us forever.
            if end.win.busy_grants >= MAX_BUSY_GRANTS {
                return;
            }
            end.win.busy_grants += 1;
            end.win.attempts = 0;
            end.win.epoch += 1;
            if let Some(t) = end.win.timer.take() {
                t.cancel();
            }
            Some(end.win.epoch)
        } else {
            // Duplicate ack carrying nothing new; it may still reopen the
            // credit limit for a stalled writer.
            if limit_opened {
                maybe_wake_writer(end, s, true);
            }
            None
        }
    };
    if let Some(epoch) = rearm_epoch {
        arm_win_timer(w, s, node, chan, epoch, 0);
    }
}

/// Arm (or re-arm) the windowed retransmit timer. One timer guards the whole
/// window: on expiry every unsacked in-flight fragment is retransmitted in
/// order (go-back-N with selective-ack skip), with the same doubling backoff
/// and `chan_max_retries` give-up as stop-and-wait. Acks bump the epoch, so
/// stale timers die on mismatch.
fn arm_win_timer(
    w: &mut World,
    s: &mut VSched,
    node: NodeAddr,
    chan: u32,
    epoch: u32,
    attempts: u32,
) {
    let base = rto_base_ns(w, node, chan);
    let delay = base << attempts.min(10);
    let timer = s.schedule_cancellable_in(desim::SimDuration::from_ns(delay), move |w, s| {
        if !w.node(node).up {
            return;
        }
        let max = w.calib.chan_max_retries;
        enum Next {
            Stale,
            GiveUp(NodeAddr),
            Resend(Vec<Frame>),
        }
        let next = {
            let gray = w.faults.gray_armed;
            let Some(end) = w.node_mut(node).chans.get_mut(&chan) else {
                return; // channel gone (crash wiped it)
            };
            if end.win.epoch != epoch || end.win.attempts != attempts || end.win.inflight.is_empty()
            {
                Next::Stale // acked, or a newer timer chain owns the window
            } else if end.win.attempts >= max {
                Next::GiveUp(end.peer)
            } else {
                end.win.attempts += 1;
                if gray {
                    end.rto_backoff = (end.rto_backoff + 1).min(10);
                }
                Next::Resend(
                    end.win
                        .inflight
                        .values_mut()
                        .filter(|fr| !fr.sacked)
                        .map(|fr| {
                            fr.rexmit = true;
                            fr.frame.clone()
                        })
                        .collect(),
                )
            }
        };
        match next {
            Next::Stale => {}
            Next::GiveUp(peer) => {
                let rideout = w.net.overload_active();
                if (w.net.topology().generation() > 0 || rideout || w.faults.gray_armed)
                    && w.node(peer).up
                {
                    // Alive peer + active partition plane, overload budget,
                    // or possible gray degradation: keep the in-flight
                    // window parked for a resume retransmit and hand the
                    // verdict to a heartbeat probe (see arm_data_timer).
                    if rideout {
                        w.faults.stats.overload_rideouts += 1;
                    }
                    crate::membership::suspect(w, s, node, peer);
                } else {
                    let end = w
                        .node_mut(node)
                        .chans
                        .get_mut(&chan)
                        .expect("present just above");
                    clear_tx(end);
                    end.peer_down = true;
                    end.rx_waiters.wake_all(s, Wakeup::START);
                    end.tx_wait.wake_all(s, Wakeup::START);
                    w.faults.stats.peer_down_events += 1;
                }
            }
            Next::Resend(frames) => {
                w.faults.stats.retransmits += frames.len() as u64;
                for f in frames {
                    kernel::send_frame(w, s, f);
                }
                arm_win_timer(w, s, node, chan, epoch, attempts + 1);
            }
        }
    });
    // Hand the disarm handle to the window it guards.
    if let Some(end) = w.node_mut(node).chans.get_mut(&chan) {
        if end.win.epoch == epoch && !end.win.inflight.is_empty() {
            end.win.timer = Some(timer);
        }
    }
}

/// Reader-side credit release (windowed): if the last advertised grant was
/// zero, a freed message must push a fresh credit update or the writer stays
/// stalled forever.
fn release_win_credit(w: &mut World, s: &mut VSched, node: NodeAddr, chan: u32) {
    let send = match w.node(node).chans.get(&chan) {
        Some(end) => end.winrx.starved && end.win_avail() > 0,
        None => false,
    };
    if send {
        send_wack(w, s, node, chan);
    }
}

/// After a reader frees a side buffer, accept one deferred fragment (and
/// release its withheld ack).
fn release_deferred(w: &mut World, s: &mut VSched, node: NodeAddr, chan: u32) {
    let Some(end) = w.node(node).chans.get(&chan) else {
        return;
    };
    if end.cfg.window > 1 {
        return release_win_credit(w, s, node, chan);
    }
    if end.deferred.is_empty() || end.sidebuf_used() >= w.calib.chan_side_buffers {
        return;
    }
    let f = w
        .node_mut(node)
        .chans
        .get_mut(&chan)
        .expect("checked")
        .deferred
        .pop_front()
        .expect("checked");
    let last = f.kind == proto::KIND_CHAN_DATA_LAST;
    accept_fragment(w, s, node, f, last);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Calibration;
    use crate::world::VorxBuilder;
    use bytes::Bytes;

    #[test]
    fn fragment_splits_and_flags_last() {
        let frags = fragment(Payload::Synthetic(2500));
        let lens: Vec<u32> = frags.iter().map(|(p, _)| p.len()).collect();
        assert_eq!(lens, vec![1024, 1024, 452]);
        let lasts: Vec<bool> = frags.iter().map(|(_, l)| *l).collect();
        assert_eq!(lasts, vec![false, false, true]);

        let frags = fragment(Payload::Data(Bytes::from(vec![7u8; 1500])));
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[0].0.len(), 1024);
        assert!(frags[1].1);
    }

    #[test]
    fn assembler_concatenates_data() {
        let mut asm = PayloadAsm::default();
        asm.push(Payload::copy_from(&[1, 2]));
        asm.push(Payload::copy_from(&[3]));
        assert_eq!(asm.frags(), 2);
        let p = asm.take(&PayloadPool::default());
        assert_eq!(p.bytes().unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(asm.frags(), 0);
    }

    #[test]
    fn assembler_sums_synthetic() {
        let mut asm = PayloadAsm::default();
        asm.push(Payload::Synthetic(1024));
        asm.push(Payload::Synthetic(476));
        assert_eq!(asm.take(&PayloadPool::default()).len(), 1500);
    }

    #[test]
    fn open_write_read_round_trip() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1:writer", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "pipe");
            ch.write(&ctx, Payload::copy_from(b"hello vorx")).unwrap();
        });
        v.spawn("n2:reader", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "pipe");
            let msg = ch.read(&ctx).unwrap();
            assert_eq!(msg.bytes().unwrap().as_ref(), b"hello vorx");
        });
        v.run_all();
    }

    #[test]
    fn open_rendezvous_connects_matching_names_only() {
        let mut v = VorxBuilder::single_cluster(5).build();
        for (node, name, msg) in [(1u32, "a", b"AA"), (3, "b", b"BB")] {
            v.spawn(format!("n{node}:w"), move |ctx| {
                let ch = open(&ctx, NodeAddr(node), name);
                ch.write(&ctx, Payload::copy_from(msg)).unwrap();
            });
        }
        for (node, name, expect) in [(2u32, "a", b"AA"), (4, "b", b"BB")] {
            v.spawn(format!("n{node}:r"), move |ctx| {
                let ch = open(&ctx, NodeAddr(node), name);
                let m = ch.read(&ctx).unwrap();
                assert_eq!(m.bytes().unwrap().as_ref(), expect);
            });
        }
        v.run_all();
    }

    #[test]
    fn large_write_is_fragmented_and_reassembled() {
        let mut v = VorxBuilder::single_cluster(3).build();
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let expect = data.clone();
        v.spawn("n1:w", move |ctx| {
            let ch = open(&ctx, NodeAddr(1), "big");
            ch.write(&ctx, Payload::Data(Bytes::from(data))).unwrap();
        });
        v.spawn("n2:r", move |ctx| {
            let ch = open(&ctx, NodeAddr(2), "big");
            let m = ch.read(&ctx).unwrap();
            assert_eq!(m.bytes().unwrap().as_ref(), &expect[..]);
        });
        v.run_all();
    }

    #[test]
    fn stop_and_wait_preserves_order_across_many_messages() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1:w", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "seq");
            for i in 0..20u8 {
                ch.write(&ctx, Payload::copy_from(&[i])).unwrap();
            }
        });
        v.spawn("n2:r", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "seq");
            for i in 0..20u8 {
                let m = ch.read(&ctx).unwrap();
                assert_eq!(m.bytes().unwrap().as_ref(), &[i]);
            }
        });
        v.run_all();
    }

    #[test]
    fn bidirectional_traffic_on_one_channel() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1:pinger", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "pp");
            for i in 0..5u8 {
                ch.write(&ctx, Payload::copy_from(&[i])).unwrap();
                let r = ch.read(&ctx).unwrap();
                assert_eq!(r.bytes().unwrap().as_ref(), &[i + 100]);
            }
        });
        v.spawn("n2:ponger", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "pp");
            for i in 0..5u8 {
                let r = ch.read(&ctx).unwrap();
                assert_eq!(r.bytes().unwrap().as_ref(), &[i]);
                ch.write(&ctx, Payload::copy_from(&[i + 100])).unwrap();
            }
        });
        v.run_all();
    }

    #[test]
    fn read_any_picks_whichever_channel_has_data() {
        let mut v = VorxBuilder::single_cluster(4).build();
        v.spawn("n1:w1", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "mux-a");
            ctx.sleep(desim::SimDuration::from_ms(5));
            ch.write(&ctx, Payload::copy_from(b"from-a")).unwrap();
        });
        v.spawn("n2:w2", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "mux-b");
            ch.write(&ctx, Payload::copy_from(b"from-b")).unwrap();
        });
        v.spawn("n3:mux", |ctx| {
            let a = open(&ctx, NodeAddr(3), "mux-a");
            let b = open(&ctx, NodeAddr(3), "mux-b");
            let (i1, m1) = read_any(&ctx, NodeAddr(3), &[a, b]).unwrap();
            let (i2, m2) = read_any(&ctx, NodeAddr(3), &[a, b]).unwrap();
            // b's writer is not delayed, so it arrives first.
            assert_eq!(i1, 1);
            assert_eq!(m1.bytes().unwrap().as_ref(), b"from-b");
            assert_eq!(i2, 0);
            assert_eq!(m2.bytes().unwrap().as_ref(), b"from-a");
        });
        v.run_all();
    }

    #[test]
    fn slow_reader_stalls_writer_via_withheld_acks() {
        // With instant software costs, a writer burst can outrun the reader;
        // the side-buffer limit (8) plus withheld acks must bound the
        // writer's lead rather than dropping anything.
        let mut v = VorxBuilder::single_cluster(3)
            .calibration(Calibration::instant())
            .build();
        v.spawn("n1:w", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "stall");
            for i in 0..30u8 {
                ch.write(&ctx, Payload::copy_from(&[i])).unwrap();
            }
        });
        v.spawn("n2:r", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "stall");
            for i in 0..30u8 {
                ctx.sleep(desim::SimDuration::from_ms(1)); // slow consumer
                let m = ch.read(&ctx).unwrap();
                assert_eq!(m.bytes().unwrap().as_ref(), &[i]);
            }
        });
        v.run_all();
    }

    #[test]
    fn message_counters_track_both_directions() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1:w", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "count");
            ch.write(&ctx, Payload::Synthetic(100)).unwrap();
            ch.write(&ctx, Payload::Synthetic(100)).unwrap();
            let _ = ch.read(&ctx).unwrap();
        });
        v.spawn("n2:r", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "count");
            let _ = ch.read(&ctx).unwrap();
            let _ = ch.read(&ctx).unwrap();
            ch.write(&ctx, Payload::Synthetic(10)).unwrap();
        });
        v.run_all();
        let w = v.world();
        let end1 = w.nodes[1].chans.values().next().unwrap();
        let end2 = w.nodes[2].chans.values().next().unwrap();
        assert_eq!(end1.msgs_tx, 2);
        assert_eq!(end1.msgs_rx, 1);
        assert_eq!(end2.msgs_rx, 2);
        assert_eq!(end2.msgs_tx, 1);
    }
}

// ---------------------------------------------------------------------------
// Server name reuse (§4): "a mechanism that allows servers to continually
// reuse a single channel name."
// ---------------------------------------------------------------------------

/// State of one listening name on a node.
#[derive(Debug, Default)]
pub struct ListenState {
    /// Registration acknowledged by the object manager.
    pub acked: bool,
    /// Registration retransmissions so far (stale timers key off this).
    pub attempts: u32,
    /// The registration request's token, kept for retransmission.
    pub token: u64,
    /// The armed registration-retransmit timer, disarmed on `SERVE_ACK`.
    pub timer: Option<desim::TimerHandle>,
    /// Accepted-but-unclaimed connections: `(channel id, client node)`.
    pub pending: std::collections::VecDeque<(u32, NodeAddr)>,
    /// Processes blocked in `accept` (or awaiting the registration ack).
    pub waiters: WaitSet,
}

/// A server-side listening name. Every client `open` of the name yields a
/// *new* channel, delivered through [`Listener::accept`]; the name itself
/// stays registered.
#[derive(Debug, Clone)]
pub struct Listener {
    /// The server's node.
    pub node: NodeAddr,
    /// The listening name.
    pub name: String,
}

/// Register `name` as a server name on `node` and wait until the object
/// manager acknowledges the registration.
///
/// Note: plain `open`s are symmetric, so two clients that open the name
/// *before* the server registers will pair with each other (the ordinary
/// rendezvous). Register the server before starting clients, or use a name
/// only clients-of-this-server open.
pub fn listen(ctx: &VCtx, node: NodeAddr, name: &str) -> Listener {
    let c = ctx.with(|w, _| w.calib);
    api::compute_ns(ctx, node, CpuCat::System, c.chan_read_syscall_ns);
    let name_owned = name.to_string();
    ctx.with(move |w, s| {
        let prev = w
            .node_mut(node)
            .listeners
            .insert(name_owned.clone(), ListenState::default());
        assert!(
            prev.is_none(),
            "name {name_owned:?} already listening on {node}"
        );
        let mgr = crate::objmgr::manager_for(w, &name_owned);
        let token = w.token();
        w.node_mut(node)
            .listeners
            .get_mut(&name_owned)
            .expect("just inserted")
            .token = token;
        let f = Frame::unicast(
            node,
            mgr,
            proto::KIND_SERVE_REQ,
            token,
            proto::pack_open_req(&name_owned),
        );
        kernel::send_frame(w, s, f);
        arm_listen_timer(w, s, node, name_owned, 0);
    });
    let pid = ctx.pid();
    let name_owned = name.to_string();
    ctx.wait_until(move |w, _| {
        let Some(ls) = w.node_mut(node).listeners.get_mut(&name_owned) else {
            return Some(()); // our node crashed; the registration died with it
        };
        if ls.acked {
            Some(())
        } else {
            ls.waiters.register(pid);
            None
        }
    });
    Listener {
        node,
        name: name.to_string(),
    }
}

/// Retransmit an unacknowledged listen registration with doubling timeouts.
/// The `SERVE_ACK` is a plain frame: if it is lost, the next retransmission
/// here makes the manager re-ack (registrations are idempotent per token).
/// After `open_max_retries` the chain gives up silently — an unreachable
/// manager leaves the listener parked (see DESIGN.md on non-recoverable
/// paths).
fn arm_listen_timer(w: &mut World, s: &mut VSched, node: NodeAddr, name: String, attempts: u32) {
    let delay = w.calib.open_timeout_ns << attempts.min(10);
    let name_key = name.clone();
    let timer = s.schedule_cancellable_in(desim::SimDuration::from_ns(delay), move |w, s| {
        if !w.node(node).up {
            return;
        }
        let max = w.calib.open_max_retries;
        let token = {
            let Some(ls) = w.node_mut(node).listeners.get_mut(&name) else {
                return; // crash wiped the listener
            };
            if ls.acked || ls.attempts != attempts {
                return; // acked, or a newer timer owns the chain
            }
            if ls.attempts >= max {
                return; // give up
            }
            ls.attempts += 1;
            ls.token
        };
        let mgr = crate::objmgr::manager_for(w, &name);
        w.faults.stats.retransmits += 1;
        let f = Frame::unicast(
            node,
            mgr,
            proto::KIND_SERVE_REQ,
            token,
            proto::pack_open_req(&name),
        );
        kernel::send_frame(w, s, f);
        arm_listen_timer(w, s, node, name, attempts + 1);
    });
    if let Some(ls) = w.node_mut(node).listeners.get_mut(&name_key) {
        if !ls.acked {
            ls.timer = Some(timer);
        }
    }
}

impl Listener {
    /// Block until the next client opens this name; returns the fresh
    /// channel to that client.
    pub fn accept(&self, ctx: &VCtx) -> ChannelHandle {
        let node = self.node;
        let name = self.name.clone();
        let pid = ctx.pid();
        let (id, peer) = ctx.wait_until(move |w, _| {
            // If the node crashed the listener is gone and nobody will wake
            // us — stay parked (documented non-recoverable path) rather
            // than panic in the wake path.
            let ls = w.node_mut(node).listeners.get_mut(&name)?;
            match ls.pending.pop_front() {
                Some(conn) => Some(conn),
                None => {
                    ls.waiters.register(pid);
                    None
                }
            }
        });
        let c = ctx.with(|w, _| w.calib);
        api::compute_ns(ctx, node, CpuCat::System, c.chan_read_syscall_ns);
        ChannelHandle { id, node, peer }
    }

    /// Connections waiting to be accepted (0 once the node has crashed).
    pub fn backlog(&self, ctx: &VCtx) -> usize {
        let node = self.node;
        let name = self.name.clone();
        ctx.with(move |w, _| {
            w.node(node)
                .listeners
                .get(&name)
                .map(|l| l.pending.len())
                .unwrap_or(0)
        })
    }
}

/// Kernel handler: the object manager acknowledged a listen registration.
/// Duplicates (a retransmitted registration re-acked) are idempotent.
pub fn on_serve_ack(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    let name = proto::parse_open_req(&f.payload);
    let Some(ls) = w.node_mut(node).listeners.get_mut(&name) else {
        return; // crash wiped the listener; stale ack
    };
    ls.acked = true;
    if let Some(t) = ls.timer.take() {
        t.cancel();
    }
    ls.waiters.wake_all(s, Wakeup::START);
}

/// Kernel handler: a client connected to a listening name — create the
/// server-side end of the new channel and queue it for `accept`. Delivered
/// reliably by the manager, so ack first, then deduplicate.
pub fn on_serve_conn(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    crate::fault::ack_ctl(w, s, node, &f);
    let (id, client, name) = proto::parse_open_rep(&f.payload);
    if w.node(node).chans.contains_key(&id) {
        return; // duplicate connect (our first ack was lost)
    }
    if !w.node(node).listeners.contains_key(&name) {
        return; // listener died with a crash; the client will learn via timeout
    }
    if w.node(node).listeners[&name].pending.len() >= w.calib.listener_backlog_cap {
        // Bounded listener backlog: discard the connection instead of
        // growing the unaccepted queue without limit. The manager's CTL_ACK
        // was already sent, so no retransmit storm; the client's end stays
        // half-open and its first write times out into the normal recovery
        // path. (The client-side channel is NOT capped here: erroring the
        // *server* out of an accept it never saw is safe, wedging the client
        // mid-open is not.)
        w.faults.stats.table_rejects += 1;
        return;
    }
    create_end(w, s, node, id, name.clone(), client);
    let Some(ls) = w.node_mut(node).listeners.get_mut(&name) else {
        return;
    };
    ls.pending.push_back((id, client));
    ls.waiters.wake_all(s, Wakeup::START);
}

#[cfg(test)]
mod close_tests {
    use super::*;
    use crate::world::VorxBuilder;

    #[test]
    fn reader_drains_buffer_then_sees_close() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1:w", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "c");
            ch.write(&ctx, Payload::copy_from(b"one")).unwrap();
            ch.write(&ctx, Payload::copy_from(b"two")).unwrap();
            ch.close(&ctx);
        });
        v.spawn("n2:r", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "c");
            ctx.sleep(desim::SimDuration::from_ms(20)); // let the close land
            assert_eq!(ch.read(&ctx).unwrap().bytes().unwrap().as_ref(), b"one");
            assert_eq!(ch.read(&ctx).unwrap().bytes().unwrap().as_ref(), b"two");
            assert_eq!(ch.read(&ctx), Err(ChanError::PeerClosed));
        });
        v.run_all();
    }

    #[test]
    fn blocked_reader_is_woken_by_close() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1:w", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "c");
            ctx.sleep(desim::SimDuration::from_ms(5));
            ch.close(&ctx);
        });
        v.spawn("n2:r", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "c");
            // Blocks with nothing buffered; must not hang forever.
            assert_eq!(ch.read(&ctx), Err(ChanError::PeerClosed));
            assert!(ctx.now() >= desim::SimTime::from_ns(5_000_000));
        });
        v.run_all();
    }

    #[test]
    fn write_after_peer_close_fails() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1:closer", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "c");
            ch.close(&ctx);
        });
        v.spawn("n2:w", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "c");
            ctx.sleep(desim::SimDuration::from_ms(20));
            assert_eq!(
                ch.write(&ctx, Payload::Synthetic(4)),
                Err(ChanError::PeerClosed)
            );
        });
        v.run_all();
    }

    #[test]
    fn local_close_fails_own_operations() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1:a", |ctx| {
            let ch = open(&ctx, NodeAddr(1), "c");
            ch.close(&ctx);
            ch.close(&ctx); // idempotent
            assert_eq!(
                ch.write(&ctx, Payload::Synthetic(1)),
                Err(ChanError::LocalClosed)
            );
            assert_eq!(ch.read(&ctx), Err(ChanError::LocalClosed));
        });
        v.spawn("n2:b", |ctx| {
            let ch = open(&ctx, NodeAddr(2), "c");
            assert_eq!(ch.read(&ctx), Err(ChanError::PeerClosed));
        });
        v.run_all();
    }

    #[test]
    fn read_any_errors_when_every_channel_closed() {
        let mut v = VorxBuilder::single_cluster(4).build();
        for n in [1u32, 2] {
            v.spawn(format!("n{n}:c"), move |ctx| {
                let ch = open(&ctx, NodeAddr(n), &format!("m{n}"));
                ch.close(&ctx);
            });
        }
        v.spawn("n3:mux", |ctx| {
            let a = open(&ctx, NodeAddr(3), "m1");
            let b = open(&ctx, NodeAddr(3), "m2");
            assert_eq!(
                read_any(&ctx, NodeAddr(3), &[a, b]),
                Err(ChanError::PeerClosed)
            );
        });
        v.run_all();
    }
}

#[cfg(test)]
mod listen_tests {
    use super::*;
    use crate::world::VorxBuilder;

    #[test]
    fn server_accepts_many_clients_on_one_name() {
        // §4: "a mechanism that allows servers to continually reuse a
        // single channel name."
        let mut v = VorxBuilder::single_cluster(6).build();
        v.spawn("n1:server", |ctx| {
            let listener = listen(&ctx, NodeAddr(1), "service");
            for _ in 0..4 {
                let ch = listener.accept(&ctx);
                let req = ch.read(&ctx).unwrap();
                ch.write(&ctx, req).unwrap(); // echo
                ch.close(&ctx);
            }
        });
        for n in 2..6u32 {
            v.spawn(format!("n{n}:client"), move |ctx| {
                let ch = open(&ctx, NodeAddr(n), "service");
                assert_eq!(ch.peer, NodeAddr(1));
                ch.write(&ctx, Payload::copy_from(&[n as u8])).unwrap();
                let rep = ch.read(&ctx).unwrap();
                assert_eq!(rep.bytes().unwrap().as_ref(), &[n as u8]);
            });
        }
        v.run_all();
    }

    #[test]
    fn client_queued_before_listen_is_connected() {
        // A single client that opens before the server registers is parked
        // at the manager and connected when the registration arrives. (Two
        // early clients would pair with *each other* — plain opens are
        // symmetric; see `listen` docs.)
        let mut v = VorxBuilder::single_cluster(4).build();
        v.spawn("n1:early", move |ctx| {
            let ch = open(&ctx, NodeAddr(1), "late-srv");
            assert_eq!(ch.peer, NodeAddr(3));
            ch.write(&ctx, Payload::Synthetic(8)).unwrap();
        });
        v.spawn("n3:server", |ctx| {
            ctx.sleep(desim::SimDuration::from_ms(10)); // client queues first
            let l = listen(&ctx, NodeAddr(3), "late-srv");
            let ch = l.accept(&ctx);
            let _ = ch.read(&ctx).unwrap();
        });
        v.run_all();
    }

    #[test]
    fn each_accept_gets_a_distinct_channel() {
        let mut v = VorxBuilder::single_cluster(4).build();
        v.spawn("n1:server", |ctx| {
            let l = listen(&ctx, NodeAddr(1), "s");
            let a = l.accept(&ctx);
            let b = l.accept(&ctx);
            assert_ne!(a.id, b.id);
            let ma = a.read(&ctx).unwrap();
            let mb = b.read(&ctx).unwrap();
            // Channels keep client streams separate.
            let (pa, pb) = (ma.bytes().unwrap()[0], mb.bytes().unwrap()[0]);
            assert_ne!(pa, pb);
        });
        for n in 2..4u32 {
            v.spawn(format!("n{n}:client"), move |ctx| {
                let ch = open(&ctx, NodeAddr(n), "s");
                ch.write(&ctx, Payload::copy_from(&[n as u8])).unwrap();
            });
        }
        v.run_all();
    }

    #[test]
    fn backlog_counts_unaccepted_connections() {
        let mut v = VorxBuilder::single_cluster(4).build();
        v.spawn("n1:server", |ctx| {
            let l = listen(&ctx, NodeAddr(1), "b");
            ctx.sleep(desim::SimDuration::from_ms(50));
            assert_eq!(l.backlog(&ctx), 2);
            let _ = l.accept(&ctx);
            assert_eq!(l.backlog(&ctx), 1);
        });
        for n in 2..4u32 {
            v.spawn(format!("n{n}:client"), move |ctx| {
                let _ = open(&ctx, NodeAddr(n), "b");
            });
        }
        v.run_all();
    }
}
