//! Processor allocation (§3.1).
//!
//! The section's whole arc is here:
//!
//! * Meglos "allowed up to 15 independent processes to run on a processor"
//!   and was "designed to make it easy for users to share their
//!   processors" — [`Allocator::allocate_shared`];
//! * "programmers did not want to share their processors because they
//!   wanted to balance the computational load of their application in a
//!   repeatable fashion. Realizing our mistake, we added 'exclusive access'
//!   capabilities" — [`Allocator::allocate`];
//! * Meglos freed processors at application exit, VORX holds them until
//!   explicitly freed — the usage disciplines compared by `E-ALLOC`;
//! * "users sometimes forget to free their processors" — the considered
//!   remedies are implemented: free on logout ([`Allocator::logout`]),
//!   idle-timeout reclamation ([`Allocator::reclaim_idle`]), and the
//!   use-carefully [`Allocator::force_free`] command.
//!
//! The file also owns the data path's [`PayloadPool`]: recycled gather
//! buffers for multi-fragment message reassembly (see the section comment
//! below and DESIGN.md §10).

use std::collections::HashMap;
use std::fmt;

use hpcnet::NodeAddr;

/// A user of the installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UserId(pub u32);

/// Meglos's per-processor process limit ("up to 15 independent processes").
pub const MAX_PROCS_PER_NODE: usize = 15;

/// Allocation failure: the §3.1 diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessorsNotAvailable {
    /// How many were requested.
    pub requested: usize,
    /// How many were free.
    pub free: usize,
}

impl fmt::Display for ProcessorsNotAvailable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "processors not available: requested {}, only {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for ProcessorsNotAvailable {}

/// Use state of one processing node.
#[derive(Debug, Clone, Default)]
struct Slot {
    /// Exclusive owner, if any.
    exclusive: Option<UserId>,
    /// Shared-mode processes (one entry per process), bounded by
    /// [`MAX_PROCS_PER_NODE`].
    shared: Vec<UserId>,
}

impl Slot {
    fn is_free(&self) -> bool {
        self.exclusive.is_none() && self.shared.is_empty()
    }
}

/// Ownership state of the processing-node pool.
#[derive(Debug, Clone)]
pub struct Allocator {
    /// First allocatable node (host adapters are not allocatable).
    first: usize,
    slots: Vec<Slot>,
    /// Last-activity timestamps for idle reclamation, ns.
    activity: HashMap<UserId, u64>,
}

impl Allocator {
    /// Pool over nodes `first_node..n_nodes`.
    pub fn new(first_node: usize, n_nodes: usize) -> Self {
        Allocator {
            first: first_node,
            slots: vec![Slot::default(); n_nodes.saturating_sub(first_node)],
            activity: HashMap::new(),
        }
    }

    fn addr(&self, idx: usize) -> NodeAddr {
        NodeAddr((self.first + idx) as u32)
    }

    fn idx(&self, a: NodeAddr) -> usize {
        (a.0 as usize)
            .checked_sub(self.first)
            .expect("not an allocatable node")
    }

    /// Number of completely unowned processors.
    pub fn free_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_free()).count()
    }

    /// Total pool size.
    pub fn pool_size(&self) -> usize {
        self.slots.len()
    }

    /// The current exclusive owner of a node.
    pub fn owner_of(&self, a: NodeAddr) -> Option<UserId> {
        self.slots[self.idx(a)].exclusive
    }

    /// Shared-mode processes on a node.
    pub fn shared_on(&self, a: NodeAddr) -> &[UserId] {
        &self.slots[self.idx(a)].shared
    }

    /// Nodes exclusively owned by `user`.
    pub fn owned_by(&self, user: UserId) -> Vec<NodeAddr> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.exclusive == Some(user))
            .map(|(i, _)| self.addr(i))
            .collect()
    }

    /// Exclusively allocate `count` processors to `user`, or fail with the
    /// §3.1 diagnostic. Exclusive access "exclude[s] other processes from a
    /// processor", so only completely free nodes qualify.
    pub fn allocate(
        &mut self,
        user: UserId,
        count: usize,
    ) -> Result<Vec<NodeAddr>, ProcessorsNotAvailable> {
        let free: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_free())
            .map(|(i, _)| i)
            .collect();
        if free.len() < count {
            return Err(ProcessorsNotAvailable {
                requested: count,
                free: free.len(),
            });
        }
        let taken = &free[..count];
        for &i in taken {
            self.slots[i].exclusive = Some(user);
        }
        Ok(taken.iter().map(|&i| self.addr(i)).collect())
    }

    /// Shared-mode placement of `count` processes (the original Meglos
    /// design): least-loaded non-exclusive nodes first, at most 15
    /// processes per node. Returns one node per process.
    pub fn allocate_shared(
        &mut self,
        user: UserId,
        count: usize,
    ) -> Result<Vec<NodeAddr>, ProcessorsNotAvailable> {
        let mut placed = Vec::with_capacity(count);
        for _ in 0..count {
            let best = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.exclusive.is_none() && s.shared.len() < MAX_PROCS_PER_NODE)
                .min_by_key(|(i, s)| (s.shared.len(), *i))
                .map(|(i, _)| i);
            match best {
                Some(i) => {
                    self.slots[i].shared.push(user);
                    placed.push(self.addr(i));
                }
                None => {
                    // Roll back partial placement.
                    for a in &placed {
                        let i = self.idx(*a);
                        if let Some(pos) = self.slots[i].shared.iter().rposition(|u| *u == user) {
                            self.slots[i].shared.remove(pos);
                        }
                    }
                    return Err(ProcessorsNotAvailable {
                        requested: count,
                        free: 0,
                    });
                }
            }
        }
        Ok(placed)
    }

    /// Release one shared-mode process of `user` from each listed node.
    pub fn release_shared(&mut self, user: UserId, nodes: &[NodeAddr]) {
        for &a in nodes {
            let i = self.idx(a);
            if let Some(pos) = self.slots[i].shared.iter().rposition(|u| *u == user) {
                self.slots[i].shared.remove(pos);
            }
        }
    }

    /// Free specific exclusively-owned nodes. Nodes owned by someone else
    /// are left untouched (returns how many were actually freed).
    pub fn free(&mut self, user: UserId, nodes: &[NodeAddr]) -> usize {
        let mut n = 0;
        for &a in nodes {
            let i = self.idx(a);
            if self.slots[i].exclusive == Some(user) {
                self.slots[i].exclusive = None;
                n += 1;
            }
        }
        n
    }

    /// Free everything `user` owns (exclusive and shared). Returns the
    /// number of exclusive nodes freed.
    pub fn free_all(&mut self, user: UserId) -> usize {
        let mut n = 0;
        for s in &mut self.slots {
            if s.exclusive == Some(user) {
                s.exclusive = None;
                n += 1;
            }
            s.shared.retain(|u| *u != user);
        }
        n
    }

    /// The VORX escape hatch: "a command that allows a user to free
    /// processors allocated to other users, and request that it be used
    /// carefully." Frees the nodes regardless of owner.
    pub fn force_free(&mut self, nodes: &[NodeAddr]) {
        for &a in nodes {
            let i = self.idx(a);
            self.slots[i] = Slot::default();
        }
    }

    // --- automatic-recovery options the paper considered (§3.1) ---

    /// Record user activity at `now_ns` (running an application, issuing a
    /// command). Used by idle reclamation.
    pub fn touch(&mut self, user: UserId, now_ns: u64) {
        self.activity.insert(user, now_ns);
    }

    /// "Automatically freeing them when a user logs off their workstation."
    /// Returns the number of exclusive nodes recovered.
    pub fn logout(&mut self, user: UserId) -> usize {
        self.activity.remove(&user);
        self.free_all(user)
    }

    /// "...or when there is no activity for several hours": free everything
    /// belonging to users idle longer than `max_idle_ns`. Returns the
    /// recovered nodes.
    pub fn reclaim_idle(&mut self, now_ns: u64, max_idle_ns: u64) -> Vec<NodeAddr> {
        let idle: Vec<UserId> = self
            .activity
            .iter()
            .filter(|(_, last)| now_ns.saturating_sub(**last) > max_idle_ns)
            .map(|(u, _)| *u)
            .collect();
        let mut recovered = Vec::new();
        for u in idle {
            recovered.extend(self.owned_by(u));
            self.logout(u);
        }
        recovered.sort();
        recovered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free_cycle() {
        let mut a = Allocator::new(2, 10); // nodes 2..10
        assert_eq!(a.pool_size(), 8);
        let mine = a.allocate(UserId(1), 3).unwrap();
        assert_eq!(mine.len(), 3);
        assert_eq!(a.free_count(), 5);
        assert_eq!(a.owner_of(mine[0]), Some(UserId(1)));
        assert_eq!(a.free(UserId(1), &mine), 3);
        assert_eq!(a.free_count(), 8);
    }

    #[test]
    fn exclusive_access_blocks_second_user() {
        let mut a = Allocator::new(0, 8);
        a.allocate(UserId(1), 6).unwrap();
        let err = a.allocate(UserId(2), 3).unwrap_err();
        assert_eq!(
            err,
            ProcessorsNotAvailable {
                requested: 3,
                free: 2
            }
        );
        assert_eq!(
            err.to_string(),
            "processors not available: requested 3, only 2 free"
        );
    }

    #[test]
    fn cannot_free_someone_elses_nodes() {
        let mut a = Allocator::new(0, 4);
        let theirs = a.allocate(UserId(1), 2).unwrap();
        assert_eq!(a.free(UserId(2), &theirs), 0);
        assert_eq!(a.owner_of(theirs[0]), Some(UserId(1)));
    }

    #[test]
    fn force_free_overrides_ownership() {
        let mut a = Allocator::new(0, 4);
        let theirs = a.allocate(UserId(1), 2).unwrap();
        a.force_free(&theirs);
        assert_eq!(a.free_count(), 4);
    }

    #[test]
    fn free_all_on_exit() {
        let mut a = Allocator::new(0, 6);
        a.allocate(UserId(7), 4).unwrap();
        assert_eq!(a.free_all(UserId(7)), 4);
        assert_eq!(a.owned_by(UserId(7)), vec![]);
    }

    #[test]
    fn meglos_race_reproduced() {
        // §3.1: A runs, finishes (auto-free), recompiles; B grabs the pool
        // meanwhile; A's next run fails with "processors not available".
        let mut pool = Allocator::new(0, 8);
        let a_nodes = pool.allocate(UserId(1), 8).unwrap();
        pool.free(UserId(1), &a_nodes);
        pool.allocate(UserId(2), 8).unwrap();
        assert!(pool.allocate(UserId(1), 8).is_err());
    }

    #[test]
    fn shared_mode_packs_least_loaded_first() {
        let mut a = Allocator::new(0, 2);
        let placed = a.allocate_shared(UserId(1), 4).unwrap();
        // Round-robins across the two nodes.
        let on0 = placed.iter().filter(|n| n.0 == 0).count();
        let on1 = placed.iter().filter(|n| n.0 == 1).count();
        assert_eq!((on0, on1), (2, 2));
        assert_eq!(a.shared_on(NodeAddr(0)).len(), 2);
    }

    #[test]
    fn shared_mode_honours_the_15_process_limit() {
        let mut a = Allocator::new(0, 1);
        a.allocate_shared(UserId(1), 15).unwrap();
        assert!(a.allocate_shared(UserId(2), 1).is_err());
        a.release_shared(UserId(1), &[NodeAddr(0)]);
        assert!(a.allocate_shared(UserId(2), 1).is_ok());
    }

    #[test]
    fn exclusive_refuses_shared_nodes_and_vice_versa() {
        let mut a = Allocator::new(0, 2);
        a.allocate_shared(UserId(1), 1).unwrap(); // lands on node 0
        let got = a.allocate(UserId(2), 1).unwrap();
        assert_eq!(got, vec![NodeAddr(1)]); // skips the shared node
                                            // And shared placement refuses the exclusive node.
        let err = a.allocate_shared(UserId(3), 30);
        assert!(err.is_err(), "only node 0 is usable, 15-process cap");
    }

    #[test]
    fn shared_failure_rolls_back_partial_placement() {
        let mut a = Allocator::new(0, 1);
        a.allocate_shared(UserId(1), 10).unwrap();
        // 6 more would exceed the 15-slot node; nothing should stick.
        assert!(a.allocate_shared(UserId(2), 6).is_err());
        assert!(a.shared_on(NodeAddr(0)).iter().all(|u| *u == UserId(1)));
        assert_eq!(a.shared_on(NodeAddr(0)).len(), 10);
    }

    #[test]
    fn logout_recovers_everything() {
        let mut a = Allocator::new(0, 6);
        a.allocate(UserId(1), 2).unwrap();
        a.allocate_shared(UserId(1), 3).unwrap();
        assert_eq!(a.logout(UserId(1)), 2);
        assert_eq!(a.free_count(), 6);
    }

    #[test]
    fn idle_reclamation_frees_only_idle_users() {
        const HOUR: u64 = 3_600_000_000_000;
        let mut a = Allocator::new(0, 8);
        a.allocate(UserId(1), 3).unwrap();
        a.touch(UserId(1), 0);
        a.allocate(UserId(2), 3).unwrap();
        a.touch(UserId(2), 5 * HOUR);
        // At t=6h with a 2h threshold: user 1 idle 6h (reclaim), user 2
        // idle 1h (keep).
        let recovered = a.reclaim_idle(6 * HOUR, 2 * HOUR);
        assert_eq!(recovered.len(), 3);
        assert_eq!(a.owned_by(UserId(1)), vec![]);
        assert_eq!(a.owned_by(UserId(2)).len(), 3);
        assert_eq!(a.free_count(), 5);
    }
}

// ---------------------------------------------------------------------------
// Payload buffer pool (windowed data path).
//
// Multi-fragment reassembly is the one place the data path must gather
// payload bytes into a fresh contiguous buffer (single-fragment messages are
// delivered zero-copy — see `channel::PayloadAsm`). The gather buffers churn
// at message rate, so they are pooled: `PayloadPool::acquire` hands out a
// recycled `Vec<u8>` when one is free, and the buffer returns to the free
// list automatically when the last `Bytes` clone referencing the assembled
// message is dropped.
// ---------------------------------------------------------------------------

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use bytes::{ByteStore, Bytes};

/// Free-list capacity: buffers returned beyond this are simply freed, so a
/// burst cannot pin memory forever.
const POOL_MAX_FREE: usize = 64;

/// Usage counters for [`PayloadPool`] (observable in tests and `cdb`).
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Acquires served from the free list.
    pub hits: AtomicU64,
    /// Acquires that had to allocate.
    pub misses: AtomicU64,
    /// Buffers returned to the free list by `Bytes` drops.
    pub recycled: AtomicU64,
}

#[derive(Debug, Default)]
struct PoolInner {
    free: Mutex<Vec<Vec<u8>>>,
    stats: PoolStats,
}

/// A shared pool of payload gather buffers. Cloning the pool handle shares
/// the underlying free list; the `World` owns one per simulation.
#[derive(Debug, Clone, Default)]
pub struct PayloadPool {
    inner: Arc<PoolInner>,
}

/// A pooled gather buffer: fill it with `extend_from_slice`, then `freeze`
/// it into a refcounted [`Bytes`]. The backing `Vec` rejoins the pool's free
/// list when the last `Bytes` clone dies.
#[derive(Debug)]
pub struct PooledBuf {
    data: Vec<u8>,
    pool: Weak<PoolInner>,
}

/// The frozen store behind a pooled [`Bytes`]; its `Drop` recycles the
/// allocation.
#[derive(Debug)]
struct PooledStore {
    data: Vec<u8>,
    pool: Weak<PoolInner>,
}

impl ByteStore for PooledStore {
    fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PooledStore {
    fn drop(&mut self) {
        let Some(pool) = self.pool.upgrade() else {
            return; // the simulation is gone; let the Vec free normally
        };
        let mut v = std::mem::take(&mut self.data);
        let mut free = pool.free.lock().expect("pool free list poisoned");
        if free.len() < POOL_MAX_FREE {
            v.clear();
            free.push(v);
            pool.stats.recycled.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl PayloadPool {
    /// Take a cleared buffer with at least `cap` bytes reserved, reusing a
    /// recycled allocation when one is free.
    pub fn acquire(&self, cap: usize) -> PooledBuf {
        let recycled = self
            .inner
            .free
            .lock()
            .expect("pool free list poisoned")
            .pop();
        let data = match recycled {
            Some(mut v) => {
                self.inner.stats.hits.fetch_add(1, Ordering::Relaxed);
                v.reserve(cap);
                v
            }
            None => {
                self.inner.stats.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(cap)
            }
        };
        PooledBuf {
            data,
            pool: Arc::downgrade(&self.inner),
        }
    }

    /// Snapshot `(hits, misses, recycled)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.inner.stats.hits.load(Ordering::Relaxed),
            self.inner.stats.misses.load(Ordering::Relaxed),
            self.inner.stats.recycled.load(Ordering::Relaxed),
        )
    }
}

impl PooledBuf {
    /// Append bytes (this *is* a physical copy; callers meter it).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable, refcounted [`Bytes`]. All clones and slices
    /// share this one allocation; the last drop recycles it into the pool.
    pub fn freeze(self) -> Bytes {
        Bytes::from_shared(Arc::new(PooledStore {
            data: self.data,
            pool: self.pool,
        }))
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;

    #[test]
    fn acquire_freeze_drop_recycles() {
        let pool = PayloadPool::default();
        let mut b = pool.acquire(8);
        b.extend_from_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        assert_eq!(&*frozen, &[1, 2, 3]);
        let copy = frozen.clone();
        drop(frozen);
        assert_eq!(pool.stats().2, 0, "a live clone must pin the buffer");
        drop(copy);
        assert_eq!(pool.stats(), (0, 1, 1));
        // The next acquire reuses the recycled allocation.
        let b2 = pool.acquire(2);
        assert_eq!(pool.stats().0, 1);
        assert!(b2.is_empty());
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = PayloadPool::default();
        let frozen: Vec<Bytes> = (0..POOL_MAX_FREE + 10)
            .map(|_| {
                let mut b = pool.acquire(4);
                b.extend_from_slice(&[0; 4]);
                b.freeze()
            })
            .collect();
        drop(frozen);
        assert_eq!(
            pool.inner.free.lock().unwrap().len(),
            POOL_MAX_FREE,
            "returns beyond the cap must be freed, not hoarded"
        );
    }
}
