//! The VORX kernel: frame transmit queueing, the receive-interrupt service
//! loop, and protocol dispatch.
//!
//! "It never deadlocks because the VORX kernel reads in messages immediately
//! when they arrive." (§2) — the receive service loop below drains the
//! endpoint FIFO as fast as the CPU allows, unconditionally; received data
//! parks in kernel side buffers (channels) or user-level queues (UDCOs), so
//! the hardware buffers never stay full.

use desim::{OutMsg, SimDuration, SimTime, Wakeup};
use hpcnet::{Dest, Frame, NodeAddr, Notify, Output};

use crate::cpu::CpuCat;
use crate::world::{VSched, World};
use crate::{channel, host, objmgr, proto, udco};

/// Current time as raw ns (the fabric's clock unit).
pub fn now_ns(s: &VSched) -> u64 {
    s.now().as_ns()
}

/// Queue a frame for transmission from `frame.src`. If the hardware output
/// register is free (and nothing is queued ahead), injection happens
/// immediately; otherwise the kernel holds the frame and refills the
/// register from the transmit-complete interrupt.
pub fn send_frame(w: &mut World, s: &mut VSched, frame: Frame) {
    let src = frame.src;
    if can_inject(w, src) {
        inject(w, s, frame);
    } else {
        w.node_mut(src).tx_q.push_back(frame);
    }
}

/// True iff a user-level sender could inject a frame right now (hardware
/// register free — fabric or shard bridge — and no kernel frames queued
/// ahead).
pub fn can_inject(w: &World, a: NodeAddr) -> bool {
    w.net.can_send(a) && !w.shard.tx_busy(a) && w.node(a).tx_q.is_empty()
}

/// Put a frame on the wire: into the local fabric, or — in a sharded build,
/// for destinations owned by another shard — across the window bridge. The
/// caller must have checked the register free ([`can_inject`] or a
/// transmit-complete interrupt).
fn inject(w: &mut World, s: &mut VSched, frame: Frame) {
    let frame = if w.shard.enabled {
        match bridge(w, s, frame) {
            Some(local) => local,
            None => return, // consumed entirely by the bridge
        }
    } else {
        frame
    };
    let out = w
        .net
        .try_send(now_ns(s), frame)
        .expect("register was checked free");
    process_output(w, s, out);
}

/// Route the cross-shard portion of `frame` over the bridge. Returns the
/// frame (with remote multicast targets removed) if any local delivery
/// remains, or `None` when the bridge consumed it.
///
/// A bridged frame bypasses the fabric's store-and-forward machinery; its
/// latency is the baseline path cost `links × (serialization + hop)`, which
/// is at least the engine lookahead by construction, so delivery always
/// lands strictly after the window that produced it. Contention on the
/// intermediate links is not modeled for cross-shard traffic — that is the
/// decomposition's one approximation, and the price of exact per-link flow
/// control would be zero lookahead (see DESIGN.md §12).
fn bridge(w: &mut World, s: &mut VSched, frame: Frame) -> Option<Frame> {
    let src = frame.src;
    let (local, remote): (Vec<NodeAddr>, Vec<NodeAddr>) = match &frame.dst {
        Dest::Unicast(d) => {
            if w.shard.is_remote(*d) {
                (Vec::new(), vec![*d])
            } else {
                return Some(frame);
            }
        }
        Dest::Multicast(ts) => ts.iter().partition(|t| !w.shard.is_remote(**t)),
    };
    if remote.is_empty() {
        return Some(frame);
    }
    let wire = frame.wire_bytes();
    let cfg = *w.net.config();
    let ser = cfg.serialize_ns(wire);
    let now = now_ns(s);
    let src_cluster = w.net.topology().cluster_of(src);
    for t in remote {
        // Fault-free baseline link count for the pair, walked from the
        // implicit routes in O(path) — no O(clusters²) matrix. Static
        // under churn (faults only lengthen real routes), so the bridge
        // latency never depends on when a shard observed a reroute, and
        // it never undercuts the engine's per-pair lookahead bound.
        let links = w
            .net
            .topology()
            .baseline_cluster_links(src_cluster, w.net.topology().cluster_of(t));
        let mut at_ns = now + links * (ser + cfg.hop_latency_ns);
        if w.faults.gray_armed {
            // Gray degradation applies to bridged frames too: the extra
            // latency of every link on the baseline path, evaluated at the
            // injection time. A pure function of `(seed, links, now)`, the
            // same at every worker count, and strictly additive — the
            // engine's lookahead bound is never undercut.
            at_ns += bridge_gray_ns(w, src, t, now, cfg.hop_latency_ns);
        }
        let at = SimTime::from_ns(at_ns);
        // Injection statistics, mirroring what `Fabric::try_send` records.
        w.net.stats.frames_sent += 1;
        w.net.stats.per_endpoint_tx[src.0 as usize] += 1;
        let mut copy = frame.clone();
        copy.dst = Dest::Unicast(t);
        w.shard.outbox.push(OutMsg {
            deliver_at: at,
            dst_shard: w.shard.owner(t),
            msg: copy,
        });
    }
    if local.is_empty() {
        // The bridge models the output register itself: busy while the
        // frame serializes, then the usual transmit-complete interrupt.
        w.shard.tx_busy[src.0 as usize] = true;
        s.schedule_in(SimDuration::from_ns(ser), move |w: &mut World, s| {
            w.shard.tx_busy[src.0 as usize] = false;
            on_tx_ready(w, s, src);
        });
        None
    } else {
        // Mixed multicast: the local copies serialize through the fabric
        // (which owns the register for the duration); the remote copies ride
        // the bridge at no extra register cost.
        let mut f = frame;
        f.dst = Dest::Multicast(local.into());
        Some(f)
    }
}

/// Sum of the gray-degradation delays on every link of the baseline path
/// from `src` to `dst` — the source up-link, each inter-cluster cable, and
/// the destination down-link — at injection time `now`, recording the
/// delivered latency of each link when statistics are armed. Only called
/// when a gray window armed the fault plane, so clean and loss-only runs
/// never pay the walk.
fn bridge_gray_ns(w: &mut World, src: NodeAddr, dst: NodeAddr, now: u64, hop_ns: u64) -> u64 {
    let World { net, faults, .. } = w;
    let topo = net.topology();
    let mut extra = 0u64;
    let mut visit = |l: hpcnet::LinkId| {
        let g = faults.schedule.gray_delay_ns(l.0, now, hop_ns);
        extra += g;
        if faults.track_latency {
            faults.schedule.note_delivered(l.0, hop_ns + g);
        }
    };
    visit(net.endpoint_up_link(src));
    topo.baseline_cluster_pairs(topo.cluster_of(src), topo.cluster_of(dst), |a, b| {
        if let Some(l) = net.cluster_link(a, b) {
            visit(l);
        }
    });
    visit(net.endpoint_down_link(dst));
    extra
}

/// Advance the fabric by one event with the fault plane consulted: every
/// hop's disposition (deliver / drop / corrupt / delay) is drawn from the
/// installed schedule's seeded streams.
fn net_handle(w: &mut World, now: u64, ev: hpcnet::NetEvent) -> Output {
    // Split borrow: the fabric and the fault hook are disjoint fields.
    let World { net, faults, .. } = w;
    net.handle_with(now, ev, faults)
}

/// Apply a fabric [`Output`]: schedule its future events and act on its
/// notifications.
pub fn process_output(w: &mut World, s: &mut VSched, out: Output) {
    for (delay_ns, ev) in out.schedule {
        s.schedule_in(SimDuration::from_ns(delay_ns), move |w: &mut World, s| {
            let o = net_handle(w, now_ns(s), ev);
            process_output(w, s, o);
        });
    }
    for n in out.notifies {
        match n {
            Notify::TxReady(a) => on_tx_ready(w, s, a),
            Notify::RxArrived(a) => on_rx_arrived(w, s, a),
        }
    }
}

/// Transmit-complete interrupt: refill the output register from the kernel
/// queue, or wake user-level senders waiting for space.
fn on_tx_ready(w: &mut World, s: &mut VSched, a: NodeAddr) {
    if !w.node(a).up {
        return; // crashed between queueing and the interrupt
    }
    if let Some(frame) = w.node_mut(a).tx_q.pop_front() {
        // The register is free after a transmit-complete (fabric or bridge),
        // so the queued frame injects directly — through the bridge again if
        // its destination is remote.
        inject(w, s, frame);
    } else {
        w.node_mut(a).tx_waiters.wake_all(s, Wakeup::START);
    }
}

/// Receive interrupt: start the kernel receive-service loop if idle.
fn on_rx_arrived(w: &mut World, s: &mut VSched, a: NodeAddr) {
    if !w.node(a).up {
        return;
    }
    if !w.node(a).rx_in_service {
        w.node_mut(a).rx_in_service = true;
        rx_service(w, s, a, true);
    }
}

/// Service one frame: charge the CPU for interrupt entry (first frame only),
/// the FIFO read, and dispatch; then pop the frame and hand it to the
/// protocol layer; repeat while more frames are waiting.
fn rx_service(w: &mut World, s: &mut VSched, a: NodeAddr, first: bool) {
    let Some(frame) = w.net.rx_peek(a) else {
        w.node_mut(a).rx_in_service = false;
        return;
    };
    if udco::is_raw(w, a, frame.kind) {
        // Raw UDCO (§4.1, parallel SPICE): the kernel never touches these
        // frames — the application reads the hardware itself. Hand the frame
        // over at zero kernel cost and keep draining.
        let (frame, out) = w.net.rx_pop(now_ns(s), a);
        process_output(w, s, out);
        if let Some(f) = frame {
            dispatch(w, s, a, f);
        }
        rx_service(w, s, a, first);
        return;
    }
    let wire = frame.wire_bytes();
    let c = w.calib;
    let cost = if first { c.intr_entry_ns } else { 0 }
        + c.fifo_read_ns_per_byte * u64::from(wire)
        + c.rx_dispatch_ns;
    let now = s.now();
    let end = w.charge(now, a, CpuCat::System, SimDuration::from_ns(cost));
    s.schedule_in(end - now, move |w: &mut World, s| {
        let (frame, out) = w.net.rx_pop(now_ns(s), a);
        process_output(w, s, out);
        if let Some(f) = frame {
            dispatch(w, s, a, f);
        }
        if w.net.rx_depth(a) > 0 {
            rx_service(w, s, a, false);
        } else {
            w.node_mut(a).rx_in_service = false;
        }
    });
}

/// Demultiplex a received frame to its protocol handler.
fn dispatch(w: &mut World, s: &mut VSched, a: NodeAddr, f: Frame) {
    if f.corrupted {
        // The interface's CRC check failed at FIFO read time: the frame is
        // detectably damaged and discarded here, before any handler parses
        // it. Senders recover by retransmission.
        w.faults.stats.corrupted_rx += 1;
        return;
    }
    match f.kind {
        proto::KIND_CHAN_DATA => channel::on_data(w, s, a, f, false),
        proto::KIND_CHAN_DATA_LAST => channel::on_data(w, s, a, f, true),
        proto::KIND_CHAN_ACK => channel::on_ack(w, s, a, f),
        proto::KIND_OPEN_REQ => objmgr::on_open_req(w, s, a, f),
        proto::KIND_OPEN_REP => objmgr::on_open_rep(w, s, a, f),
        proto::KIND_SYSCALL_REQ => host::on_syscall_req(w, s, a, f),
        proto::KIND_SYSCALL_REP => host::on_syscall_rep(w, s, a, f),
        proto::KIND_DOWNLOAD => host::on_download(w, s, a, f),
        proto::KIND_CHAN_CLOSE => channel::on_close(w, s, a, f),
        proto::KIND_SERVE_REQ => objmgr::on_serve_req(w, s, a, f),
        proto::KIND_SERVE_ACK => channel::on_serve_ack(w, s, a, f),
        proto::KIND_SERVE_CONN => channel::on_serve_conn(w, s, a, f),
        proto::KIND_MCAST_DATA | proto::KIND_MCAST_DATA_LAST => {
            crate::multicast::on_data(w, s, a, f)
        }
        proto::KIND_MCAST_ACK => crate::multicast::on_ack(w, s, a, f),
        proto::KIND_OPEN_QUEUED => objmgr::on_open_queued(w, s, a, f),
        proto::KIND_CHAN_BUSY => channel::on_busy(w, s, a, f),
        proto::KIND_CHAN_WACK => channel::on_wack(w, s, a, f),
        proto::KIND_CTL_ACK => crate::fault::on_ctl_ack(w, s, a, f),
        proto::KIND_HEARTBEAT => crate::membership::on_heartbeat(w, s, a, f),
        proto::KIND_REPL_REG => objmgr::on_repl_reg(w, s, a, f),
        proto::KIND_OPEN_NACK => objmgr::on_open_nack(w, s, a, f),
        proto::KIND_COLL_UP => crate::collective::on_up(w, s, a, f),
        proto::KIND_COLL_RESULT => crate::collective::on_result(w, s, a, f),
        proto::KIND_COLL_RETRY => crate::collective::on_retry(w, s, a, f),
        proto::KIND_COLL_NUDGE => crate::collective::on_nudge(w, s, a, f),
        proto::KIND_COLL_A2A | proto::KIND_COLL_A2A_VAL => {
            crate::collective::on_a2a_val(w, s, a, f)
        }
        proto::KIND_COLL_A2A_REQ => crate::collective::on_a2a_req(w, s, a, f),
        k if k >= proto::KIND_UDCO_BASE => udco::on_frame(w, s, a, f),
        k => panic!("node {a}: frame with unknown protocol kind {k}"),
    }
}

/// Re-dispatch frames that arrived for a channel before its end existed.
pub fn drain_orphans(w: &mut World, s: &mut VSched, a: NodeAddr, chan: u32) {
    let orphans = std::mem::take(&mut w.node_mut(a).orphans);
    let (mine, rest): (Vec<Frame>, Vec<Frame>) = orphans
        .into_iter()
        .partition(|f| proto::seq_chan(f.seq) == chan);
    w.node_mut(a).orphans = rest;
    for f in mine {
        dispatch(w, s, a, f);
    }
}
