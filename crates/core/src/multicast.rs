//! Flow-controlled multicast (§4.2).
//!
//! "We therefore designed the HPC hardware to be able to implement multicast
//! efficiently and devised a flow-controlled multicast primitive that is
//! integrated with channels."
//!
//! A multicast *group* is identified by a small group id. [`mwrite`] injects
//! one frame; the fabric replicates it at branch clusters ([`hpcnet`]'s
//! hardware multicast); every receiving kernel copies it to a side buffer
//! and acknowledges, and the writer blocks until **all** destinations have
//! acknowledged — stop-and-wait generalized to a destination set.
//!
//! The paper's verdict is that this is usually the wrong tool ("the number
//! of messages received by each processor grows and each process spends more
//! and more time reading data that it is not concerned with"); the E-FFT
//! experiment quantifies that with the 2D-FFT redistribution. For the
//! "limited uses" that remain (startup broadcast, small server fan-outs),
//! [`multi_write`] provides the recommended multiple-unicast-writes
//! alternative over ordinary channels.

use std::collections::VecDeque;
use std::sync::Arc;

use desim::{sync::WaitSet, SimDuration, Wakeup};
use hpcnet::{Dest, Frame, NodeAddr, Payload, MAX_PAYLOAD};

use crate::api;
use crate::channel::ChannelHandle;
use crate::cpu::{BlockReason, CpuCat};
use crate::kernel;
use crate::proto::{KIND_MCAST_ACK, KIND_MCAST_DATA, KIND_MCAST_DATA_LAST};
use crate::world::{VCtx, VSched, World};

/// Receiver-side state of a multicast group on one node.
#[derive(Debug, Default)]
pub struct McastEnd {
    /// Per-sender reassembly of fragmented multicast writes.
    pub asm: std::collections::HashMap<u32, crate::channel::PayloadAsm>,
    /// Delivered messages awaiting [`mread`].
    pub rx: VecDeque<(NodeAddr, Payload)>,
    /// Processes blocked in [`mread`].
    pub rx_waiters: WaitSet,
    /// Messages received (statistics).
    pub msgs_rx: u64,
    /// Payload bytes received (statistics — the §4.2 "data that it is not
    /// concerned with" accounting).
    pub bytes_rx: u64,
}

/// Sender-side state of one outstanding multicast write.
#[derive(Debug)]
pub struct McastPending {
    /// Acks still missing.
    pub remaining: usize,
    /// The blocked writer.
    pub waiters: WaitSet,
}

/// Join multicast group `gid` on `node` (receiver side). Frames that
/// arrived before the join (the group-creation race) are delivered
/// immediately.
pub fn join(ctx: &VCtx, node: NodeAddr, gid: u16) {
    ctx.with(move |w, s| {
        w.node_mut(node).mcast.entry(gid).or_default();
        let orphans = std::mem::take(&mut w.node_mut(node).orphans);
        let (mine, rest): (Vec<Frame>, Vec<Frame>) = orphans.into_iter().partition(|f| {
            (f.kind == KIND_MCAST_DATA || f.kind == KIND_MCAST_DATA_LAST)
                && (f.seq >> 48) as u16 == gid
        });
        w.node_mut(node).orphans = rest;
        for f in mine {
            on_data(w, s, node, f);
        }
    });
}

/// Split a payload into hardware-sized fragments, flagging the last.
fn fragment(payload: Payload) -> Vec<(Payload, bool)> {
    let total = payload.len();
    if total <= MAX_PAYLOAD {
        return vec![(payload, true)];
    }
    let mut out = Vec::new();
    match payload {
        Payload::Data(b) => {
            let mut off = 0usize;
            while off < b.len() {
                let end = (off + MAX_PAYLOAD as usize).min(b.len());
                out.push((Payload::Data(b.slice(off..end)), end == b.len()));
                off = end;
            }
        }
        Payload::Synthetic(mut n) => {
            while n > 0 {
                let chunk = n.min(MAX_PAYLOAD);
                n -= chunk;
                out.push((Payload::Synthetic(chunk), n == 0));
            }
        }
    }
    out
}

/// Flow-controlled multicast write: one injection per fragment, hardware
/// replication, and the writer blocks until every destination's kernel has
/// acknowledged each fragment (stop-and-wait generalized to the group).
/// Messages larger than one hardware frame are fragmented and reassembled
/// per-sender at each receiver.
pub fn mwrite(ctx: &VCtx, node: NodeAddr, gid: u16, dsts: Vec<NodeAddr>, payload: Payload) {
    assert!(!dsts.is_empty(), "multicast with no destinations");
    let c = ctx.with(|w, _| w.calib);
    let n_dst = dsts.len();
    let pid = ctx.pid();
    // One refcounted target list shared by every fragment: a multi-frame
    // mwrite allocates no per-fragment destination copies.
    let dsts: Arc<[NodeAddr]> = dsts.into();
    for (frag, last) in fragment(payload) {
        api::compute_ns(ctx, node, CpuCat::System, c.chan_write_syscall_ns);
        let dsts = Arc::clone(&dsts);
        let seq = ctx.with(move |w, s| {
            let now = s.now();
            let seq = w.token();
            w.node_mut(node).mcast_pending.insert(
                seq,
                McastPending {
                    remaining: n_dst,
                    waiters: WaitSet::new(),
                },
            );
            let f = Frame {
                src: node,
                dst: Dest::Multicast(dsts),
                kind: if last {
                    KIND_MCAST_DATA_LAST
                } else {
                    KIND_MCAST_DATA
                },
                seq: (u64::from(gid) << 48) | seq,
                payload: frag,
                corrupted: false,
            };
            w.block(now, node, BlockReason::Output);
            kernel::send_frame(w, s, f);
            seq
        });
        ctx.wait_until(move |w, _| {
            let p = w
                .node_mut(node)
                .mcast_pending
                .get_mut(&seq)
                .expect("pending mcast vanished");
            if p.remaining == 0 {
                Some(())
            } else {
                p.waiters.register(pid);
                None
            }
        });
        ctx.with(move |w, s| {
            let now = s.now();
            w.node_mut(node).mcast_pending.remove(&seq);
            w.unblock(now, node, BlockReason::Output);
        });
        api::compute_ns(ctx, node, CpuCat::System, c.ctx_switch_ns);
    }
}

/// Blocking read from a multicast group.
pub fn mread(ctx: &VCtx, node: NodeAddr, gid: u16) -> (NodeAddr, Payload) {
    let c = ctx.with(|w, _| w.calib);
    api::compute_ns(ctx, node, CpuCat::System, c.chan_read_syscall_ns);
    let pid = ctx.pid();
    let (src, payload) = ctx.wait_until(move |w, _| {
        let end = w
            .node_mut(node)
            .mcast
            .get_mut(&gid)
            .unwrap_or_else(|| panic!("mread before join({gid}) on {node}"));
        match end.rx.pop_front() {
            Some(m) => Some(m),
            None => {
                end.rx_waiters.register(pid);
                None
            }
        }
    });
    // Copy out of the side buffer: the receiver pays for *all* the data in
    // the message, needed or not — the crux of §4.2.
    api::compute(
        ctx,
        node,
        CpuCat::System,
        crate::calib::Calibration::per_byte(c.copy_user_ns_per_byte, payload.len()),
    );
    (src, payload)
}

/// The recommended alternative for small fan-outs: issue ordinary channel
/// writes to each receiver in turn.
pub fn multi_write(
    ctx: &VCtx,
    chans: &[ChannelHandle],
    payload: &Payload,
) -> crate::channel::ChanResult<()> {
    for ch in chans {
        ch.write(ctx, payload.clone())?;
    }
    Ok(())
}

/// Kernel handler: multicast data arrived at a receiver.
pub fn on_data(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    let gid = (f.seq >> 48) as u16;
    if !w.node(node).mcast.contains_key(&gid) {
        w.node_mut(node).orphans.push(f);
        return;
    }
    // Side-buffer copy + ack generation, like a channel fragment.
    let c = w.calib;
    let cost = c.chan_sidebuf_ns_per_byte * u64::from(f.payload.len()) + c.chan_ack_gen_ns;
    let now = s.now();
    let end = w.charge(now, node, CpuCat::System, SimDuration::from_ns(cost));
    s.schedule_in(end - now, move |w: &mut World, s| {
        let gid = (f.seq >> 48) as u16;
        let src = f.src;
        let seq = f.seq;
        let last = f.kind == KIND_MCAST_DATA_LAST;
        let len = u64::from(f.payload.len());
        let pool = w.payload_pool.clone();
        {
            let Some(e) = w.node_mut(node).mcast.get_mut(&gid) else {
                return; // the node crashed while the copy charge was in flight
            };
            e.bytes_rx += len;
            let asm = e.asm.entry(src.0).or_default();
            asm.push(f.payload);
            if last {
                let msg = asm.take(&pool);
                e.msgs_rx += 1;
                e.rx.push_back((src, msg));
                e.rx_waiters.wake_all(s, Wakeup::START);
            }
        }
        let ack = Frame::unicast(node, src, KIND_MCAST_ACK, seq, Payload::Synthetic(0));
        kernel::send_frame(w, s, ack);
    });
}

/// Kernel handler: a multicast ack arrived back at the writer.
pub fn on_ack(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    let seq = f.seq & 0x0000_FFFF_FFFF_FFFF;
    let Some(p) = w.node_mut(node).mcast_pending.get_mut(&seq) else {
        return; // a crash wiped the pending write; stale (or delayed) ack
    };
    p.remaining -= 1;
    if p.remaining == 0 {
        p.waiters.wake_all(s, Wakeup::START);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::VorxBuilder;

    #[test]
    fn mwrite_reaches_every_member_once() {
        let mut v = VorxBuilder::single_cluster(5).build();
        v.spawn("n0:w", |ctx| {
            join(&ctx, NodeAddr(0), 1);
            mwrite(
                &ctx,
                NodeAddr(0),
                1,
                vec![NodeAddr(1), NodeAddr(2), NodeAddr(3), NodeAddr(4)],
                Payload::copy_from(b"bcast"),
            );
        });
        for n in 1..5u32 {
            v.spawn(format!("n{n}:r"), move |ctx| {
                join(&ctx, NodeAddr(n), 1);
                let (src, p) = mread(&ctx, NodeAddr(n), 1);
                assert_eq!(src, NodeAddr(0));
                assert_eq!(p.bytes().unwrap().as_ref(), b"bcast");
            });
        }
        v.run_all();
        let w = v.world();
        // The source injected exactly one frame per mwrite (plus acks back).
        assert_eq!(w.net.stats.per_endpoint_tx[0], 1);
    }

    #[test]
    fn mwrite_blocks_until_all_ack() {
        // With one receiver joining late, the writer must not complete early.
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n0:w", |ctx| {
            let t0 = ctx.now();
            mwrite(
                &ctx,
                NodeAddr(0),
                2,
                vec![NodeAddr(1), NodeAddr(2)],
                Payload::Synthetic(64),
            );
            // n2 joins after 5 ms; the ack cannot arrive before that.
            assert!(ctx.now() - t0 > SimDuration::from_ms(5));
        });
        v.spawn("n1:r", |ctx| {
            join(&ctx, NodeAddr(1), 2);
            let _ = mread(&ctx, NodeAddr(1), 2);
        });
        v.spawn("n2:late", |ctx| {
            ctx.sleep(SimDuration::from_ms(5));
            join(&ctx, NodeAddr(2), 2);
            let _ = mread(&ctx, NodeAddr(2), 2);
        });
        v.run_all();
    }

    #[test]
    fn receivers_pay_for_unwanted_bytes() {
        // §4.2's complaint, in miniature: each member receives the whole
        // message even if it needs a fraction of it.
        let mut v = VorxBuilder::single_cluster(4).build();
        v.spawn("n0:w", |ctx| {
            for _ in 0..4 {
                mwrite(
                    &ctx,
                    NodeAddr(0),
                    3,
                    vec![NodeAddr(1), NodeAddr(2), NodeAddr(3)],
                    Payload::Synthetic(1024),
                );
            }
        });
        for n in 1..4u32 {
            v.spawn(format!("n{n}:r"), move |ctx| {
                join(&ctx, NodeAddr(n), 3);
                for _ in 0..4 {
                    let _ = mread(&ctx, NodeAddr(n), 3);
                }
            });
        }
        v.run_all();
        let w = v.world();
        for n in 1..4 {
            assert_eq!(w.nodes[n].mcast[&3].bytes_rx, 4 * 1024);
        }
    }

    #[test]
    fn delivery_copies_are_one_gather_per_receiver() {
        // The receive side-buffer path holds fragments as refcounted
        // slices: a single-fragment message reaches `mread` without the
        // simulator copying any payload bytes, and a multi-fragment message
        // costs exactly one reassembly gather per receiver. The meter is
        // process-global, so assert on deltas.
        let single = {
            let before = hpcnet::copymeter::payload_bytes_copied();
            let mut v = VorxBuilder::single_cluster(3).build();
            v.spawn("n0:w", |ctx| {
                let data = vec![7u8; 600];
                mwrite(
                    &ctx,
                    NodeAddr(0),
                    6,
                    vec![NodeAddr(1), NodeAddr(2)],
                    Payload::copy_from(&data),
                );
            });
            for n in 1..3u32 {
                v.spawn(format!("n{n}:r"), move |ctx| {
                    join(&ctx, NodeAddr(n), 6);
                    let _ = mread(&ctx, NodeAddr(n), 6);
                });
            }
            v.run_all();
            hpcnet::copymeter::payload_bytes_copied() - before
        };
        // Only the creation copy inside `Payload::copy_from`: hardware
        // replication to both receivers and both deliveries are zero-copy.
        assert_eq!(single, 600);

        let multi = {
            let before = hpcnet::copymeter::payload_bytes_copied();
            let mut v = VorxBuilder::single_cluster(3).build();
            v.spawn("n0:w", |ctx| {
                let data = vec![7u8; 2500];
                mwrite(
                    &ctx,
                    NodeAddr(0),
                    6,
                    vec![NodeAddr(1), NodeAddr(2)],
                    Payload::copy_from(&data),
                );
            });
            for n in 1..3u32 {
                v.spawn(format!("n{n}:r"), move |ctx| {
                    join(&ctx, NodeAddr(n), 6);
                    let _ = mread(&ctx, NodeAddr(n), 6);
                });
            }
            v.run_all();
            hpcnet::copymeter::payload_bytes_copied() - before
        };
        // Creation + one 3-fragment gather per receiver, nothing per-frame.
        assert_eq!(multi, 2500 + 2 * 2500);
    }

    #[test]
    fn multi_write_emulation_delivers_to_each() {
        let mut v = VorxBuilder::single_cluster(4).build();
        v.spawn("n0:w", |ctx| {
            let chans: Vec<ChannelHandle> = (1..4)
                .map(|n| crate::channel::open(&ctx, NodeAddr(0), &format!("mw-{n}")))
                .collect();
            multi_write(&ctx, &chans, &Payload::copy_from(b"fanout")).unwrap();
        });
        for n in 1..4u32 {
            v.spawn(format!("n{n}:r"), move |ctx| {
                let ch = crate::channel::open(&ctx, NodeAddr(n), &format!("mw-{n}"));
                assert_eq!(ch.read(&ctx).unwrap().bytes().unwrap().as_ref(), b"fanout");
            });
        }
        v.run_all();
    }
}

#[cfg(test)]
mod frag_tests {
    use super::*;
    use crate::world::VorxBuilder;

    #[test]
    fn large_mwrite_fragments_and_reassembles() {
        let mut v = VorxBuilder::single_cluster(4).build();
        let data: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        let expect = data.clone();
        v.spawn("n0:w", move |ctx| {
            join(&ctx, NodeAddr(0), 9);
            mwrite(
                &ctx,
                NodeAddr(0),
                9,
                vec![NodeAddr(1), NodeAddr(2), NodeAddr(3)],
                Payload::Data(bytes::Bytes::from(data)),
            );
        });
        for n in 1..4u32 {
            let expect = expect.clone();
            v.spawn(format!("n{n}:r"), move |ctx| {
                join(&ctx, NodeAddr(n), 9);
                let (src, p) = mread(&ctx, NodeAddr(n), 9);
                assert_eq!(src, NodeAddr(0));
                assert_eq!(p.bytes().unwrap().as_ref(), &expect[..]);
            });
        }
        v.run_all();
    }

    #[test]
    fn interleaved_senders_reassemble_independently() {
        // Two nodes mwrite multi-fragment messages to the same group
        // member; per-sender reassembly must not mix the streams.
        let mut v = VorxBuilder::single_cluster(3).build();
        for src in 0..2u32 {
            v.spawn(format!("n{src}:w"), move |ctx| {
                join(&ctx, NodeAddr(src), 4);
                let byte = 10 + src as u8;
                mwrite(
                    &ctx,
                    NodeAddr(src),
                    4,
                    vec![NodeAddr(2)],
                    Payload::Data(bytes::Bytes::from(vec![byte; 2500])),
                );
            });
        }
        v.spawn("n2:r", |ctx| {
            join(&ctx, NodeAddr(2), 4);
            for _ in 0..2 {
                let (src, p) = mread(&ctx, NodeAddr(2), 4);
                let expect = 10 + src.0 as u8;
                let b = p.bytes().unwrap();
                assert_eq!(b.len(), 2500);
                assert!(b.iter().all(|x| *x == expect), "streams mixed");
            }
        });
        v.run_all();
    }
}
