//! User-defined communications objects (§4.1).
//!
//! "In VORX a general interface for user-defined communications objects is
//! provided. [...] processes can access the hardware registers from their
//! applications, eliminating the overhead of supervisor calls into the
//! kernel and can specify interrupt service routines to handle incoming
//! messages."
//!
//! A UDCO is identified by a small *tag*; frames for tag `t` travel with
//! hardware kind `KIND_UDCO_BASE + t`. Two receive disciplines exist:
//!
//! * [`UdcoMode::Interrupt`] — arrivals run a user interrupt service
//!   routine (charged the kernel-trampoline cost `user_isr_ns`) which
//!   queues the message and wakes blocked receivers.
//! * [`UdcoMode::Polled`] — interrupts stay disabled; the application tests
//!   for input at convenient points (`try_recv`, charged `udco_poll_ns`).
//!   This is the §5 "single subprocess that never switches context"
//!   structuring technique, also used by parallel SPICE.

use std::collections::VecDeque;

use desim::{sync::WaitSet, SimDuration, Wakeup};
use hpcnet::{Frame, NodeAddr, Payload};

use crate::api;
use crate::cpu::{BlockReason, CpuCat};
use crate::kernel;
use crate::proto::KIND_UDCO_BASE;
use crate::world::{VCtx, VSched, World};

/// Receive discipline of a UDCO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdcoMode {
    /// Arrivals invoke a user ISR that queues the message and wakes waiters.
    Interrupt,
    /// Arrivals queue silently; the application polls.
    Polled,
    /// Raw direct-register access (parallel SPICE, §4.1): the kernel is not
    /// involved at all — no interrupt, no kernel FIFO read. The application
    /// polls the hardware itself ([`try_recv_raw`]) and pays the FIFO read
    /// at user level when a message is present.
    Raw,
}

/// A received UDCO message.
#[derive(Debug, Clone)]
pub struct UdcoMsg {
    /// Sending node.
    pub src: NodeAddr,
    /// Sender-chosen correlation tag.
    pub seq: u64,
    /// The payload.
    pub payload: Payload,
}

/// Kernel-side state of one user-defined communications object.
#[derive(Debug)]
pub struct Udco {
    /// The object's tag.
    pub tag: u16,
    /// Receive discipline.
    pub mode: UdcoMode,
    /// Received messages not yet consumed.
    pub rx: VecDeque<UdcoMsg>,
    /// Processes blocked in `recv`.
    pub rx_waiters: WaitSet,
    /// Frames received.
    pub frames_rx: u64,
    /// Frames sent.
    pub frames_tx: u64,
}

/// Register a UDCO with `tag` on `node`. Frames that arrived early (the
/// registration race) are delivered immediately.
pub fn register(ctx: &VCtx, node: NodeAddr, tag: u16, mode: UdcoMode) {
    ctx.with(move |w, s| register_in(w, s, node, tag, mode));
}

/// Event-context variant of [`register`].
pub fn register_in(w: &mut World, s: &mut VSched, node: NodeAddr, tag: u16, mode: UdcoMode) {
    let prev = w.node_mut(node).udcos.insert(
        tag,
        Udco {
            tag,
            mode,
            rx: VecDeque::new(),
            rx_waiters: WaitSet::new(),
            frames_rx: 0,
            frames_tx: 0,
        },
    );
    assert!(
        prev.is_none(),
        "UDCO tag {tag} already registered on {node}"
    );
    // Deliver any frames that raced registration.
    let kind = KIND_UDCO_BASE + tag;
    let orphans = std::mem::take(&mut w.node_mut(node).orphans);
    let (mine, rest): (Vec<Frame>, Vec<Frame>) = orphans.into_iter().partition(|f| f.kind == kind);
    w.node_mut(node).orphans = rest;
    for f in mine {
        on_frame(w, s, node, f);
    }
}

/// Send a UDCO frame from user level: the process builds the frame, copies
/// the payload to the interface, and injects it as soon as the hardware
/// output register (and the kernel's queue ahead of it) is free. Blocks on
/// hardware flow control — that is the *only* flow control unless the
/// application layers its own protocol on top.
pub fn send(ctx: &VCtx, node: NodeAddr, dst: NodeAddr, tag: u16, seq: u64, payload: Payload) {
    let c = ctx.with(|w, _| w.calib);
    let cost = c.udco_send_ns + c.udco_copy_ns_per_byte * u64::from(payload.len());
    api::compute(ctx, node, CpuCat::User, SimDuration::from_ns(cost));
    let pid = ctx.pid();
    let mut frame = Some(Frame::unicast(
        node,
        dst,
        KIND_UDCO_BASE + tag,
        seq,
        payload,
    ));
    let mut blocked = false;
    ctx.wait_until(move |w, s| {
        let now = s.now();
        if kernel::can_inject(w, node) {
            let f = frame.take().expect("frame sent twice");
            if let Some(u) = w.node_mut(node).udcos.get_mut(&tag) {
                u.frames_tx += 1;
            }
            kernel::send_frame(w, s, f);
            if blocked {
                w.unblock(now, node, BlockReason::Output);
            }
            Some(())
        } else {
            w.node_mut(node).tx_waiters.register(pid);
            if !blocked {
                blocked = true;
                w.block(now, node, BlockReason::Output);
            }
            None
        }
    });
}

/// Multicast variant of [`send`]: one injection, hardware replication.
pub fn send_multi(
    ctx: &VCtx,
    node: NodeAddr,
    dsts: Vec<NodeAddr>,
    tag: u16,
    seq: u64,
    payload: Payload,
) {
    let c = ctx.with(|w, _| w.calib);
    let cost = c.udco_send_ns + c.udco_copy_ns_per_byte * u64::from(payload.len());
    api::compute(ctx, node, CpuCat::User, SimDuration::from_ns(cost));
    let pid = ctx.pid();
    let mut frame = Some(Frame {
        src: node,
        dst: hpcnet::Dest::Multicast(dsts.into()),
        kind: KIND_UDCO_BASE + tag,
        seq,
        payload,
        corrupted: false,
    });
    ctx.wait_until(move |w, s| {
        if kernel::can_inject(w, node) {
            let f = frame.take().expect("frame sent twice");
            if let Some(u) = w.node_mut(node).udcos.get_mut(&tag) {
                u.frames_tx += 1;
            }
            kernel::send_frame(w, s, f);
            Some(())
        } else {
            w.node_mut(node).tx_waiters.register(pid);
            None
        }
    });
}

/// Blocking receive on an interrupt-mode UDCO. If the process actually
/// blocks, resuming it costs a full context switch — the §5 80 µs — which
/// is why deep sliding windows (which keep the sender from ever blocking)
/// beat shallow ones by more than pure pipelining would suggest.
pub fn recv(ctx: &VCtx, node: NodeAddr, tag: u16) -> UdcoMsg {
    let pid = ctx.pid();
    let mut blocked = false;
    let (msg, was_blocked) = ctx.wait_until(move |w, s| {
        let now = s.now();
        let u = w
            .node_mut(node)
            .udcos
            .get_mut(&tag)
            .unwrap_or_else(|| panic!("recv on unregistered UDCO {tag} at {node}"));
        match u.rx.pop_front() {
            Some(m) => {
                if blocked {
                    w.unblock(now, node, BlockReason::Input);
                }
                Some((m, blocked))
            }
            None => {
                u.rx_waiters.register(pid);
                if !blocked {
                    blocked = true;
                    w.block(now, node, BlockReason::Input);
                }
                None
            }
        }
    });
    if was_blocked {
        let c = ctx.with(|w, _| w.calib);
        api::compute_ns(ctx, node, CpuCat::System, c.ctx_switch_ns);
    }
    msg
}

/// Non-blocking poll of a (typically polled-mode) UDCO. Charges the poll
/// cost and returns a queued message if any.
pub fn try_recv(ctx: &VCtx, node: NodeAddr, tag: u16) -> Option<UdcoMsg> {
    let c = ctx.with(|w, _| w.calib);
    api::compute_ns(ctx, node, CpuCat::User, c.udco_poll_ns);
    ctx.with(move |w, _| {
        w.node_mut(node)
            .udcos
            .get_mut(&tag)
            .unwrap_or_else(|| panic!("poll on unregistered UDCO {tag} at {node}"))
            .rx
            .pop_front()
    })
}

/// Messages queued on a UDCO (diagnostics).
pub fn rx_depth(ctx: &VCtx, node: NodeAddr, tag: u16) -> usize {
    ctx.with(move |w, _| w.node(node).udcos.get(&tag).map_or(0, |u| u.rx.len()))
}

/// Kernel handler: a UDCO frame arrived.
pub fn on_frame(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    let tag = f.kind - KIND_UDCO_BASE;
    let Some(u) = w.node(node).udcos.get(&tag) else {
        // Registration race: stash until `register` runs.
        w.node_mut(node).orphans.push(f);
        return;
    };
    match u.mode {
        UdcoMode::Interrupt => {
            // Kernel trampoline into the user ISR, then commit.
            let cost = SimDuration::from_ns(w.calib.user_isr_ns);
            let now = s.now();
            let end = w.charge(now, node, CpuCat::System, cost);
            s.schedule_in(end - now, move |w: &mut World, s| {
                commit(w, s, node, f, true);
            });
        }
        UdcoMode::Polled => commit(w, s, node, f, false),
        // Raw mode: nothing is charged here (the app pays at poll time), but
        // blocked spinners are woken so `recv_raw_spin` can re-poll.
        UdcoMode::Raw => commit(w, s, node, f, true),
    }
}

/// True iff frames of this kind bypass the kernel receive path entirely on
/// `node` (raw-mode UDCOs). Consulted by the kernel's receive service.
pub fn is_raw(w: &World, node: NodeAddr, kind: u16) -> bool {
    if kind < KIND_UDCO_BASE {
        return false;
    }
    w.node(node)
        .udcos
        .get(&(kind - KIND_UDCO_BASE))
        .is_some_and(|u| u.mode == UdcoMode::Raw)
}

/// Raw-mode send: the leanest possible path ("no low-level protocol").
pub fn send_raw(ctx: &VCtx, node: NodeAddr, dst: NodeAddr, tag: u16, seq: u64, payload: Payload) {
    let c = ctx.with(|w, _| w.calib);
    let cost = c.raw_send_ns + c.udco_copy_ns_per_byte * u64::from(payload.len());
    api::compute(ctx, node, CpuCat::User, SimDuration::from_ns(cost));
    let pid = ctx.pid();
    let mut frame = Some(Frame::unicast(
        node,
        dst,
        KIND_UDCO_BASE + tag,
        seq,
        payload,
    ));
    ctx.wait_until(move |w, s| {
        if kernel::can_inject(w, node) {
            let f = frame.take().expect("frame sent twice");
            if let Some(u) = w.node_mut(node).udcos.get_mut(&tag) {
                u.frames_tx += 1;
            }
            kernel::send_frame(w, s, f);
            Some(())
        } else {
            w.node_mut(node).tx_waiters.register(pid);
            None
        }
    });
}

/// Raw-mode poll: test the input register; if a message is present, read it
/// out of the hardware FIFO at user level (paying the per-byte read there,
/// since the kernel never touched it).
pub fn try_recv_raw(ctx: &VCtx, node: NodeAddr, tag: u16) -> Option<UdcoMsg> {
    let c = ctx.with(|w, _| w.calib);
    api::compute_ns(ctx, node, CpuCat::User, c.raw_poll_ns);
    let msg = ctx.with(move |w, _| {
        w.node_mut(node)
            .udcos
            .get_mut(&tag)
            .unwrap_or_else(|| panic!("raw poll on unregistered UDCO {tag} at {node}"))
            .rx
            .pop_front()
    });
    if let Some(m) = &msg {
        api::compute(
            ctx,
            node,
            CpuCat::User,
            SimDuration::from_ns(c.fifo_read_ns_per_byte * u64::from(m.payload.len())),
        );
    }
    msg
}

/// Raw-mode blocking receive: spin on [`try_recv_raw`]. The spin re-polls
/// immediately (a tight register-test loop), so each idle iteration costs
/// `raw_poll_ns` of user time — busy waiting, exactly like the real code.
pub fn recv_raw_spin(ctx: &VCtx, node: NodeAddr, tag: u16) -> UdcoMsg {
    loop {
        if let Some(m) = try_recv_raw(ctx, node, tag) {
            return m;
        }
        // Nothing yet: wait until *something* is queued, then poll again.
        let pid = ctx.pid();
        ctx.wait_until(move |w, _| {
            let u = w
                .node_mut(node)
                .udcos
                .get_mut(&tag)
                .expect("raw UDCO vanished");
            if u.rx.is_empty() {
                u.rx_waiters.register(pid);
                None
            } else {
                Some(())
            }
        });
    }
}

fn commit(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame, wake: bool) {
    let tag = f.kind - KIND_UDCO_BASE;
    let Some(u) = w.node_mut(node).udcos.get_mut(&tag) else {
        return; // the node crashed while the frame's charge was in flight
    };
    u.frames_rx += 1;
    u.rx.push_back(UdcoMsg {
        src: f.src,
        seq: f.seq,
        payload: f.payload,
    });
    if wake {
        u.rx_waiters.wake_all(s, Wakeup::START);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::VorxBuilder;

    #[test]
    fn raw_send_recv_round_trip() {
        let mut v = VorxBuilder::single_cluster(2).build();
        v.spawn("n0:tx", |ctx| {
            register(&ctx, NodeAddr(0), 1, UdcoMode::Interrupt);
            send(
                &ctx,
                NodeAddr(0),
                NodeAddr(1),
                1,
                99,
                Payload::copy_from(&[1, 2, 3]),
            );
        });
        v.spawn("n1:rx", |ctx| {
            register(&ctx, NodeAddr(1), 1, UdcoMode::Interrupt);
            let m = recv(&ctx, NodeAddr(1), 1);
            assert_eq!(m.src, NodeAddr(0));
            assert_eq!(m.seq, 99);
            assert_eq!(m.payload.bytes().unwrap().as_ref(), &[1, 2, 3]);
        });
        v.run_all();
    }

    #[test]
    fn early_frames_survive_registration_race() {
        let mut v = VorxBuilder::single_cluster(2).build();
        v.spawn("n0:tx", |ctx| {
            send(&ctx, NodeAddr(0), NodeAddr(1), 2, 5, Payload::Synthetic(64));
        });
        v.spawn("n1:rx", |ctx| {
            ctx.sleep(SimDuration::from_ms(10)); // register long after arrival
            register(&ctx, NodeAddr(1), 2, UdcoMode::Interrupt);
            let m = recv(&ctx, NodeAddr(1), 2);
            assert_eq!(m.seq, 5);
        });
        v.run_all();
    }

    #[test]
    fn polled_mode_queues_without_waking() {
        let mut v = VorxBuilder::single_cluster(2).build();
        v.spawn("n0:tx", |ctx| {
            register(&ctx, NodeAddr(0), 3, UdcoMode::Polled);
            for seq in 0..3 {
                send(
                    &ctx,
                    NodeAddr(0),
                    NodeAddr(1),
                    3,
                    seq,
                    Payload::Synthetic(16),
                );
            }
        });
        v.spawn("n1:rx", |ctx| {
            register(&ctx, NodeAddr(1), 3, UdcoMode::Polled);
            let mut got = Vec::new();
            // Poll at convenient points, like the SPICE solver (§4.1/§5).
            while got.len() < 3 {
                if let Some(m) = try_recv(&ctx, NodeAddr(1), 3) {
                    got.push(m.seq);
                } else {
                    ctx.sleep(SimDuration::from_us(200));
                }
            }
            assert_eq!(got, vec![0, 1, 2]);
        });
        v.run_all();
    }

    #[test]
    fn two_udcos_coexist_with_own_protocols() {
        // "permits several user-defined objects, each with its own protocol,
        // to be simultaneously used."
        let mut v = VorxBuilder::single_cluster(2).build();
        v.spawn("n0:tx", |ctx| {
            register(&ctx, NodeAddr(0), 10, UdcoMode::Interrupt);
            register(&ctx, NodeAddr(0), 11, UdcoMode::Polled);
            send(&ctx, NodeAddr(0), NodeAddr(1), 10, 1, Payload::Synthetic(8));
            send(&ctx, NodeAddr(0), NodeAddr(1), 11, 2, Payload::Synthetic(8));
        });
        v.spawn("n1:rx", |ctx| {
            register(&ctx, NodeAddr(1), 10, UdcoMode::Interrupt);
            register(&ctx, NodeAddr(1), 11, UdcoMode::Polled);
            let a = recv(&ctx, NodeAddr(1), 10);
            assert_eq!(a.seq, 1);
            // The polled object never wakes anyone: poll for it.
            let b = loop {
                if let Some(m) = try_recv(&ctx, NodeAddr(1), 11) {
                    break m;
                }
                ctx.sleep(SimDuration::from_us(100));
            };
            assert_eq!(b.seq, 2);
        });
        v.run_all();
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let mut v = VorxBuilder::single_cluster(2).build();
        v.spawn("n0:dup", |ctx| {
            register(&ctx, NodeAddr(0), 1, UdcoMode::Interrupt);
            register(&ctx, NodeAddr(0), 1, UdcoMode::Polled);
        });
        v.run_all();
    }
}

#[cfg(test)]
mod raw_tests {
    use super::*;
    use crate::world::VorxBuilder;
    use desim::SimTime;

    #[test]
    fn raw_round_trip_bypasses_kernel_charges() {
        let mut v = VorxBuilder::single_cluster(2).build();
        v.spawn("n0:tx", |ctx| {
            register(&ctx, NodeAddr(0), 5, UdcoMode::Raw);
            send_raw(&ctx, NodeAddr(0), NodeAddr(1), 5, 1, Payload::Synthetic(64));
        });
        v.spawn("n1:rx", |ctx| {
            register(&ctx, NodeAddr(1), 5, UdcoMode::Raw);
            let m = recv_raw_spin(&ctx, NodeAddr(1), 5);
            assert_eq!(m.seq, 1);
            assert_eq!(m.payload.len(), 64);
        });
        v.run_all();
        let w = v.world();
        // Receiver paid only user time: no kernel (system) charges at all.
        assert_eq!(w.nodes[1].cpu.system_ns, 0);
        assert!(w.nodes[1].cpu.user_ns > 0);
    }

    #[test]
    fn spice_latency_is_near_60us_for_64_bytes() {
        // §4.1: "It was able to obtain 60 µsec software latencies for 64
        // byte messages with direct access to the communications hardware
        // and no low-level protocol."
        let mut v = VorxBuilder::single_cluster(2).build();
        v.spawn("n0:tx", |ctx| {
            register(&ctx, NodeAddr(0), 5, UdcoMode::Raw);
            send_raw(&ctx, NodeAddr(0), NodeAddr(1), 5, 0, Payload::Synthetic(64));
        });
        v.spawn("n1:rx", |ctx| {
            register(&ctx, NodeAddr(1), 5, UdcoMode::Raw);
            let _ = recv_raw_spin(&ctx, NodeAddr(1), 5);
            let t = (ctx.now() - SimTime::ZERO).as_us_f64();
            assert!(
                (45.0..=80.0).contains(&t),
                "one-way raw 64B latency {t:.1}us should be near the paper's 60us"
            );
        });
        v.run_all();
    }

    #[test]
    fn try_recv_raw_returns_none_when_empty() {
        let mut v = VorxBuilder::single_cluster(2).build();
        v.spawn("n1:poll", |ctx| {
            register(&ctx, NodeAddr(1), 6, UdcoMode::Raw);
            assert!(try_recv_raw(&ctx, NodeAddr(1), 6).is_none());
        });
        v.run_all();
    }
}

// ---------------------------------------------------------------------------
// Rendezvous (§4.1): "User-defined communications objects are integrated
// with the object manager, allowing these objects to use the same
// rendezvous mechanism as channels."
// ---------------------------------------------------------------------------

/// A rendezvoused user-defined communications object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdcoBinding {
    /// The assigned tag (shared by both parties).
    pub tag: u16,
    /// The local node.
    pub node: NodeAddr,
    /// The peer node.
    pub peer: NodeAddr,
}

/// Open a UDCO by name: rendezvous through the object manager exactly like
/// a channel open, then register the assigned tag locally with `mode` (the
/// receive discipline is each side's own choice).
pub fn open(ctx: &VCtx, node: NodeAddr, name: &str, mode: UdcoMode) -> UdcoBinding {
    let c = ctx.with(|w, _| w.calib);
    api::compute_ns(ctx, node, CpuCat::System, c.chan_read_syscall_ns);
    let (id, peer) = crate::objmgr::rendezvous(ctx, node, name, crate::proto::ObjKind::Udco)
        .expect("UDCO open failed under fault injection");
    // Tags share the system-wide object-id space; the hardware kind field
    // bounds them.
    let tag = u16::try_from(id).expect("object id exceeded the UDCO tag space");
    ctx.with(move |w, s| {
        // A same-node rendezvous registers once.
        if !w.node(node).udcos.contains_key(&tag) {
            register_in(w, s, node, tag, mode);
        }
    });
    UdcoBinding { tag, node, peer }
}

// ---------------------------------------------------------------------------
// Scatter/gather (§4.1): "Other application-specific input and output
// techniques, such as scatter/gather may also be implemented."
// ---------------------------------------------------------------------------

/// Gather several user buffers into one frame and send it. The per-part
/// fixed cost models the extra descriptor handling; the bytes are copied
/// once, directly from each buffer to the interface.
pub fn send_gather(
    ctx: &VCtx,
    node: NodeAddr,
    dst: NodeAddr,
    tag: u16,
    seq: u64,
    parts: &[Payload],
) {
    let total: u32 = parts.iter().map(Payload::len).sum();
    assert!(
        total <= hpcnet::MAX_PAYLOAD,
        "gathered message exceeds one hardware frame"
    );
    let c = ctx.with(|w, _| w.calib);
    let cost = c.udco_send_ns
        + c.udco_poll_ns * parts.len() as u64 // descriptor per part
        + c.udco_copy_ns_per_byte * u64::from(total);
    api::compute(ctx, node, CpuCat::User, SimDuration::from_ns(cost));
    // Assemble the gathered payload. A single data part passes through
    // zero-copy; a real gather goes through the pooled buffer (the physical
    // copy is already charged above and metered by the buffer pool path).
    let payload = if parts.len() == 1 && parts[0].bytes().is_some() {
        parts[0].clone()
    } else if parts.iter().all(|p| p.bytes().is_some()) {
        let mut b = ctx
            .with(|w, _| w.payload_pool.clone())
            .acquire(total as usize);
        for p in parts {
            b.extend_from_slice(p.bytes().expect("checked"));
        }
        hpcnet::copymeter::add(u64::from(total));
        Payload::Data(b.freeze())
    } else {
        Payload::Synthetic(total)
    };
    let pid = ctx.pid();
    let mut frame = Some(Frame::unicast(
        node,
        dst,
        KIND_UDCO_BASE + tag,
        seq,
        payload,
    ));
    ctx.wait_until(move |w, s| {
        if kernel::can_inject(w, node) {
            let f = frame.take().expect("frame sent twice");
            if let Some(u) = w.node_mut(node).udcos.get_mut(&tag) {
                u.frames_tx += 1;
            }
            kernel::send_frame(w, s, f);
            Some(())
        } else {
            w.node_mut(node).tx_waiters.register(pid);
            None
        }
    });
}

/// Receive one message and scatter it into buffers of the given lengths
/// (which must sum to the message length). Models the inverse descriptor
/// walk; returns the scattered parts.
pub fn recv_scatter(ctx: &VCtx, node: NodeAddr, tag: u16, part_lens: &[u32]) -> Vec<Payload> {
    let m = recv(ctx, node, tag);
    let total: u32 = part_lens.iter().sum();
    assert_eq!(
        m.payload.len(),
        total,
        "scatter lengths must match the received message"
    );
    let c = ctx.with(|w, _| w.calib);
    api::compute_ns(
        ctx,
        node,
        CpuCat::User,
        c.udco_poll_ns * part_lens.len() as u64,
    );
    match m.payload {
        Payload::Data(b) => {
            let mut out = Vec::with_capacity(part_lens.len());
            let mut off = 0usize;
            for &l in part_lens {
                out.push(Payload::Data(b.slice(off..off + l as usize)));
                off += l as usize;
            }
            out
        }
        Payload::Synthetic(_) => part_lens.iter().map(|l| Payload::Synthetic(*l)).collect(),
    }
}

#[cfg(test)]
mod rendezvous_tests {
    use super::*;
    use crate::world::VorxBuilder;

    #[test]
    fn udco_open_matches_by_name() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1:a", |ctx| {
            let b = open(&ctx, NodeAddr(1), "fastpath", UdcoMode::Interrupt);
            assert_eq!(b.peer, NodeAddr(2));
            send(
                &ctx,
                NodeAddr(1),
                b.peer,
                b.tag,
                7,
                Payload::copy_from(&[1, 2]),
            );
        });
        v.spawn("n2:b", |ctx| {
            let b = open(&ctx, NodeAddr(2), "fastpath", UdcoMode::Interrupt);
            assert_eq!(b.peer, NodeAddr(1));
            let m = recv(&ctx, NodeAddr(2), b.tag);
            assert_eq!(m.seq, 7);
            assert_eq!(m.payload.bytes().unwrap().as_ref(), &[1, 2]);
        });
        v.run_all();
    }

    #[test]
    fn udco_and_channel_names_do_not_collide() {
        // The same name opened as a channel and as a UDCO are different
        // objects (kind is part of the rendezvous key).
        let mut v = VorxBuilder::single_cluster(5).build();
        v.spawn("n1:chan-a", |ctx| {
            let ch = crate::channel::open(&ctx, NodeAddr(1), "shared-name");
            assert_eq!(ch.peer, NodeAddr(2));
            ch.write(&ctx, Payload::Synthetic(4)).unwrap();
        });
        v.spawn("n2:chan-b", |ctx| {
            let ch = crate::channel::open(&ctx, NodeAddr(2), "shared-name");
            let _ = ch.read(&ctx).unwrap();
        });
        v.spawn("n3:udco-a", |ctx| {
            let b = open(&ctx, NodeAddr(3), "shared-name", UdcoMode::Interrupt);
            assert_eq!(b.peer, NodeAddr(4));
        });
        v.spawn("n4:udco-b", |ctx| {
            let b = open(&ctx, NodeAddr(4), "shared-name", UdcoMode::Interrupt);
            assert_eq!(b.peer, NodeAddr(3));
        });
        v.run_all();
    }

    #[test]
    fn gather_scatter_round_trip() {
        let mut v = VorxBuilder::single_cluster(2).build();
        v.spawn("n0:tx", |ctx| {
            register(&ctx, NodeAddr(0), 3, UdcoMode::Interrupt);
            send_gather(
                &ctx,
                NodeAddr(0),
                NodeAddr(1),
                3,
                0,
                &[
                    Payload::copy_from(b"hdr"),
                    Payload::copy_from(b"body-body"),
                    Payload::copy_from(b"ck"),
                ],
            );
        });
        v.spawn("n1:rx", |ctx| {
            register(&ctx, NodeAddr(1), 3, UdcoMode::Interrupt);
            let parts = recv_scatter(&ctx, NodeAddr(1), 3, &[3, 9, 2]);
            assert_eq!(parts[0].bytes().unwrap().as_ref(), b"hdr");
            assert_eq!(parts[1].bytes().unwrap().as_ref(), b"body-body");
            assert_eq!(parts[2].bytes().unwrap().as_ref(), b"ck");
        });
        v.run_all();
    }

    #[test]
    #[should_panic(expected = "exceeds one hardware frame")]
    fn gather_rejects_oversize() {
        let mut v = VorxBuilder::single_cluster(2).build();
        v.spawn("n0:tx", |ctx| {
            register(&ctx, NodeAddr(0), 3, UdcoMode::Interrupt);
            send_gather(
                &ctx,
                NodeAddr(0),
                NodeAddr(1),
                3,
                0,
                &[Payload::Synthetic(800), Payload::Synthetic(800)],
            );
        });
        v.run_all();
    }
}

#[cfg(test)]
mod multi_tests {
    use super::*;
    use crate::world::VorxBuilder;

    #[test]
    fn send_multi_reaches_every_destination_once() {
        let mut v = VorxBuilder::single_cluster(5).build();
        v.spawn("n0:tx", |ctx| {
            register(&ctx, NodeAddr(0), 12, UdcoMode::Interrupt);
            send_multi(
                &ctx,
                NodeAddr(0),
                vec![NodeAddr(1), NodeAddr(2), NodeAddr(3), NodeAddr(4)],
                12,
                5,
                Payload::copy_from(b"mc"),
            );
        });
        for n in 1..5u32 {
            v.spawn(format!("n{n}:rx"), move |ctx| {
                register(&ctx, NodeAddr(n), 12, UdcoMode::Interrupt);
                let m = recv(&ctx, NodeAddr(n), 12);
                assert_eq!(m.seq, 5);
                assert_eq!(m.payload.bytes().unwrap().as_ref(), b"mc");
                // Nothing else arrives.
                assert!(try_recv(&ctx, NodeAddr(n), 12).is_none());
            });
        }
        v.run_all();
        // The source injected exactly one frame (hardware replication).
        assert_eq!(v.world().net.stats.per_endpoint_tx[0], 1);
    }
}
