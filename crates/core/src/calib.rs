//! The 1988 cost model: every software cost constant used by the VORX
//! simulation, in one place.
//!
//! The paper's nodes are 25 MHz Motorola 68020s with 68882 FPUs; hosts are
//! SUN-3 workstations running SunOS. We cannot run that hardware, so each
//! software operation is charged a calibrated amount of simulated CPU time.
//! `Calibration::paper_1988()` is tuned so that the reproduction of Table 1
//! and Table 2 lands near the published values; the derivation of each
//! number is given on its field.
//!
//! Everything is expressed in nanoseconds (`u64`), convertible with
//! [`Calibration::d`] into `SimDuration`.

use desim::SimDuration;

/// Software cost constants for the VORX kernel, user-level communications,
/// and host workstations. See module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Calibration {
    // ----- kernel interrupt / receive path -----
    /// Interrupt entry + vectoring + kernel prologue.
    pub intr_entry_ns: u64,
    /// Kernel demultiplex of a received frame (find channel/object, header
    /// checks) after it has been read from the FIFO.
    pub rx_dispatch_ns: u64,
    /// Reading one byte from the HPC input FIFO into kernel memory
    /// (68020 word-copy loop).
    pub fifo_read_ns_per_byte: u64,

    // ----- channel protocol (§4, Table 2) -----
    /// `write` syscall entry, protocol header construction, transmit start.
    pub chan_write_syscall_ns: u64,
    /// `read` syscall entry/exit bookkeeping (excluding the data copy).
    pub chan_read_syscall_ns: u64,
    /// Copying a received message from kernel FIFO staging into a channel
    /// side buffer, per byte. The kernel acks only after this copy, so it is
    /// on the sender-visible path.
    pub chan_sidebuf_ns_per_byte: u64,
    /// Generating and transmitting the kernel-level acknowledgement.
    pub chan_ack_gen_ns: u64,
    /// Copying from the side buffer to the reader's user buffer, per byte
    /// (off the sender-visible path).
    pub copy_user_ns_per_byte: u64,
    /// Side buffers per channel end ("the kernel has many side buffers").
    pub chan_side_buffers: usize,

    // ----- subprocess scheduling (§5) -----
    /// A full context switch, "which includes saving both fixed and floating
    /// point registers[,] takes 80 µsec" — measured by the paper.
    pub ctx_switch_ns: u64,
    /// A coroutine switch: "most registers need not be saved".
    pub coroutine_switch_ns: u64,

    // ----- user-defined communications objects (§4.1, Table 1) -----
    /// User-level send with direct hardware access: build the frame and poke
    /// the output registers (no supervisor call).
    pub udco_send_ns: u64,
    /// Copying the payload into the output interface, per byte.
    pub udco_copy_ns_per_byte: u64,
    /// Kernel trampoline into a user-specified interrupt service routine and
    /// back (the price of taking interrupts at user level).
    pub user_isr_ns: u64,
    /// Polling the interface for input with interrupts disabled (§5's
    /// "test for input at convenient places" technique).
    pub udco_poll_ns: u64,
    /// Raw-mode send: the leanest direct-register path (parallel SPICE's
    /// "no low-level protocol" technique, §4.1).
    pub raw_send_ns: u64,
    /// Raw-mode input poll (a register test in a tight loop).
    pub raw_poll_ns: u64,

    // ----- object manager (§3.2) -----
    /// Service time for one channel-open request at an object manager.
    pub objmgr_service_ns: u64,

    // ----- hosts and stubs (§3.3) -----
    /// Creating one stub process on a SunOS host (fork + exec + channel
    /// plumbing). Dominates the per-process-stub download path.
    pub stub_create_ns: u64,
    /// Host-side service time for one forwarded UNIX system call.
    pub host_syscall_ns: u64,
    /// Host CPU copy rate, per byte (program text downloads).
    pub host_copy_ns_per_byte: u64,
    /// Open file descriptors allowed per stub ("limited by the SunOS kernel
    /// to 32 open file descriptors").
    pub stub_fd_limit: usize,

    // ----- fault recovery (timeouts and retry budgets) -----
    //
    // The 1988 hardware never lost a frame (store-and-forward with hardware
    // flow control), so these constants have no Table to calibrate against.
    // They are protocol constants, not CPU costs: `instant()` keeps them
    // nonzero because a zero retransmission timeout would be a busy loop.
    /// Base ack timeout for a channel data fragment; doubles per retry.
    pub chan_ack_timeout_ns: u64,
    /// Retransmissions of a data fragment before the peer is declared down.
    pub chan_max_retries: u32,
    /// Base timeout for reliable control frames (open replies, connect
    /// notifications, closes); doubles per retry.
    pub ctl_timeout_ns: u64,
    /// Retransmissions of a control frame before giving up.
    pub ctl_max_retries: u32,
    /// Base timeout for an unacknowledged open/listen request to the object
    /// manager; doubles per retry.
    pub open_timeout_ns: u64,
    /// Retransmissions of an open/listen request before the manager is
    /// declared unreachable.
    pub open_max_retries: u32,
    /// Delay between a node crash and its peers learning of it (the soft
    /// failure-detection sweep). `u64::MAX` disables detection, leaving
    /// retry exhaustion as the only signal.
    pub crash_detect_ns: u64,
    /// Delay between a link failure and the membership sweep declaring
    /// mutually unreachable (but alive) node pairs *partitioned*. Pairs are
    /// snapshotted at link-down time and rechecked when the sweep fires, so
    /// a heal inside the window suppresses the declaration. `u64::MAX`
    /// disables the sweep, leaving heartbeat-probe exhaustion as the only
    /// partition signal.
    pub partition_detect_ns: u64,

    // ----- adaptive timers (gray failures, DESIGN.md §15) -----
    //
    // Jacobson/Karn retransmission-timer estimation: RTO = SRTT + 4·RTTVAR,
    // clamped to [rto_floor_ns, rto_ceil_ns]. The estimator arms only when
    // the fault schedule contains a gray (pure-delay) degradation window;
    // otherwise every timer uses the fixed calibration constants above and
    // traces stay byte-identical to pre-estimator builds.
    /// Lower clamp on the adaptive retransmission timeout. Keeps a freshly
    /// converged estimator from firing inside normal delivery jitter.
    pub rto_floor_ns: u64,
    /// Upper clamp on the adaptive retransmission timeout (pre-backoff).
    pub rto_ceil_ns: u64,
    /// Downs within [`Calibration::flap_window_ns`] before the fault plane
    /// declares a link *flapping* and holds it down.
    pub flap_damp_downs: u32,
    /// Sliding window over which downs of one link count toward damping.
    pub flap_window_ns: u64,
    /// How long a flapping link is held down after its last transition
    /// before it is reinstated (hysteresis: each new flap extends the hold).
    pub flap_hold_ns: u64,

    // ----- windowed channel data path (Tables 1/2 ordering) -----
    //
    // The paper's §5 channels are stop-and-wait; its Table 1 shows the
    // sliding-window UDCO roughly doubling goodput over them. These
    // constants make windowed transfer a first-class *channel* mode:
    // `chan_window = 1` is bit-for-bit the stop-and-wait protocol, and any
    // larger value enables the credit-based pipeline (see DESIGN.md §10).
    /// Fragments a writer may keep in flight before blocking. 1 =
    /// stop-and-wait (the paper's §5 protocol and the default).
    pub chan_window: u32,
    /// Receiver-side fragment buffering in windowed mode: the credit pool
    /// advertised to the writer (side buffers counted in fragments, like the
    /// UDCO "buffers" column of Table 1).
    pub chan_rx_frag_buffers: u32,
    /// Bound on the receiver's out-of-order reorder buffer, in fragments.
    /// Clamped to 32 (the selective-ack bitmap width); fragments beyond
    /// `cum_ack + bound` are dropped and retransmitted later.
    pub chan_reorder_frags: u32,

    // ----- resource budgets (graceful degradation, DESIGN.md §13) -----
    //
    // Every kernel table is bounded so an overloaded or abused node refuses
    // work (`VorxError::ResourceExhausted`) instead of growing without
    // limit. The defaults are far above anything a correct workload reaches,
    // so they change no existing behavior.
    /// Channels a single node may hold open concurrently; `rendezvous`
    /// refuses further opens.
    pub max_chans_per_node: usize,
    /// Unaccepted connections a listener may queue; further `SERVE_CONN`s
    /// are discarded (the client's own open retry/timeout path recovers).
    pub listener_backlog_cap: usize,
    /// Pending open requests the object manager may queue per name; further
    /// requesters get a reliable `KIND_OPEN_NACK`.
    pub mgr_pending_cap: usize,
}

impl Calibration {
    /// The tuned 1988 model. Rationale:
    ///
    /// * `ctx_switch_ns = 80_000` is measured by the paper (§5).
    /// * FIFO/copy rates ≈ 0.3 µs/byte: a 25 MHz 68020 moving one 32-bit
    ///   word per ~7-8 cycles of loads/stores/loop overhead.
    /// * The channel fixed costs are tuned so a 4-byte channel write cycle
    ///   lands at ≈ 303 µs (Table 2) with the hardware model's two hops.
    /// * The UDCO costs are tuned so the sliding-window asymptote lands near
    ///   164 µs for 4-byte messages (Table 1, 64 buffers).
    pub fn paper_1988() -> Self {
        Calibration {
            intr_entry_ns: 20_000,
            rx_dispatch_ns: 12_000,
            fifo_read_ns_per_byte: 300,
            chan_write_syscall_ns: 106_000,
            chan_read_syscall_ns: 25_000,
            chan_sidebuf_ns_per_byte: 300,
            chan_ack_gen_ns: 18_000,
            copy_user_ns_per_byte: 150,
            chan_side_buffers: 8,
            ctx_switch_ns: 80_000,
            coroutine_switch_ns: 8_000,
            udco_send_ns: 45_000,
            udco_copy_ns_per_byte: 300,
            user_isr_ns: 60_000,
            udco_poll_ns: 5_000,
            raw_send_ns: 10_000,
            raw_poll_ns: 2_000,
            objmgr_service_ns: 150_000,
            stub_create_ns: 60_000_000,
            host_syscall_ns: 2_000_000,
            host_copy_ns_per_byte: 100,
            stub_fd_limit: 32,
            chan_ack_timeout_ns: 20_000_000,
            chan_max_retries: 6,
            ctl_timeout_ns: 20_000_000,
            ctl_max_retries: 6,
            open_timeout_ns: 50_000_000,
            open_max_retries: 8,
            crash_detect_ns: 200_000_000,
            partition_detect_ns: 250_000_000,
            rto_floor_ns: 5_000_000,
            rto_ceil_ns: 640_000_000,
            flap_damp_downs: 3,
            flap_window_ns: 50_000_000,
            flap_hold_ns: 100_000_000,
            chan_window: 1,
            chan_rx_frag_buffers: 64,
            chan_reorder_frags: 32,
            max_chans_per_node: 4096,
            listener_backlog_cap: 1024,
            mgr_pending_cap: 4096,
        }
    }

    /// The 1988 model with a `w`-fragment channel window (`w = 1` is
    /// [`Calibration::paper_1988`] exactly).
    pub fn paper_1988_windowed(w: u32) -> Self {
        let mut c = Calibration::paper_1988();
        c.chan_window = w.max(1);
        c
    }

    /// An idealized zero-cost-software calibration, useful in unit tests
    /// that check protocol *logic* rather than timing.
    pub fn instant() -> Self {
        Calibration {
            intr_entry_ns: 0,
            rx_dispatch_ns: 0,
            fifo_read_ns_per_byte: 0,
            chan_write_syscall_ns: 0,
            chan_read_syscall_ns: 0,
            chan_sidebuf_ns_per_byte: 0,
            chan_ack_gen_ns: 0,
            copy_user_ns_per_byte: 0,
            chan_side_buffers: 8,
            ctx_switch_ns: 0,
            coroutine_switch_ns: 0,
            udco_send_ns: 0,
            udco_copy_ns_per_byte: 0,
            user_isr_ns: 0,
            udco_poll_ns: 0,
            raw_send_ns: 0,
            raw_poll_ns: 0,
            objmgr_service_ns: 0,
            stub_create_ns: 0,
            host_syscall_ns: 0,
            host_copy_ns_per_byte: 0,
            stub_fd_limit: 32,
            chan_ack_timeout_ns: 20_000_000,
            chan_max_retries: 6,
            ctl_timeout_ns: 20_000_000,
            ctl_max_retries: 6,
            open_timeout_ns: 50_000_000,
            open_max_retries: 8,
            crash_detect_ns: 200_000_000,
            partition_detect_ns: 250_000_000,
            rto_floor_ns: 5_000_000,
            rto_ceil_ns: 640_000_000,
            flap_damp_downs: 3,
            flap_window_ns: 50_000_000,
            flap_hold_ns: 100_000_000,
            chan_window: 1,
            chan_rx_frag_buffers: 64,
            chan_reorder_frags: 32,
            max_chans_per_node: 4096,
            listener_backlog_cap: 1024,
            mgr_pending_cap: 4096,
        }
    }

    /// Convert a nanosecond constant into a `SimDuration`.
    pub fn d(ns: u64) -> SimDuration {
        SimDuration::from_ns(ns)
    }

    /// Cost of moving `bytes` at `rate` ns/byte.
    pub fn per_byte(rate: u64, bytes: u32) -> SimDuration {
        SimDuration::from_ns(rate * u64::from(bytes))
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::paper_1988()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_context_switch_is_80us() {
        assert_eq!(Calibration::paper_1988().ctx_switch_ns, 80_000);
    }

    #[test]
    fn instant_calibration_is_free() {
        let c = Calibration::instant();
        assert_eq!(c.chan_write_syscall_ns, 0);
        assert_eq!(c.ctx_switch_ns, 0);
    }

    #[test]
    fn per_byte_scales() {
        assert_eq!(
            Calibration::per_byte(300, 1024),
            SimDuration::from_ns(307_200)
        );
    }
}
