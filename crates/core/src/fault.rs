//! The VORX side of the fault plane: crash/restart handling, the reliable
//! control-frame machinery, and recovery statistics.
//!
//! The 1988 hardware gave VORX a luxury most distributed kernels never had:
//! the HPC's store-and-forward buffering with hardware flow control meant a
//! frame, once accepted, was never lost. The recovery protocols here extend
//! the reproduction beyond that guarantee: when a seeded
//! [`desim::FaultSchedule`] is installed, frames can be dropped, corrupted,
//! or delayed in transit and nodes can crash and restart — and the channel
//! and object-manager protocols must recover (timeout, retransmit, dedup,
//! failover) rather than hang or panic.
//!
//! Everything fires as ordinary simulation events from seeded streams, so a
//! faulted run replays bit-identically from the same `(workload seed, fault
//! seed)` pair.

use desim::{SimDuration, Wakeup};
use hpcnet::{Frame, LinkId, NodeAddr, Payload, Transit};

use crate::cpu::TraceEvent;
use crate::kernel;
use crate::proto;
use crate::world::{VCtx, VSched, World};

/// Recovery-protocol counters, kept alongside the schedule in
/// [`World::faults`].
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// Data/control/open frames retransmitted after an ack timeout.
    pub retransmits: u64,
    /// Duplicate channel fragments suppressed by the receiver (the ack was
    /// lost, or a retransmission crossed the ack in flight).
    pub dups_suppressed: u64,
    /// Frames discarded on arrival because the interface's CRC check failed.
    pub corrupted_rx: u64,
    /// `KIND_CHAN_BUSY` notifications sent (flow-control stall, not loss).
    pub busy_sent: u64,
    /// Channel ends that declared their peer down (retry exhaustion or the
    /// failure-detection sweep).
    pub peer_down_events: u64,
    /// Node crashes injected.
    pub crashes: u64,
    /// Node restarts injected.
    pub restarts: u64,
    /// Heartbeat beacons sent by the membership layer (partition suspicion).
    pub probes_sent: u64,
    /// Ordered node pairs declared partitioned (detection sweep or beacon
    /// exhaustion).
    pub partitions: u64,
    /// Partition marks cleared by the heal sweep.
    pub heals: u64,
    /// Pending opens failed over from an unreachable hash-home manager to
    /// its successor replica.
    pub mgr_failovers: u64,
    /// Retry exhaustions converted into membership probes because the fabric
    /// was under an overload budget: the writer rides out shedding via the
    /// pause/resume path instead of declaring its (alive) peer down.
    pub overload_rideouts: u64,
    /// Open requests refused (`KIND_OPEN_NACK`) or listener connections
    /// discarded because a bounded kernel table was full.
    pub table_rejects: u64,
    /// Collective attempt epochs opened by a root's retry timer (a
    /// contribution or flushed partial was lost, or a straggler outlasted
    /// the timeout — see DESIGN.md §16).
    pub coll_retries: u64,
}

/// The fault plane as the world sees it: the seeded schedule plus the
/// recovery statistics. Implements [`hpcnet::FaultHook`] so the fabric
/// consults the schedule (and its private RNG streams) on every hop.
#[derive(Debug)]
pub struct FaultState {
    /// The installed schedule (empty and fault-free by default).
    pub schedule: desim::FaultSchedule,
    /// Recovery counters.
    pub stats: FaultStats,
    /// True iff the schedule contains a gray (pure-delay) degradation
    /// window. Cached at construction: the transport RTT estimators sample
    /// and adapt only when set, so fault-free and loss-only runs keep the
    /// fixed calibration timers and replay byte-identically.
    pub gray_armed: bool,
    /// Cached [`desim::FaultSchedule::track_latency`]: whether delivered
    /// per-link latency statistics are recorded (off on clean scale runs).
    pub(crate) track_latency: bool,
    /// Flap damping: recent down timestamps per link, pruned to
    /// `flap_window_ns`. Keyed lookups only — never iterated.
    flap_history: std::collections::HashMap<u32, std::collections::VecDeque<u64>>,
    /// Links currently held down by the damper, with the suppress epoch
    /// owning the pending reinstate timer (each new transition while held
    /// bumps the epoch, extending the hold).
    flap_held: std::collections::HashMap<u32, u64>,
}

impl FaultState {
    /// Wrap a schedule with zeroed statistics.
    pub fn new(schedule: desim::FaultSchedule) -> Self {
        let gray_armed = schedule.gray_possible();
        let track_latency = schedule.track_latency();
        FaultState {
            schedule,
            stats: FaultStats::default(),
            gray_armed,
            track_latency,
            flap_history: std::collections::HashMap::new(),
            flap_held: std::collections::HashMap::new(),
        }
    }

    /// True iff the damper is currently holding `l` down.
    pub fn is_flap_held(&self, l: LinkId) -> bool {
        self.flap_held.contains_key(&l.0)
    }

    /// Downs of `l` recorded within the damping window ending at `now_ns`.
    fn downs_in_window(&mut self, l: LinkId, now_ns: u64, window_ns: u64) -> usize {
        match self.flap_history.get_mut(&l.0) {
            Some(h) => {
                while h.front().is_some_and(|&t| t + window_ns < now_ns) {
                    h.pop_front();
                }
                h.len()
            }
            None => 0,
        }
    }
}

impl hpcnet::FaultHook for FaultState {
    fn on_transit(&mut self, link: LinkId, _frame: &Frame, now_ns: u64, hop_ns: u64) -> Transit {
        let disp = self.schedule.disposition(link.0);
        // Gray degradation stacks on top of the probabilistic disposition:
        // a frame that survives loss still crosses the slow link.
        let gray = if self.gray_armed {
            self.schedule.gray_delay_ns(link.0, now_ns, hop_ns)
        } else {
            0
        };
        let t = match disp {
            desim::Disposition::Deliver if gray > 0 => Transit::Delay(gray),
            desim::Disposition::Deliver => Transit::Deliver,
            desim::Disposition::Drop => Transit::Drop,
            desim::Disposition::Corrupt => Transit::Corrupt,
            desim::Disposition::Delay(ns) => Transit::Delay(ns + gray),
        };
        if self.track_latency {
            match t {
                Transit::Deliver | Transit::Corrupt => self.schedule.note_delivered(link.0, hop_ns),
                Transit::Delay(extra) => self.schedule.note_delivered(link.0, hop_ns + extra),
                Transit::Drop => {}
            }
        }
        t
    }

    fn on_down_drop(&mut self, link: LinkId) {
        self.schedule.note_down_drop(link.0);
    }

    fn on_overload_drop(&mut self, link: LinkId) {
        self.schedule.note_overload_shed(link.0);
    }
}

/// A reliably-delivered control frame awaiting its `KIND_CTL_ACK`.
#[derive(Debug, Clone)]
pub struct CtlPending {
    /// The frame, kept for retransmission.
    pub frame: Frame,
    /// Retransmissions so far (stale timers key off this).
    pub attempts: u32,
    /// Base retransmit timeout for this frame (doubles per attempt).
    /// `ctl_timeout_ns` for ordinary control traffic; heartbeat probes use
    /// an adaptive deadline derived from the peer's observed RTT.
    pub base_timeout_ns: u64,
    /// The armed retransmit timer, disarmed when the ack arrives.
    pub timer: Option<desim::TimerHandle>,
}

/// Send a control frame (open reply, connect notification, close) with
/// at-least-once delivery: the receiver echoes `frame.seq` in a
/// `KIND_CTL_ACK`; until that arrives the sender retransmits with doubling
/// timeouts, giving up after `ctl_max_retries`. `frame.seq` must be unique
/// among the sender's outstanding control frames (tokens and
/// `chan_seq(id, 0)` keys never collide).
pub fn reliable_send(w: &mut World, s: &mut VSched, frame: Frame) {
    let base = w.calib.ctl_timeout_ns;
    reliable_send_with_timeout(w, s, frame, base);
}

/// [`reliable_send`] with an explicit base timeout — the membership layer's
/// heartbeat probes derive theirs from the peer's RTT estimate instead of
/// the fixed control-plane constant.
pub fn reliable_send_with_timeout(
    w: &mut World,
    s: &mut VSched,
    frame: Frame,
    base_timeout_ns: u64,
) {
    let from = frame.src;
    let key = frame.seq;
    w.node_mut(from).ctl_unacked.insert(
        key,
        CtlPending {
            frame: frame.clone(),
            attempts: 0,
            base_timeout_ns,
            timer: None,
        },
    );
    kernel::send_frame(w, s, frame);
    arm_ctl_timer(w, s, from, key, 0);
}

fn arm_ctl_timer(w: &mut World, s: &mut VSched, from: NodeAddr, key: u64, attempts: u32) {
    let base = w
        .node(from)
        .ctl_unacked
        .get(&key)
        .map(|p| p.base_timeout_ns)
        .unwrap_or(w.calib.ctl_timeout_ns);
    let delay = base << attempts.min(10);
    let timer = s.schedule_cancellable_in(SimDuration::from_ns(delay), move |w: &mut World, s| {
        if !w.node(from).up {
            return;
        }
        let max = w.calib.ctl_max_retries;
        let resend = {
            let Some(p) = w.node_mut(from).ctl_unacked.get_mut(&key) else {
                return; // acked
            };
            if p.attempts != attempts {
                return; // a newer timer owns this entry
            }
            if p.attempts >= max {
                None
            } else {
                p.attempts += 1;
                Some(p.frame.clone())
            }
        };
        match resend {
            None => {
                // Retry budget exhausted: the receiver is gone. Drop the
                // entry; higher-level recovery (peer-down marking, manager
                // re-resolution) owns the outcome. A heartbeat beacon *is*
                // that recovery — its exhaustion is the membership layer's
                // unreachability verdict.
                let dropped = w.node_mut(from).ctl_unacked.remove(&key);
                if let Some(p) = dropped {
                    if p.frame.kind == proto::KIND_HEARTBEAT {
                        if let hpcnet::Dest::Unicast(peer) = p.frame.dst {
                            crate::membership::on_probe_failed(w, s, from, peer);
                        }
                    }
                }
            }
            Some(f) => {
                w.faults.stats.retransmits += 1;
                kernel::send_frame(w, s, f);
                arm_ctl_timer(w, s, from, key, attempts + 1);
            }
        }
    });
    if let Some(p) = w.node_mut(from).ctl_unacked.get_mut(&key) {
        if p.attempts == attempts {
            p.timer = Some(timer);
        }
    }
}

/// Receiver side of [`reliable_send`]: acknowledge receipt of control frame
/// `f` at `node`. Handlers call this before deduplicating, so a dup (the
/// first ack was lost) is re-acked.
pub fn ack_ctl(w: &mut World, s: &mut VSched, node: NodeAddr, f: &Frame) {
    let ack = Frame::unicast(
        node,
        f.src,
        proto::KIND_CTL_ACK,
        f.seq,
        Payload::Synthetic(0),
    );
    kernel::send_frame(w, s, ack);
}

/// Kernel handler: a control-frame ack arrived; stop retransmitting. An
/// acked heartbeat beacon is the membership layer's reachability evidence.
pub fn on_ctl_ack(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    if let Some(p) = w.node_mut(node).ctl_unacked.remove(&f.seq) {
        if let Some(t) = p.timer {
            t.cancel();
        }
        if p.frame.kind == proto::KIND_HEARTBEAT {
            if let hpcnet::Dest::Unicast(peer) = p.frame.dst {
                crate::membership::on_probe_ack(w, s, node, peer, p.attempts);
            }
        }
    }
}

/// Crash `node`: its interface goes dark (in-flight frames to and from it
/// die), its kernel state is wiped cold, and every process parked in a
/// recovery-aware wait (channel read/write, open, syscall) is woken so its
/// wait closure observes the loss and returns [`crate::VorxError::NodeDown`]
/// instead of leaking in a wait set.
///
/// Peers learn of the death from the failure-detection sweep
/// (`crash_detect_ns` later) or from retry exhaustion, whichever is first.
pub fn on_crash(w: &mut World, s: &mut VSched, node: NodeAddr) {
    if !w.node(node).up {
        return;
    }
    let now = s.now();
    w.faults.stats.crashes += 1;
    w.trace.record(
        now,
        TraceEvent::Fault {
            node: node.0,
            up: false,
        },
    );
    let out = w.net.set_endpoint_down(kernel::now_ns(s), node, true);
    kernel::process_output(w, s, out);

    // Wipe the node's kernel state cold, keeping the wait sets we must wake.
    // Iteration is over *sorted* keys everywhere: HashMap order is random
    // per process, and wake order feeds the event order that the
    // determinism guarantee rests on.
    let n = w.node_mut(node);
    n.up = false;
    n.rx_in_service = false;
    n.tx_q.clear();
    n.orphans.clear();
    n.resolve.clear();
    // Disarm every retransmit timer the node had running — a dead node's
    // timeouts must not keep ticking (they would be no-ops, but no-op
    // events still drag the simulated clock forward).
    for p in n.ctl_unacked.values() {
        if let Some(t) = &p.timer {
            t.cancel();
        }
    }
    n.ctl_unacked.clear();
    for o in n.open_waits.values() {
        if let crate::world::OpenResult::Pending { timer: Some(t), .. } = o {
            t.cancel();
        }
    }
    n.open_waits.clear();
    for ls in n.listeners.values() {
        if let Some(t) = &ls.timer {
            t.cancel();
        }
    }
    n.listeners.clear();
    n.syscall_waits.clear();
    n.mgr = Default::default();
    n.mbr = Default::default();
    n.sched = Default::default();
    // UDCO and multicast state dies with the node. Their waiters are *not*
    // woken: those paths predate the recovery protocols and have no error
    // vocabulary (see DESIGN.md — processes using them on a crashed node
    // stay parked, as do listeners).
    n.udcos.clear();
    n.mcast.clear();
    n.mcast_pending.clear();
    n.coll.clear();
    let mut chans = std::mem::take(&mut n.chans);
    let mut ids: Vec<u32> = chans.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let end = chans.get_mut(&id).expect("key from this map");
        crate::channel::clear_tx(end);
        end.rx_waiters.wake_all(s, Wakeup::START);
        end.tx_wait.wake_all(s, Wakeup::START);
    }
    w.node_mut(node).open_waiters.wake_all(s, Wakeup::START);
    w.node_mut(node).syscall_waiters.wake_all(s, Wakeup::START);
    w.node_mut(node).tx_waiters.wake_all(s, Wakeup::START);

    // The application manager's failure detector is part of the manager
    // abstraction: mark the node's processes failed so `wait_app` completes.
    crate::appmgr::on_node_failed(w, node);

    // Failure-detection sweep: after `crash_detect_ns`, peers with channel
    // ends to this node learn it is down, and manager registrations backed
    // by it are evicted. Snapshot the affected ends now — ends created
    // after the crash (a new generation) must not be marked.
    let detect = w.calib.crash_detect_ns;
    if detect == u64::MAX {
        return;
    }
    let mut hits: Vec<(u32, u32)> = Vec::new();
    for (i, other) in w.nodes.iter().enumerate() {
        if i == node.0 as usize {
            continue;
        }
        let mut peered: Vec<u32> = other
            .chans
            .iter()
            .filter(|(_, e)| e.peer == node)
            .map(|(id, _)| *id)
            .collect();
        peered.sort_unstable();
        for id in peered {
            hits.push((i as u32, id));
        }
    }
    // Manager entries backed by the dead node are snapshotted the same way:
    // eviction only removes what was stale *at crash time*. If the node
    // restarts inside the detection window and re-registers (a new
    // generation), those fresh entries must survive the sweep. Tokens are
    // world-unique, so `(manager, name, token)` identifies a queued request
    // exactly.
    let mut stale_servers: Vec<(u32, String)> = Vec::new();
    let mut stale_pending: Vec<(u32, String, u64)> = Vec::new();
    for (i, other) in w.nodes.iter().enumerate() {
        for (name, srv) in &other.mgr.servers {
            if *srv == node {
                stale_servers.push((i as u32, name.clone()));
            }
        }
        for (name, q) in &other.mgr.pending {
            for &(req, token) in q {
                if req == node {
                    stale_pending.push((i as u32, name.clone(), token));
                }
            }
        }
    }
    s.schedule_in(SimDuration::from_ns(detect), move |w: &mut World, s| {
        for &(ni, id) in &hits {
            let Some(end) = w.node_mut(NodeAddr(ni)).chans.get_mut(&id) else {
                continue;
            };
            if end.peer_down {
                continue;
            }
            end.peer_down = true;
            crate::channel::clear_tx(end);
            end.rx_waiters.wake_all(s, Wakeup::START);
            end.tx_wait.wake_all(s, Wakeup::START);
            w.faults.stats.peer_down_events += 1;
        }
        // Evict the manager entries snapshotted at crash time — and only
        // those, so registrations made after a restart are untouched.
        for (ni, name) in &stale_servers {
            let mgr = &mut w.nodes[*ni as usize].mgr;
            if mgr.servers.get(name) == Some(&node) {
                mgr.servers.remove(name);
            }
        }
        for (ni, name, token) in &stale_pending {
            let mgr = &mut w.nodes[*ni as usize].mgr;
            if let Some(q) = mgr.pending.get_mut(name) {
                q.retain(|(req, t)| !(*req == node && t == token));
            }
        }
    });
}

/// Restart `node` with cold kernel state: the interface comes back up,
/// processes parked in [`wait_until_up`] resume, and opens that were queued
/// at a manager on this node (whose state died with it) are re-resolved by
/// retransmitting their requests.
pub fn on_restart(w: &mut World, s: &mut VSched, node: NodeAddr) {
    if w.node(node).up {
        return;
    }
    let now = s.now();
    w.faults.stats.restarts += 1;
    w.trace.record(
        now,
        TraceEvent::Fault {
            node: node.0,
            up: true,
        },
    );
    w.node_mut(node).up = true;
    let out = w.net.set_endpoint_down(kernel::now_ns(s), node, false);
    kernel::process_output(w, s, out);
    w.node_mut(node).up_waiters.wake_all(s, Wakeup::START);

    // Manager failover: requesters whose open was queued at this manager
    // before the crash are still parked (their retransmit chains stopped at
    // the KIND_OPEN_QUEUED ack). The manager's queue died with it, so those
    // requests restart from scratch.
    for i in 0..w.nodes.len() {
        let ni = NodeAddr(i as u32);
        let mut tokens: Vec<u64> = w
            .node(ni)
            .open_waits
            .iter()
            .filter(
                |(_, o)| matches!(o, crate::world::OpenResult::Pending { mgr, .. } if *mgr == node),
            )
            .map(|(t, _)| *t)
            .collect();
        tokens.sort_unstable();
        for t in tokens {
            crate::objmgr::resend_open(w, s, ni, t);
        }
    }
}

/// Take directed link `l` down: frames in flight on it die at the cut
/// (counted as down-drops, never delivered), the routing tables recompute
/// around the dead edge, and the partition-detection sweep is scheduled for
/// any node pairs the failure disconnected. A physical cable cut is two
/// directed links — inject both ids to model it.
pub fn on_link_down(w: &mut World, s: &mut VSched, l: LinkId) {
    let now = kernel::now_ns(s);
    if w.net.is_link_down(l) {
        // Another down while the damper holds the link: not a state change,
        // but evidence of continued instability — extend the hold.
        if w.faults.flap_held.contains_key(&l.0) {
            w.faults.schedule.note_flap(l.0);
            extend_flap_hold(w, s, l);
        }
        return;
    }
    // Flap bookkeeping: a down within the damping window of the previous
    // down counts as a flap.
    let window = w.calib.flap_window_ns;
    if w.calib.flap_damp_downs > 0 {
        if w.faults.downs_in_window(l, now, window) > 0 {
            w.faults.schedule.note_flap(l.0);
        }
        w.faults.flap_history.entry(l.0).or_default().push_back(now);
    }
    w.faults.schedule.note_link_down(l.0);
    w.trace.record(
        s.now(),
        TraceEvent::LinkFault {
            link: l.0,
            up: false,
        },
    );
    let out = w.net.set_link_down(now, l, true);
    kernel::process_output(w, s, out);
    crate::membership::schedule_partition_sweep(w, s);
}

/// Bring directed link `l` back up: the routing tables recompute (healing
/// to the baseline when no dead edges remain), and the membership heal
/// sweep reconnects every node pair the restored edge made reachable again.
///
/// A link that flapped `flap_damp_downs` times within `flap_window_ns` is
/// *damped*: the up is suppressed and the link held down until it has been
/// stable for `flap_hold_ns` (each further transition extends the hold), so
/// the detour overlay and channel pause/resume stop thrashing.
pub fn on_link_up(w: &mut World, s: &mut VSched, l: LinkId) {
    if !w.net.is_link_down(l) {
        return;
    }
    let now = kernel::now_ns(s);
    if w.faults.flap_held.contains_key(&l.0) {
        // Still inside the hold: not stable yet.
        extend_flap_hold(w, s, l);
        return;
    }
    let damp = w.calib.flap_damp_downs;
    if damp > 0 && w.faults.downs_in_window(l, now, w.calib.flap_window_ns) >= damp as usize {
        w.faults.flap_held.insert(l.0, 0);
        extend_flap_hold(w, s, l);
        return;
    }
    raise_link(w, s, l);
}

/// The undamped link-up path: trace, fabric state, heal sweep.
fn raise_link(w: &mut World, s: &mut VSched, l: LinkId) {
    w.trace.record(
        s.now(),
        TraceEvent::LinkFault {
            link: l.0,
            up: true,
        },
    );
    let out = w.net.set_link_down(kernel::now_ns(s), l, false);
    kernel::process_output(w, s, out);
    crate::membership::on_heal(w, s);
}

/// Bump the suppress epoch of held link `l` and (re)schedule its reinstate
/// for `flap_hold_ns` from now. Only the newest epoch's timer acts, so
/// every transition during the hold pushes reinstatement further out.
fn extend_flap_hold(w: &mut World, s: &mut VSched, l: LinkId) {
    let epoch = {
        let e = w
            .faults
            .flap_held
            .get_mut(&l.0)
            .expect("caller holds the link");
        *e += 1;
        *e
    };
    let hold = w.calib.flap_hold_ns;
    s.schedule_in(SimDuration::from_ns(hold), move |w: &mut World, s| {
        if w.faults.flap_held.get(&l.0) != Some(&epoch) {
            return; // a newer transition extended the hold
        }
        w.faults.flap_held.remove(&l.0);
        w.faults.flap_history.remove(&l.0);
        if w.net.is_link_down(l) {
            raise_link(w, s, l);
        }
    });
}

/// Park the calling process until `node` is up (restart notification).
/// Returns immediately if it already is.
pub fn wait_until_up(ctx: &VCtx, node: NodeAddr) {
    let pid = ctx.pid();
    ctx.wait_until(move |w, _| {
        if w.node(node).up {
            Some(())
        } else {
            w.node_mut(node).up_waiters.register(pid);
            None
        }
    });
}
