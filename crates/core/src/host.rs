//! Host workstations, stub processes, and program download (§3.3).
//!
//! "Each process running on a processing node has a stub process running on
//! the host. The stub is responsible for initially downloading the process
//! and for providing a UNIX operating system environment while the program
//! is running."
//!
//! Two execution-environment designs from the paper are reproduced:
//!
//! * **Per-process stubs** — perfect environment replication, but starting
//!   an application pays one stub creation + one download per process
//!   ("it takes 12 seconds to download and initialize a process on each of
//!   70 processors").
//! * **Shared stub + tree download** — one stub, one download stream fanned
//!   out two-ways by the nodes themselves ("it takes only two seconds to
//!   download and start 70 processes") — at the cost of serialized blocking
//!   system calls and a shared 32-descriptor table.

use std::collections::{HashMap, VecDeque};

use bytes::{BufMut, Bytes, BytesMut};
use desim::{SimDuration, Wakeup};
use hpcnet::{Frame, NodeAddr, Payload};

use crate::api;
use crate::calib::Calibration;
use crate::channel::{self, ChannelHandle};
use crate::cpu::CpuCat;
use crate::kernel;
use crate::proto;
use crate::world::{VCtx, VSched, World};

/// A forwarded UNIX system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallOp {
    /// `open(2)` — consumes a descriptor in the stub.
    OpenFile,
    /// `close(2)` — frees a descriptor.
    CloseFile,
    /// `write(2)` of `bytes` to a file.
    WriteFile {
        /// Bytes written.
        bytes: u32,
    },
    /// A blocking call (e.g. a keyboard read) that occupies the stub for
    /// the given duration without consuming host CPU.
    Blocking {
        /// How long the call blocks, ns.
        dur_ns: u64,
    },
}

/// Result of a forwarded system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallRet {
    /// Success.
    Ok,
    /// Success, returning a file descriptor.
    Fd(u32),
    /// The stub hit the SunOS 32-descriptor limit (`EMFILE`).
    TooManyFiles,
    /// The host had no stub able to serve the request (`EIO`) — e.g. the
    /// requester's node restarted and its stub mapping was never created on
    /// this host.
    Eio,
}

fn pack_op(op: SyscallOp) -> Payload {
    let mut b = BytesMut::with_capacity(9);
    match op {
        SyscallOp::OpenFile => b.put_u8(0),
        SyscallOp::CloseFile => b.put_u8(1),
        SyscallOp::WriteFile { bytes } => {
            b.put_u8(2);
            b.put_u32(bytes);
        }
        SyscallOp::Blocking { dur_ns } => {
            b.put_u8(3);
            b.put_u64(dur_ns);
        }
    }
    Payload::Data(b.freeze())
}

fn parse_op(p: &Payload) -> SyscallOp {
    let b = p.bytes().expect("syscall request carries data");
    match b[0] {
        0 => SyscallOp::OpenFile,
        1 => SyscallOp::CloseFile,
        2 => SyscallOp::WriteFile {
            bytes: u32::from_be_bytes([b[1], b[2], b[3], b[4]]),
        },
        3 => SyscallOp::Blocking {
            dur_ns: u64::from_be_bytes([b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8]]),
        },
        x => panic!("unknown syscall op {x}"),
    }
}

fn pack_ret(r: SyscallRet) -> Payload {
    let mut b = BytesMut::with_capacity(5);
    match r {
        SyscallRet::Ok => b.put_u8(0),
        SyscallRet::Fd(fd) => {
            b.put_u8(1);
            b.put_u32(fd);
        }
        SyscallRet::TooManyFiles => b.put_u8(2),
        SyscallRet::Eio => b.put_u8(3),
    }
    Payload::Data(b.freeze())
}

fn parse_ret(p: &Payload) -> SyscallRet {
    let b = p.bytes().expect("syscall reply carries data");
    match b[0] {
        0 => SyscallRet::Ok,
        1 => SyscallRet::Fd(u32::from_be_bytes([b[1], b[2], b[3], b[4]])),
        2 => SyscallRet::TooManyFiles,
        3 => SyscallRet::Eio,
        x => panic!("unknown syscall ret {x}"),
    }
}

/// One stub process on a host.
#[derive(Debug)]
pub struct Stub {
    /// Stub index within its host.
    pub id: usize,
    /// Node processes this stub serves.
    pub serves: Vec<NodeAddr>,
    /// Open descriptors (bounded by the SunOS limit).
    pub fds_open: usize,
    /// Total descriptors ever handed out (fd numbering).
    pub next_fd: u32,
    /// Queued syscall requests `(from, token, op)`.
    pub queue: VecDeque<(NodeAddr, u64, SyscallOp)>,
    /// A request is being serviced (possibly blocked).
    pub in_service: bool,
    /// Syscalls served (statistics).
    pub served: u64,
}

/// A host workstation.
#[derive(Debug)]
pub struct Host {
    /// Host id.
    pub id: usize,
    /// The endpoint its HPC interface occupies.
    pub node: NodeAddr,
    /// Stubs running on this host.
    pub stubs: Vec<Stub>,
    /// Which stub serves each node process.
    pub stub_by_node: HashMap<u32, usize>,
    /// Per-stub descriptor limit (SunOS: 32).
    pub fd_limit: usize,
    /// Lazily created shared stub used by the decentralized syscall scheme
    /// (§3.3 future work), serving calls directed here by any node.
    pub service_stub: Option<usize>,
}

impl Host {
    /// Create a host on `node`.
    pub fn new(id: usize, node: NodeAddr, calib: &Calibration) -> Self {
        Host {
            id,
            node,
            stubs: Vec::new(),
            stub_by_node: HashMap::new(),
            fd_limit: calib.stub_fd_limit,
            service_stub: None,
        }
    }
}

/// Create a stub on `host_id` serving `serves`, charging the host CPU for
/// the fork/exec. Returns the stub id. Process-context API.
pub fn create_stub(ctx: &VCtx, host_id: usize, serves: Vec<NodeAddr>) -> usize {
    let (host_node, cost) = ctx.with(move |w, _| (w.hosts[host_id].node, w.calib.stub_create_ns));
    api::compute_ns(ctx, host_node, CpuCat::System, cost);
    ctx.with(move |w, _| {
        let host = &mut w.hosts[host_id];
        let id = host.stubs.len();
        for n in &serves {
            host.stub_by_node.insert(n.0, id);
        }
        host.stubs.push(Stub {
            id,
            serves,
            fds_open: 0,
            next_fd: 3, // 0..2 are stdio
            queue: VecDeque::new(),
            in_service: false,
            served: 0,
        });
        id
    })
}

/// Which host serves `node`'s syscalls (set when its stub was created).
pub fn host_of(w: &World, node: NodeAddr) -> Option<usize> {
    w.hosts
        .iter()
        .find(|h| h.stub_by_node.contains_key(&node.0))
        .map(|h| h.id)
}

/// Issue a forwarded system call from a node process and block for the
/// result (§3.3's execution environment).
///
/// Fails with [`crate::VorxError::NoStub`] when no host serves `node`,
/// [`crate::VorxError::HostDown`] when the serving host's interface is down
/// at issue time, and [`crate::VorxError::NodeDown`] when the caller's own
/// node crashes while the call is outstanding.
pub fn syscall(ctx: &VCtx, node: NodeAddr, op: SyscallOp) -> crate::VorxResult<SyscallRet> {
    let token = ctx.with(move |w, s| {
        let Some(host_id) = host_of(w, node) else {
            return Err(crate::VorxError::NoStub);
        };
        let host_node = w.hosts[host_id].node;
        if !w.node(host_node).up {
            return Err(crate::VorxError::HostDown);
        }
        let token = w.token();
        w.node_mut(node).syscall_waits.insert(token, None);
        let f = Frame::unicast(node, host_node, proto::KIND_SYSCALL_REQ, token, pack_op(op));
        kernel::send_frame(w, s, f);
        Ok(token)
    })?;
    let pid = ctx.pid();
    let ret = ctx.wait_until(move |w, _| match w.node(node).syscall_waits.get(&token) {
        Some(Some(r)) => Some(Ok(*r)),
        Some(None) => {
            w.node_mut(node).syscall_waiters.register(pid);
            None
        }
        // Our node crashed while the call was outstanding: the waits table
        // was wiped and the crash cleanup woke us.
        None => Some(Err(crate::VorxError::NodeDown)),
    });
    ctx.with(move |w, _| {
        w.node_mut(node).syscall_waits.remove(&token);
    });
    ret
}

/// Kernel handler: a syscall request arrived at a host.
pub fn on_syscall_req(w: &mut World, s: &mut VSched, host_node: NodeAddr, f: Frame) {
    let host_id = w
        .hosts
        .iter()
        .position(|h| h.node == host_node)
        .unwrap_or_else(|| panic!("syscall request at non-host node {host_node}"));
    let Some(stub_id) = w.hosts[host_id].stub_by_node.get(&f.src.0).copied() else {
        // No stub serves this node here (its mapping may have died with a
        // restart): answer EIO rather than dropping the request or
        // panicking — the UNIX environment's way of saying "I/O error".
        let rep = Frame::unicast(
            host_node,
            f.src,
            proto::KIND_SYSCALL_REP,
            f.seq,
            pack_ret(SyscallRet::Eio),
        );
        kernel::send_frame(w, s, rep);
        return;
    };
    let op = parse_op(&f.payload);
    w.hosts[host_id].stubs[stub_id]
        .queue
        .push_back((f.src, f.seq, op));
    kick_stub(w, s, host_id, stub_id);
}

/// Start servicing the stub's queue if it is idle. Each stub serves one
/// request at a time: a blocking call from one process stalls every other
/// process sharing that stub (the §3.3 pathology).
fn kick_stub(w: &mut World, s: &mut VSched, host_id: usize, stub_id: usize) {
    let stub = &mut w.hosts[host_id].stubs[stub_id];
    if stub.in_service {
        return;
    }
    let Some((from, token, op)) = stub.queue.pop_front() else {
        return;
    };
    stub.in_service = true;
    let host_node = w.hosts[host_id].node;
    let c = w.calib;
    let cpu_cost = c.host_syscall_ns
        + match op {
            SyscallOp::WriteFile { bytes } => c.host_copy_ns_per_byte * u64::from(bytes),
            _ => 0,
        };
    let now = s.now();
    let cpu_done = w.charge(
        now,
        host_node,
        CpuCat::System,
        SimDuration::from_ns(cpu_cost),
    );
    let extra = match op {
        SyscallOp::Blocking { dur_ns } => SimDuration::from_ns(dur_ns),
        _ => SimDuration::ZERO,
    };
    let finish_at = cpu_done + extra;
    s.schedule_in(finish_at - now, move |w: &mut World, s| {
        finish_syscall(w, s, host_id, stub_id, from, token, op);
    });
}

fn finish_syscall(
    w: &mut World,
    s: &mut VSched,
    host_id: usize,
    stub_id: usize,
    from: NodeAddr,
    token: u64,
    op: SyscallOp,
) {
    let fd_limit = w.hosts[host_id].fd_limit;
    let host_node = w.hosts[host_id].node;
    let stub = &mut w.hosts[host_id].stubs[stub_id];
    stub.served += 1;
    let ret = match op {
        SyscallOp::OpenFile => {
            if stub.fds_open >= fd_limit {
                SyscallRet::TooManyFiles
            } else {
                stub.fds_open += 1;
                let fd = stub.next_fd;
                stub.next_fd += 1;
                SyscallRet::Fd(fd)
            }
        }
        SyscallOp::CloseFile => {
            stub.fds_open = stub.fds_open.saturating_sub(1);
            SyscallRet::Ok
        }
        SyscallOp::WriteFile { .. } | SyscallOp::Blocking { .. } => SyscallRet::Ok,
    };
    stub.in_service = false;
    let rep = Frame::unicast(
        host_node,
        from,
        proto::KIND_SYSCALL_REP,
        token,
        pack_ret(ret),
    );
    kernel::send_frame(w, s, rep);
    kick_stub(w, s, host_id, stub_id);
}

/// Kernel handler: a syscall reply arrived back at the node.
pub fn on_syscall_rep(w: &mut World, s: &mut VSched, node: NodeAddr, f: Frame) {
    let ret = parse_ret(&f.payload);
    w.node_mut(node).syscall_waits.insert(f.seq, Some(ret));
    w.node_mut(node).syscall_waiters.wake_all(s, Wakeup::START);
}

/// Kernel handler for raw download frames. Program download is implemented
/// over channels (see [`download_per_process`] / [`download_tree`]), so this
/// kind is unused on the wire; kept for forward compatibility.
pub fn on_download(_w: &mut World, _s: &mut VSched, node: NodeAddr, _f: Frame) {
    panic!("unexpected raw DOWNLOAD frame at {node}; downloads run over channels");
}

// ---------------------------------------------------------------------------
// Program download (§3.3)
// ---------------------------------------------------------------------------

/// Chunk size for program-text transfer: one hardware frame.
pub const DL_CHUNK: u32 = 1024;

fn n_chunks(text_bytes: u32) -> u32 {
    text_bytes.div_ceil(DL_CHUNK)
}

/// Node-side boot loader: receive `text_bytes` of program text from
/// `parent_chan` and relay each chunk to `children` channels as it arrives
/// (store-and-forward tree download when `children` is non-empty).
pub fn boot_loader(
    ctx: &VCtx,
    node: NodeAddr,
    parent_chan: &str,
    children: Vec<String>,
    text_bytes: u32,
) {
    let parent = channel::open(ctx, node, parent_chan);
    let kids: Vec<ChannelHandle> = children
        .iter()
        .map(|name| channel::open(ctx, node, name))
        .collect();
    for _ in 0..n_chunks(text_bytes) {
        let chunk = parent.read(ctx).expect("download stream closed early");
        for k in &kids {
            // `Payload` is a refcounted slice: every child write shares the
            // received chunk's bytes, so a tree fan-out never re-copies the
            // program text at the relay node.
            k.write(ctx, chunk.clone())
                .expect("child loader closed early");
        }
    }
}

/// Download `text_bytes` of program text to every node in `targets` using
/// one stub per process (Meglos-style / the faithful-environment mode).
/// Runs in a host process; returns when every node has its text.
///
/// The caller must spawn a [`boot_loader`] on each target with channel name
/// `dl-<node>` and no children.
pub fn download_per_process(ctx: &VCtx, host_id: usize, targets: &[NodeAddr], text_bytes: u32) {
    let host_node = ctx.with(move |w, _| w.hosts[host_id].node);
    let c = ctx.with(|w, _| w.calib);
    for &t in targets {
        // One stub per process: fork/exec plus its own copy of the text.
        create_stub(ctx, host_id, vec![t]);
        api::compute(
            ctx,
            host_node,
            CpuCat::System,
            Calibration::per_byte(c.host_copy_ns_per_byte, text_bytes),
        );
        let chan = channel::open(ctx, host_node, &format!("dl-{}", t.0));
        for _ in 0..n_chunks(text_bytes) {
            chan.write(
                ctx,
                Payload::Data(Bytes::from(vec![0u8; DL_CHUNK as usize])),
            )
            .expect("boot loader closed early");
        }
    }
}

/// Tree-download channel names and children for `targets[idx]`, fanout 2:
/// node `i` feeds nodes `2i+1` and `2i+2`.
pub fn tree_children(targets: &[NodeAddr], idx: usize) -> Vec<String> {
    [2 * idx + 1, 2 * idx + 2]
        .into_iter()
        .filter(|&k| k < targets.len())
        .map(|k| format!("dl-{}", targets[k].0))
        .collect()
}

/// Download `text_bytes` to every node in `targets` through the §3.3 tree
/// scheme: one shared stub, one stream to `targets[0]`, nodes relay with
/// fanout 2. The caller must spawn [`boot_loader`]s with
/// [`tree_children`]-derived wiring.
pub fn download_tree(ctx: &VCtx, host_id: usize, targets: &[NodeAddr], text_bytes: u32) {
    assert!(!targets.is_empty());
    let host_node = ctx.with(move |w, _| w.hosts[host_id].node);
    let c = ctx.with(|w, _| w.calib);
    // One stub serves every process of the application.
    create_stub(ctx, host_id, targets.to_vec());
    api::compute(
        ctx,
        host_node,
        CpuCat::System,
        Calibration::per_byte(c.host_copy_ns_per_byte, text_bytes),
    );
    let chan = channel::open(ctx, host_node, &format!("dl-{}", targets[0].0));
    for _ in 0..n_chunks(text_bytes) {
        chan.write(
            ctx,
            Payload::Data(Bytes::from(vec![0u8; DL_CHUNK as usize])),
        )
        .expect("tree root loader closed early");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::VorxBuilder;

    #[test]
    fn syscall_round_trip_and_fd_limit() {
        let mut v = VorxBuilder::single_cluster(3).hosts(1).build();
        v.spawn("setup", |ctx| {
            create_stub(&ctx, 0, vec![NodeAddr(1)]);
            ctx.with(|_, s| {
                s.spawn("n1:app", |ctx: VCtx| {
                    let mut fds = Vec::new();
                    loop {
                        match syscall(&ctx, NodeAddr(1), SyscallOp::OpenFile).unwrap() {
                            SyscallRet::Fd(fd) => fds.push(fd),
                            SyscallRet::TooManyFiles => break,
                            r => panic!("unexpected {r:?}"),
                        }
                    }
                    // SunOS limit: 32 per stub.
                    assert_eq!(fds.len(), 32);
                    // Closing frees a slot.
                    assert_eq!(
                        syscall(&ctx, NodeAddr(1), SyscallOp::CloseFile),
                        Ok(SyscallRet::Ok)
                    );
                    assert!(matches!(
                        syscall(&ctx, NodeAddr(1), SyscallOp::OpenFile),
                        Ok(SyscallRet::Fd(_))
                    ));
                });
            });
        });
        v.run_all();
    }

    #[test]
    fn shared_stub_serializes_blocking_syscalls() {
        // Two processes share one stub; process A issues a long blocking
        // read, so B's instant syscall must wait behind it.
        let mut v = VorxBuilder::single_cluster(4).hosts(1).build();
        v.spawn("setup", |ctx| {
            create_stub(&ctx, 0, vec![NodeAddr(1), NodeAddr(2)]);
            ctx.with(|_, s| {
                s.spawn("n1:blocker", |ctx: VCtx| {
                    syscall(
                        &ctx,
                        NodeAddr(1),
                        SyscallOp::Blocking {
                            dur_ns: 500_000_000,
                        },
                    )
                    .unwrap();
                });
                s.spawn("n2:victim", |ctx: VCtx| {
                    ctx.sleep(SimDuration::from_ms(10)); // arrive second
                    let t0 = ctx.now();
                    syscall(&ctx, NodeAddr(2), SyscallOp::OpenFile).unwrap();
                    let waited = ctx.now() - t0;
                    assert!(
                        waited > SimDuration::from_ms(400),
                        "victim should stall behind the blocking call, waited {waited}"
                    );
                });
            });
        });
        v.run_all();
    }

    #[test]
    fn per_process_stubs_isolate_blocking_syscalls() {
        let mut v = VorxBuilder::single_cluster(4).hosts(1).build();
        v.spawn("setup", |ctx| {
            create_stub(&ctx, 0, vec![NodeAddr(1)]);
            create_stub(&ctx, 0, vec![NodeAddr(2)]);
            ctx.with(|_, s| {
                s.spawn("n1:blocker", |ctx: VCtx| {
                    syscall(
                        &ctx,
                        NodeAddr(1),
                        SyscallOp::Blocking {
                            dur_ns: 500_000_000,
                        },
                    )
                    .unwrap();
                });
                s.spawn("n2:free", |ctx: VCtx| {
                    ctx.sleep(SimDuration::from_ms(10));
                    let t0 = ctx.now();
                    syscall(&ctx, NodeAddr(2), SyscallOp::OpenFile).unwrap();
                    let waited = ctx.now() - t0;
                    assert!(
                        waited < SimDuration::from_ms(50),
                        "own stub should answer quickly, waited {waited}"
                    );
                });
            });
        });
        v.run_all();
    }

    #[test]
    fn per_process_fd_tables_are_independent() {
        let mut v = VorxBuilder::single_cluster(4).hosts(1).build();
        v.spawn("setup", |ctx| {
            create_stub(&ctx, 0, vec![NodeAddr(1)]);
            create_stub(&ctx, 0, vec![NodeAddr(2)]);
            for node in [1u32, 2] {
                ctx.with(move |_, s| {
                    s.spawn(format!("n{node}:opener"), move |ctx: VCtx| {
                        for _ in 0..32 {
                            assert!(matches!(
                                syscall(&ctx, NodeAddr(node), SyscallOp::OpenFile),
                                Ok(SyscallRet::Fd(_))
                            ));
                        }
                    });
                });
            }
        });
        v.run_all();
    }

    #[test]
    fn tree_download_reaches_every_node() {
        let mut v = VorxBuilder::single_cluster(8).hosts(1).build();
        let targets: Vec<NodeAddr> = (1..8).map(NodeAddr).collect();
        let text = 4 * DL_CHUNK;
        for (i, &t) in targets.iter().enumerate() {
            let kids = tree_children(&targets, i);
            v.spawn(format!("n{}:loader", t.0), move |ctx| {
                boot_loader(&ctx, t, &format!("dl-{}", t.0), kids, text);
            });
        }
        let tgt = targets;
        v.spawn("host:dl", move |ctx| {
            download_tree(&ctx, 0, &tgt, text);
        });
        v.run_all();
        // Every loader finished means every node received all chunks.
    }

    #[test]
    fn op_encoding_round_trips() {
        for op in [
            SyscallOp::OpenFile,
            SyscallOp::CloseFile,
            SyscallOp::WriteFile { bytes: 4096 },
            SyscallOp::Blocking { dur_ns: 12345 },
        ] {
            assert_eq!(parse_op(&pack_op(op)), op);
        }
        for r in [SyscallRet::Ok, SyscallRet::Fd(7), SyscallRet::TooManyFiles] {
            assert_eq!(parse_ret(&pack_ret(r)), r);
        }
    }
}

// ---------------------------------------------------------------------------
// Decentralized system calls (§3.3, the paper's in-progress extension):
// "It uses a decentralized scheme that distributes the overhead of system
// calls by allowing a process to direct system calls to any of the host
// workstations."
// ---------------------------------------------------------------------------

/// Ensure `host_id` has a service stub and that it serves `node`; returns
/// the stub id. The stub is created once per host (fork cost charged then).
fn ensure_service_stub(w: &mut World, host_id: usize, node: NodeAddr) -> usize {
    let stub_id = match w.hosts[host_id].service_stub {
        Some(id) => id,
        None => {
            let host = &mut w.hosts[host_id];
            let id = host.stubs.len();
            host.stubs.push(Stub {
                id,
                serves: Vec::new(),
                fds_open: 0,
                next_fd: 3,
                queue: VecDeque::new(),
                in_service: false,
                served: 0,
            });
            host.service_stub = Some(id);
            id
        }
    };
    let host = &mut w.hosts[host_id];
    if !host.stubs[stub_id].serves.contains(&node) {
        host.stubs[stub_id].serves.push(node);
        // Routing note: `stub_by_node` keeps the node's *home* stub for the
        // classic scheme; directed calls name the host explicitly, so the
        // reply path needs no table change. We only map the node on this
        // host if it has no home stub here.
        host.stub_by_node.entry(node.0).or_insert(stub_id);
    }
    stub_id
}

/// Issue a system call *directed at a specific host* (the decentralized
/// scheme). The host's shared service stub handles it; no per-process stub
/// is required on that host. Fails like [`syscall`].
pub fn syscall_on(
    ctx: &VCtx,
    node: NodeAddr,
    host_id: usize,
    op: SyscallOp,
) -> crate::VorxResult<SyscallRet> {
    let token = ctx.with(move |w, s| {
        let host_node = w.hosts[host_id].node;
        if !w.node(host_node).up {
            return Err(crate::VorxError::HostDown);
        }
        ensure_service_stub(w, host_id, node);
        let token = w.token();
        w.node_mut(node).syscall_waits.insert(token, None);
        let f = Frame::unicast(node, host_node, proto::KIND_SYSCALL_REQ, token, pack_op(op));
        kernel::send_frame(w, s, f);
        Ok(token)
    })?;
    let pid = ctx.pid();
    let ret = ctx.wait_until(move |w, _| match w.node(node).syscall_waits.get(&token) {
        Some(Some(r)) => Some(Ok(*r)),
        Some(None) => {
            w.node_mut(node).syscall_waiters.register(pid);
            None
        }
        None => Some(Err(crate::VorxError::NodeDown)),
    });
    ctx.with(move |w, _| {
        w.node_mut(node).syscall_waits.remove(&token);
    });
    ret
}

/// Issue a system call load-balanced across every host workstation:
/// deterministic spread by node address and a per-call counter. Fails like
/// [`syscall`].
pub fn syscall_any(
    ctx: &VCtx,
    node: NodeAddr,
    call_no: u64,
    op: SyscallOp,
) -> crate::VorxResult<SyscallRet> {
    let n_hosts = ctx.with(|w, _| w.hosts.len());
    assert!(n_hosts > 0, "no host workstations");
    let host_id = (u64::from(node.0) + call_no) as usize % n_hosts;
    syscall_on(ctx, node, host_id, op)
}

#[cfg(test)]
mod decentral_tests {
    use super::*;
    use crate::world::VorxBuilder;
    use desim::SimTime;

    fn storm(n_hosts: usize) -> (desim::SimTime, Vec<u64>) {
        // 6 nodes each issue 8 write syscalls as fast as they can, directed
        // round-robin across the hosts (the decentralized scheme).
        let mut v = VorxBuilder::hypercube(3, 4).hosts(n_hosts).build();
        for nd in (n_hosts as u32)..(n_hosts as u32 + 6) {
            v.spawn(format!("n{nd}:storm"), move |ctx| {
                let node = NodeAddr(nd);
                for call in 0..8u64 {
                    let op = SyscallOp::WriteFile { bytes: 2048 };
                    let r = syscall_any(&ctx, node, call, op);
                    assert_eq!(r, Ok(SyscallRet::Ok));
                }
            });
        }
        let end = v.run_all();
        let served: Vec<u64> = {
            let w = v.world();
            w.hosts
                .iter()
                .map(|h| h.stubs.iter().map(|s| s.served).sum())
                .collect()
        };
        (end, served)
    }

    #[test]
    fn directed_calls_spread_host_load() {
        let (_, served) = storm(3);
        let busy_hosts = served.iter().filter(|s| **s > 0).count();
        assert!(busy_hosts >= 2, "load should spread: {served:?}");
        assert_eq!(served.iter().sum::<u64>(), 48);
    }

    #[test]
    fn decentralized_beats_single_host_under_load() {
        let (central, _) = storm_with_home(1);
        let (decent, _) = storm(3);
        assert!(
            decent < central,
            "3-host decentralized {decent} should beat 1-host {central}"
        );
    }

    fn storm_with_home(n_hosts: usize) -> (SimTime, Vec<u64>) {
        let mut v = VorxBuilder::hypercube(3, 4).hosts(n_hosts).build();
        v.spawn("setup", move |ctx| {
            for nd in (n_hosts as u32)..(n_hosts as u32 + 6) {
                create_stub(&ctx, 0, vec![NodeAddr(nd)]);
            }
            for nd in (n_hosts as u32)..(n_hosts as u32 + 6) {
                ctx.with(move |_, s| {
                    s.spawn(format!("n{nd}:storm"), move |ctx: VCtx| {
                        for _ in 0..8u64 {
                            let r =
                                syscall(&ctx, NodeAddr(nd), SyscallOp::WriteFile { bytes: 2048 });
                            assert_eq!(r, Ok(SyscallRet::Ok));
                        }
                    });
                });
            }
        });
        let end = v.run_all();
        let served: Vec<u64> = {
            let w = v.world();
            w.hosts
                .iter()
                .map(|h| h.stubs.iter().map(|s| s.served).sum())
                .collect()
        };
        (end, served)
    }
}
