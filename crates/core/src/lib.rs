//! # vorx — the VORX distributed operating system
//!
//! Reproduction of the operating system from *The Evolution of HPC/VORX*
//! (Katseff, Gaglianello, Robinson — PPoPP 1990), running on a simulated HPC
//! interconnect (`hpcnet`) under a deterministic discrete-event engine
//! (`desim`). Everything the paper describes is here:
//!
//! * [`channel`] — named channels with single-call open (rendezvous),
//!   stop-and-wait kernel protocol, fragmentation, multiplexed read (§4).
//! * [`objmgr`] — centralized (Meglos) vs distributed-hashing (VORX)
//!   communications object managers (§3.2).
//! * [`udco`] — user-defined communications objects: direct hardware
//!   access, user ISRs, polled input (§4.1).
//! * [`sched`] — subprocesses with priorities and 80 µs context switches,
//!   plus the cheaper coroutine / interrupt-level structurings (§5).
//! * [`host`] — host workstations, stub processes, forwarded UNIX system
//!   calls, per-process vs shared stubs, tree download (§3.3).
//! * [`alloc`] — processor allocation and the "processors not available"
//!   story (§3.1).
//! * [`multicast`] — the flow-controlled multicast primitive (§4.2).
//! * [`calib`] — the 1988 cost model, tuned to reproduce Tables 1 and 2.
//!
//! ## Quick start
//!
//! ```
//! use vorx::{VorxBuilder, channel};
//! use hpcnet::{NodeAddr, Payload};
//!
//! let mut v = VorxBuilder::single_cluster(3).build();
//! v.spawn("n1:writer", |ctx| {
//!     let ch = channel::open(&ctx, NodeAddr(1), "pipe");
//!     ch.write(&ctx, Payload::copy_from(b"hello")).unwrap();
//! });
//! v.spawn("n2:reader", |ctx| {
//!     let ch = channel::open(&ctx, NodeAddr(2), "pipe");
//!     assert_eq!(ch.read(&ctx).unwrap().bytes().unwrap().as_ref(), b"hello");
//! });
//! v.run_all();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Recovery-aware kernel code must degrade, not die: every `unwrap` on a
// public API path is a latent panic under fault injection. Tests may still
// unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod accounting;
pub mod alloc;
pub mod api;
pub mod appmgr;
pub mod calib;
pub mod channel;
pub mod collective;
pub mod cpu;
pub mod debug;
pub mod error;
pub mod fault;
pub mod host;
pub mod kernel;
pub mod membership;
pub mod multicast;
pub mod objmgr;
pub mod proto;
pub mod protocols;
pub mod rtt;
pub mod sched;
pub mod udco;
pub mod world;

pub use calib::Calibration;
pub use cpu::{BlockReason, CpuCat, TraceEvent};
pub use error::{VorxError, VorxResult};
pub use fault::{FaultState, FaultStats};
pub use world::{
    workers_from_env, ShardCtx, VCtx, VSched, VorxBuilder, VorxShardedSim, VorxSim, World,
};

/// Re-export of the interconnect crate for convenience.
pub use hpcnet;
