//! Per-host process resource managers (§3.2).
//!
//! "Another bottleneck in Meglos was that all program developers and users
//! ran their applications from a single host. VORX eliminates this problem
//! by allowing programs to be run from different hosts. Each host has its
//! own process resource manager that is responsible for applications
//! started on that host and for keeping track of the mapping of
//! applications to processors."
//!
//! An *application* here is: an allocation of processing nodes, a set of
//! stubs on the launching host, and one process per node. The manager
//! records the application→processor mapping (what the paper's tools query)
//! and tears everything down on exit.

use desim::SimDuration;
use hpcnet::NodeAddr;

use crate::alloc::{ProcessorsNotAvailable, UserId};
use crate::host::create_stub;
use crate::world::{VCtx, World};

/// Lifecycle state of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppState {
    /// Processes are running.
    Running,
    /// The application exited and its processors were released.
    Exited,
}

/// One launched application, as tracked by its host's resource manager.
#[derive(Debug, Clone)]
pub struct AppRecord {
    /// Application id (unique per installation).
    pub id: u32,
    /// The host it was launched from.
    pub host: usize,
    /// The owning user.
    pub user: UserId,
    /// Human-readable name.
    pub name: String,
    /// The processors it occupies (the application→processor mapping).
    pub nodes: Vec<NodeAddr>,
    /// Launch time, ns.
    pub started_ns: u64,
    /// Lifecycle state.
    pub state: AppState,
    /// Worker processes accounted for (clean exits plus failed nodes).
    pub finished_procs: usize,
    /// Nodes whose process exited cleanly.
    pub done_nodes: Vec<u32>,
    /// Nodes the failure detector declared dead while this app ran there.
    pub failed_nodes: Vec<u32>,
}

/// Per-installation application registry (all hosts' managers share the
/// table; each row remembers which host owns it).
#[derive(Debug, Default)]
pub struct AppRegistry {
    /// All applications ever launched.
    pub apps: Vec<AppRecord>,
}

impl AppRegistry {
    /// Applications launched from `host` (the per-host manager's view).
    pub fn on_host(&self, host: usize) -> Vec<&AppRecord> {
        self.apps.iter().filter(|a| a.host == host).collect()
    }

    /// The application currently occupying `node`, if any.
    pub fn app_on_node(&self, node: NodeAddr) -> Option<&AppRecord> {
        self.apps
            .iter()
            .find(|a| a.state == AppState::Running && a.nodes.contains(&node))
    }
}

/// Launch an application from `host`: allocate `n_nodes` processors
/// exclusively, create one stub per process, record the mapping, and spawn
/// `body` once per node. When every process finishes, the processors are
/// released automatically (the VORX "explicitly freed" step, done by the
/// manager on clean exit).
///
/// Returns the application id, or the §3.1 diagnostic.
pub fn start_application<F>(
    ctx: &VCtx,
    host: usize,
    user: UserId,
    name: &str,
    n_nodes: usize,
    body: F,
) -> Result<u32, ProcessorsNotAvailable>
where
    F: Fn(VCtx, NodeAddr, usize) + Clone + Send + 'static,
{
    let name = name.to_string();
    // Allocate processors up front (§3.1's VORX discipline).
    let nodes = ctx.with(move |w, _| w.alloc.allocate(user, n_nodes))?;
    // One stub per process: the faithful execution environment (§3.3).
    for &n in &nodes {
        create_stub(ctx, host, vec![n]);
    }
    let app_id = ctx.with({
        let nodes = nodes.clone();
        let name = name.clone();
        move |w, s| {
            let id = w.appmgr.apps.len() as u32;
            w.appmgr.apps.push(AppRecord {
                id,
                host,
                user,
                name: name.clone(),
                nodes,
                started_ns: s.now().as_ns(),
                state: AppState::Running,
                finished_procs: 0,
                done_nodes: Vec::new(),
                failed_nodes: Vec::new(),
            });
            id
        }
    });
    // Spawn one process per node; each reports completion to the manager.
    ctx.with(move |_, s| {
        for (rank, &node) in nodes.iter().enumerate() {
            let body = body.clone();
            s.spawn(
                format!("app{app_id}:{name}@n{}", node.0),
                move |ctx: VCtx| {
                    body(ctx.clone(), node, rank);
                    ctx.with(move |w, _| on_proc_exit(w, app_id, node));
                },
            );
        }
    });
    Ok(app_id)
}

/// Manager bookkeeping when one process of `app_id` exits; releases the
/// allocation when the last one is done.
fn on_proc_exit(w: &mut World, app_id: u32, node: NodeAddr) {
    let (done, user, nodes) = {
        let a = &mut w.appmgr.apps[app_id as usize];
        if a.failed_nodes.contains(&node.0) {
            // The failure detector already accounted for this node; a
            // straggler exit (the process outlived the crash report) must
            // not double-count.
            return;
        }
        a.done_nodes.push(node.0);
        a.finished_procs += 1;
        (
            a.done_nodes.len() + a.failed_nodes.len() == a.nodes.len(),
            a.user,
            a.nodes.clone(),
        )
    };
    if done {
        w.appmgr.apps[app_id as usize].state = AppState::Exited;
        w.alloc.free(user, &nodes);
    }
}

/// Failure-detector hook: `node` crashed. Every running application with a
/// process there counts that process as failed, so `wait_app` completes
/// (with losses) instead of waiting forever on a dead node. Called from
/// [`crate::fault::on_crash`].
pub(crate) fn on_node_failed(w: &mut World, node: NodeAddr) {
    // Iterate by index in launch order: deterministic, and `free` needs the
    // registry borrow released.
    for i in 0..w.appmgr.apps.len() {
        let (done, user, nodes) = {
            let a = &mut w.appmgr.apps[i];
            if a.state != AppState::Running
                || !a.nodes.contains(&node)
                || a.done_nodes.contains(&node.0)
                || a.failed_nodes.contains(&node.0)
            {
                continue;
            }
            a.failed_nodes.push(node.0);
            a.finished_procs += 1;
            (
                a.done_nodes.len() + a.failed_nodes.len() == a.nodes.len(),
                a.user,
                a.nodes.clone(),
            )
        };
        if done {
            w.appmgr.apps[i].state = AppState::Exited;
            w.alloc.free(user, &nodes);
        }
    }
}

/// Block until `app_id` exits.
pub fn wait_app(ctx: &VCtx, app_id: u32) {
    // Poll-free would need a waitset; application exit is infrequent, so a
    // coarse periodic check keeps the manager simple.
    loop {
        let state = ctx.with(move |w, _| w.appmgr.apps[app_id as usize].state);
        if state == AppState::Exited {
            return;
        }
        ctx.sleep(SimDuration::from_ms(1));
    }
}

/// Render the manager's `ps`-style listing for one host.
pub fn render(w: &World, host: usize) -> String {
    let mut out = format!("appmgr@host{host}: applications\n");
    out.push_str(&format!(
        "{:<5} {:<16} {:<6} {:<9} {:<10} nodes\n",
        "app", "name", "user", "state", "started"
    ));
    for a in w.appmgr.on_host(host) {
        let nodes: Vec<String> = a.nodes.iter().map(|n| n.to_string()).collect();
        out.push_str(&format!(
            "{:<5} {:<16} u{:<5} {:<9} {:<10} {}\n",
            a.id,
            a.name,
            a.user.0,
            format!("{:?}", a.state),
            format!("{:.1}ms", a.started_ns as f64 / 1e6),
            nodes.join(",")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{syscall, SyscallOp, SyscallRet};
    use crate::world::VorxBuilder;

    #[test]
    fn launch_track_and_release() {
        let mut v = VorxBuilder::single_cluster(8).hosts(2).build();
        v.spawn("host0:shell", |ctx| {
            let app =
                start_application(&ctx, 0, UserId(1), "solver", 3, |ctx: VCtx, node, rank| {
                    crate::api::user_compute(&ctx, node, SimDuration::from_ms(1 + rank as u64));
                    // Each process can use its own stub.
                    assert_eq!(
                        syscall(&ctx, node, SyscallOp::WriteFile { bytes: 100 }),
                        Ok(SyscallRet::Ok)
                    );
                })
                .expect("pool is free");
            // While running, the mapping is visible.
            let mapped = ctx.with(move |w, _| {
                let a = &w.appmgr.apps[app as usize];
                assert_eq!(a.state, AppState::Running);
                assert_eq!(a.nodes.len(), 3);
                w.appmgr.app_on_node(a.nodes[0]).map(|x| x.id)
            });
            assert_eq!(mapped, Some(app));
            wait_app(&ctx, app);
            // Exited: processors released.
            ctx.with(|w, _| {
                assert_eq!(w.alloc.free_count(), w.alloc.pool_size());
                assert_eq!(w.appmgr.apps[0].state, AppState::Exited);
            });
        });
        v.run_all();
    }

    #[test]
    fn hosts_track_their_own_applications() {
        let mut v = VorxBuilder::single_cluster(10).hosts(2).build();
        for host in 0..2usize {
            v.spawn(format!("host{host}:shell"), move |ctx| {
                let app = start_application(
                    &ctx,
                    host,
                    UserId(host as u32),
                    &format!("app-h{host}"),
                    2,
                    |ctx: VCtx, node, _| {
                        crate::api::user_compute(&ctx, node, SimDuration::from_ms(1));
                    },
                )
                .expect("pool large enough for both");
                wait_app(&ctx, app);
            });
        }
        v.run_all();
        let w = v.world();
        assert_eq!(w.appmgr.on_host(0).len(), 1);
        assert_eq!(w.appmgr.on_host(1).len(), 1);
        assert_eq!(w.appmgr.on_host(0)[0].name, "app-h0");
        let listing = render(&w, 1);
        assert!(listing.contains("app-h1"), "{listing}");
    }

    #[test]
    fn launch_fails_cleanly_when_pool_exhausted() {
        let mut v = VorxBuilder::single_cluster(4).hosts(1).build();
        v.spawn("host0:shell", |ctx| {
            let first = start_application(&ctx, 0, UserId(1), "big", 3, |ctx: VCtx, node, _| {
                crate::api::user_compute(&ctx, node, SimDuration::from_ms(5));
            })
            .expect("3 of 3 pool nodes");
            let denied = start_application(&ctx, 0, UserId(2), "late", 2, |_ctx, _, _| {});
            assert!(denied.is_err(), "pool is exhausted");
            wait_app(&ctx, first);
            // After release, the second user can start.
            let ok = start_application(&ctx, 0, UserId(2), "late", 2, |ctx: VCtx, node, _| {
                crate::api::user_compute(&ctx, node, SimDuration::from_us(10));
            });
            assert!(ok.is_ok());
            wait_app(&ctx, ok.unwrap());
        });
        v.run_all();
    }
}
