//! Process-side helpers: charging CPU time from blocking process code.

use desim::SimDuration;
use hpcnet::NodeAddr;

use crate::cpu::CpuCat;
use crate::world::VCtx;

/// Occupy `node`'s CPU for `d` and return when the work completes. This is
/// how application processes model computation and how syscall overheads
/// are applied.
///
/// System-category work runs at interrupt priority (queues only behind
/// other system work). User-category work queues behind earlier user work
/// and is *preempted* by system work: its completion is pushed back by
/// however much system time executed during the burst, iterated to a fixed
/// point.
pub fn compute(ctx: &VCtx, node: NodeAddr, cat: CpuCat, d: SimDuration) {
    if d.is_zero() {
        return;
    }
    match cat {
        CpuCat::System => {
            let end = ctx.with(move |w, s| w.charge(s.now(), node, cat, d));
            let now = ctx.now();
            if end > now {
                ctx.sleep(end - now);
            }
        }
        CpuCat::User => {
            let (start, mut end, mut sys_mark) = ctx.with(move |w, s| {
                let cpu = &mut w.node_mut(node).cpu;
                let (start, end) = cpu.begin_user(s.now(), d);
                (start, end, cpu.sys_cum_ns())
            });
            loop {
                let now = ctx.now();
                if end > now {
                    ctx.sleep(end - now);
                }
                // Extend by however much interrupt-priority work was
                // reserved while we slept (it preempted this burst).
                let extended = ctx.with(move |w, _| {
                    let cpu = &mut w.node_mut(node).cpu;
                    let intruded = cpu.sys_cum_ns() - sys_mark;
                    if intruded == 0 {
                        None
                    } else {
                        let ne = end + SimDuration::from_ns(intruded);
                        cpu.extend_user(ne);
                        Some((ne, cpu.sys_cum_ns()))
                    }
                });
                match extended {
                    None => break,
                    Some((ne, mark)) => {
                        end = ne;
                        sys_mark = mark;
                    }
                }
            }
            // Record the actual burst interval now that its extent is known.
            ctx.with(move |w, s| {
                if w.trace.is_enabled() {
                    let now = s.now();
                    w.trace.record(
                        now,
                        crate::cpu::TraceEvent::Cpu {
                            node: node.0,
                            cat: CpuCat::User,
                            start_ns: start.as_ns(),
                            end_ns: end.as_ns(),
                        },
                    );
                }
            });
        }
    }
}

/// [`compute`] with a nanosecond constant (the calibration unit).
pub fn compute_ns(ctx: &VCtx, node: NodeAddr, cat: CpuCat, ns: u64) {
    compute(ctx, node, cat, SimDuration::from_ns(ns));
}

/// Charge user-code computation on `node`.
pub fn user_compute(ctx: &VCtx, node: NodeAddr, d: SimDuration) {
    compute(ctx, node, CpuCat::User, d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::VorxBuilder;
    use desim::SimTime;

    #[test]
    fn compute_occupies_the_node_cpu() {
        let mut v = VorxBuilder::single_cluster(2).build();
        v.spawn("n0:a", |ctx| {
            user_compute(&ctx, NodeAddr(0), SimDuration::from_us(100));
            assert_eq!(ctx.now(), SimTime::from_ns(100_000));
        });
        // A second process on the same node queues behind the first.
        v.spawn("n0:b", |ctx| {
            ctx.sleep(SimDuration::from_us(10)); // start mid-way through a's burst
            user_compute(&ctx, NodeAddr(0), SimDuration::from_us(5));
            assert_eq!(ctx.now(), SimTime::from_ns(105_000));
        });
        // A process on another node is unaffected.
        v.spawn("n1:c", |ctx| {
            user_compute(&ctx, NodeAddr(1), SimDuration::from_us(7));
            assert_eq!(ctx.now(), SimTime::from_ns(7_000));
        });
        v.run_all();
        let w = v.world();
        assert_eq!(w.nodes[0].cpu.user_ns, 105_000);
        assert_eq!(w.nodes[1].cpu.user_ns, 7_000);
    }
}
