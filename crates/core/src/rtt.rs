//! Jacobson/Karn round-trip-time estimation (DESIGN.md §15).
//!
//! Fixed retransmission timeouts turn *slow* links into *dead* links: a
//! gray-degraded path whose acks take longer than `chan_ack_timeout_ns`
//! triggers a retransmit storm and, after retry exhaustion, a false
//! `PeerDown`. The classic answer (Jacobson 1988, and the multiprocessor
//! transport work in PAPERS.md) is to derive the timer from observed
//! round-trip behaviour:
//!
//! ```text
//! first sample:  SRTT = RTT,               RTTVAR = RTT / 2
//! afterwards:    RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − RTT|
//!                SRTT   = 7/8·SRTT   + 1/8·RTT
//! RTO = clamp(SRTT + 4·RTTVAR, floor, ceiling)
//! ```
//!
//! Karn's rule: only *unambiguous* acks — those for a frame that was never
//! retransmitted — contribute samples, because an ack for a retransmitted
//! frame cannot be attributed to a particular transmission.
//!
//! The estimator is pure integer arithmetic over sim-time nanoseconds, so
//! sharded replays stay bit-identical.

/// One SRTT/RTTVAR estimator (per channel end, or per membership peer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RttEstimator {
    srtt_ns: u64,
    rttvar_ns: u64,
    samples: u64,
}

impl RttEstimator {
    /// A fresh estimator with no samples; [`RttEstimator::rto_ns`] returns
    /// `None` until the first sample arrives.
    pub fn new() -> Self {
        RttEstimator::default()
    }

    /// Fold in one unambiguous round-trip sample.
    pub fn sample(&mut self, rtt_ns: u64) {
        if self.samples == 0 {
            self.srtt_ns = rtt_ns;
            self.rttvar_ns = rtt_ns / 2;
        } else {
            let err = self.srtt_ns.abs_diff(rtt_ns);
            self.rttvar_ns = (3 * self.rttvar_ns + err) / 4;
            self.srtt_ns = (7 * self.srtt_ns + rtt_ns) / 8;
        }
        self.samples += 1;
    }

    /// Smoothed round-trip time, ns (0 before the first sample).
    pub fn srtt_ns(&self) -> u64 {
        self.srtt_ns
    }

    /// Round-trip variance estimate, ns.
    pub fn rttvar_ns(&self) -> u64 {
        self.rttvar_ns
    }

    /// Samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The retransmission timeout `SRTT + 4·RTTVAR`, clamped to
    /// `[floor_ns, ceil_ns]`; `None` before the first sample (callers fall
    /// back to their calibration constant).
    pub fn rto_ns(&self, floor_ns: u64, ceil_ns: u64) -> Option<u64> {
        if self.samples == 0 {
            return None;
        }
        let raw = self.srtt_ns.saturating_add(4 * self.rttvar_ns);
        Some(raw.clamp(floor_ns, ceil_ns.max(floor_ns)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes_srtt_and_var() {
        let mut e = RttEstimator::new();
        assert_eq!(e.rto_ns(0, u64::MAX), None);
        e.sample(8_000);
        assert_eq!(e.srtt_ns(), 8_000);
        assert_eq!(e.rttvar_ns(), 4_000);
        assert_eq!(e.rto_ns(0, u64::MAX), Some(24_000));
    }

    #[test]
    fn steady_samples_converge_and_variance_decays() {
        let mut e = RttEstimator::new();
        for _ in 0..64 {
            e.sample(10_000);
        }
        assert_eq!(e.srtt_ns(), 10_000);
        assert_eq!(e.rttvar_ns(), 0, "constant RTT drives variance to zero");
        // Which is exactly why the floor clamp exists.
        assert_eq!(e.rto_ns(5_000, u64::MAX), Some(10_000));
        assert_eq!(e.rto_ns(20_000, u64::MAX), Some(20_000));
    }

    #[test]
    fn rto_clamps_to_ceiling() {
        let mut e = RttEstimator::new();
        e.sample(1_000_000_000);
        assert_eq!(e.rto_ns(0, 50_000_000), Some(50_000_000));
    }

    #[test]
    fn jittery_samples_widen_the_timeout() {
        let mut e = RttEstimator::new();
        for i in 0..32u64 {
            e.sample(if i % 2 == 0 { 5_000 } else { 15_000 });
        }
        let rto = e.rto_ns(0, u64::MAX).unwrap();
        assert!(rto > 15_000, "RTO {rto} must cover the observed spread");
    }
}
