//! Wire-protocol constants and encoding helpers.
//!
//! The HPC hardware carries an opaque `kind` discriminator and a 64-bit
//! `seq` tag in every frame envelope; VORX uses them to demultiplex received
//! frames to the channel machinery, the object manager, the host syscall
//! service, or user-defined communications objects.

use bytes::{BufMut, BytesMut};
use hpcnet::{NodeAddr, Payload};

/// Channel data fragment; more fragments of the same write follow.
pub const KIND_CHAN_DATA: u16 = 1;
/// Final (or only) fragment of a channel write.
pub const KIND_CHAN_DATA_LAST: u16 = 2;
/// Kernel-level channel acknowledgement (stop-and-wait).
pub const KIND_CHAN_ACK: u16 = 3;
/// Channel-open request to an object manager.
pub const KIND_OPEN_REQ: u16 = 4;
/// Channel-open reply from an object manager.
pub const KIND_OPEN_REP: u16 = 5;
/// Forwarded UNIX system call from a node process to its host stub.
pub const KIND_SYSCALL_REQ: u16 = 6;
/// System-call result from the stub back to the node.
pub const KIND_SYSCALL_REP: u16 = 7;
/// Program-text download chunk (tree download, §3.3).
pub const KIND_DOWNLOAD: u16 = 8;
/// First user-defined communications object tag. Frame kind for UDCO tag
/// `t` is `KIND_UDCO_BASE + t`.
pub const KIND_UDCO_BASE: u16 = 0x100;

/// Pack a channel id and fragment number into a frame `seq`.
pub fn chan_seq(chan: u32, frag: u32) -> u64 {
    (u64::from(chan) << 32) | u64::from(frag)
}

/// Extract the channel id from a frame `seq`.
pub fn seq_chan(seq: u64) -> u32 {
    (seq >> 32) as u32
}

/// Extract the fragment number from a frame `seq`.
pub fn seq_frag(seq: u64) -> u32 {
    seq as u32
}

/// Kind of object being rendezvoused through the object manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjKind {
    /// An ordinary channel.
    Channel,
    /// A user-defined communications object (§4.1: UDCOs "use the same
    /// rendezvous mechanism as channels").
    Udco,
}

impl ObjKind {
    fn to_byte(self) -> u8 {
        match self {
            ObjKind::Channel => 0,
            ObjKind::Udco => 1,
        }
    }

    fn from_byte(b: u8) -> Self {
        match b {
            0 => ObjKind::Channel,
            1 => ObjKind::Udco,
            x => panic!("unknown object kind {x}"),
        }
    }
}

/// Encode an open-request payload (object kind + name).
pub fn pack_open_req_kind(kind: ObjKind, name: &str) -> Payload {
    let mut b = BytesMut::with_capacity(1 + name.len());
    b.put_u8(kind.to_byte());
    b.put_slice(name.as_bytes());
    Payload::Data(b.freeze())
}

/// Encode a channel open-request payload.
pub fn pack_open_req(name: &str) -> Payload {
    pack_open_req_kind(ObjKind::Channel, name)
}

/// Decode an open-request payload into `(kind, name)`.
pub fn parse_open_req_kind(p: &Payload) -> (ObjKind, String) {
    let b = p.bytes().expect("open request must carry the name");
    (
        ObjKind::from_byte(b[0]),
        String::from_utf8(b[1..].to_vec()).expect("object names are UTF-8"),
    )
}

/// Decode an open-request payload, ignoring the object kind.
pub fn parse_open_req(p: &Payload) -> String {
    parse_open_req_kind(p).1
}

/// Encode an open-reply payload: object kind + assigned id + peer address +
/// the name (kept so the receiving kernel can label the end for `cdb`).
/// Peer addresses are 32-bit on the wire (million-endpoint worlds outgrew
/// u16 node ids).
pub fn pack_open_rep_kind(kind: ObjKind, id: u32, peer: NodeAddr, name: &str) -> Payload {
    let mut b = BytesMut::with_capacity(9 + name.len());
    b.put_u8(kind.to_byte());
    b.put_u32(id);
    b.put_u32(peer.0);
    b.put_slice(name.as_bytes());
    Payload::Data(b.freeze())
}

/// Encode a channel open-reply payload.
pub fn pack_open_rep(chan: u32, peer: NodeAddr, name: &str) -> Payload {
    pack_open_rep_kind(ObjKind::Channel, chan, peer, name)
}

/// Decode an open-reply payload into `(kind, id, peer, name)`.
pub fn parse_open_rep_kind(p: &Payload) -> (ObjKind, u32, NodeAddr, String) {
    let b = p.bytes().expect("open reply carries data");
    assert!(b.len() >= 9, "short open reply");
    let kind = ObjKind::from_byte(b[0]);
    let id = u32::from_be_bytes([b[1], b[2], b[3], b[4]]);
    let peer = NodeAddr(u32::from_be_bytes([b[5], b[6], b[7], b[8]]));
    let name = String::from_utf8(b[9..].to_vec()).expect("object names are UTF-8");
    (kind, id, peer, name)
}

/// Decode a channel open-reply payload.
pub fn parse_open_rep(p: &Payload) -> (u32, NodeAddr, String) {
    let (kind, id, peer, name) = parse_open_rep_kind(p);
    assert_eq!(kind, ObjKind::Channel, "expected a channel reply");
    (id, peer, name)
}

/// Flow-controlled multicast data (§4.2).
pub const KIND_MCAST_DATA: u16 = 9;
/// Multicast per-destination acknowledgement.
pub const KIND_MCAST_ACK: u16 = 10;

/// Channel close notification (§4: channels are dynamically destroyed).
pub const KIND_CHAN_CLOSE: u16 = 11;
/// Server listen registration at the object manager (§4 name reuse).
pub const KIND_SERVE_REQ: u16 = 12;
/// Manager acknowledgement of a listen registration.
pub const KIND_SERVE_ACK: u16 = 13;
/// Manager notification to a server: a client connected (new channel).
pub const KIND_SERVE_CONN: u16 = 14;

/// Final fragment of a multicast write (non-final fragments use
/// `KIND_MCAST_DATA`).
pub const KIND_MCAST_DATA_LAST: u16 = 15;

/// Manager acknowledgement that an open request has been queued; the
/// requester stops retransmitting the request and parks until the reply.
pub const KIND_OPEN_QUEUED: u16 = 16;
/// Receiver-side "side buffers full" notification: the fragment was
/// deferred, not lost, so the sender must not count ack silence against its
/// retry budget.
pub const KIND_CHAN_BUSY: u16 = 17;
/// Acknowledgement for a reliably-delivered control frame (open replies,
/// connect notifications, closes). `seq` echoes the control frame's key.
pub const KIND_CTL_ACK: u16 = 18;

/// Windowed-mode channel acknowledgement (`chan_window > 1` only): the
/// `seq`'s fragment field carries the cumulative ack (highest fragment
/// received in order), and the payload carries a selective-ack bitmap plus a
/// credit grant. Stop-and-wait (`chan_window = 1`) never emits or consumes
/// this kind, which is what keeps W=1 traces bit-identical to the pre-window
/// protocol.
pub const KIND_CHAN_WACK: u16 = 19;

/// Encode a windowed ack payload: selective-ack bitmap (bit `i` set means
/// fragment `cum_ack + 1 + i` is already held out of order) and the credit
/// grant (receiver buffer slots available beyond `cum_ack`, in fragments).
pub fn pack_wack(sack: u32, credit: u32) -> Payload {
    let mut b = BytesMut::with_capacity(8);
    b.put_u32(sack);
    b.put_u32(credit);
    Payload::Data(b.freeze())
}

/// Decode a windowed ack payload into `(sack bitmap, credit)`.
pub fn parse_wack(p: &Payload) -> (u32, u32) {
    let b = p.bytes().expect("windowed ack carries data");
    assert!(b.len() >= 8, "short windowed ack");
    (
        u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
        u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
    )
}

/// Membership heartbeat beacon: sent over the reliable control plane when a
/// sender exhausts its retry budget against a peer that is still believed
/// alive. The `KIND_CTL_ACK` it provokes is the liveness evidence; beacon
/// retry exhaustion with the peer up means *partitioned*, not down.
pub const KIND_HEARTBEAT: u16 = 20;
/// Replicated server registration: the hash-home object manager mirrors each
/// registered name to its successor replica (and anti-entropy pushes mirror
/// in both directions after a partition heals).
pub const KIND_REPL_REG: u16 = 21;
/// Typed refusal of an open request: the object manager's pending-open table
/// is full (`VorxError::ResourceExhausted`). Sent reliably so the opener
/// fails fast instead of retrying into an overloaded manager.
pub const KIND_OPEN_NACK: u16 = 22;

/// In-network collective contribution, combinable inside the fabric: a
/// member's operand headed up to the group root. The payload is the
/// `hpcnet::combine` 13-byte operand, and the `seq` is the
/// `(group, sequence, attempt)` combining equivalence class
/// ([`hpcnet::combine::enc_seq`]). This is the one kind registered with
/// [`hpcnet::Fabric::comb_register_group`].
pub const KIND_COLL_UP: u16 = 23;
/// Collective result from the root back to the members, down the hardware
/// multicast path. Doubles as the completion acknowledgement: a member that
/// holds the result knows its contribution was counted.
pub const KIND_COLL_RESULT: u16 = 24;
/// Root-driven retry: the combining window closed without the full group
/// arriving, so the root opens a fresh *attempt* epoch. Members re-send
/// their operand under the new attempt; stale partials from the previous
/// attempt can never merge with (or double-count into) the new one.
pub const KIND_COLL_RETRY: u16 = 25;
/// Member-driven result replay request: the member contributed but never
/// saw the `KIND_COLL_RESULT` (lost on the way down). The root replays the
/// completed result unicast.
pub const KIND_COLL_NUDGE: u16 = 26;
/// All-to-all value broadcast: one member's `(index, value)` pair,
/// hardware-multicast to every other member.
pub const KIND_COLL_A2A: u16 = 27;
/// All-to-all recovery request: the requester is missing the addressee's
/// value for the current operation and asks for a unicast replay.
pub const KIND_COLL_A2A_REQ: u16 = 28;
/// All-to-all recovery replay: a unicast `(index, value)` pair answering a
/// `KIND_COLL_A2A_REQ`.
pub const KIND_COLL_A2A_VAL: u16 = 29;

/// True iff `kind` is lowest-priority, fully-retransmittable channel data —
/// the only traffic class the fabric may shed under an overload byte budget.
/// Everything else (acks, opens, control, heartbeats, UDCO) is never shed:
/// shedding is safe exactly where the stop-and-wait/window retry protocols
/// already recover from loss.
pub fn is_sheddable_kind(kind: u16) -> bool {
    kind == KIND_CHAN_DATA || kind == KIND_CHAN_DATA_LAST
}

/// Encode a replica registration (`KIND_REPL_REG`): object kind + the
/// registered server's address + the name.
pub fn pack_repl_reg(kind: ObjKind, server: NodeAddr, name: &str) -> Payload {
    let mut b = BytesMut::with_capacity(5 + name.len());
    b.put_u8(kind.to_byte());
    b.put_u32(server.0);
    b.put_slice(name.as_bytes());
    Payload::Data(b.freeze())
}

/// Decode a replica registration into `(kind, server, name)`.
pub fn parse_repl_reg(p: &Payload) -> (ObjKind, NodeAddr, String) {
    let b = p.bytes().expect("replica registration carries data");
    assert!(b.len() >= 5, "short replica registration");
    (
        ObjKind::from_byte(b[0]),
        NodeAddr(u32::from_be_bytes([b[1], b[2], b[3], b[4]])),
        String::from_utf8(b[5..].to_vec()).expect("object names are UTF-8"),
    )
}

/// Encode an all-to-all value payload: member index + 64-bit value.
pub fn pack_a2a(idx: u32, value: u64) -> Payload {
    let mut b = BytesMut::with_capacity(12);
    b.put_u32(idx);
    b.put_u64(value);
    Payload::Data(b.freeze())
}

/// Decode an all-to-all value payload into `(index, value)`.
pub fn parse_a2a(p: &Payload) -> (u32, u64) {
    let b = p.bytes().expect("a2a value carries data");
    let mut i = [0u8; 4];
    i.copy_from_slice(&b[..4]);
    let mut v = [0u8; 8];
    v.copy_from_slice(&b[4..12]);
    (u32::from_be_bytes(i), u64::from_be_bytes(v))
}

/// Encode an all-to-all recovery request: the requester's member index.
pub fn pack_a2a_req(idx: u32) -> Payload {
    let mut b = BytesMut::with_capacity(4);
    b.put_u32(idx);
    Payload::Data(b.freeze())
}

/// Decode an all-to-all recovery request into the requester's index.
pub fn parse_a2a_req(p: &Payload) -> u32 {
    let b = p.bytes().expect("a2a request carries the requester index");
    let mut i = [0u8; 4];
    i.copy_from_slice(&b[..4]);
    u32::from_be_bytes(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_round_trip() {
        let s = chan_seq(0xDEAD_BEEF, 42);
        assert_eq!(seq_chan(s), 0xDEAD_BEEF);
        assert_eq!(seq_frag(s), 42);
    }

    #[test]
    fn open_req_round_trip() {
        let p = pack_open_req("results/π");
        assert_eq!(parse_open_req(&p), "results/π");
    }

    #[test]
    fn open_rep_round_trip() {
        let p = pack_open_rep(7, NodeAddr(300), "pipe");
        assert_eq!(parse_open_rep(&p), (7, NodeAddr(300), "pipe".to_string()));
    }

    #[test]
    fn wack_round_trip() {
        let p = pack_wack(0b1010, 17);
        assert_eq!(parse_wack(&p), (0b1010, 17));
    }

    #[test]
    fn a2a_round_trip() {
        let p = pack_a2a(4095, 0xFACE_CAFE_0042_0000);
        assert_eq!(parse_a2a(&p), (4095, 0xFACE_CAFE_0042_0000));
        let r = pack_a2a_req(17);
        assert_eq!(parse_a2a_req(&r), 17);
    }

    #[test]
    fn repl_reg_round_trip() {
        let p = pack_repl_reg(ObjKind::Channel, NodeAddr(513), "svc/name");
        assert_eq!(
            parse_repl_reg(&p),
            (ObjKind::Channel, NodeAddr(513), "svc/name".to_string())
        );
    }
}
