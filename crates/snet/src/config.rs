//! Parameters of the S/NET bus, receiver FIFOs, and recovery strategies.

/// Timing/capacity parameters for the S/NET model. All times in ns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnetConfig {
    /// Receiver FIFO capacity in bytes. "The hardware provided a fifo input
    /// buffer for each processor that could hold several incoming messages,
    /// with a combined length up to 2048 bytes." (§2)
    pub fifo_bytes: u32,
    /// Bus serialization time per byte. The S/NET was "a high speed
    /// interconnect" for its day; we model 10 MB/s.
    pub bus_ns_per_byte: u64,
    /// Fixed per-transfer bus overhead (arbitration, addressing).
    pub bus_overhead_ns: u64,
    /// Hardware envelope per message on the bus.
    pub header_bytes: u32,
    /// Receiver software FIFO read rate (kernel word-copy loop on a
    /// Motorola 68000-class CPU), per byte.
    pub sw_read_ns_per_byte: u64,
    /// Receiver software per-message overhead (interrupt entry + dispatch).
    pub sw_per_msg_ns: u64,
    /// Granularity at which the receiver's FIFO read loop frees space. The
    /// lockout of §2 depends on space being freed gradually ("the receiver
    /// could not remove words from its fifo fast enough").
    pub drain_chunk_bytes: u32,
    /// Busy-retry loop interval: how quickly a rejected sender re-offers its
    /// message ("continuously resend their message until it was
    /// successfully received").
    pub retry_ns: u64,
    /// Initial random-backoff window; doubles per consecutive rejection.
    pub backoff_initial_ns: u64,
    /// Random-backoff window cap.
    pub backoff_max_ns: u64,
    /// Length of a reservation-protocol control message (request / grant).
    pub control_bytes: u32,
    /// Software cost to generate or act on a reservation control message.
    pub reservation_sw_ns: u64,
}

impl SnetConfig {
    /// The mid-1980s S/NET–Meglos system as described by the paper.
    pub fn paper_1985() -> Self {
        SnetConfig {
            fifo_bytes: 2048,
            bus_ns_per_byte: 100, // 10 MB/s
            bus_overhead_ns: 2_000,
            header_bytes: 12,
            sw_read_ns_per_byte: 300,
            sw_per_msg_ns: 50_000,
            drain_chunk_bytes: 64,
            retry_ns: 10_000,
            backoff_initial_ns: 100_000,
            backoff_max_ns: 10_000_000,
            control_bytes: 16,
            reservation_sw_ns: 30_000,
        }
    }

    /// Bus occupancy of a message with `payload` bytes.
    pub fn transfer_ns(&self, payload: u32) -> u64 {
        self.bus_overhead_ns + self.bus_ns_per_byte * u64::from(payload + self.header_bytes)
    }
}

impl Default for SnetConfig {
    fn default() -> Self {
        SnetConfig::paper_1985()
    }
}

/// How a sender recovers when the receiver's FIFO rejects its message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Original Meglos plan: "continuously resend their message until it was
    /// successfully received". Subject to lockout.
    BusyRetry,
    /// Ethernet-style random exponential backoff: avoids lockout "but when
    /// many messages need to be retransmitted, communications runs at the
    /// timeout rate".
    RandomBackoff,
    /// Reservation protocol: a short request precedes the data; the receiver
    /// authorizes one sender at a time, eliminating overflow at the cost of
    /// "extra software and communications overhead [that] would increase
    /// latency for all messages".
    Reservation,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::BusyRetry => "busy-retry",
            Strategy::RandomBackoff => "random-backoff",
            Strategy::Reservation => "reservation",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_header_and_overhead() {
        let c = SnetConfig::paper_1985();
        assert_eq!(c.transfer_ns(0), 2_000 + 1_200);
        assert_eq!(c.transfer_ns(1024), 2_000 + 100 * 1036);
    }

    #[test]
    fn lockout_preconditions_hold_for_paper_defaults() {
        // The §2 lockout requires the bus to deliver faster than the
        // receiver software frees space: bytes freed during one long
        // transfer must be smaller than the message.
        let c = SnetConfig::paper_1985();
        let msg = 1024 + c.header_bytes;
        let transfer = c.transfer_ns(1024);
        let freed_during_transfer = transfer / c.sw_read_ns_per_byte;
        assert!(freed_during_transfer < u64::from(msg));
    }

    #[test]
    fn twelve_150_byte_messages_fit_the_fifo() {
        // "12 processors could each send a 150 byte message to a single
        // processor without overflowing its fifo." (§2)
        let c = SnetConfig::paper_1985();
        assert!(12 * (150 + c.header_bytes) <= c.fifo_bytes);
    }
}
