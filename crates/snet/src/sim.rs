//! Event-driven simulator of the S/NET single-bus multicomputer and the
//! flow-control recovery strategies of §2 of the paper.
//!
//! The interesting physics: the bus delivers messages faster than receiver
//! *software* drains its 2048-byte FIFO, and on overflow the FIFO "retained
//! the portion of the message that was received up to the time of the
//! overflow", which the receiving kernel must read and discard. Under the
//! original busy-retry recovery this produces **lockout**: retrying senders
//! keep refilling every freed byte with partial garbage, so no whole message
//! ever fits again.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::config::{SnetConfig, Strategy};

/// Deterministic SplitMix64 (for random backoff) — keeps this crate
/// dependency-free and runs identically on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MsgKind {
    Data,
    Request,
    Grant,
}

#[derive(Debug, Clone, Copy)]
struct OutMsg {
    dst: usize,
    len: u32,
    seq: u64,
    kind: MsgKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemKind {
    Data,
    /// Truncated junk left in the FIFO by a rejected message.
    Partial,
    Request,
    Grant,
}

#[derive(Debug, Clone, Copy)]
struct FifoItem {
    kind: ItemKind,
    src: usize,
    seq: u64,
    /// Bytes occupied in the FIFO (header included).
    total: u32,
    drained: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderPhase {
    /// Ready to offer the head message to the bus.
    Ready,
    /// Offer queued at the bus or transfer in progress.
    Offering,
    /// Waiting out a backoff interval.
    BackingOff,
    /// Reservation protocol: request sent, waiting for the grant.
    AwaitGrant,
    /// Reservation protocol: grant received, authorized to send the data.
    Granted,
    /// Nothing to send.
    Idle,
}

struct Node {
    /// Software gap between a successful send and offering the next message
    /// (`None` = the busy-loop `retry_ns`). Models a paced application.
    send_gap_ns: Option<u64>,
    /// Data messages this node still has to send.
    pending: VecDeque<OutMsg>,
    /// Control messages (requests/grants) jump this queue.
    control: VecDeque<OutMsg>,
    phase: SenderPhase,
    consecutive_rejects: u32,
    // --- receiver side ---
    fifo: VecDeque<FifoItem>,
    fifo_used: u32,
    draining: bool,
    grant_queue: VecDeque<usize>,
    grant_outstanding: Option<usize>,
}

impl Node {
    fn new() -> Self {
        Node {
            send_gap_ns: None,
            pending: VecDeque::new(),
            control: VecDeque::new(),
            phase: SenderPhase::Idle,
            consecutive_rejects: 0,
            fifo: VecDeque::new(),
            fifo_used: 0,
            draining: false,
            grant_queue: VecDeque::new(),
            grant_outstanding: None,
        }
    }

    fn head(&self) -> Option<&OutMsg> {
        self.control.front().or_else(|| self.pending.front())
    }

    fn pop_head(&mut self) -> OutMsg {
        if let Some(m) = self.control.pop_front() {
            m
        } else {
            self.pending.pop_front().expect("pop with empty queues")
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Node offers its head message to the bus.
    Offer(usize),
    /// The bus finished transferring `msg` from `src`.
    TransferEnd { src: usize, msg: OutMsg },
    /// Receiver software finished one read chunk at node `n`.
    DrainChunk(usize),
}

struct Entry {
    t: u64,
    seq: u64,
    ev: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.t, self.seq) == (other.t, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// One delivered message: `(time_ns, src, seq)`.
pub type Delivery = (u64, usize, u64);

/// Results of a run.
#[derive(Debug, Clone)]
pub struct SnetReport {
    /// All deliveries in order, per receiving node.
    pub delivered: Vec<Vec<Delivery>>,
    /// Total data messages delivered.
    pub delivered_total: u64,
    /// Rejected (overflowed) transfer attempts.
    pub rejects: u64,
    /// Garbage bytes the receivers had to read and discard.
    pub garbage_bytes: u64,
    /// Bus busy time, ns.
    pub bus_busy_ns: u64,
    /// Time of the last delivery (ns), or the deadline if none.
    pub last_delivery_ns: u64,
    /// True iff every enqueued data message was delivered before the
    /// deadline. `false` indicates starvation/lockout (or injected loss —
    /// S/NET software has no retransmission protocol to recover it).
    pub completed: bool,
    /// Data messages left undelivered at the deadline.
    pub undelivered: u64,
    /// Data messages lost to injected faults (vanished on the bus).
    pub lost: u64,
    /// Data messages that arrived corrupted and were discarded as junk.
    pub corrupted: u64,
}

/// The S/NET simulator. Build, enqueue traffic, [`SnetSim::run`].
pub struct SnetSim {
    cfg: SnetConfig,
    strategy: Strategy,
    nodes: Vec<Node>,
    now: u64,
    seq: u64,
    queue: BinaryHeap<Entry>,
    bus_busy: bool,
    bus_waiting: VecDeque<usize>,
    rng: SplitMix64,
    delivered: Vec<Vec<Delivery>>,
    rejects: u64,
    garbage_bytes: u64,
    bus_busy_ns: u64,
    enqueued_data: u64,
    delivered_data: u64,
    /// Injected fault probabilities for data messages in transit.
    fault_drop: f64,
    fault_corrupt: f64,
    lost: u64,
    corrupted: u64,
}

impl SnetSim {
    /// Create a simulator with `n` processors.
    pub fn new(cfg: SnetConfig, n: usize, strategy: Strategy, seed: u64) -> Self {
        SnetSim {
            cfg,
            strategy,
            nodes: (0..n).map(|_| Node::new()).collect(),
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            bus_busy: false,
            bus_waiting: VecDeque::new(),
            rng: SplitMix64::new(seed),
            delivered: vec![Vec::new(); n],
            rejects: 0,
            garbage_bytes: 0,
            bus_busy_ns: 0,
            enqueued_data: 0,
            delivered_data: 0,
            fault_drop: 0.0,
            fault_corrupt: 0.0,
            lost: 0,
            corrupted: 0,
        }
    }

    /// Inject transit faults: each *data* message independently vanishes
    /// with probability `drop` or arrives as discardable junk with
    /// probability `corrupt`. Draws come from the simulator's seeded RNG in
    /// bus-transfer order, so runs stay deterministic per seed; with both
    /// probabilities zero no randomness is consumed. Control messages
    /// (reservation requests/grants) are left intact.
    pub fn set_faults(&mut self, drop: f64, corrupt: f64) {
        self.fault_drop = drop;
        self.fault_corrupt = corrupt;
    }

    /// `true` with probability `p`, drawing nothing when `p == 0`.
    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Number of processors.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Queue `count` data messages of `len` bytes from `src` to `dst`,
    /// with the first offered at time `start_ns`.
    pub fn enqueue(&mut self, src: usize, dst: usize, len: u32, count: u64, start_ns: u64) {
        assert_ne!(src, dst, "S/NET node cannot send to itself");
        assert!(
            len + self.cfg.header_bytes <= self.cfg.fifo_bytes,
            "message larger than the receive FIFO can never be delivered"
        );
        for i in 0..count {
            self.nodes[src].pending.push_back(OutMsg {
                dst,
                len,
                seq: i,
                kind: MsgKind::Data,
            });
        }
        self.enqueued_data += count;
        self.push(start_ns, Event::Offer(src));
    }

    /// Like [`SnetSim::enqueue`], but the sender waits `gap_ns` after each
    /// successful send before offering the next message (a well-behaved,
    /// flow-controlled application rather than a hardware blast).
    pub fn enqueue_paced(
        &mut self,
        src: usize,
        dst: usize,
        len: u32,
        count: u64,
        start_ns: u64,
        gap_ns: u64,
    ) {
        self.nodes[src].send_gap_ns = Some(gap_ns);
        self.enqueue(src, dst, len, count, start_ns);
    }

    fn push(&mut self, t: u64, ev: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry { t, seq, ev });
    }

    /// Run until quiescent or `deadline_ns`, whichever comes first.
    pub fn run(mut self, deadline_ns: u64) -> SnetReport {
        while let Some(e) = self.queue.pop() {
            if e.t > deadline_ns {
                break;
            }
            debug_assert!(e.t >= self.now);
            self.now = e.t;
            match e.ev {
                Event::Offer(n) => self.offer(n),
                Event::TransferEnd { src, msg } => self.transfer_end(src, msg),
                Event::DrainChunk(n) => self.drain_chunk(n),
            }
        }
        let last_delivery_ns = self
            .delivered
            .iter()
            .flatten()
            .map(|(t, _, _)| *t)
            .max()
            .unwrap_or(deadline_ns);
        SnetReport {
            delivered_total: self.delivered_data,
            rejects: self.rejects,
            garbage_bytes: self.garbage_bytes,
            bus_busy_ns: self.bus_busy_ns,
            last_delivery_ns,
            completed: self.delivered_data == self.enqueued_data,
            undelivered: self.enqueued_data - self.delivered_data,
            lost: self.lost,
            corrupted: self.corrupted,
            delivered: self.delivered,
        }
    }

    /// Node `n` wants to put its head message on the bus.
    fn offer(&mut self, n: usize) {
        let node = &mut self.nodes[n];
        let Some(head) = node.head().copied() else {
            node.phase = SenderPhase::Idle;
            return;
        };
        // Under the reservation protocol a *data* message needs a grant.
        if self.strategy == Strategy::Reservation
            && head.kind == MsgKind::Data
            && node.control.is_empty()
        {
            match node.phase {
                SenderPhase::AwaitGrant => return, // request outstanding
                SenderPhase::Granted => {}         // authorized: send data
                _ => {
                    // Send a request first.
                    node.control.push_back(OutMsg {
                        dst: head.dst,
                        len: self.cfg.control_bytes,
                        seq: head.seq,
                        kind: MsgKind::Request,
                    });
                }
            }
        }
        node.phase = SenderPhase::Offering;
        if self.bus_busy {
            if !self.bus_waiting.contains(&n) {
                self.bus_waiting.push_back(n);
            }
        } else {
            self.start_transfer(n);
        }
    }

    fn start_transfer(&mut self, n: usize) {
        debug_assert!(!self.bus_busy);
        let msg = self.nodes[n].pop_head();
        let dur = self.cfg.transfer_ns(msg.len);
        self.bus_busy = true;
        self.bus_busy_ns += dur;
        self.push(self.now + dur, Event::TransferEnd { src: n, msg });
    }

    fn bus_release(&mut self) {
        self.bus_busy = false;
        if let Some(next) = self.bus_waiting.pop_front() {
            // Re-check the node still has something to send.
            if self.nodes[next].head().is_some() {
                self.start_transfer(next);
            } else {
                self.nodes[next].phase = SenderPhase::Idle;
                self.bus_release();
            }
        }
    }

    fn transfer_end(&mut self, src: usize, msg: OutMsg) {
        let size = msg.len + self.cfg.header_bytes;
        let dst = msg.dst;
        if msg.kind == MsgKind::Data {
            if self.chance(self.fault_drop) {
                // The message vanishes in transit (bad address latch): the
                // bus cycle completed, so the sender saw success and moves
                // on. Without a software retransmission protocol the
                // message is gone for good.
                self.lost += 1;
                self.on_send_success(src, msg);
                self.bus_release();
                return;
            }
            if self.chance(self.fault_corrupt) {
                // Damaged in transit: whatever fits of it lands in the FIFO
                // as junk the receiving kernel must read and discard.
                self.corrupted += 1;
                let free = self.cfg.fifo_bytes - self.nodes[dst].fifo_used;
                let junk = size.min(free);
                if junk > 0 {
                    self.nodes[dst].fifo.push_back(FifoItem {
                        kind: ItemKind::Partial,
                        src,
                        seq: msg.seq,
                        total: junk,
                        drained: 0,
                    });
                    self.nodes[dst].fifo_used += junk;
                    self.garbage_bytes += u64::from(junk);
                    self.kick_drain(dst);
                }
                self.on_send_success(src, msg);
                self.bus_release();
                return;
            }
        }
        let free = self.cfg.fifo_bytes - self.nodes[dst].fifo_used;
        if size <= free {
            // Accepted whole.
            let kind = match msg.kind {
                MsgKind::Data => ItemKind::Data,
                MsgKind::Request => ItemKind::Request,
                MsgKind::Grant => ItemKind::Grant,
            };
            self.nodes[dst].fifo.push_back(FifoItem {
                kind,
                src,
                seq: msg.seq,
                total: size,
                drained: 0,
            });
            self.nodes[dst].fifo_used += size;
            self.kick_drain(dst);
            self.on_send_success(src, msg);
        } else {
            // Overflow: the FIFO keeps the truncated prefix, which the
            // receiving kernel must read and discard; the sender sees a
            // fifo-full signal and must resend the whole message.
            self.rejects += 1;
            if free > 0 {
                self.nodes[dst].fifo.push_back(FifoItem {
                    kind: ItemKind::Partial,
                    src,
                    seq: msg.seq,
                    total: free,
                    drained: 0,
                });
                self.nodes[dst].fifo_used += free;
                self.garbage_bytes += u64::from(free);
                self.kick_drain(dst);
            }
            self.on_send_reject(src, msg);
        }
        self.bus_release();
    }

    fn on_send_success(&mut self, src: usize, msg: OutMsg) {
        let node = &mut self.nodes[src];
        node.consecutive_rejects = 0;
        match (self.strategy, msg.kind) {
            (Strategy::Reservation, MsgKind::Request) => {
                node.phase = SenderPhase::AwaitGrant;
                // Do not offer the data yet; wait for the grant.
            }
            _ => {
                node.phase = SenderPhase::Ready;
                if node.head().is_some() {
                    // Software gap before offering the next message.
                    let gap = node.send_gap_ns.unwrap_or(self.cfg.retry_ns);
                    self.push(self.now + gap, Event::Offer(src));
                } else {
                    node.phase = SenderPhase::Idle;
                }
            }
        }
    }

    fn on_send_reject(&mut self, src: usize, msg: OutMsg) {
        // The whole message must be resent: put it back at the head.
        let node = &mut self.nodes[src];
        match msg.kind {
            MsgKind::Data => node.pending.push_front(msg),
            _ => node.control.push_front(msg),
        }
        node.consecutive_rejects += 1;
        let delay = match self.strategy {
            Strategy::BusyRetry | Strategy::Reservation => self.cfg.retry_ns,
            Strategy::RandomBackoff => {
                let exp = node.consecutive_rejects.min(16);
                let window = (self.cfg.backoff_initial_ns << (exp - 1))
                    .min(self.cfg.backoff_max_ns)
                    .max(1);
                self.cfg.retry_ns + self.rng.below(window)
            }
        };
        node.phase = SenderPhase::BackingOff;
        self.push(self.now + delay, Event::Offer(src));
    }

    /// Start the receiver software drain loop at `n` if it is not running.
    fn kick_drain(&mut self, n: usize) {
        if !self.nodes[n].draining && !self.nodes[n].fifo.is_empty() {
            self.nodes[n].draining = true;
            // Per-message software overhead is charged before the first
            // chunk of each item.
            let d = self.cfg.sw_per_msg_ns + self.chunk_ns(n);
            self.push(self.now + d, Event::DrainChunk(n));
        }
    }

    fn chunk_ns(&self, n: usize) -> u64 {
        let item = self.nodes[n].fifo.front().expect("drain with empty fifo");
        let remaining = item.total - item.drained;
        let chunk = remaining.min(self.cfg.drain_chunk_bytes);
        self.cfg.sw_read_ns_per_byte * u64::from(chunk)
    }

    fn drain_chunk(&mut self, n: usize) {
        let cfg_chunk = self.cfg.drain_chunk_bytes;
        let node = &mut self.nodes[n];
        let item = node.fifo.front_mut().expect("drain with empty fifo");
        let chunk = (item.total - item.drained).min(cfg_chunk);
        item.drained += chunk;
        node.fifo_used -= chunk; // space frees as the kernel reads
        if item.drained == item.total {
            let item = node.fifo.pop_front().expect("checked");
            match item.kind {
                ItemKind::Data => {
                    self.delivered[n].push((self.now, item.src, item.seq));
                    self.delivered_data += 1;
                    if self.strategy == Strategy::Reservation
                        && self.nodes[n].grant_outstanding == Some(item.src)
                    {
                        self.nodes[n].grant_outstanding = None;
                        self.maybe_grant(n);
                    }
                }
                ItemKind::Partial => { /* junk discarded */ }
                ItemKind::Request => {
                    self.nodes[n].grant_queue.push_back(item.src);
                    self.maybe_grant(n);
                }
                ItemKind::Grant => {
                    // This node's request was granted: send the data now.
                    self.nodes[n].phase = SenderPhase::Granted;
                    self.push(self.now + self.cfg.reservation_sw_ns, Event::Offer(n));
                }
            }
        }
        let node = &mut self.nodes[n];
        if node.fifo.is_empty() {
            node.draining = false;
        } else {
            let head_fresh = node.fifo.front().expect("checked").drained == 0;
            let extra = if head_fresh {
                self.cfg.sw_per_msg_ns
            } else {
                0
            };
            let d = extra + self.chunk_ns(n);
            self.push(self.now + d, Event::DrainChunk(n));
        }
    }

    /// Authorize the next requester if no data transfer is outstanding.
    fn maybe_grant(&mut self, n: usize) {
        if self.nodes[n].grant_outstanding.is_some() {
            return;
        }
        let Some(who) = self.nodes[n].grant_queue.pop_front() else {
            return;
        };
        self.nodes[n].grant_outstanding = Some(who);
        self.nodes[n].control.push_back(OutMsg {
            dst: who,
            len: self.cfg.control_bytes,
            seq: 0,
            kind: MsgKind::Grant,
        });
        self.push(self.now + self.cfg.reservation_sw_ns, Event::Offer(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn burst(strategy: Strategy, senders: usize, len: u32, count: u64) -> SnetReport {
        let mut sim = SnetSim::new(SnetConfig::paper_1985(), senders + 1, strategy, 42);
        for s in 1..=senders {
            sim.enqueue(s, 0, len, count, 0);
        }
        sim.run(30 * SEC)
    }

    #[test]
    fn paced_single_sender_delivers_everything() {
        // A sender paced slower than the receiver's drain never overflows.
        let mut sim = SnetSim::new(SnetConfig::paper_1985(), 2, Strategy::BusyRetry, 42);
        sim.enqueue_paced(1, 0, 1024, 20, 0, 400_000);
        let r = sim.run(30 * SEC);
        assert!(r.completed);
        assert_eq!(r.delivered_total, 20);
        assert_eq!(r.rejects, 0);
        // FIFO order.
        let seqs: Vec<u64> = r.delivered[0].iter().map(|(_, _, s)| *s).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn unpaced_single_sender_overruns_the_fifo() {
        // The raw hardware physics: the bus is faster than the receiving
        // kernel, so even one sender blasting back-to-back long messages
        // wedges the FIFO with partial junk. This is exactly why Meglos
        // channels used a stop-and-wait protocol (§4).
        let r = burst(Strategy::BusyRetry, 1, 1024, 20);
        assert!(!r.completed);
        assert!(r.garbage_bytes > 0);
    }

    #[test]
    fn twelve_short_messages_never_overflow() {
        // §2: "12 processors could each send a 150 byte message to a single
        // processor without overflowing its fifo."
        let r = burst(Strategy::BusyRetry, 11, 150, 1);
        assert!(r.completed);
        assert_eq!(r.rejects, 0);
        assert_eq!(r.garbage_bytes, 0);
    }

    #[test]
    fn busy_retry_long_messages_lock_out() {
        // §2: many senders, long messages, busy retry => lockout. Some
        // messages are never received within a generous deadline.
        let r = burst(Strategy::BusyRetry, 8, 1024, 50);
        assert!(!r.completed, "expected lockout, but all messages arrived");
        assert!(r.undelivered > 0);
        assert!(r.garbage_bytes > 0, "lockout should generate junk partials");
    }

    #[test]
    fn random_backoff_completes_but_slowly() {
        let retry = burst(Strategy::BusyRetry, 8, 1024, 8);
        let back = burst(Strategy::RandomBackoff, 8, 1024, 8);
        assert!(back.completed, "backoff must avoid lockout");
        // Busy retry with this load locks out; compare against the
        // no-contention bus-bound time instead: backoff pays heavily.
        let ideal_bus_ns = SnetConfig::paper_1985().transfer_ns(1024) * 64;
        assert!(
            back.last_delivery_ns > 3 * ideal_bus_ns,
            "backoff should run well below bus speed: {} vs ideal {}",
            back.last_delivery_ns,
            ideal_bus_ns
        );
        let _ = retry;
    }

    #[test]
    fn reservation_eliminates_overflow() {
        let r = burst(Strategy::Reservation, 11, 1024, 10);
        assert!(r.completed);
        assert_eq!(r.rejects, 0, "reservation must never overflow");
        assert_eq!(r.garbage_bytes, 0);
        assert_eq!(r.delivered_total, 110);
    }

    #[test]
    fn reservation_adds_latency_to_uncontended_messages() {
        // §2: "the extra software and communications overhead would increase
        // latency for all messages" — even a single uncontended sender.
        let plain = burst(Strategy::BusyRetry, 1, 256, 1);
        let resv = burst(Strategy::Reservation, 1, 256, 1);
        let t_plain = plain.delivered[0][0].0;
        let t_resv = resv.delivered[0][0].0;
        assert!(
            t_resv > t_plain + 2 * SnetConfig::paper_1985().transfer_ns(16),
            "reservation latency {t_resv} should exceed plain {t_plain} by \
             at least a request+grant round trip"
        );
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = SnetSim::new(SnetConfig::paper_1985(), 9, Strategy::RandomBackoff, seed);
            for s in 1..=8 {
                sim.enqueue(s, 0, 1024, 4, 0);
            }
            let r = sim.run(30 * SEC);
            (r.last_delivery_ns, r.rejects)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8)); // different seeds take different paths
    }

    #[test]
    fn injected_loss_is_deterministic_and_accounted() {
        let run = |seed| {
            let mut sim = SnetSim::new(SnetConfig::paper_1985(), 2, Strategy::BusyRetry, seed);
            sim.set_faults(0.2, 0.1);
            sim.enqueue_paced(1, 0, 512, 50, 0, 400_000);
            let r = sim.run(60 * SEC);
            (r.delivered_total, r.lost, r.corrupted, r.last_delivery_ns)
        };
        let (delivered, lost, corrupted, _) = run(11);
        assert_eq!(run(11), run(11), "same seed must replay identically");
        assert!(lost > 0, "20% loss over 50 messages must fire");
        assert!(corrupted > 0, "10% corruption over 50 messages must fire");
        assert_eq!(delivered + lost + corrupted, 50);
    }

    #[test]
    fn corrupted_messages_become_junk_the_kernel_discards() {
        let mut sim = SnetSim::new(SnetConfig::paper_1985(), 2, Strategy::BusyRetry, 3);
        sim.set_faults(0.0, 1.0); // every data message is damaged
        sim.enqueue_paced(1, 0, 256, 5, 0, 400_000);
        let r = sim.run(30 * SEC);
        assert_eq!(r.delivered_total, 0);
        assert_eq!(r.corrupted, 5);
        assert!(r.garbage_bytes > 0);
        assert!(!r.completed);
    }

    #[test]
    fn splitmix_below_is_bounded() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "larger than the receive FIFO")]
    fn oversize_message_rejected_at_enqueue() {
        let mut sim = SnetSim::new(SnetConfig::paper_1985(), 2, Strategy::BusyRetry, 1);
        sim.enqueue(1, 0, 2048, 1, 0);
    }
}
