//! # snet — the S/NET single-bus multicomputer (baseline)
//!
//! The predecessor hardware of HPC/VORX: the S/NET connected up to twelve
//! processors over a single bus, with a 2048-byte receive FIFO per
//! processor and *software* responsibility for overflow recovery. §2 of the
//! paper ("Hardware Flow Control") documents how that design failed under
//! the many-to-one communication patterns real applications exhibit, and
//! evaluates three recovery schemes:
//!
//! * **busy retry** (the original plan) — suffers *lockout*: rejected
//!   messages leave truncated junk in the FIFO, the receiver drains slower
//!   than the bus refills, and some messages are never received;
//! * **random backoff** — avoids lockout but "communications runs at the
//!   timeout rate; at least an order of magnitude slower";
//! * **reservation** — eliminates overflow but taxes every message with a
//!   request/grant round trip.
//!
//! This crate reproduces all three, plus the workaround Meglos actually
//! shipped (application-level message-length limits). The `E-SNET`
//! experiment harness in `crates/bench` turns these into the paper's
//! comparison.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod sim;

pub use config::{SnetConfig, Strategy};
pub use sim::{Delivery, SnetReport, SnetSim, SplitMix64};
