//! Additional S/NET strategy behaviour tests.

use snet::{SnetConfig, SnetSim, Strategy};

const SEC: u64 = 1_000_000_000;

/// Under the reservation protocol, a receiver grants one sender at a time,
/// so deliveries from different senders interleave rather than one sender
/// monopolizing the receiver.
#[test]
fn reservation_interleaves_senders() {
    let mut sim = SnetSim::new(SnetConfig::paper_1985(), 4, Strategy::Reservation, 9);
    for s in 1..4 {
        sim.enqueue(s, 0, 1024, 6, 0);
    }
    let r = sim.run(30 * SEC);
    assert!(r.completed);
    // In the first 9 deliveries, every sender appears.
    let first: Vec<usize> = r.delivered[0].iter().take(9).map(|(_, s, _)| *s).collect();
    for s in 1..4 {
        assert!(first.contains(&s), "sender {s} starved early: {first:?}");
    }
}

/// Random backoff with a single contender behaves like busy retry (no
/// rejections means no backoff is ever taken).
#[test]
fn backoff_without_contention_is_free() {
    let mk = |strategy| {
        let mut sim = SnetSim::new(SnetConfig::paper_1985(), 2, strategy, 5);
        sim.enqueue_paced(1, 0, 512, 5, 0, 300_000);
        sim.run(SEC)
    };
    let retry = mk(Strategy::BusyRetry);
    let back = mk(Strategy::RandomBackoff);
    assert!(retry.completed && back.completed);
    assert_eq!(retry.rejects, 0);
    assert_eq!(back.rejects, 0);
    assert_eq!(retry.last_delivery_ns, back.last_delivery_ns);
}

/// Lockout is an offered-load phenomenon: a burst that fits the FIFO
/// completes; a sustained blast beyond the drain rate wedges — at any
/// message size the bus outruns the receiving kernel.
#[test]
fn lockout_depends_on_offered_load() {
    let run = |len: u32, count: u64| {
        let mut sim = SnetSim::new(SnetConfig::paper_1985(), 9, Strategy::BusyRetry, 3);
        for s in 1..9 {
            sim.enqueue(s, 0, len, count, 0);
        }
        sim.run(30 * SEC).completed
    };
    // 8 senders x 3 x 76B = 1824B: the whole burst fits the 2048B FIFO.
    assert!(run(64, 3), "a FIFO-sized burst should complete");
    // Sustained blasts wedge, short or long.
    assert!(
        !run(64, 40),
        "sustained short-message blast should lock out"
    );
    assert!(!run(1024, 10), "long-message blast should lock out");
}
