//! The software oscilloscope (§6.2).
//!
//! "VORX includes a tool called the software oscilloscope that helps the
//! programmer visualize how well processors of an application are utilized
//! and how well the computational load is balanced. [...] it displays a
//! graph for each processor indicating CPU time usage with different colors
//! used to partition time into several categories. Two of the categories are
//! quite standard: user time [...] and system time [...]. The remainder of
//! the time is idle time [...] The processor may be idle because the program
//! is waiting for input or it may be idle waiting for output. [...] a third
//! possibility for idle time is that some threads are waiting for input and
//! others are waiting for output. Finally, the processor may be idle for
//! some other reason."
//!
//! "Execution data is recorded while the application is running and later
//! the software oscilloscope is used to display the data" — recording is the
//! `vorx` world trace; this module is the display half. All graphs share one
//! time axis ("the software oscilloscope synchronizes all the graphs with
//! each other"); rendering any `[from, to)` window gives freeze/zoom/seek.

use desim::{SimDuration, SimTime, Trace};
use vorx::{BlockReason, CpuCat, TraceEvent};

/// Time categories displayed by the oscilloscope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cat {
    /// Application code executing.
    User,
    /// Operating-system code executing.
    System,
    /// Idle, waiting for message input.
    IdleInput,
    /// Idle, waiting for message output.
    IdleOutput,
    /// Idle, some threads waiting for input and others for output.
    IdleMixed,
    /// Idle for any other reason.
    IdleOther,
}

impl Cat {
    /// One-character glyph for the timeline rendering.
    pub fn glyph(self) -> char {
        match self {
            Cat::User => 'U',
            Cat::System => 'S',
            Cat::IdleInput => 'i',
            Cat::IdleOutput => 'o',
            Cat::IdleMixed => 'm',
            Cat::IdleOther => '.',
        }
    }
}

/// Time spent per category over a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Utilization {
    /// User ns.
    pub user: u64,
    /// System ns.
    pub system: u64,
    /// Idle-waiting-for-input ns.
    pub idle_input: u64,
    /// Idle-waiting-for-output ns.
    pub idle_output: u64,
    /// Mixed-wait ns.
    pub idle_mixed: u64,
    /// Other idle ns.
    pub idle_other: u64,
}

impl Utilization {
    /// Window length covered.
    pub fn total(&self) -> u64 {
        self.user
            + self.system
            + self.idle_input
            + self.idle_output
            + self.idle_mixed
            + self.idle_other
    }

    /// Fraction of the window doing useful (user) work.
    pub fn user_frac(&self) -> f64 {
        self.user as f64 / self.total().max(1) as f64
    }

    /// Fraction busy (user + system).
    pub fn busy_frac(&self) -> f64 {
        (self.user + self.system) as f64 / self.total().max(1) as f64
    }

    fn add(&mut self, cat: Cat, ns: u64) {
        match cat {
            Cat::User => self.user += ns,
            Cat::System => self.system += ns,
            Cat::IdleInput => self.idle_input += ns,
            Cat::IdleOutput => self.idle_output += ns,
            Cat::IdleMixed => self.idle_mixed += ns,
            Cat::IdleOther => self.idle_other += ns,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Busy {
    start: u64,
    end: u64,
    cat: CpuCat,
}

#[derive(Debug, Clone, Copy)]
struct BlockDelta {
    t: u64,
    din: i32,
    dout: i32,
}

/// The display tool: consumes a recorded trace, renders synchronized
/// per-node timelines and utilization summaries.
#[derive(Debug)]
pub struct Oscilloscope {
    n_nodes: usize,
    t_end: u64,
    busy: Vec<Vec<Busy>>,
    blocks: Vec<Vec<BlockDelta>>,
}

impl Oscilloscope {
    /// Build from a recorded trace.
    pub fn from_trace(trace: &Trace<TraceEvent>, n_nodes: usize) -> Self {
        let mut busy = vec![Vec::new(); n_nodes];
        let mut blocks = vec![Vec::new(); n_nodes];
        let mut t_end = 0u64;
        for (t, ev) in trace.iter() {
            t_end = t_end.max(t.as_ns());
            match ev {
                TraceEvent::Cpu {
                    node,
                    cat,
                    start_ns,
                    end_ns,
                } => {
                    busy[*node as usize].push(Busy {
                        start: *start_ns,
                        end: *end_ns,
                        cat: *cat,
                    });
                    t_end = t_end.max(*end_ns);
                }
                TraceEvent::Block { node, reason } => {
                    blocks[*node as usize].push(delta(t.as_ns(), *reason, 1));
                }
                TraceEvent::Unblock { node, reason } => {
                    blocks[*node as usize].push(delta(t.as_ns(), *reason, -1));
                }
                TraceEvent::Region { .. }
                | TraceEvent::Fault { .. }
                | TraceEvent::LinkFault { .. } => {}
            }
        }
        // User bursts are recorded spanning their preemptions (system work
        // runs at interrupt priority *inside* them), so intervals can
        // overlap. Normalize per node: clip user-vs-user, subtract system
        // time out of user bursts, and merge into one sorted,
        // non-overlapping timeline.
        let busy = busy.into_iter().map(normalize_intervals).collect();
        for b in &mut blocks {
            b.sort_by_key(|x| x.t);
        }
        Oscilloscope {
            n_nodes,
            t_end,
            busy,
            blocks,
        }
    }

    /// End of recorded time.
    pub fn t_end(&self) -> SimTime {
        SimTime::from_ns(self.t_end)
    }

    /// Number of nodes displayed.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The category timeline of `node` over `[from, to)`, as contiguous
    /// segments covering the whole window.
    pub fn segments(&self, node: usize, from: SimTime, to: SimTime) -> Vec<(u64, u64, Cat)> {
        let (from, to) = (from.as_ns(), to.as_ns());
        assert!(from <= to);
        let mut out = Vec::new();
        // Walk block deltas to know the wait-state at any time.
        let deltas = &self.blocks[node];
        let mut di = 0usize;
        let (mut n_in, mut n_out) = (0i32, 0i32);
        while di < deltas.len() && deltas[di].t <= from {
            n_in += deltas[di].din;
            n_out += deltas[di].dout;
            di += 1;
        }
        let idle_cat = |n_in: i32, n_out: i32| -> Cat {
            if n_in > 0 && n_out > 0 {
                Cat::IdleMixed
            } else if n_in > 0 {
                Cat::IdleInput
            } else if n_out > 0 {
                Cat::IdleOutput
            } else {
                Cat::IdleOther
            }
        };
        // Walk busy intervals; fill idle gaps with block-state segments.
        let mut t = from;
        let mut bi = self.busy[node].partition_point(|b| b.end <= from);
        while t < to {
            let next_busy = self.busy[node].get(bi).copied();
            match next_busy {
                Some(b) if b.start <= t => {
                    let end = b.end.min(to);
                    if end > t {
                        let cat = match b.cat {
                            CpuCat::User => Cat::User,
                            CpuCat::System => Cat::System,
                        };
                        out.push((t, end, cat));
                        t = end;
                    }
                    if b.end <= to {
                        bi += 1;
                    }
                }
                other => {
                    // Idle until the next busy interval (or `to`).
                    let gap_end = other.map(|b| b.start.min(to)).unwrap_or(to);
                    // Split by block-state changes.
                    while t < gap_end {
                        let next_change = deltas
                            .get(di)
                            .map(|d| d.t)
                            .filter(|dt| *dt < gap_end)
                            .unwrap_or(gap_end);
                        let seg_end = next_change.max(t);
                        if seg_end > t {
                            out.push((t, seg_end, idle_cat(n_in, n_out)));
                            t = seg_end;
                        }
                        while di < deltas.len() && deltas[di].t <= t {
                            n_in += deltas[di].din;
                            n_out += deltas[di].dout;
                            di += 1;
                        }
                        if seg_end == gap_end && next_change == gap_end {
                            break;
                        }
                    }
                }
            }
        }
        out
    }

    /// Per-category time for `node` over `[from, to)`.
    pub fn utilization(&self, node: usize, from: SimTime, to: SimTime) -> Utilization {
        let mut u = Utilization::default();
        for (a, b, cat) in self.segments(node, from, to) {
            u.add(cat, b - a);
        }
        u
    }

    /// Render synchronized timelines for every node over `[from, to)` using
    /// `width` buckets; each bucket shows the category that dominated it.
    /// This is the §6.2 display: freeze/zoom/seek by choosing the window.
    pub fn render(&self, from: SimTime, to: SimTime, width: usize) -> String {
        assert!(width > 0);
        let span = (to.as_ns()).saturating_sub(from.as_ns()).max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "software oscilloscope  [{from} .. {to}]  (U=user S=system i=wait-input o=wait-output m=mixed .=idle)\n"
        ));
        for node in 0..self.n_nodes {
            let segs = self.segments(node, from, to);
            let mut row = String::with_capacity(width);
            for b in 0..width {
                let b0 = from.as_ns() + span * b as u64 / width as u64;
                let b1 = from.as_ns() + span * (b + 1) as u64 / width as u64;
                let mut best = (0u64, Cat::IdleOther);
                let mut acc: Vec<(Cat, u64)> = Vec::new();
                for &(a, e, cat) in &segs {
                    let ov = e.min(b1).saturating_sub(a.max(b0));
                    if ov > 0 {
                        match acc.iter_mut().find(|(c, _)| *c == cat) {
                            Some((_, v)) => *v += ov,
                            None => acc.push((cat, ov)),
                        }
                    }
                }
                for (cat, v) in acc {
                    if v > best.0 {
                        best = (v, cat);
                    }
                }
                row.push(best.1.glyph());
            }
            let u = self.utilization(node, from, to);
            out.push_str(&format!(
                "n{node:<3} |{row}| user {:4.0}% busy {:4.0}%\n",
                u.user_frac() * 100.0,
                u.busy_frac() * 100.0
            ));
        }
        out
    }

    /// Render the full recorded interval.
    pub fn render_all(&self, width: usize) -> String {
        self.render(SimTime::ZERO, self.t_end(), width)
    }

    /// Aggregate load-balance statistic: (min, max, mean) user fraction
    /// across nodes over the full run — the §6.2 "how well the computational
    /// load is balanced" question as one number.
    pub fn balance(&self) -> (f64, f64, f64) {
        let mut min = f64::MAX;
        let mut max: f64 = 0.0;
        let mut sum = 0.0;
        for n in 0..self.n_nodes {
            let f = self.utilization(n, SimTime::ZERO, self.t_end()).user_frac();
            min = min.min(f);
            max = max.max(f);
            sum += f;
        }
        (min, max, sum / self.n_nodes.max(1) as f64)
    }
}

/// Produce a sorted, non-overlapping busy timeline from possibly-overlapping
/// raw intervals: system intervals win (they preempted the user burst they
/// overlap); user intervals are clipped around them.
fn normalize_intervals(raw: Vec<Busy>) -> Vec<Busy> {
    let mut sys: Vec<Busy> = raw
        .iter()
        .copied()
        .filter(|b| b.cat == CpuCat::System)
        .collect();
    sys.sort_by_key(|b| b.start);
    let mut user: Vec<Busy> = raw.into_iter().filter(|b| b.cat == CpuCat::User).collect();
    user.sort_by_key(|b| b.start);
    // Clip user-vs-user (later burst trimmed to start after the earlier).
    let mut cursor = 0u64;
    let mut out = Vec::with_capacity(sys.len() + user.len());
    for mut u in user {
        u.start = u.start.max(cursor);
        if u.end <= u.start {
            continue;
        }
        cursor = u.end;
        // Subtract overlapping system intervals.
        let mut t = u.start;
        for s in &sys {
            if s.end <= t || s.start >= u.end {
                continue;
            }
            if s.start > t {
                out.push(Busy {
                    start: t,
                    end: s.start,
                    cat: CpuCat::User,
                });
            }
            t = t.max(s.end);
            if t >= u.end {
                break;
            }
        }
        if t < u.end {
            out.push(Busy {
                start: t,
                end: u.end,
                cat: CpuCat::User,
            });
        }
    }
    out.extend(sys);
    out.sort_by_key(|b| b.start);
    // Final defensive clip: drop any residual overlap.
    let mut merged: Vec<Busy> = Vec::with_capacity(out.len());
    for mut b in out {
        if let Some(last) = merged.last() {
            b.start = b.start.max(last.end);
        }
        if b.end > b.start {
            merged.push(b);
        }
    }
    merged
}

fn delta(t: u64, reason: BlockReason, sign: i32) -> BlockDelta {
    let (mut din, mut dout) = (0, 0);
    match reason {
        BlockReason::Input => din = sign,
        BlockReason::Output => dout = sign,
        // Other-reason waits render as the catch-all idle category, so no
        // counter is needed for them.
        BlockReason::Other => {}
    }
    BlockDelta { t, din, dout }
}

/// Convenience: duration as `SimDuration` from a `(start, end)` pair.
pub fn span(a: u64, b: u64) -> SimDuration {
    SimDuration::from_ns(b - a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vorx::hpcnet::{NodeAddr, Payload};
    use vorx::{channel, VorxBuilder};

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn segments_cover_window_exactly() {
        let mut trace = Trace::new();
        trace.record(
            t(0),
            TraceEvent::Cpu {
                node: 0,
                cat: CpuCat::User,
                start_ns: 10,
                end_ns: 30,
            },
        );
        trace.record(
            t(40),
            TraceEvent::Block {
                node: 0,
                reason: BlockReason::Input,
            },
        );
        trace.record(
            t(60),
            TraceEvent::Unblock {
                node: 0,
                reason: BlockReason::Input,
            },
        );
        let o = Oscilloscope::from_trace(&trace, 1);
        let segs = o.segments(0, t(0), t(80));
        // Coverage: contiguous from 0 to 80.
        assert_eq!(segs.first().unwrap().0, 0);
        assert_eq!(segs.last().unwrap().1, 80);
        for w in segs.windows(2) {
            assert_eq!(w[0].1, w[1].0, "gap in segments: {segs:?}");
        }
        let u = o.utilization(0, t(0), t(80));
        assert_eq!(u.user, 20);
        assert_eq!(u.idle_input, 20);
        assert_eq!(u.total(), 80);
    }

    #[test]
    fn mixed_wait_classification() {
        let mut trace = Trace::new();
        trace.record(
            t(0),
            TraceEvent::Block {
                node: 0,
                reason: BlockReason::Input,
            },
        );
        trace.record(
            t(10),
            TraceEvent::Block {
                node: 0,
                reason: BlockReason::Output,
            },
        );
        trace.record(
            t(20),
            TraceEvent::Unblock {
                node: 0,
                reason: BlockReason::Input,
            },
        );
        let o = Oscilloscope::from_trace(&trace, 1);
        let u = o.utilization(0, t(0), t(30));
        assert_eq!(u.idle_input, 10);
        assert_eq!(u.idle_mixed, 10);
        assert_eq!(u.idle_output, 10);
    }

    #[test]
    fn real_run_produces_consistent_categories() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1:w", |ctx| {
            let ch = channel::open(&ctx, NodeAddr(1), "osc");
            for _ in 0..5 {
                vorx::api::user_compute(&ctx, NodeAddr(1), SimDuration::from_us(200));
                ch.write(&ctx, Payload::Synthetic(256)).unwrap();
            }
        });
        v.spawn("n2:r", |ctx| {
            let ch = channel::open(&ctx, NodeAddr(2), "osc");
            for _ in 0..5 {
                let _ = ch.read(&ctx).unwrap();
                vorx::api::user_compute(&ctx, NodeAddr(2), SimDuration::from_us(50));
            }
        });
        let end = v.run_all();
        let w = v.world();
        let o = Oscilloscope::from_trace(&w.trace, 3);
        // Node 1 did 1ms of user work; node 2 did 250us.
        let u1 = o.utilization(1, SimTime::ZERO, end);
        let u2 = o.utilization(2, SimTime::ZERO, end);
        assert_eq!(u1.user, 1_000_000);
        assert_eq!(u2.user, 250_000);
        assert!(u2.idle_input > 0, "reader must show wait-input time");
        // Full coverage.
        assert_eq!(u1.total(), end.as_ns());
        // Render does not panic and shows every node row.
        let s = o.render_all(60);
        assert!(s.lines().count() >= 4);
        let (min, max, _mean) = o.balance();
        assert!(min <= max);
    }
}

impl Oscilloscope {
    /// Export the full per-node category timeline as CSV
    /// (`node,start_ns,end_ns,category`) for offline plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("node,start_ns,end_ns,category\n");
        for node in 0..self.n_nodes {
            for (a, b, cat) in self.segments(node, SimTime::ZERO, self.t_end()) {
                out.push_str(&format!("{node},{a},{b},{}\n", cat.glyph()));
            }
        }
        out
    }

    /// "run faster or slower than real-time": render the run as a sequence
    /// of `frames` consecutive windows (an animation script); each frame is
    /// a full synchronized display of its window.
    pub fn playback(&self, frames: usize, width: usize) -> Vec<String> {
        assert!(frames > 0);
        let total = self.t_end.max(1);
        (0..frames)
            .map(|f| {
                let a = SimTime::from_ns(total * f as u64 / frames as u64);
                let b = SimTime::from_ns(total * (f as u64 + 1) / frames as u64);
                self.render(a, b, width)
            })
            .collect()
    }
}

#[cfg(test)]
mod export_tests {
    use super::*;
    use desim::Trace;
    use vorx::TraceEvent;

    #[test]
    fn csv_lines_cover_the_run() {
        let mut trace = Trace::new();
        trace.record(
            SimTime::ZERO,
            TraceEvent::Cpu {
                node: 0,
                cat: CpuCat::User,
                start_ns: 0,
                end_ns: 50,
            },
        );
        trace.record(
            SimTime::from_ns(60),
            TraceEvent::Cpu {
                node: 0,
                cat: CpuCat::System,
                start_ns: 60,
                end_ns: 100,
            },
        );
        let o = Oscilloscope::from_trace(&trace, 1);
        let csv = o.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "node,start_ns,end_ns,category");
        assert_eq!(lines[1], "0,0,50,U");
        assert_eq!(lines[2], "0,50,60,."); // idle gap
        assert_eq!(lines[3], "0,60,100,S");
    }

    #[test]
    fn playback_frames_tile_the_run() {
        let mut trace = Trace::new();
        trace.record(
            SimTime::ZERO,
            TraceEvent::Cpu {
                node: 0,
                cat: CpuCat::User,
                start_ns: 0,
                end_ns: 1000,
            },
        );
        let o = Oscilloscope::from_trace(&trace, 1);
        let frames = o.playback(4, 20);
        assert_eq!(frames.len(), 4);
        for f in &frames {
            assert!(f.contains("n0"));
        }
    }
}
