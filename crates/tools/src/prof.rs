//! `prof`-style execution profiling (§6.2).
//!
//! "The prof profiling system available in VORX can be run on a process to
//! show how execution time is divided up among different parts of the
//! program. Typically one finds that a large portion of the execution time
//! is spent in a small section of the code."
//!
//! Applications bracket code sections with [`enter`]/[`exit`] (or the
//! [`region`] closure helper); the report attributes wall time between the
//! brackets to the named region, per node.

use std::collections::HashMap;

use desim::{SimDuration, SimTime, Trace};
use vorx::hpcnet::NodeAddr;
use vorx::{TraceEvent, VCtx};

/// Mark entry into region `name` on `node`.
pub fn enter(ctx: &VCtx, node: NodeAddr, name: &str) {
    let name = name.to_string();
    ctx.with(move |w, s| {
        let now = s.now();
        w.trace.record(
            now,
            TraceEvent::Region {
                node: node.0,
                name,
                enter: true,
            },
        );
    });
}

/// Mark exit from region `name` on `node`.
pub fn exit(ctx: &VCtx, node: NodeAddr, name: &str) {
    let name = name.to_string();
    ctx.with(move |w, s| {
        let now = s.now();
        w.trace.record(
            now,
            TraceEvent::Region {
                node: node.0,
                name,
                enter: false,
            },
        );
    });
}

/// Run `f` inside a profiled region.
pub fn region<R>(ctx: &VCtx, node: NodeAddr, name: &str, f: impl FnOnce() -> R) -> R {
    enter(ctx, node, name);
    let r = f();
    exit(ctx, node, name);
    r
}

/// One region's aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStat {
    /// Total (inclusive) time spent in the region.
    pub total: SimDuration,
    /// Number of entries.
    pub count: u64,
}

/// Profiling report: per `(node, region)` aggregates.
#[derive(Debug, Default)]
pub struct ProfReport {
    /// The aggregates.
    pub regions: HashMap<(u32, String), RegionStat>,
}

impl ProfReport {
    /// Build from a recorded trace. Unmatched exits panic (a bracketing bug
    /// in the instrumented program); unmatched enters are attributed up to
    /// the end of the trace.
    pub fn from_trace(trace: &Trace<TraceEvent>) -> Self {
        let mut open: HashMap<(u32, String), Vec<SimTime>> = HashMap::new();
        let mut report = ProfReport::default();
        let mut t_end = SimTime::ZERO;
        for (t, ev) in trace.iter() {
            t_end = t_end.max(t);
            if let TraceEvent::Cpu { end_ns, .. } = ev {
                // CPU bursts are recorded at reservation time but may end
                // later; the trace's true horizon includes them.
                t_end = t_end.max(SimTime::from_ns(*end_ns));
            }
            if let TraceEvent::Region { node, name, enter } = ev {
                let key = (*node, name.clone());
                if *enter {
                    open.entry(key).or_default().push(t);
                } else {
                    let started = open
                        .get_mut(&key)
                        .and_then(Vec::pop)
                        .unwrap_or_else(|| panic!("prof: exit without enter for {key:?}"));
                    let stat = report.regions.entry(key).or_default();
                    stat.total += t - started;
                    stat.count += 1;
                }
            }
        }
        for (key, starts) in open {
            for s in starts {
                let stat = report.regions.entry(key.clone()).or_default();
                stat.total += t_end - s;
                stat.count += 1;
            }
        }
        report
    }

    /// Regions sorted by total time, descending — "typically one finds that
    /// a large portion of the execution time is spent in a small section of
    /// the code."
    pub fn hottest(&self) -> Vec<(&(u32, String), &RegionStat)> {
        let mut v: Vec<_> = self.regions.iter().collect();
        v.sort_by_key(|(k, s)| (std::cmp::Reverse(s.total), k.0, k.1.clone()));
        v
    }

    /// Render the flat profile.
    pub fn render(&self) -> String {
        let mut out = String::from("prof: time per region\n");
        out.push_str(&format!(
            "{:<6} {:<20} {:>12} {:>8} {:>12}\n",
            "node", "region", "total", "calls", "per-call"
        ));
        for ((node, name), stat) in self.hottest() {
            let per = stat
                .total
                .checked_div(stat.count.max(1))
                .unwrap_or(SimDuration::ZERO);
            out.push_str(&format!(
                "n{:<5} {:<20} {:>12} {:>8} {:>12}\n",
                node,
                name,
                stat.total.to_string(),
                stat.count,
                per.to_string()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vorx::api::user_compute;
    use vorx::VorxBuilder;

    #[test]
    fn attributes_time_to_regions() {
        let mut v = VorxBuilder::single_cluster(1).build();
        v.spawn("n0:app", |ctx| {
            for _ in 0..3 {
                region(&ctx, NodeAddr(0), "hot", || {
                    user_compute(&ctx, NodeAddr(0), SimDuration::from_us(300));
                });
                region(&ctx, NodeAddr(0), "cold", || {
                    user_compute(&ctx, NodeAddr(0), SimDuration::from_us(10));
                });
            }
        });
        v.run_all();
        let w = v.world();
        let p = ProfReport::from_trace(&w.trace);
        let hot = &p.regions[&(0u32, "hot".to_string())];
        let cold = &p.regions[&(0u32, "cold".to_string())];
        assert_eq!(hot.count, 3);
        assert_eq!(hot.total, SimDuration::from_us(900));
        assert_eq!(cold.total, SimDuration::from_us(30));
        let hottest = p.hottest();
        assert_eq!(hottest[0].0 .1, "hot");
        let listing = p.render();
        assert!(listing.contains("hot") && listing.contains("cold"));
    }

    #[test]
    fn unclosed_region_attributed_to_trace_end() {
        let mut v = VorxBuilder::single_cluster(1).build();
        v.spawn("n0:app", |ctx| {
            enter(&ctx, NodeAddr(0), "forever");
            user_compute(&ctx, NodeAddr(0), SimDuration::from_us(100));
        });
        v.run_all();
        let p = ProfReport::from_trace(&v.world().trace);
        let r = &p.regions[&(0u32, "forever".to_string())];
        assert_eq!(r.total, SimDuration::from_us(100));
    }

    #[test]
    #[should_panic(expected = "exit without enter")]
    fn unmatched_exit_panics() {
        let mut v = VorxBuilder::single_cluster(1).build();
        v.spawn("n0:bad", |ctx| {
            exit(&ctx, NodeAddr(0), "never-entered");
        });
        v.run_all();
        let _ = ProfReport::from_trace(&v.world().trace);
    }
}
