//! `vdb`, the symbolic debugger (§6).
//!
//! "The only debugging tool available under Meglos was vdb, a symbolic
//! debugger derived from the sdb debugger. Vdb includes a few enhancements,
//! such as the ability to switch between subprocesses to examine their local
//! variables [...] VORX makes it possible for the programmer to attach vdb
//! to any process that is running and to switch between the processes of
//! his application."
//!
//! The debugger front-end: process listing, attach (stop at the next
//! breakpoint), per-process breakpoints, variable examination, and
//! continue. Processes cooperate through `vorx::debug` (register, publish,
//! breakpoint) — the simulation analogue of compiled-in symbol tables and
//! trap instructions.

use desim::{RunOutcome, SimDuration, SimTime};
use vorx::debug;
use vorx::{VorxSim, World};

/// A vdb session attached to one process (by registry index). Obtain with
/// [`attach`]; "switching between processes" is simply holding several.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attachment(pub usize);

/// List registered processes: `(index, name, node, stopped-at)`.
pub fn ps(w: &World) -> Vec<(usize, String, u32, Option<String>)> {
    w.dbg
        .procs
        .iter()
        .enumerate()
        .map(|(i, p)| (i, p.name.clone(), p.node.0, p.stopped_at.clone()))
        .collect()
}

/// Attach to a process by name: the process will stop at its next
/// breakpoint, wherever that is ("attach vdb to any process that is
/// running"). If the process has not registered yet (the application is
/// still starting), the simulation is stepped until it appears.
pub fn attach(sim: &mut VorxSim, name: &str) -> Attachment {
    let idx = loop {
        if let Some(i) = sim.world().dbg.by_name(name) {
            break i;
        }
        let next = sim.now() + SimDuration::from_ms(1);
        if let RunOutcome::Idle(_) = sim.sim.run_until(next) {
            if let Some(i) = sim.world().dbg.by_name(name) {
                break i;
            }
            panic!("no process registered as {name:?}");
        }
    };
    sim.sim.setup(move |w, _| {
        w.dbg.procs[idx].stop_requested = true;
    });
    Attachment(idx)
}

/// Arm a breakpoint label on the attached process.
pub fn set_break(sim: &VorxSim, at: Attachment, label: &str) {
    let label = label.to_string();
    sim.sim.setup(move |w, _| {
        w.dbg.procs[at.0].breaks.insert(label);
    });
}

/// Disarm a breakpoint label.
pub fn clear_break(sim: &VorxSim, at: Attachment, label: &str) {
    let label = label.to_string();
    sim.sim.setup(move |w, _| {
        w.dbg.procs[at.0].breaks.remove(&label);
    });
}

/// Where the process is stopped, if it is.
pub fn stopped_at(sim: &VorxSim, at: Attachment) -> Option<String> {
    sim.world().dbg.procs[at.0].stopped_at.clone()
}

/// Examine the process's published variables (name -> value), sorted.
pub fn examine(sim: &VorxSim, at: Attachment) -> Vec<(String, String)> {
    sim.world().dbg.procs[at.0]
        .vars
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

/// Resume the stopped process. Returns false if it was not stopped.
pub fn cont(sim: &VorxSim, at: Attachment) -> bool {
    let mut resumed = false;
    sim.sim.setup(|w, s| {
        resumed = debug::cont(w, s, at.0);
    });
    resumed
}

/// Run the simulation until the attached process stops at a breakpoint (or
/// `deadline` passes). Returns the breakpoint label if it stopped.
pub fn run_until_stopped(sim: &mut VorxSim, at: Attachment, deadline: SimTime) -> Option<String> {
    loop {
        if let Some(l) = stopped_at(sim, at) {
            return Some(l);
        }
        let next = (sim.now() + SimDuration::from_us(200)).min(deadline);
        match sim.sim.run_until(next) {
            RunOutcome::Idle(_) => return stopped_at(sim, at),
            RunOutcome::DeadlineReached => {
                if sim.now() >= deadline {
                    return stopped_at(sim, at);
                }
            }
        }
    }
}

/// Render a vdb status display.
pub fn render(w: &World) -> String {
    let mut out = String::from("vdb: processes\n");
    out.push_str(&format!(
        "{:<4} {:<20} {:<6} {:<14} {:>6}  vars\n",
        "idx", "name", "node", "state", "hits"
    ));
    for p in &w.dbg.procs {
        let state = p
            .stopped_at
            .as_ref()
            .map(|l| format!("stopped@{l}"))
            .unwrap_or_else(|| "running".into());
        let vars: Vec<String> = p.vars.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&format!(
            "{:<4} {:<20} n{:<5} {:<14} {:>6}  {}\n",
            format!("#{}", p.pid.0),
            p.name,
            p.node.0,
            state,
            p.hits,
            vars.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vorx::debug::{breakpoint, publish, register_process};
    use vorx::hpcnet::NodeAddr;
    use vorx::VorxBuilder;

    fn counting_app(v: &VorxSim, node: u32, iters: u32) {
        v.spawn(format!("n{node}:counter"), move |ctx| {
            let me = register_process(&ctx, NodeAddr(node), &format!("n{node}:counter"));
            for i in 0..iters {
                publish(&ctx, me, "i", i);
                vorx::api::user_compute(&ctx, NodeAddr(node), SimDuration::from_us(500));
                breakpoint(&ctx, me, "loop");
            }
        });
    }

    #[test]
    fn attach_break_examine_continue() {
        let mut v = VorxBuilder::single_cluster(2).build();
        counting_app(&v, 0, 10);
        let at = attach(&mut v, "n0:counter");
        set_break(&v, at, "loop");
        // Attaching to a *running* process catches it wherever it is.
        let label = run_until_stopped(&mut v, at, SimTime::from_ns(u64::MAX / 2)).unwrap();
        assert_eq!(label, "loop");
        let i0: u32 = examine(&v, at)[0].1.parse().unwrap();
        // Each continue advances exactly one loop iteration.
        assert!(cont(&v, at));
        run_until_stopped(&mut v, at, SimTime::from_ns(u64::MAX / 2)).unwrap();
        assert!(cont(&v, at));
        run_until_stopped(&mut v, at, SimTime::from_ns(u64::MAX / 2)).unwrap();
        let i2: u32 = examine(&v, at)[0].1.parse().unwrap();
        assert_eq!(i2, i0 + 2);
        // Disarm and run to completion.
        clear_break(&v, at, "loop");
        assert!(cont(&v, at));
        v.run_all();
        assert_eq!(examine(&v, at)[0].1, "9");
    }

    #[test]
    fn switch_between_processes() {
        // "By switching between windows, the programmer can simultaneously
        // debug all the processes" — here: two attachments.
        let mut v = VorxBuilder::single_cluster(2).build();
        counting_app(&v, 0, 5);
        counting_app(&v, 1, 5);
        let a = attach(&mut v, "n0:counter");
        let b = attach(&mut v, "n1:counter");
        // Attach stops both at their next breakpoint.
        run_until_stopped(&mut v, a, SimTime::from_ns(u64::MAX / 2)).unwrap();
        run_until_stopped(&mut v, b, SimTime::from_ns(u64::MAX / 2)).unwrap();
        let w_render = render(&v.world());
        assert!(w_render.matches("stopped@loop").count() == 2, "{w_render}");
        assert!(cont(&v, a));
        assert!(cont(&v, b));
        v.run_all();
    }

    #[test]
    fn ps_lists_everything() {
        let mut v = VorxBuilder::single_cluster(2).build();
        counting_app(&v, 0, 1);
        counting_app(&v, 1, 1);
        v.run_all();
        let listing = ps(&v.world());
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].1, "n0:counter");
        assert_eq!(listing[1].2, 1);
    }
}
