//! # vorx-tools — program development tools (§6)
//!
//! The measurement and debugging tools the paper built for VORX:
//!
//! * [`cdb`] — the communications debugger: channel-state listings with
//!   filters, plus wait-for-graph deadlock detection (§6.1).
//! * [`oscillo`] — the software oscilloscope: synchronized per-node
//!   timelines of user/system/idle-input/idle-output/idle-mixed time, with
//!   freeze/zoom/seek over any recorded window (§6.2).
//! * [`prof`] — flat region profiling: where does the time go (§6.2).
//! * [`vdb`] — the symbolic debugger: attach to running processes, stop at
//!   breakpoints, examine variables, switch between processes (§6).
//!
//! All three consume state the `vorx` kernels and trace already maintain —
//! exactly the paper's observation that `cdb` "was easy to implement because
//! most of the information that it needs was already encoded in the
//! communications driver".

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cdb;
pub mod oscillo;
pub mod prof;
pub mod vdb;

pub use cdb::{deadlock_cycles, CdbFilter, ChanReport, EndState};
pub use oscillo::{Cat, Oscilloscope, Utilization};
pub use prof::ProfReport;
