//! `cdb`, the communications debugger (§6.1).
//!
//! "The VORX communications debugger, cdb, helps debug such deadlocked
//! applications by allowing the programmer to examine the communications
//! state of the application. [...] For each channel, the state reported by
//! cdb consists of the name of the channel, which two processes it connects,
//! how many messages have been sent in each direction on the channel and
//! most importantly, the state of each end of the channel. [...] Because an
//! application may have a large number of channels, cdb includes several
//! filters to help isolate the channels of interest."
//!
//! Exactly as the paper notes, this "was easy to implement because most of
//! the information that it needs was already encoded in the communications
//! driver": we read it straight out of the kernels' channel tables.

use std::collections::HashMap;

use vorx::hpcnet::NodeAddr;
use vorx::World;

/// The state of one channel end as reported by `cdb`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndState {
    /// Nothing blocked on this end.
    Idle,
    /// A process is blocked reading.
    ReaderBlocked,
    /// A process is blocked writing (awaiting the kernel ack).
    WriterBlocked,
    /// Both (distinct subprocesses) are blocked.
    BothBlocked,
}

impl std::fmt::Display for EndState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EndState::Idle => "idle",
            EndState::ReaderBlocked => "blocked-read",
            EndState::WriterBlocked => "blocked-write",
            EndState::BothBlocked => "blocked-both",
        };
        write!(f, "{s}")
    }
}

/// Snapshot of one channel end.
#[derive(Debug, Clone)]
pub struct EndReport {
    /// The node holding this end.
    pub node: NodeAddr,
    /// The peer node.
    pub peer: NodeAddr,
    /// Fragments sent from this end.
    pub msgs_tx: u64,
    /// Messages delivered to readers at this end.
    pub msgs_rx: u64,
    /// Complete messages waiting in side buffers.
    pub queued: usize,
    /// Blocking state.
    pub state: EndState,
    /// Close state: `(closed locally, peer closed)`.
    pub closed: (bool, bool),
}

/// Snapshot of one channel (one or two ends, across the machine).
#[derive(Debug, Clone)]
pub struct ChanReport {
    /// Channel id.
    pub id: u32,
    /// Channel name.
    pub name: String,
    /// The ends, ordered by node.
    pub ends: Vec<EndReport>,
}

/// Filters, per §6.1 ("cdb includes several filters to help isolate the
/// channels of interest").
#[derive(Debug, Clone, Default)]
pub struct CdbFilter {
    /// Keep channels whose name starts with this prefix.
    pub name_prefix: Option<String>,
    /// Keep channels with an end on this node.
    pub node: Option<NodeAddr>,
    /// Keep only channels with a blocked end.
    pub blocked_only: bool,
}

impl CdbFilter {
    /// No filtering.
    pub fn all() -> Self {
        Self::default()
    }

    fn keep(&self, c: &ChanReport) -> bool {
        if let Some(p) = &self.name_prefix {
            if !c.name.starts_with(p.as_str()) {
                return false;
            }
        }
        if let Some(n) = self.node {
            if !c.ends.iter().any(|e| e.node == n) {
                return false;
            }
        }
        if self.blocked_only && c.ends.iter().all(|e| e.state == EndState::Idle) {
            return false;
        }
        true
    }
}

/// Take a snapshot of every channel in the installation.
pub fn snapshot(w: &World) -> Vec<ChanReport> {
    let mut by_id: HashMap<u32, ChanReport> = HashMap::new();
    for node in &w.nodes {
        for end in node.chans.values() {
            let state = match (end.reader_blocked, end.writer_blocked) {
                (false, false) => EndState::Idle,
                (true, false) => EndState::ReaderBlocked,
                (false, true) => EndState::WriterBlocked,
                (true, true) => EndState::BothBlocked,
            };
            let rep = EndReport {
                node: node.addr,
                peer: end.peer,
                msgs_tx: end.msgs_tx,
                msgs_rx: end.msgs_rx,
                queued: end.rx.len(),
                state,
                closed: (end.closed_local, end.closed_remote),
            };
            by_id
                .entry(end.id)
                .or_insert_with(|| ChanReport {
                    id: end.id,
                    name: end.name.clone(),
                    ends: Vec::new(),
                })
                .ends
                .push(rep);
        }
    }
    let mut out: Vec<ChanReport> = by_id.into_values().collect();
    for c in &mut out {
        c.ends.sort_by_key(|e| e.node);
    }
    out.sort_by_key(|c| c.id);
    out
}

/// Snapshot with a filter applied.
pub fn filtered(w: &World, f: &CdbFilter) -> Vec<ChanReport> {
    snapshot(w).into_iter().filter(|c| f.keep(c)).collect()
}

/// Render reports as the `cdb` listing.
pub fn render(reports: &[ChanReport]) -> String {
    let mut out = String::new();
    out.push_str("cdb: channel state\n");
    out.push_str(&format!(
        "{:<6} {:<16} {:<6} {:<6} {:>8} {:>8} {:>7}  {}\n",
        "chan", "name", "node", "peer", "msgs-tx", "msgs-rx", "queued", "state"
    ));
    for c in reports {
        for e in &c.ends {
            let closed = match e.closed {
                (false, false) => "",
                (true, false) => " [closed]",
                (false, true) => " [peer-closed]",
                (true, true) => " [both-closed]",
            };
            out.push_str(&format!(
                "{:<6} {:<16} {:<6} {:<6} {:>8} {:>8} {:>7}  {}{}\n",
                c.id,
                c.name,
                e.node.to_string(),
                e.peer.to_string(),
                e.msgs_tx,
                e.msgs_rx,
                e.queued,
                e.state,
                closed
            ));
        }
    }
    out
}

/// Deadlock analysis: build the wait-for graph between nodes (a blocked
/// reader waits for its peer; a blocked writer waits for its peer's ack)
/// and return every cycle found. A non-empty result is the classic §6.1
/// symptom: "the application stops running with each process waiting for
/// input from another process."
pub fn deadlock_cycles(w: &World) -> Vec<Vec<NodeAddr>> {
    let mut edges: HashMap<u32, Vec<u32>> = HashMap::new();
    for c in snapshot(w) {
        for e in &c.ends {
            if e.state != EndState::Idle {
                edges.entry(e.node.0).or_default().push(e.peer.0);
            }
        }
    }
    // DFS cycle enumeration (small graphs; dedupe by rotation).
    let mut cycles: Vec<Vec<u32>> = Vec::new();
    let nodes: Vec<u32> = {
        let mut v: Vec<u32> = edges.keys().copied().collect();
        v.sort_unstable();
        v
    };
    for &start in &nodes {
        let mut stack = vec![start];
        dfs(start, start, &edges, &mut stack, &mut cycles);
    }
    // Normalize: rotate each cycle so it starts at its minimum, dedupe.
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for mut cyc in cycles {
        let min_pos = cyc
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap_or(0);
        cyc.rotate_left(min_pos);
        if seen.insert(cyc.clone()) {
            out.push(cyc.into_iter().map(NodeAddr).collect());
        }
    }
    out
}

fn dfs(
    start: u32,
    here: u32,
    edges: &HashMap<u32, Vec<u32>>,
    stack: &mut Vec<u32>,
    cycles: &mut Vec<Vec<u32>>,
) {
    if let Some(nexts) = edges.get(&here) {
        for &n in nexts {
            if n == start && stack.len() > 1 {
                cycles.push(stack.clone());
            } else if n > start && !stack.contains(&n) {
                stack.push(n);
                dfs(start, n, edges, stack, cycles);
                stack.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vorx::channel;
    use vorx::hpcnet::Payload;
    use vorx::VorxBuilder;

    #[test]
    fn snapshot_reports_counts_and_states() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1:w", |ctx| {
            let ch = channel::open(&ctx, NodeAddr(1), "alpha");
            ch.write(&ctx, Payload::Synthetic(8)).unwrap();
            ch.write(&ctx, Payload::Synthetic(8)).unwrap();
        });
        v.spawn("n2:r", |ctx| {
            let ch = channel::open(&ctx, NodeAddr(2), "alpha");
            let _ = ch.read(&ctx).unwrap();
            let _ = ch.read(&ctx).unwrap();
            // Now block reading a third message that never comes.
            let _ = ch.read(&ctx).unwrap();
        });
        v.run(); // reader parks
        let w = v.world();
        let snap = snapshot(&w);
        assert_eq!(snap.len(), 1);
        let c = &snap[0];
        assert_eq!(c.name, "alpha");
        assert_eq!(c.ends.len(), 2);
        let writer_end = c.ends.iter().find(|e| e.node == NodeAddr(1)).unwrap();
        let reader_end = c.ends.iter().find(|e| e.node == NodeAddr(2)).unwrap();
        assert_eq!(writer_end.msgs_tx, 2);
        assert_eq!(reader_end.msgs_rx, 2);
        assert_eq!(reader_end.state, EndState::ReaderBlocked);
        let listing = render(&snap);
        assert!(listing.contains("alpha"));
        assert!(listing.contains("blocked-read"));
    }

    #[test]
    fn filters_isolate_channels() {
        let mut v = VorxBuilder::single_cluster(5).build();
        for (a, b, name) in [(1u32, 2u32, "srv/a"), (3, 4, "cli/b")] {
            v.spawn(format!("n{a}"), move |ctx| {
                let ch = channel::open(&ctx, NodeAddr(a), name);
                ch.write(&ctx, Payload::Synthetic(1)).unwrap();
            });
            v.spawn(format!("n{b}"), move |ctx| {
                let ch = channel::open(&ctx, NodeAddr(b), name);
                let _ = ch.read(&ctx).unwrap();
                let _ = ch.read(&ctx).unwrap(); // blocks forever
            });
        }
        v.run();
        let w = v.world();
        assert_eq!(snapshot(&w).len(), 2);
        let by_name = filtered(
            &w,
            &CdbFilter {
                name_prefix: Some("srv/".into()),
                ..Default::default()
            },
        );
        assert_eq!(by_name.len(), 1);
        assert_eq!(by_name[0].name, "srv/a");
        let by_node = filtered(
            &w,
            &CdbFilter {
                node: Some(NodeAddr(3)),
                ..Default::default()
            },
        );
        assert_eq!(by_node.len(), 1);
        assert_eq!(by_node[0].name, "cli/b");
        let blocked = filtered(
            &w,
            &CdbFilter {
                blocked_only: true,
                ..Default::default()
            },
        );
        assert_eq!(blocked.len(), 2); // both readers are blocked
    }

    #[test]
    fn detects_a_two_node_deadlock_cycle() {
        // The classic bug: both sides read first.
        let mut v = VorxBuilder::single_cluster(3).build();
        for (me, _other) in [(1u32, 2u32), (2, 1)] {
            v.spawn(format!("n{me}"), move |ctx| {
                let ch = channel::open(&ctx, NodeAddr(me), "dead");
                let _ = ch.read(&ctx).unwrap(); // both block: deadlock
                ch.write(&ctx, Payload::Synthetic(1)).unwrap();
            });
        }
        let report = v.run();
        assert_eq!(report.parked.len(), 2);
        let w = v.world();
        let cycles = deadlock_cycles(&w);
        assert_eq!(cycles.len(), 1);
        let mut cyc = cycles[0].clone();
        cyc.sort();
        assert_eq!(cyc, vec![NodeAddr(1), NodeAddr(2)]);
    }

    #[test]
    fn healthy_app_has_no_cycles() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1", |ctx| {
            let ch = channel::open(&ctx, NodeAddr(1), "ok");
            ch.write(&ctx, Payload::Synthetic(4)).unwrap();
        });
        v.spawn("n2", |ctx| {
            let ch = channel::open(&ctx, NodeAddr(2), "ok");
            let _ = ch.read(&ctx).unwrap();
        });
        v.run_all();
        assert!(deadlock_cycles(&v.world()).is_empty());
    }
}

#[cfg(test)]
mod close_tests {
    use super::*;
    use vorx::channel;
    use vorx::VorxBuilder;

    #[test]
    fn listing_shows_closed_ends() {
        let mut v = VorxBuilder::single_cluster(3).build();
        v.spawn("n1", |ctx| {
            let ch = channel::open(&ctx, NodeAddr(1), "done");
            ch.close(&ctx);
        });
        v.spawn("n2", |ctx| {
            let ch = channel::open(&ctx, NodeAddr(2), "done");
            let _ = ch.read(&ctx);
        });
        v.run_all();
        let w = v.world();
        let listing = render(&snapshot(&w));
        assert!(listing.contains("[closed]"), "{listing}");
        assert!(listing.contains("[peer-closed]"), "{listing}");
    }
}
