//! Deterministic fault injection: scheduled element crash/restart events and
//! seeded per-link message dispositions (drop / corrupt / delay).
//!
//! The schedule is *data*, not behavior: upper layers read the crash/restart
//! [`FaultEvent`]s and turn them into ordinary simulation events, and consult
//! [`FaultSchedule::disposition`] once per message arrival. All randomness
//! comes from one seeded [`SmallRng`], and dispositions are drawn in arrival
//! order — which the executor already makes deterministic — so two runs with
//! the same seed inject byte-identical fault streams and traces replay
//! bit-identically.

use std::collections::{BTreeMap, HashMap, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimTime;

/// A scheduled change to an element's availability. Element ids are opaque
/// to desim; upper layers map them to nodes, links, or hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The element fails (crash, power loss, unplugged cable).
    Down(u32),
    /// The element comes back with cold state.
    Up(u32),
    /// A network link goes down: frames in flight on it are lost and
    /// traffic must route around it until the matching [`FaultAction::LinkUp`].
    LinkDown(u32),
    /// A previously-downed link carries traffic again.
    LinkUp(u32),
    /// The link stays up but its message-fault profile changes (a degraded
    /// cable: loss/corruption/delay). The new profile is the next one queued
    /// for this link by [`FaultSchedule::degrade_at`].
    LinkDegrade(u32),
    /// A cluster switch's store-and-forward byte budget changes (an overload
    /// squeeze or its release). The new budget is the next one queued for
    /// this cluster by [`FaultSchedule::squeeze_at`].
    BudgetSqueeze(u32),
}

/// One entry in the crash/restart timeline.
#[derive(Debug, Clone, Copy)]
pub struct FaultEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// Per-link message fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently dropped in transit.
    pub drop: f64,
    /// Probability a message arrives with a detectable corruption.
    pub corrupt: f64,
    /// Probability a message is delayed by [`LinkFaults::delay_ns`].
    pub delay: f64,
    /// Extra latency applied to delayed messages, ns.
    pub delay_ns: u64,
}

impl LinkFaults {
    /// A fault-free link.
    pub const NONE: LinkFaults = LinkFaults {
        drop: 0.0,
        corrupt: 0.0,
        delay: 0.0,
        delay_ns: 0,
    };

    /// Drop-only faults at probability `p`.
    pub fn loss(p: f64) -> Self {
        LinkFaults {
            drop: p,
            ..LinkFaults::NONE
        }
    }

    fn is_none(&self) -> bool {
        self.drop == 0.0 && self.corrupt == 0.0 && self.delay == 0.0
    }
}

/// What should happen to one message in transit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Deliver normally.
    Deliver,
    /// Silently discard.
    Drop,
    /// Deliver, but flagged as corrupted (models a CRC failure the receiver
    /// can detect but not repair).
    Corrupt,
    /// Deliver after this many extra nanoseconds.
    Delay(u64),
}

/// Counters of what the plane actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped.
    pub dropped: u64,
    /// Messages corrupted.
    pub corrupted: u64,
    /// Messages delayed.
    pub delayed: u64,
}

/// Per-link injection counters, keyed by link id in
/// [`FaultSchedule::link_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages dropped on this link by a probabilistic or scripted fault.
    pub dropped: u64,
    /// Messages corrupted on this link.
    pub corrupted: u64,
    /// Messages delayed on this link.
    pub delayed: u64,
    /// Messages lost because they were in flight when the link went down.
    pub down_drops: u64,
    /// Times the timeline took this link down.
    pub downs: u64,
    /// Messages shed at this link's switch because a byte budget was
    /// exhausted (deterministic overload drops, not probabilistic faults).
    pub shed: u64,
    /// Times the fault plane judged this link to be flapping (a down that
    /// arrived within the damping window of the previous down).
    pub flaps: u64,
    /// Smallest delivered one-hop latency observed, ns (valid when
    /// `lat_count > 0`).
    pub lat_min_ns: u64,
    /// Largest delivered one-hop latency observed, ns.
    pub lat_max_ns: u64,
    /// Sum of delivered one-hop latencies, ns (mean = sum / count).
    pub lat_sum_ns: u64,
    /// Delivered frames with a recorded latency.
    pub lat_count: u64,
}

impl LinkStats {
    /// Mean delivered latency in ns, 0 when nothing was recorded.
    pub fn lat_mean_ns(&self) -> u64 {
        self.lat_sum_ns.checked_div(self.lat_count).unwrap_or(0)
    }
}

/// One deterministic latency-degradation window: between `start_ns` and
/// `end_ns` (exclusive), frames on `link` are inflated by `factor_milli`
/// (1000 = 1.0x) of the base hop latency plus a seeded jitter in
/// `[0, jitter_ns]`. Both terms are pure functions of sim time, so sharded
/// replays stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GrayWindow {
    link: u32,
    start_ns: u64,
    end_ns: u64,
    factor_milli: u64,
    jitter_ns: u64,
}

/// SplitMix64 finalizer: a stateless hash used to derive per-frame jitter
/// from `(seed, link, sim time)` without touching the schedule's RNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, deterministic fault plan: a crash/restart timeline plus
/// per-link message fault probabilities and an optional scripted drop table
/// (for tests that need to kill exactly the nth message on a link).
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    rng: SmallRng,
    events: Vec<FaultEvent>,
    default_link: LinkFaults,
    per_link: HashMap<u32, LinkFaults>,
    /// `link -> sorted arrival ordinals (1-based) to drop`, consulted before
    /// any probabilistic draw.
    scripted_drops: HashMap<u32, Vec<u64>>,
    /// Messages seen so far per link (drives the scripted table).
    arrivals: HashMap<u32, u64>,
    /// `link -> queued degrade profiles`, consumed in timeline order by
    /// [`FaultSchedule::apply_degrade`].
    degrades: HashMap<u32, VecDeque<LinkFaults>>,
    /// `cluster -> queued byte budgets`, consumed in timeline order by
    /// [`FaultSchedule::apply_squeeze`].
    squeezes: HashMap<u32, VecDeque<u64>>,
    /// Traffic-amplification windows `(start_ns, end_ns, factor)`: a pure
    /// function of sim time consulted by load generators, so overload bursts
    /// replay bit-identically without touching the RNG.
    bursts: Vec<(u64, u64, u32)>,
    /// Latency-degradation windows consulted by
    /// [`FaultSchedule::gray_delay_ns`]; pure functions of sim time.
    lat_windows: Vec<GrayWindow>,
    /// The construction seed, reused (hashed) for per-frame gray jitter so
    /// jitter never perturbs the probabilistic RNG stream.
    gray_seed: u64,
    /// Per-link injection counters (ordered so summaries are deterministic).
    link_stats: BTreeMap<u32, LinkStats>,
    /// What was injected so far.
    pub stats: FaultStats,
}

impl FaultSchedule {
    /// An empty schedule drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            rng: SmallRng::seed_from_u64(seed),
            events: Vec::new(),
            default_link: LinkFaults::NONE,
            per_link: HashMap::new(),
            scripted_drops: HashMap::new(),
            arrivals: HashMap::new(),
            degrades: HashMap::new(),
            squeezes: HashMap::new(),
            bursts: Vec::new(),
            lat_windows: Vec::new(),
            gray_seed: seed,
            link_stats: BTreeMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// Schedule element `id` to fail at `at`.
    pub fn down_at(mut self, id: u32, at: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            action: FaultAction::Down(id),
        });
        self
    }

    /// Schedule element `id` to restart at `at`.
    pub fn up_at(mut self, id: u32, at: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            action: FaultAction::Up(id),
        });
        self
    }

    /// Schedule link `link` to go down at `at`: frames in flight on it are
    /// lost and traffic reroutes around it.
    pub fn link_down_at(mut self, link: u32, at: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            action: FaultAction::LinkDown(link),
        });
        self
    }

    /// Schedule link `link` to come back up at `at`.
    pub fn link_up_at(mut self, link: u32, at: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            action: FaultAction::LinkUp(link),
        });
        self
    }

    /// Schedule link `link` to degrade to `faults` at `at` (the link stays
    /// up; its message-fault profile changes). Several degrades of the same
    /// link apply in timeline order.
    pub fn degrade_at(mut self, link: u32, at: SimTime, faults: LinkFaults) -> Self {
        self.events.push(FaultEvent {
            at,
            action: FaultAction::LinkDegrade(link),
        });
        self.degrades.entry(link).or_default().push_back(faults);
        self
    }

    /// Schedule cluster `cluster`'s switch byte budget to become `bytes` at
    /// `at` (an overload squeeze; `u64::MAX` releases it). Several squeezes
    /// of the same cluster apply in timeline order.
    pub fn squeeze_at(mut self, cluster: u32, at: SimTime, bytes: u64) -> Self {
        self.events.push(FaultEvent {
            at,
            action: FaultAction::BudgetSqueeze(cluster),
        });
        self.squeezes.entry(cluster).or_default().push_back(bytes);
        self
    }

    /// Declare a traffic-amplification window: between `start` and `end`
    /// (exclusive), load generators consulting [`FaultSchedule::amplification`]
    /// should multiply their offered load by `factor`.
    pub fn burst(mut self, start: SimTime, end: SimTime, factor: u32) -> Self {
        self.bursts.push((start.as_ns(), end.as_ns(), factor));
        self
    }

    /// Flap link `link`: starting at `first_down`, alternate down/up every
    /// `half_period_ns` nanoseconds for `cycles` full down+up cycles.
    pub fn flap_link(
        mut self,
        link: u32,
        first_down: SimTime,
        half_period_ns: u64,
        cycles: u32,
    ) -> Self {
        let base = first_down.as_ns();
        for i in 0..u64::from(cycles) {
            self = self
                .link_down_at(link, SimTime::from_ns(base + 2 * i * half_period_ns))
                .link_up_at(link, SimTime::from_ns(base + (2 * i + 1) * half_period_ns));
        }
        self
    }

    /// Declare a gray-degradation window on `link`: between `start` and
    /// `end` (exclusive), every frame's hop latency is multiplied by
    /// `factor` (≥ 1.0) and stretched by a seeded jitter in `[0, jitter_ns]`.
    /// Unlike [`FaultSchedule::degrade_at`] this drops nothing and draws no
    /// randomness at arrival time — the delay is a pure function of
    /// `(seed, link, sim time)`, so sharded replays stay bit-identical.
    pub fn degrade(
        mut self,
        link: u32,
        start: SimTime,
        end: SimTime,
        factor: f64,
        jitter_ns: u64,
    ) -> Self {
        let factor_milli = ((factor.max(1.0)) * 1000.0).round() as u64;
        self.lat_windows.push(GrayWindow {
            link,
            start_ns: start.as_ns(),
            end_ns: end.as_ns(),
            factor_milli,
            jitter_ns,
        });
        self
    }

    /// Apply `faults` to every link without a per-link override.
    pub fn all_links(mut self, faults: LinkFaults) -> Self {
        self.default_link = faults;
        self
    }

    /// Override the fault profile of one link.
    pub fn link(mut self, link: u32, faults: LinkFaults) -> Self {
        self.per_link.insert(link, faults);
        self
    }

    /// Deterministically drop the `nth` (1-based) message to arrive on
    /// `link`, regardless of probabilities.
    pub fn drop_nth(mut self, link: u32, nth: u64) -> Self {
        self.scripted_drops.entry(link).or_default().push(nth);
        self
    }

    /// The crash/restart timeline, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True iff no message faults can ever fire (dispositions are then
    /// always [`Disposition::Deliver`] and consume no randomness).
    pub fn message_faults_possible(&self) -> bool {
        !self.scripted_drops.is_empty()
            || !self.default_link.is_none()
            || self.per_link.values().any(|f| !f.is_none())
            || self.degrades.values().flatten().any(|f| !f.is_none())
    }

    /// True iff a gray latency-degradation window exists anywhere in the
    /// schedule. Transport RTT estimators arm only when this is set, so
    /// fault-free and loss-only runs keep their calibration-default timers
    /// and replay byte-identically to earlier builds.
    pub fn gray_possible(&self) -> bool {
        !self.lat_windows.is_empty()
    }

    /// True iff delivered-latency statistics are worth recording (a gray
    /// window or any probabilistic message fault is configured). Keeps the
    /// per-frame counter update off the fast path of clean scale runs.
    pub fn track_latency(&self) -> bool {
        self.gray_possible() || self.message_faults_possible()
    }

    /// Extra delivery latency for a frame arriving on `link` at `now_ns`,
    /// given the fabric's base hop latency `hop_ns`. Overlapping windows
    /// take the worst inflation and the worst jitter bound. A pure function
    /// of `(seed, link, now_ns)`: no RNG state is consumed, so dispositions
    /// drawn before/after are unaffected and replays stay bit-identical.
    pub fn gray_delay_ns(&self, link: u32, now_ns: u64, hop_ns: u64) -> u64 {
        let mut factor_milli = 1000u64;
        let mut jitter_bound = 0u64;
        for w in &self.lat_windows {
            if w.link == link && w.start_ns <= now_ns && now_ns < w.end_ns {
                factor_milli = factor_milli.max(w.factor_milli);
                jitter_bound = jitter_bound.max(w.jitter_ns);
            }
        }
        if factor_milli == 1000 && jitter_bound == 0 {
            return 0;
        }
        let inflation = hop_ns.saturating_mul(factor_milli.saturating_sub(1000)) / 1000;
        let jitter = if jitter_bound == 0 {
            0
        } else {
            splitmix64(self.gray_seed ^ (u64::from(link) << 32) ^ now_ns) % (jitter_bound + 1)
        };
        inflation + jitter
    }

    /// Per-link injection counters, keyed by link id. Links that never saw
    /// an injection have no entry.
    pub fn link_stats(&self) -> &BTreeMap<u32, LinkStats> {
        &self.link_stats
    }

    /// Install the next queued degrade profile for `link` (scheduled by
    /// [`FaultSchedule::degrade_at`]). Called by the layer that executes the
    /// timeline when a [`FaultAction::LinkDegrade`] fires. Returns the
    /// profile now in force.
    pub fn apply_degrade(&mut self, link: u32) -> LinkFaults {
        let f = self
            .degrades
            .get_mut(&link)
            .and_then(VecDeque::pop_front)
            .unwrap_or(LinkFaults::NONE);
        self.per_link.insert(link, f);
        f
    }

    /// Install the next queued byte budget for `cluster` (scheduled by
    /// [`FaultSchedule::squeeze_at`]). Called by the layer that executes the
    /// timeline when a [`FaultAction::BudgetSqueeze`] fires. Returns the
    /// budget now in force (`u64::MAX` once the queue is exhausted).
    pub fn apply_squeeze(&mut self, cluster: u32) -> u64 {
        self.squeezes
            .get_mut(&cluster)
            .and_then(VecDeque::pop_front)
            .unwrap_or(u64::MAX)
    }

    /// Traffic-amplification factor in force at `now_ns`: the largest factor
    /// among burst windows covering that instant, 1 outside every window. A
    /// pure function of time — consulting it consumes no randomness, so
    /// burst-driven load replays bit-identically.
    pub fn amplification(&self, now_ns: u64) -> u32 {
        self.bursts
            .iter()
            .filter(|&&(s, e, _)| s <= now_ns && now_ns < e)
            .map(|&(_, _, f)| f)
            .max()
            .unwrap_or(1)
    }

    /// Record a frame lost because it was in flight when `link` went down.
    /// Down-drops are scripted (no randomness) and counted per link only.
    pub fn note_down_drop(&mut self, link: u32) {
        self.link_stats.entry(link).or_default().down_drops += 1;
    }

    /// Record a frame shed at `link`'s switch by an exhausted byte budget.
    /// Sheds are deterministic (no randomness) and counted per link only.
    pub fn note_overload_shed(&mut self, link: u32) {
        self.link_stats.entry(link).or_default().shed += 1;
    }

    /// Record the timeline taking `link` down.
    pub fn note_link_down(&mut self, link: u32) {
        self.link_stats.entry(link).or_default().downs += 1;
    }

    /// Record the fault plane judging `link` to be flapping (a down within
    /// the damping window of the previous down).
    pub fn note_flap(&mut self, link: u32) {
        self.link_stats.entry(link).or_default().flaps += 1;
    }

    /// Record one delivered frame's end-to-end hop latency on `link`. Only
    /// called when [`FaultSchedule::track_latency`] is set, so clean runs
    /// pay nothing per frame.
    pub fn note_delivered(&mut self, link: u32, latency_ns: u64) {
        let s = self.link_stats.entry(link).or_default();
        if s.lat_count == 0 || latency_ns < s.lat_min_ns {
            s.lat_min_ns = latency_ns;
        }
        s.lat_max_ns = s.lat_max_ns.max(latency_ns);
        s.lat_sum_ns += latency_ns;
        s.lat_count += 1;
    }

    /// Decide the fate of one message arriving on `link`. Must be called
    /// exactly once per in-transit message, in arrival order.
    pub fn disposition(&mut self, link: u32) -> Disposition {
        let n = self.arrivals.entry(link).or_insert(0);
        *n += 1;
        let ordinal = *n;
        if let Some(script) = self.scripted_drops.get(&link) {
            if script.contains(&ordinal) {
                self.stats.dropped += 1;
                self.link_stats.entry(link).or_default().dropped += 1;
                return Disposition::Drop;
            }
        }
        let f = self.per_link.get(&link).unwrap_or(&self.default_link);
        if f.is_none() {
            return Disposition::Deliver;
        }
        let f = *f;
        if f.drop > 0.0 && self.rng.random_bool(f.drop) {
            self.stats.dropped += 1;
            self.link_stats.entry(link).or_default().dropped += 1;
            return Disposition::Drop;
        }
        if f.corrupt > 0.0 && self.rng.random_bool(f.corrupt) {
            self.stats.corrupted += 1;
            self.link_stats.entry(link).or_default().corrupted += 1;
            return Disposition::Corrupt;
        }
        if f.delay > 0.0 && self.rng.random_bool(f.delay) {
            self.stats.delayed += 1;
            self.link_stats.entry(link).or_default().delayed += 1;
            return Disposition::Delay(f.delay_ns);
        }
        Disposition::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_dispositions() {
        let mk = || FaultSchedule::new(42).all_links(LinkFaults::loss(0.3));
        let (mut a, mut b) = (mk(), mk());
        for link in 0..4u32 {
            for _ in 0..200 {
                assert_eq!(a.disposition(link), b.disposition(link));
            }
        }
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.dropped > 0, "30% loss must fire in 800 draws");
    }

    #[test]
    fn scripted_drop_hits_exactly_the_nth() {
        let mut f = FaultSchedule::new(1).drop_nth(5, 3);
        assert_eq!(f.disposition(5), Disposition::Deliver);
        assert_eq!(f.disposition(5), Disposition::Deliver);
        assert_eq!(f.disposition(5), Disposition::Drop);
        assert_eq!(f.disposition(5), Disposition::Deliver);
        // Other links are untouched.
        assert_eq!(f.disposition(6), Disposition::Deliver);
        assert_eq!(f.stats.dropped, 1);
    }

    #[test]
    fn fault_free_links_consume_no_randomness() {
        let mut f = FaultSchedule::new(7)
            .link(1, LinkFaults::loss(1.0))
            .link(2, LinkFaults::NONE);
        // Draws on a fault-free link never perturb the stream of a faulty
        // one: interleaving order on link 2 is irrelevant.
        let seq_a: Vec<_> = (0..8).map(|_| f.disposition(1)).collect();
        let mut g = FaultSchedule::new(7)
            .link(1, LinkFaults::loss(1.0))
            .link(2, LinkFaults::NONE);
        let seq_b: Vec<_> = (0..8)
            .map(|_| {
                g.disposition(2);
                g.disposition(1)
            })
            .collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn flap_expands_to_alternating_link_events() {
        let f = FaultSchedule::new(0).flap_link(7, SimTime::from_ns(1_000), 500, 2);
        let got: Vec<_> = f
            .events()
            .iter()
            .map(|e| (e.at.as_ns(), e.action))
            .collect();
        assert_eq!(
            got,
            vec![
                (1_000, FaultAction::LinkDown(7)),
                (1_500, FaultAction::LinkUp(7)),
                (2_000, FaultAction::LinkDown(7)),
                (2_500, FaultAction::LinkUp(7)),
            ]
        );
    }

    #[test]
    fn degrade_applies_profiles_in_timeline_order() {
        let mut f = FaultSchedule::new(3)
            .degrade_at(2, SimTime::from_ns(10), LinkFaults::loss(1.0))
            .degrade_at(2, SimTime::from_ns(20), LinkFaults::NONE);
        assert!(f.message_faults_possible(), "queued degrade counts");
        assert_eq!(f.apply_degrade(2), LinkFaults::loss(1.0));
        assert_eq!(f.disposition(2), Disposition::Drop);
        assert_eq!(f.apply_degrade(2), LinkFaults::NONE);
        assert_eq!(f.disposition(2), Disposition::Deliver);
        // Queue exhausted: a further apply restores the fault-free profile.
        assert_eq!(f.apply_degrade(2), LinkFaults::NONE);
    }

    #[test]
    fn per_link_stats_track_each_counter() {
        let mut f = FaultSchedule::new(9)
            .link(4, LinkFaults::loss(1.0))
            .drop_nth(5, 1);
        f.disposition(4);
        f.disposition(5);
        f.note_down_drop(4);
        f.note_link_down(4);
        let s4 = f.link_stats()[&4];
        assert_eq!((s4.dropped, s4.down_drops, s4.downs), (1, 1, 1));
        assert_eq!(f.link_stats()[&5].dropped, 1);
        assert!(
            !f.link_stats().contains_key(&6),
            "untouched links have no entry"
        );
        // Aggregate stats exclude down-drops (those are scripted losses, not
        // probabilistic dispositions).
        assert_eq!(f.stats.dropped, 2);
    }

    #[test]
    fn squeeze_applies_budgets_in_timeline_order() {
        let mut f = FaultSchedule::new(0)
            .squeeze_at(2, SimTime::from_ns(10), 4_096)
            .squeeze_at(2, SimTime::from_ns(20), u64::MAX);
        assert_eq!(f.events().len(), 2);
        assert_eq!(f.events()[0].action, FaultAction::BudgetSqueeze(2));
        assert_eq!(f.apply_squeeze(2), 4_096);
        assert_eq!(f.apply_squeeze(2), u64::MAX);
        // Queue exhausted: a further apply releases the budget.
        assert_eq!(f.apply_squeeze(2), u64::MAX);
        // Squeezes are scripted, not probabilistic.
        assert!(!f.message_faults_possible());
    }

    #[test]
    fn burst_amplification_is_a_pure_function_of_time() {
        let f = FaultSchedule::new(0)
            .burst(SimTime::from_ns(100), SimTime::from_ns(200), 4)
            .burst(SimTime::from_ns(150), SimTime::from_ns(300), 8);
        assert_eq!(f.amplification(0), 1);
        assert_eq!(f.amplification(100), 4);
        assert_eq!(f.amplification(150), 8, "overlap takes the max");
        assert_eq!(f.amplification(200), 8, "end is exclusive");
        assert_eq!(f.amplification(300), 1);
    }

    #[test]
    fn gray_delay_is_a_pure_function_of_time() {
        let f = FaultSchedule::new(11).degrade(
            3,
            SimTime::from_ns(1_000),
            SimTime::from_ns(2_000),
            2.5,
            400,
        );
        assert!(f.gray_possible());
        assert_eq!(f.gray_delay_ns(3, 999, 1_000), 0, "before the window");
        assert_eq!(f.gray_delay_ns(3, 2_000, 1_000), 0, "end is exclusive");
        assert_eq!(f.gray_delay_ns(4, 1_500, 1_000), 0, "other links untouched");
        let d = f.gray_delay_ns(3, 1_500, 1_000);
        // 2.5x of a 1000ns hop = 1500ns inflation, plus jitter in [0, 400].
        assert!((1_500..=1_900).contains(&d), "delay {d} out of range");
        // Pure function: same (seed, link, time) gives the same delay, and
        // consulting it consumes no RNG (dispositions unaffected).
        let g = FaultSchedule::new(11).degrade(
            3,
            SimTime::from_ns(1_000),
            SimTime::from_ns(2_000),
            2.5,
            400,
        );
        assert_eq!(d, g.gray_delay_ns(3, 1_500, 1_000));
        assert_ne!(
            f.gray_delay_ns(3, 1_500, 1_000),
            f.gray_delay_ns(3, 1_501, 1_000),
            "jitter varies with time (for this seed)"
        );
    }

    #[test]
    fn overlapping_gray_windows_take_the_worst_terms() {
        let f = FaultSchedule::new(0)
            .degrade(1, SimTime::from_ns(0), SimTime::from_ns(100), 3.0, 0)
            .degrade(1, SimTime::from_ns(50), SimTime::from_ns(200), 2.0, 0);
        assert_eq!(f.gray_delay_ns(1, 60, 1_000), 2_000, "max factor wins");
        assert_eq!(f.gray_delay_ns(1, 150, 1_000), 1_000);
    }

    #[test]
    fn gray_windows_do_not_count_as_message_faults() {
        let f =
            FaultSchedule::new(0).degrade(1, SimTime::from_ns(0), SimTime::from_ns(100), 2.0, 0);
        assert!(!f.message_faults_possible(), "no drop/corrupt configured");
        assert!(f.track_latency(), "but latency tracking arms");
        assert!(!FaultSchedule::new(0).gray_possible());
    }

    #[test]
    fn delivered_latency_stats_accumulate() {
        let mut f = FaultSchedule::new(0);
        f.note_delivered(2, 500);
        f.note_delivered(2, 100);
        f.note_delivered(2, 300);
        f.note_flap(2);
        let s = f.link_stats()[&2];
        assert_eq!((s.lat_min_ns, s.lat_max_ns, s.lat_count), (100, 500, 3));
        assert_eq!(s.lat_mean_ns(), 300);
        assert_eq!(s.flaps, 1);
    }

    #[test]
    fn overload_sheds_count_per_link() {
        let mut f = FaultSchedule::new(0);
        f.note_overload_shed(3);
        f.note_overload_shed(3);
        assert_eq!(f.link_stats()[&3].shed, 2);
        assert_eq!(f.stats.dropped, 0, "sheds are not probabilistic drops");
    }

    #[test]
    fn timeline_round_trips() {
        let f = FaultSchedule::new(0)
            .down_at(3, SimTime::from_ns(100))
            .up_at(3, SimTime::from_ns(200));
        assert_eq!(f.events().len(), 2);
        assert_eq!(f.events()[0].action, FaultAction::Down(3));
        assert_eq!(f.events()[1].action, FaultAction::Up(3));
        assert!(!f.message_faults_possible());
        assert!(FaultSchedule::new(0)
            .all_links(LinkFaults::loss(0.01))
            .message_faults_possible());
    }
}
