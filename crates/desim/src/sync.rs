//! Synchronization primitives for simulated processes.
//!
//! These structures live *inside* the world state `W`; waking requires a
//! [`Scheduler`], so all operations that release waiters take one. Blocking
//! helpers take an accessor closure that finds the primitive inside `W`
//! (the world cannot be borrowed across a park).
//!
//! All primitives use condition-loop semantics: a woken process re-checks its
//! condition, so spurious or stolen wakeups are harmless.

use std::collections::VecDeque;

use crate::sim::{Ctx, ProcId, Scheduler, Wakeup};

/// A set of parked processes waiting on some condition in the world.
///
/// Waiters form a FIFO: [`wake_one`](WaitSet::wake_one) releases the
/// longest-waiting process in O(1) (ring buffer pop, not a `Vec` shift).
///
/// # Coalescing semantics
///
/// A process is registered **at most once** no matter how many times it
/// re-registers between wakeups; `register` on an already-registered pid is
/// a no-op that keeps the original FIFO position. This matters because
/// condition loops re-register on every failed re-check: without
/// coalescing, a process that loops k times would occupy k queue slots and
/// absorb k `wake_one` calls meant for k distinct waiters. Conversely, a
/// wakeup is advisory — the woken process re-checks its condition, so a
/// wake delivered to a process whose condition is already satisfied (or
/// that was concurrently deregistered) is harmless.
#[derive(Debug, Default, Clone)]
pub struct WaitSet {
    waiters: VecDeque<ProcId>,
}

impl WaitSet {
    /// An empty wait set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `pid` as waiting. Duplicate registrations are coalesced
    /// (see the type-level docs); the original FIFO position is kept.
    pub fn register(&mut self, pid: ProcId) {
        if !self.waiters.contains(&pid) {
            self.waiters.push_back(pid);
        }
    }

    /// Remove a registration (e.g. on timeout or cancellation).
    pub fn deregister(&mut self, pid: ProcId) {
        self.waiters.retain(|p| *p != pid);
    }

    /// Wake the longest-waiting process, if any. Returns who was woken.
    pub fn wake_one<W: Send + 'static>(
        &mut self,
        s: &mut Scheduler<W>,
        token: Wakeup,
    ) -> Option<ProcId> {
        let pid = self.waiters.pop_front()?;
        s.wake(pid, token);
        Some(pid)
    }

    /// Wake every waiting process. Returns how many were woken.
    pub fn wake_all<W: Send + 'static>(&mut self, s: &mut Scheduler<W>, token: Wakeup) -> usize {
        let n = self.waiters.len();
        for pid in self.waiters.drain(..) {
            s.wake(pid, token);
        }
        n
    }

    /// Number of registered waiters.
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// True iff no process is waiting.
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }

    /// The registered waiters, oldest first.
    pub fn waiters(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.waiters.iter().copied()
    }
}

/// A counting semaphore for simulated processes (the primitive VORX offers
/// subprocesses for intra-process synchronization, §5 of the paper).
#[derive(Debug, Clone)]
pub struct SimSemaphore {
    count: i64,
    waiters: WaitSet,
}

impl SimSemaphore {
    /// Create with an initial count (may be zero).
    pub fn new(initial: i64) -> Self {
        SimSemaphore {
            count: initial,
            waiters: WaitSet::new(),
        }
    }

    /// Current count (for inspection/debugging).
    pub fn count(&self) -> i64 {
        self.count
    }

    /// Number of processes blocked in `acquire`.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// V operation: increment and wake one waiter.
    pub fn release<W: Send + 'static>(&mut self, s: &mut Scheduler<W>) {
        self.count += 1;
        self.waiters.wake_one(s, Wakeup::START);
    }

    /// Non-blocking P: take a unit if available.
    pub fn try_acquire(&mut self, pid: ProcId) -> bool {
        if self.count > 0 {
            self.count -= 1;
            // A successful acquire cancels any stale registration.
            self.waiters.deregister(pid);
            true
        } else {
            self.waiters.register(pid);
            false
        }
    }
}

/// Blocking P operation on a semaphore located inside the world by `get`.
pub fn sem_acquire<W, F>(ctx: &Ctx<W>, mut get: F)
where
    W: Send + 'static,
    F: FnMut(&mut W) -> &mut SimSemaphore,
{
    let pid = ctx.pid();
    ctx.wait_until(|w, _| get(w).try_acquire(pid).then_some(()));
}

/// Blocking V operation on a semaphore located inside the world by `get`.
/// (Non-blocking in simulated time; provided for symmetry.)
pub fn sem_release<W, F>(ctx: &Ctx<W>, mut get: F)
where
    W: Send + 'static,
    F: FnMut(&mut W) -> &mut SimSemaphore,
{
    ctx.with(|w, s| get(w).release(s));
}

/// An unbounded FIFO mailbox between simulated processes.
#[derive(Debug)]
pub struct Mailbox<T> {
    queue: VecDeque<T>,
    waiters: WaitSet,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Mailbox {
            queue: VecDeque::new(),
            waiters: WaitSet::new(),
        }
    }
}

impl<T> Mailbox<T> {
    /// An empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit a message and wake one waiting receiver.
    pub fn post<W: Send + 'static>(&mut self, s: &mut Scheduler<W>, msg: T) {
        self.queue.push_back(msg);
        self.waiters.wake_one(s, Wakeup::START);
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self, pid: ProcId) -> Option<T> {
        match self.queue.pop_front() {
            Some(m) => {
                self.waiters.deregister(pid);
                Some(m)
            }
            None => {
                self.waiters.register(pid);
                None
            }
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True iff no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Peek at the head message.
    pub fn peek(&self) -> Option<&T> {
        self.queue.front()
    }
}

/// Blocking receive from a mailbox located inside the world by `get`.
pub fn mailbox_recv<W, T, F>(ctx: &Ctx<W>, mut get: F) -> T
where
    W: Send + 'static,
    T: Send + 'static,
    F: FnMut(&mut W) -> &mut Mailbox<T>,
{
    let pid = ctx.pid();
    ctx.wait_until(|w, _| get(w).try_recv(pid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::time::SimDuration;

    #[derive(Default)]
    struct World {
        sem: Option<SimSemaphore>,
        mbox: Mailbox<u32>,
        order: Vec<u32>,
    }

    #[test]
    fn semaphore_serializes_critical_sections() {
        let mut sim = Simulation::new(World {
            sem: Some(SimSemaphore::new(1)),
            ..Default::default()
        });
        for i in 0..3u32 {
            sim.spawn(format!("w{i}"), move |ctx| {
                sem_acquire(&ctx, |w: &mut World| w.sem.as_mut().unwrap());
                ctx.with(|w, _| w.order.push(i * 10));
                ctx.sleep(SimDuration::from_us(5));
                ctx.with(|w, _| w.order.push(i * 10 + 1));
                sem_release(&ctx, |w: &mut World| w.sem.as_mut().unwrap());
            });
        }
        let report = sim.run_to_idle();
        assert!(report.all_finished());
        let order = sim.world().order.clone();
        // Enter/exit pairs must not interleave.
        for pair in order.chunks(2) {
            assert_eq!(
                pair[0] + 1,
                pair[1],
                "critical sections interleaved: {order:?}"
            );
        }
    }

    #[test]
    fn semaphore_counts_waiters() {
        let mut sem = SimSemaphore::new(0);
        assert_eq!(sem.count(), 0);
        assert!(!sem.try_acquire(ProcId(1)));
        assert!(!sem.try_acquire(ProcId(2)));
        assert!(!sem.try_acquire(ProcId(2))); // duplicate coalesced
        assert_eq!(sem.waiting(), 2);
    }

    #[test]
    fn mailbox_delivers_fifo_across_processes() {
        let mut sim = Simulation::new(World::default());
        sim.spawn("rx", |ctx| {
            for expect in [7u32, 8, 9] {
                let got = mailbox_recv(&ctx, |w: &mut World| &mut w.mbox);
                assert_eq!(got, expect);
            }
        });
        sim.spawn("tx", |ctx| {
            for v in [7u32, 8, 9] {
                ctx.sleep(SimDuration::from_us(1));
                ctx.with(|w, s| w.mbox.post(s, v));
            }
        });
        assert!(sim.run_to_idle().all_finished());
    }

    #[test]
    fn waitset_wake_one_is_fifo() {
        let mut sim = Simulation::new(World::default());
        // Three processes park on the mailbox; posts release them in order.
        for i in 0..3u32 {
            sim.spawn(format!("rx{i}"), move |ctx| {
                // Stagger registration so FIFO order is well-defined.
                ctx.sleep(SimDuration::from_us(u64::from(i)));
                let v = mailbox_recv(&ctx, |w: &mut World| &mut w.mbox);
                ctx.with(move |w, _| w.order.push(v));
            });
        }
        sim.spawn("tx", |ctx| {
            ctx.sleep(SimDuration::from_us(10));
            for v in [100u32, 200, 300] {
                ctx.with(|w, s| w.mbox.post(s, v));
                ctx.sleep(SimDuration::from_us(1));
            }
        });
        assert!(sim.run_to_idle().all_finished());
        assert_eq!(sim.world().order, vec![100, 200, 300]);
    }

    #[test]
    fn waitset_deregister_removes() {
        let mut ws = WaitSet::new();
        ws.register(ProcId(1));
        ws.register(ProcId(2));
        ws.deregister(ProcId(1));
        assert_eq!(ws.waiters().collect::<Vec<_>>(), vec![ProcId(2)]);
        assert_eq!(ws.len(), 1);
        assert!(!ws.is_empty());
    }

    #[test]
    fn mailbox_basics() {
        let mut m: Mailbox<u8> = Mailbox::new();
        assert!(m.is_empty());
        assert_eq!(m.try_recv(ProcId(0)), None);
        m.queue.push_back(5);
        assert_eq!(m.peek(), Some(&5));
        assert_eq!(m.len(), 1);
        assert_eq!(m.try_recv(ProcId(0)), Some(5));
    }
}
