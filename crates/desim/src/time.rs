//! Virtual time for the simulation.
//!
//! Simulated time is a count of nanoseconds since the start of the
//! simulation. Nanosecond resolution comfortably covers the 1988 cost model
//! of the HPC/VORX paper (the finest quantity we model is the 50 ns
//! serialization time of one byte on a 160 Mbit/s HPC link) while `u64`
//! range allows simulations of ~584 years, far beyond any experiment.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds from simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" bound.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since simulation start.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float (for reporting).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so such a call is a logic error in the caller.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is later than `self`"),
        )
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// nanosecond. Negative values are clamped to zero.
    pub fn from_us_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative values are clamped to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1_000_000_000.0).round().max(0.0) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (for reporting).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds as a float (for reporting).
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True iff this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Integer division into another duration, e.g. for per-message averages.
    pub fn checked_div(self, n: u64) -> Option<SimDuration> {
        self.0.checked_div(n).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulation ran past u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: subtracted past simulation start"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    // Pick the largest unit that keeps the value >= 1 for readability.
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_us(3).as_ns(), 3_000);
        assert_eq!(SimDuration::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(SimDuration::from_us_f64(0.5).as_ns(), 500);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_ns(), 1_500_000_000);
        assert_eq!(SimTime::from_ns(42).as_ns(), 42);
    }

    #[test]
    fn negative_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_us_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100);
        let d = SimDuration::from_ns(40);
        assert_eq!((t + d).as_ns(), 140);
        assert_eq!((t + d - d).as_ns(), 100);
        assert_eq!((t + d) - t, d);
        assert_eq!((d + d).as_ns(), 80);
        assert_eq!((d * 3).as_ns(), 120);
        assert_eq!((d / 4).as_ns(), 10);
        assert_eq!(d - d, SimDuration::ZERO);
        assert!((d / 4) < d);
    }

    #[test]
    fn since_and_saturating() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(25);
        assert_eq!(b.since(a).as_ns(), 15);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_ns(5).saturating_sub(SimDuration::from_ns(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn since_panics_when_backwards() {
        SimTime::from_ns(1).since(SimTime::from_ns(2));
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_ns(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_us(303).to_string(), "303.000us");
        assert_eq!(SimDuration::from_ms(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn float_views() {
        assert!((SimDuration::from_us(303).as_us_f64() - 303.0).abs() < 1e-9);
        assert!((SimDuration::from_ms(12).as_ms_f64() - 12.0).abs() < 1e-9);
        assert!((SimDuration::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
        assert!((SimTime::from_ns(1_500).as_us_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_us).sum();
        assert_eq!(total, SimDuration::from_us(10));
    }

    #[test]
    fn checked_div() {
        assert_eq!(
            SimDuration::from_us(10).checked_div(4),
            Some(SimDuration::from_ns(2_500))
        );
        assert_eq!(SimDuration::from_us(10).checked_div(0), None);
    }
}
